#!/usr/bin/env python3
"""Project-specific determinism lints that clang-tidy cannot express.

The simulators promise bit-identical results for a given (seed, shard count)
— checkpoints resume into the exact RNG stream, and the cross-method
estimator comparisons rely on reproducible Monte-Carlo statistics. A handful
of C++ constructs silently break that promise without failing any test on
the machine that introduced them. This linter bans them at review time:

  rand            std::rand / srand / std::random_device inside the
                  simulation stack. All randomness must flow from util/rng
                  (counter-based, journaled, substream-splittable).
  wallclock       Wall-clock reads (system_clock, time(), gettimeofday,
                  localtime) inside the simulation stack. Simulated time is
                  event time; elapsed-time measurement uses steady_clock,
                  which stays allowed.
  unordered-iter  Range-for iteration over a std::unordered_{map,set,...}
                  inside the simulation stack. Iteration order is
                  implementation-defined; feeding it into floating-point
                  accumulation, RNG draws, or journaled output makes results
                  hash-seed dependent. Keyed lookups and .size()/.contains()
                  stay allowed (declarations alone are not flagged).
  float-eq        == / != where either operand is a floating-point literal
                  or a variable the file declares as float/double, in
                  sim/analysis logic. Exact comparison is almost always a
                  latent nondeterminism (or a tolerance bug); the rare
                  intentional case (strict-weak-order tie-breaks) must be
                  annotated.
  task-throw      A naked `throw` inside a lambda passed to
                  ThreadPool::submit. Worker threads run tasks unprotected —
                  an escaping exception is std::terminate. (parallel_for /
                  parallel_chunks bodies are exempt: the pool wraps them in
                  its batch-abandon try/catch.)
  jitter          Un-seeded randomness (rand, random_device) or any clock
                  read — steady_clock included — on a line that computes
                  retry backoff or jitter, in src/{sim,analysis,runtime,util}.
                  Retry timing must derive from the campaign seed
                  (splitmix64 over (seed, shard, attempt)) so a resumed run
                  retries on the same schedule and fault-injection sweeps
                  replay bit-identically; clock-derived jitter silently
                  breaks both.
  raw-sync        Raw std synchronization types (std::mutex, lock_guard,
                  unique_lock, scoped_lock, condition_variable, ...)
                  anywhere in src/ outside util/thread_safety.hpp. All
                  locking must go through mlec::Mutex / MutexLock / CondVar
                  so Clang's thread-safety analysis sees every acquisition;
                  a raw std::mutex is invisible to the annotations and
                  silently exempts its critical sections from the
                  compile-time contract.
  tsa-escape      Any use of MLEC_NO_THREAD_SAFETY_ANALYSIS in src/. The
                  escape hatch disables the analysis for a whole function
                  body, so every use must carry a justified allow explaining
                  why the access is safe without the capability (e.g.
                  quiescent-state accessors used only after drain()).

Suppression: append `// lint:allow(<rule>): <justification>` to the flagged
line, or place it alone on the preceding line. The justification is
mandatory — a bare allow is itself a finding.

Usage:
  tools/lint_determinism.py [--root DIR]     lint the tree (exit 1 on findings)
  tools/lint_determinism.py --self-test      run the embedded rule tests
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories each rule applies to, relative to the repo root.
SIM_STACK = ("src/sim", "src/analysis", "src/runtime")
SIM_LOGIC = ("src/sim", "src/analysis")
JITTER_STACK = SIM_STACK + ("src/util",)
ALL_SRC = ("src",)

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)(:?\s*(.*))?")

RAND_RE = re.compile(r"\b(?:std::)?(?:rand|srand)\s*\(|\brandom_device\b")
WALLCLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|\blocaltime\b|\bgmtime\b"
    r"|(?<![_\w])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"
)
UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;=]*?\b(\w+)\s*[;({=]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?[&\s]\[?\w*.*?:\s*(\w+)\s*\)")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:=|;|,|\{|\))")
FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?"
FLOAT_CMP_RE = re.compile(
    r"([A-Za-z_][\w.\[\]()>-]*|" + FLOAT_LITERAL + r")\s*([!=]=)\s*"
    r"([A-Za-z_][\w.\[\]()>-]*|" + FLOAT_LITERAL + r")"
)
FLOAT_LITERAL_RE = re.compile(r"^" + FLOAT_LITERAL + r"$")
JITTER_CONTEXT_RE = re.compile(r"\b(?:jitter|backoff)\w*", re.IGNORECASE)
JITTER_NONDET_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand)\s*\(|\brandom_device\b"
    r"|\b(?:system|steady|high_resolution)_clock\b"
    r"|(?<![_\w])(?:std::)?time\s*\("
)
RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|condition_variable|condition_variable_any)\b"
)
TSA_ESCAPE_RE = re.compile(r"\bMLEC_NO_THREAD_SAFETY_ANALYSIS\b")
# The one file allowed to touch the raw std types: it defines the wrappers.
SYNC_WRAPPER_FILE = "src/util/thread_safety.hpp"


def strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments (keeps column count)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '/' and i + 1 < n and line[i + 1] == '/':
            out.append(' ' * (n - i))
            break
        if c in ('"', "'"):
            quote = c
            out.append(' ')
            i += 1
            while i < n:
                if line[i] == '\\':
                    out.append('  ')
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(' ')
                    i += 1
                    break
                out.append(' ')
                i += 1
            continue
        out.append(c)
        i += 1
    return ''.join(out)


class Finding:
    def __init__(self, path: str, lineno: int, rule: str, message: str):
        self.path, self.lineno, self.rule, self.message = path, lineno, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def parse_allows(lines: list[str]) -> tuple[dict[int, set[str]], list[tuple[int, str]]]:
    """Map line numbers -> allowed rules (self + next line); bare allows."""
    allowed: dict[int, set[str]] = {}
    bare: list[tuple[int, str]] = []
    for idx, line in enumerate(lines, start=1):
        for m in ALLOW_RE.finditer(line):
            rule = m.group(1)
            justification = (m.group(3) or "").strip()
            if not justification:
                bare.append((idx, rule))
            allowed.setdefault(idx, set()).add(rule)
            # An allow on its own comment line covers the following line.
            if strip_comments_and_strings(line).strip() == "":
                allowed.setdefault(idx + 1, set()).add(rule)
    return allowed, bare


def float_identifiers(code_lines: list[str]) -> set[str]:
    names: set[str] = set()
    for line in code_lines:
        for m in FLOAT_DECL_RE.finditer(line):
            names.add(m.group(1))
    return names


def operand_is_float(op: str, float_names: set[str]) -> bool:
    if FLOAT_LITERAL_RE.match(op):
        return True
    # Last member-access component: `a.key` / `heap_[i].key` -> `key`.
    last = re.split(r"[.\[\]()]+|->", op)
    last = [t for t in last if t]
    return bool(last) and last[-1] in float_names


def lint_file(path: Path, rel: str, findings: list[Finding]) -> None:
    try:
        raw_lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError as e:
        findings.append(Finding(rel, 0, "io", f"unreadable: {e}"))
        return
    allowed, bare = parse_allows(raw_lines)
    for lineno, rule in bare:
        findings.append(Finding(rel, lineno, rule,
                                "lint:allow without a justification (add ': <reason>')"))
    code_lines = [strip_comments_and_strings(l) for l in raw_lines]

    in_sim_stack = rel.startswith(SIM_STACK)
    in_sim_logic = rel.startswith(SIM_LOGIC)
    in_jitter_stack = rel.startswith(JITTER_STACK)
    in_src = rel.startswith(ALL_SRC) and rel != SYNC_WRAPPER_FILE

    def report(lineno: int, rule: str, message: str) -> None:
        if rule in allowed.get(lineno, set()):
            return
        findings.append(Finding(rel, lineno, rule, message))

    unordered_names: set[str] = set()
    float_names = float_identifiers(code_lines) if in_sim_logic else set()

    for lineno, line in enumerate(code_lines, start=1):
        if in_sim_stack:
            if RAND_RE.search(line):
                report(lineno, "rand",
                       "libc/std randomness in the simulation stack; use util/rng")
            if WALLCLOCK_RE.search(line):
                report(lineno, "wallclock",
                       "wall-clock read in the simulation stack; use event time or steady_clock")
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered_names.add(m.group(1))
            m = RANGE_FOR_RE.search(line)
            if m and m.group(1) in unordered_names:
                report(lineno, "unordered-iter",
                       f"iteration over unordered container '{m.group(1)}' is "
                       "implementation-ordered; use a dense index or sort first")
        if in_jitter_stack and JITTER_CONTEXT_RE.search(line) and JITTER_NONDET_RE.search(line):
            report(lineno, "jitter",
                   "backoff/jitter computed from un-seeded randomness or a clock; "
                   "derive it from the campaign seed (splitmix64 over "
                   "(seed, shard, attempt)) so resumed runs retry identically")
        if in_src:
            if RAW_SYNC_RE.search(line):
                report(lineno, "raw-sync",
                       "raw std synchronization type outside util/thread_safety.hpp; "
                       "use mlec::Mutex / MutexLock / CondVar so the thread-safety "
                       "analysis sees the acquisition")
            if TSA_ESCAPE_RE.search(line):
                report(lineno, "tsa-escape",
                       "MLEC_NO_THREAD_SAFETY_ANALYSIS disables the analysis for the "
                       "whole function; justify it with lint:allow(tsa-escape): <why>")
        if in_sim_logic:
            for m in FLOAT_CMP_RE.finditer(line):
                lhs, op, rhs = m.group(1), m.group(2), m.group(3)
                if operand_is_float(lhs, float_names) or operand_is_float(rhs, float_names):
                    report(lineno, "float-eq",
                           f"exact floating-point comparison '{lhs} {op} {rhs}'; "
                           "compare with a tolerance or annotate the tie-break")

    # task-throw: lambdas passed to ThreadPool::submit anywhere under src/.
    if rel.startswith(ALL_SRC):
        text = "\n".join(code_lines)
        for m in re.finditer(r"\bsubmit\s*\(\s*\[", text):
            start = text.index("[", m.start())
            brace = text.find("{", start)
            if brace < 0:
                continue
            depth, i = 0, brace
            while i < len(text):
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            body = text[brace:i]
            if re.search(r"\bthrow\b", body) and "catch" not in body:
                lineno = text.count("\n", 0, brace) + 1
                report(lineno, "task-throw",
                       "naked throw in a ThreadPool::submit task body would "
                       "std::terminate the worker; catch locally")


def run_lint(root: Path) -> int:
    findings: list[Finding] = []
    for top in ALL_SRC:
        for path in sorted((root / top).rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
                lint_file(path, path.relative_to(root).as_posix(), findings)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} determinism-lint finding(s).", file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


# --- embedded self-test ----------------------------------------------------

SELF_TEST_CASES = [
    # (relative path, source, expected rule or None)
    ("src/sim/a.cpp", "int x = rand();", "rand"),
    ("src/sim/a.cpp", "std::random_device rd;", "rand"),
    ("src/core/a.cpp", "int x = rand();", None),  # outside the sim stack
    ("src/runtime/a.cpp", "auto t = std::chrono::system_clock::now();", "wallclock"),
    ("src/runtime/a.cpp", "auto t = std::chrono::steady_clock::now();", None),
    ("src/analysis/a.cpp",
     "std::unordered_map<int, int> groups;\nfor (const auto& [k, v] : groups) {}",
     "unordered-iter"),
    ("src/analysis/a.cpp",
     "std::unordered_map<int, int> groups;\nint v = groups.size();", None),
    ("src/sim/a.hpp", "double key;\nbool eq = a.key == b.key;", "float-eq"),
    ("src/sim/a.hpp", "double key;\nbool lt = a.key < b.key;", None),
    ("src/analysis/a.cpp", "if (x == 1.0) {}", "float-eq"),
    ("src/analysis/a.cpp", "if (it != v.end()) {}", None),
    ("src/sim/a.hpp",
     "double key;\nbool eq = a.key == b.key;  // lint:allow(float-eq): tie-break\n", None),
    ("src/sim/a.hpp",
     "double key;\nbool eq = a.key == b.key;  // lint:allow(float-eq)\n", "float-eq"),
    ("src/util/a.cpp", "pool.submit([&] { throw Error{}; });", "task-throw"),
    ("src/util/a.cpp",
     "pool.submit([&] { try { f(); } catch (...) { log(); } });", None),
    ("src/sim/a.cpp", 'printf("rand() is banned");', None),  # strings ignored
    ("src/util/a.cpp", "double jitter = rand() / double(RAND_MAX);", "jitter"),
    ("src/runtime/a.cpp",
     "backoff_ms *= 1 + std::chrono::steady_clock::now().time_since_epoch().count() % 7;",
     "jitter"),
    ("src/runtime/a.cpp",
     "const double jitter = 0.5 + (splitmix64(state) >> 11) * 0x1.0p-53;", None),
    ("src/util/a.cpp",
     "auto elapsed = std::chrono::steady_clock::now() - start;", None),  # not jitter code
    ("src/server/a.cpp", "std::mutex m;", "raw-sync"),
    ("src/server/a.cpp", "std::unique_lock lock(m);", "raw-sync"),
    ("src/server/a.cpp", "std::condition_variable cv;", "raw-sync"),
    ("src/server/a.hpp", "mlec::Mutex m;\nMutexLock lock(m);", None),
    ("src/util/thread_safety.hpp", "std::mutex raw_;", None),  # the wrapper itself
    ("src/server/a.hpp",
     "void peek() const MLEC_NO_THREAD_SAFETY_ANALYSIS;", "tsa-escape"),
    ("src/server/a.hpp",
     "// lint:allow(tsa-escape): quiescent accessor, only valid after drain\n"
     "void peek() const MLEC_NO_THREAD_SAFETY_ANALYSIS;", None),
    ("src/server/a.hpp",
     "// lint:allow(tsa-escape)\n"
     "void peek() const MLEC_NO_THREAD_SAFETY_ANALYSIS;", "tsa-escape"),  # bare allow
]


def self_test() -> int:
    import tempfile

    failures = 0
    for idx, (rel, source, expected) in enumerate(SELF_TEST_CASES):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source + "\n", encoding="utf-8")
            findings: list[Finding] = []
            lint_file(target, rel, findings)
            rules = {f.rule for f in findings}
            ok = (expected in rules) if expected else not rules
            if not ok:
                failures += 1
                print(f"self-test case {idx} FAILED: expected "
                      f"{expected or 'no finding'}, got {sorted(rules) or 'none'}\n"
                      f"  source: {source!r}")
    if failures:
        print(f"{failures} self-test failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=str(Path(__file__).resolve().parent.parent),
                    help="repository root (default: the checkout containing this script)")
    ap.add_argument("--self-test", action="store_true", help="run the embedded rule tests")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(Path(args.root))


if __name__ == "__main__":
    sys.exit(main())
