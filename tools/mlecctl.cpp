// mlecctl — command-line front end for the MLEC analysis library.
//
//   mlecctl <command> [--config FILE] [overrides...]
//
// Commands:
//   analyze      full deployment report (Table 2, traffic, durability)
//   estimate     PDL/nines via the estimation strategies, cross-validated
//   durability   nines for every scheme x repair method (Figure 10 view)
//   burst X Y    PDL of Y simultaneous failures over X racks (Figure 5 cell)
//   traffic      catastrophic-repair traffic per method (Figure 8 view)
//   repair       repair bandwidth and times (Table 2 / Figures 6, 9)
//   tradeoff     ~30%-overhead durability/throughput sweep (Figure 12 view)
//   simulate N   fleet Monte Carlo over N mission-years
//   chaos        fault-injection sweep: crash/corrupt/hang every registered
//                fault point and verify recovery (see analysis/chaos.hpp)
//   advise       apply the paper's §6.1 takeaways to a site profile
//   spec         print an annotated deployment-file template
//   scenario     print an annotated scenario-file template
//   ec           show the erasure-coding data-plane backends (SIMD dispatch)
//
// Daemon commands (src/server/, newline-delimited JSON over TCP):
//   serve        run mlecd: accept submissions, dedup isomorphic scenarios,
//                memoize finished estimates, fair-share-schedule campaigns
//   submit       send the --config scenario to a running mlecd
//   status       job table, counters (cache hits), per-client fair-share spend
//   watch JOB    stream a job's progress events until it finishes
//   cancel JOB   cancel a queued or running job
//   shutdown     ask the daemon to exit cleanly
//
// --config FILE loads a scenario file (a deployment file is a valid
// scenario). Overrides (apply after --config): --code "(10+2)/(17+3)",
// --scheme C/D, --repair R_MIN, --afr 0.01, --detection-min 30, --racks N,
// --disks-per-enclosure N, --enclosures-per-rack N, --disk-tb N.
// Site profile flags for advise: --bursts, --devops, --nines N,
// --throughput-critical.
// Estimation flags for estimate: --method sim|split|dp|markov|all (default
// all; comma lists accepted), --json, --tolerance-nines X, --missions N,
// --split-missions N, --strict (unknown config keys are errors).
// Campaign flags for estimate/simulate: --checkpoint FILE, --resume,
// --shards N, --time-budget SECONDS, --target-rse X, --unit-budget N,
// --seed N, --checkpoint-every N, --shard-timeout SECONDS (watchdog; 0
// disables), --perf (print per-shard throughput and sim-core counters).
// Robustness flags: --faults "SPEC" arms a deterministic fault-injection
// schedule (same syntax as MLEC_FAULTS, see util/fault.hpp); --fail-fast
// makes quarantined shards an error instead of a degraded partial estimate
// (--degrade restores the default); chaos accepts --workdir DIR and
// --only SUBSTR (repeatable) to scope the sweep.
// Daemon flags: --host H --port P address mlecd (serve binds, the client
// commands connect; --port 0 binds an ephemeral port). serve also takes
// --state-dir DIR (durable ledger + campaign journals; empty = in-memory),
// --workers N (estimation pool size; 0 honors MLEC_THREADS, else hardware),
// --runners N (concurrent campaigns), --shards / --checkpoint-every /
// --target-rse (campaign defaults). submit takes --client NAME,
// --priority interactive|normal|batch, --method M, --wait (block for the
// estimate), and --json for the raw response.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/burst_pdl.hpp"
#include "analysis/chaos.hpp"
#include "analysis/crosscheck.hpp"
#include "analysis/fleet_sim.hpp"
#include "analysis/tradeoff.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/spec_io.hpp"
#include "ec/backend.hpp"
#include "placement/notation.hpp"
#include "runtime/fleet_campaign.hpp"
#include "server/chaos_cases.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "util/fault.hpp"
#include "util/stop_token.hpp"
#include "util/table.hpp"

namespace {

using namespace mlec;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::cerr << "mlecctl: " << message << "\n\n";
  std::cerr <<
      "usage: mlecctl <analyze|estimate|durability|burst|traffic|repair|tradeoff|simulate|\n"
      "                chaos|advise|spec|scenario|ec|\n"
      "                serve|submit|status|watch|cancel|shutdown>\n"
      "               [--config FILE] [--strict] [--code \"(kn+pn)/(kl+pl)\"] [--scheme C/D]\n"
      "               [--repair R_MIN] [--afr F] [--detection-min M] [--racks N]\n"
      "               [--enclosures-per-rack N] [--disks-per-enclosure N] [--disk-tb N]\n"
      "               [--bursts] [--devops] [--nines N] [--throughput-critical]\n"
      "               [--method sim|split|dp|markov|all] [--json] [--tolerance-nines X]\n"
      "               [--missions N] [--split-missions N]\n"
      "               [--checkpoint FILE] [--resume] [--shards N]\n"
      "               [--time-budget SECONDS] [--target-rse X] [--unit-budget N] [--seed N]\n"
      "               [--checkpoint-every N] [--shard-timeout SECONDS] [--faults \"SPEC\"]\n"
      "               [--degrade|--fail-fast] [--workdir DIR] [--only SUBSTR] [--perf]\n"
      "               [--host H] [--port P] [--state-dir DIR] [--workers N] [--runners N]\n"
      "               [--client NAME] [--priority interactive|normal|batch] [--wait]\n";
  std::exit(2);
}

struct Options {
  Scenario scenario;
  DeploymentProfile profile;
  std::vector<std::string> positional;
  // estimate controls
  std::vector<std::string> methods;  ///< empty = all registered
  bool json = false;
  double tolerance_nines = 1.0;
  bool strict = false;
  // estimate/simulate campaign controls
  std::string checkpoint_path;
  bool resume = false;
  std::size_t shards = 0;
  double time_budget_s = 0.0;
  double target_rse = 0.0;
  std::uint64_t unit_budget = 0;
  std::uint64_t checkpoint_every = 256;
  double shard_timeout_s = 0.0;  ///< watchdog deadline; 0 disables
  bool fail_fast = false;        ///< quarantined shards error out vs degrade
  std::string faults;            ///< MLEC_FAULTS-syntax schedule from --faults
  // chaos controls
  std::string chaos_workdir;
  std::vector<std::string> chaos_only;
  bool perf = false;  ///< print per-shard throughput + sim-core counters
  // daemon controls (serve binds host:port, the client commands connect)
  std::string host = "127.0.0.1";
  int port = 7033;
  std::string state_dir;      ///< serve: durable ledger dir; empty = in-memory
  std::size_t workers = 0;    ///< serve: pool size; 0 = MLEC_THREADS/hardware
  std::size_t runners = 2;    ///< serve: concurrent campaign runner threads
  std::string client_name = "anonymous";  ///< submit: fair-share account
  std::string priority = "normal";        ///< submit: priority class
  bool wait = false;                      ///< submit: block for the estimate

  const SystemSpec& spec() const { return scenario.system; }
  SystemSpec& spec() { return scenario.system; }
};

std::vector<std::string> parse_method_list(const std::string& value) {
  std::vector<std::string> methods;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty() && item != "all") methods.push_back(item);
  return methods;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  opt.profile.required_nines = 25.0;
  // --strict must be known before --config is loaded, and --config must be
  // loaded before any other flag so overrides win regardless of argument
  // order (`--missions N --config f` must not be clobbered by the file).
  for (int i = 2; i < argc; ++i)
    if (std::strcmp(argv[i], "--strict") == 0) opt.strict = true;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string path;
    if (arg == "--config" && i + 1 < argc) path = argv[i + 1];
    else if (arg.rfind("--config=", 0) == 0) path = arg.substr(9);
    else continue;
    std::ifstream in(path);
    if (!in) usage(("cannot open config file " + path).c_str());
    SpecParsePolicy policy;
    policy.strict = opt.strict;
    opt.scenario = load_scenario(IniFile::parse(in), policy);
  }
  // Both "--flag value" and "--flag=value" are accepted.
  std::string inline_value;
  bool has_inline_value = false;
  auto need_value = [&](int& i) -> std::string {
    if (has_inline_value) {
      has_inline_value = false;
      return inline_value;
    }
    if (i + 1 >= argc) usage("missing value after flag");
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    has_inline_value = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg.erase(eq);
      }
    }
    try {
      if (arg == "--config") {
        need_value(i);  // loaded in the pre-scan
      } else if (arg == "--strict") {
        // consumed in the pre-scan
      } else if (arg == "--code") {
        opt.spec().code = parse_mlec_code(need_value(i));
      } else if (arg == "--scheme") {
        opt.spec().scheme = parse_mlec_scheme(need_value(i));
      } else if (arg == "--repair") {
        opt.spec().repair = parse_repair_method(need_value(i));
      } else if (arg == "--afr") {
        opt.spec().afr = std::stod(need_value(i));
      } else if (arg == "--detection-min") {
        opt.spec().detection_hours = std::stod(need_value(i)) / 60.0;
      } else if (arg == "--racks") {
        opt.spec().dc.racks = std::stoul(need_value(i));
      } else if (arg == "--enclosures-per-rack") {
        opt.spec().dc.enclosures_per_rack = std::stoul(need_value(i));
      } else if (arg == "--disks-per-enclosure") {
        opt.spec().dc.disks_per_enclosure = std::stoul(need_value(i));
      } else if (arg == "--disk-tb") {
        opt.spec().dc.disk_capacity_tb = std::stod(need_value(i));
      } else if (arg == "--bursts") {
        opt.profile.frequent_failure_bursts = true;
      } else if (arg == "--devops") {
        opt.profile.has_devops_team = true;
      } else if (arg == "--throughput-critical") {
        opt.profile.throughput_critical = true;
      } else if (arg == "--nines") {
        opt.profile.required_nines = std::stod(need_value(i));
      } else if (arg == "--method") {
        opt.methods = parse_method_list(need_value(i));
      } else if (arg == "--json") {
        opt.json = true;
      } else if (arg == "--tolerance-nines") {
        opt.tolerance_nines = std::stod(need_value(i));
      } else if (arg == "--missions") {
        opt.scenario.missions = std::stoull(need_value(i));
      } else if (arg == "--split-missions") {
        opt.scenario.split_missions = std::stoull(need_value(i));
      } else if (arg == "--checkpoint") {
        opt.checkpoint_path = need_value(i);
      } else if (arg == "--resume") {
        opt.resume = true;
      } else if (arg == "--shards") {
        opt.shards = std::stoul(need_value(i));
      } else if (arg == "--time-budget") {
        opt.time_budget_s = std::stod(need_value(i));
      } else if (arg == "--target-rse") {
        opt.target_rse = std::stod(need_value(i));
      } else if (arg == "--unit-budget") {
        opt.unit_budget = std::stoull(need_value(i));
      } else if (arg == "--checkpoint-every") {
        opt.checkpoint_every = std::stoull(need_value(i));
      } else if (arg == "--shard-timeout") {
        opt.shard_timeout_s = std::stod(need_value(i));
      } else if (arg == "--faults") {
        opt.faults = need_value(i);
      } else if (arg == "--degrade") {
        opt.fail_fast = false;
      } else if (arg == "--fail-fast") {
        opt.fail_fast = true;
      } else if (arg == "--workdir") {
        opt.chaos_workdir = need_value(i);
      } else if (arg == "--only") {
        opt.chaos_only.push_back(need_value(i));
      } else if (arg == "--seed") {
        opt.scenario.seed = std::stoull(need_value(i));
      } else if (arg == "--perf") {
        opt.perf = true;
      } else if (arg == "--host") {
        opt.host = need_value(i);
      } else if (arg == "--port") {
        opt.port = std::stoi(need_value(i));
      } else if (arg == "--state-dir") {
        opt.state_dir = need_value(i);
      } else if (arg == "--workers") {
        opt.workers = std::stoul(need_value(i));
      } else if (arg == "--runners") {
        opt.runners = std::stoul(need_value(i));
      } else if (arg == "--client") {
        opt.client_name = need_value(i);
      } else if (arg == "--priority") {
        opt.priority = need_value(i);
      } else if (arg == "--wait") {
        opt.wait = true;
      } else if (!arg.empty() && arg[0] == '-') {
        usage(("unknown flag " + arg).c_str());
      } else {
        opt.positional.push_back(arg);
      }
      if (has_inline_value) usage(("flag " + arg + " does not take a value").c_str());
    } catch (const std::exception& e) {
      usage(e.what());
    }
  }
  return opt;
}

int cmd_analyze(const Options& opt) {
  std::cout << MlecAnalyzer(opt.spec()).report();
  return 0;
}

/// Per-shard throughput plus the sim-core counters for one campaign-backed
/// run (`--perf`).
void print_perf(const std::string& title, const CampaignReport& rep, std::uint64_t trials,
                std::uint64_t events, std::uint64_t rng_draws, std::uint64_t arena_allocs) {
  Table t({"shard", "trials", "elapsed_s", "trials/s"});
  for (const auto& s : rep.shards)
    t.add_row({std::to_string(s.shard), std::to_string(s.done), Table::num(s.elapsed_s, 3),
               s.elapsed_s > 0.0
                   ? Table::num(static_cast<double>(s.done) / s.elapsed_s, 0)
                   : "-"});
  std::cout << t.to_ascii(title);
  std::cout << "  total: " << trials << " trials in " << Table::num(rep.elapsed_s, 3) << " s";
  if (rep.elapsed_s > 0.0)
    std::cout << " (" << Table::num(static_cast<double>(trials) / rep.elapsed_s, 0)
              << " trials/s)";
  std::cout << ", " << events << " events, " << rng_draws << " RNG draws, " << arena_allocs
            << " arena allocations\n";
}

int cmd_estimate(const Options& opt) {
  StopSource stop_source;
  stop_source.watch_signals();  // SIGINT/SIGTERM end campaigns at a batch boundary
  if (opt.time_budget_s > 0.0) stop_source.set_deadline_after(opt.time_budget_s);

  CrosscheckOptions cc;
  cc.methods = opt.methods;
  cc.nines_tolerance = opt.tolerance_nines;
  cc.estimate.pool = &global_pool();
  cc.estimate.stop = stop_source.token();
  cc.estimate.checkpoint_path = opt.checkpoint_path;
  cc.estimate.resume = opt.resume;
  cc.estimate.shards = opt.shards;
  cc.estimate.target_rse = opt.target_rse;
  cc.estimate.unit_budget = opt.unit_budget;
  cc.estimate.checkpoint_every = opt.checkpoint_every;
  cc.estimate.shard_timeout_s = opt.shard_timeout_s;
  cc.estimate.degrade = opt.fail_fast ? DegradePolicy::kFailFast : DegradePolicy::kDegrade;
  cc.fail_fast = opt.fail_fast;

  const CrosscheckReport report = run_crosscheck(opt.scenario, cc);
  if (opt.json)
    std::cout << report.json() << '\n';
  else
    std::cout << report.table();
  if (opt.perf) {
    for (const auto& row : report.rows) {
      if (!row.ran() || row.estimate.campaign.shards.empty()) continue;
      print_perf("perf, method " + row.method, row.estimate.campaign, row.estimate.samples,
                 row.estimate.events_processed, row.estimate.rng_draws,
                 row.estimate.arena_allocations);
    }
  }
  if (!report.agreed()) {
    std::cerr << "mlecctl: estimation methods diverge beyond " << opt.tolerance_nines
              << " nines\n";
    return 3;
  }
  return 0;
}

int cmd_durability(const Options& opt) {
  Table t({"scheme", "R_ALL", "R_FCO", "R_HYB", "R_MIN"});
  const auto env = opt.scenario.durability_env();
  for (auto scheme : kAllMlecSchemes) {
    std::vector<std::string> row{to_string(scheme)};
    for (auto method : kAllRepairMethods) {
      try {
        row.push_back(Table::num(mlec_durability(env, opt.spec().code, scheme, method).nines, 1));
      } catch (const PreconditionError&) {
        row.push_back("n/a");  // placement constraints unmet for this scheme
      }
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii("durability (nines over the mission), " + opt.spec().code.notation());
  return 0;
}

int cmd_burst(const Options& opt) {
  if (opt.positional.size() != 2) usage("burst needs: mlecctl burst <racks> <failures>");
  const auto racks = static_cast<std::size_t>(std::stoul(opt.positional[0]));
  const auto failures = static_cast<std::size_t>(std::stoul(opt.positional[1]));
  BurstPdlConfig cfg = opt.scenario.burst_config();
  cfg.trials_per_cell = 4000;
  const BurstPdlEngine engine(cfg);
  const double pdl = engine.mlec_cell(opt.spec().code, opt.spec().scheme, racks, failures);
  std::cout << "PDL(" << failures << " failures over " << racks << " racks, "
            << to_string(opt.spec().scheme) << " " << opt.spec().code.notation()
            << ") = " << Table::num(pdl, 4) << '\n';
  return 0;
}

int cmd_traffic(const Options& opt) {
  Table t({"method", "cross_rack_TB", "local_TB"});
  for (auto method : kAllRepairMethods) {
    const auto traffic =
        catastrophic_injection_traffic(opt.spec().dc, opt.spec().code, opt.spec().scheme, method);
    t.add_row({to_string(method), Table::num(traffic.cross_rack_tb(), 2),
               Table::num(traffic.local_tb(), 2)});
  }
  std::cout << t.to_ascii("catastrophic local pool repair traffic, " +
                          to_string(opt.spec().scheme) + " " + opt.spec().code.notation());
  return 0;
}

int cmd_repair(const Options& opt) {
  const RepairTimeModel model(opt.spec().dc, opt.spec().bandwidth, opt.spec().code);
  const auto row = model.table2_row(opt.spec().scheme);
  Table t({"quantity", "value"});
  t.add_row({"single-disk repair bandwidth (MB/s)", Table::num(row.single_disk_mbps, 0)});
  t.add_row({"single-disk repair time (h)",
             Table::num(model.single_disk_repair_hours(opt.spec().scheme), 1)});
  t.add_row({"pool size (TB)", Table::num(row.pool_size_tb)});
  t.add_row({"pool repair bandwidth (MB/s)", Table::num(row.pool_mbps, 0)});
  t.add_row({"pool repair time, R_ALL (h)",
             Table::num(model.catastrophic_repair_hours(opt.spec().scheme), 1)});
  const auto mt = model.method_repair_time(opt.spec().scheme, opt.spec().repair);
  t.add_row({"catastrophe repair w/ " + to_string(opt.spec().repair) + " (h, net+local)",
             Table::num(mt.network_hours, 1) + " + " + Table::num(mt.local_hours, 1)});
  std::cout << t.to_ascii("repair profile, " + to_string(opt.spec().scheme) + " " +
                          opt.spec().code.notation());
  return 0;
}

int cmd_tradeoff(const Options& opt) {
  const auto points = mlec_tradeoff(opt.scenario.durability_env(), opt.spec().scheme,
                                    opt.spec().repair, OverheadBand{},
                                    /*measure_encoding=*/true);
  Table t({"config", "overhead_%", "nines", "encode_GBps"});
  for (const auto& pt : points)
    t.add_row({pt.label, Table::num(100 * pt.overhead, 1), Table::num(pt.nines, 1),
               Table::num(pt.encode_gbps, 2)});
  std::cout << t.to_ascii("~30% overhead sweep, " + to_string(opt.spec().scheme) + " with " +
                          to_string(opt.spec().repair));
  return 0;
}

int cmd_simulate(const Options& opt) {
  const std::uint64_t missions =
      opt.positional.empty() ? 100 : std::stoull(opt.positional[0]);
  const FleetSimConfig cfg = opt.scenario.fleet_config();
  StopSource stop_source;
  stop_source.watch_signals();  // SIGINT/SIGTERM end the run at a batch boundary
  if (opt.time_budget_s > 0.0) stop_source.set_deadline_after(opt.time_budget_s);

  FleetCampaignOptions campaign;
  campaign.checkpoint_path = opt.checkpoint_path;
  campaign.resume = opt.resume;
  campaign.shards = opt.shards;
  campaign.target_rse = opt.target_rse;
  campaign.unit_budget = opt.unit_budget;
  campaign.shard_timeout_s = opt.shard_timeout_s;
  campaign.stop = stop_source.token();

  const auto fc = run_fleet_campaign(cfg, missions, opt.scenario.seed, campaign, &global_pool());
  const auto& r = fc.result;
  const auto& rep = fc.report;

  std::uint64_t retried = 0;
  for (const auto& s : rep.shards)
    if (s.attempts > 1) ++retried;

  Table t({"quantity", "value"});
  t.add_row({"missions", std::to_string(r.missions)});
  t.add_row({"disk failures", std::to_string(r.disk_failures)});
  t.add_row({"catastrophic pool events", std::to_string(r.catastrophic_pool_events)});
  t.add_row({"data-loss missions", std::to_string(r.data_loss_missions)});
  t.add_row({"PDL", Table::num(r.pdl(), 4)});
  const auto ci = r.pdl_interval();
  t.add_row({"PDL 95% CI", Table::num(ci.lo, 4) + " .. " + Table::num(ci.hi, 4)});
  t.add_row({"cross-rack repair TB (total)", Table::num(r.cross_rack_tb, 2)});
  t.add_row({"shards", std::to_string(rep.shards.size())});
  if (rep.resumed) t.add_row({"resumed from checkpoint", "yes"});
  if (retried > 0) t.add_row({"shards retried", std::to_string(retried)});
  if (rep.quarantined() > 0) t.add_row({"shards quarantined", std::to_string(rep.quarantined())});
  if (opt.target_rse > 0.0) {
    t.add_row({"PDL relative std error", Table::num(rep.achieved_rse, 4)});
    t.add_row({"converged (target RSE)", rep.converged ? "yes" : "no"});
  }
  if (rep.truncated)
    t.add_row({"truncated", "yes (" + std::to_string(rep.units_done) + "/" +
                                std::to_string(rep.units_requested) + " missions)"});
  std::cout << t.to_ascii("fleet Monte Carlo, " + to_string(opt.spec().scheme) + " " +
                          opt.spec().code.notation() + ", " + to_string(opt.spec().repair));
  if (opt.perf)
    print_perf("perf, fleet simulation", rep, r.missions, r.events_processed, r.rng_draws,
               r.arena_allocations);
  for (const auto& s : rep.shards)
    if (s.quarantined)
      std::cerr << "mlecctl: shard " << s.shard << " quarantined after " << s.attempts
                << " attempts: " << s.error << '\n';
  return 0;
}

int cmd_chaos(const Options& opt) {
  ChaosOptions chaos;
  chaos.workdir = opt.chaos_workdir;
  chaos.only = opt.chaos_only;
  if (opt.shards > 0) chaos.shards = opt.shards;
  // The daemon's cases plug into the sweep here: analysis cannot link the
  // server, but the coverage check still demands its fault points fire.
  chaos.fork_phase = server::fork_chaos_cases();
  chaos.late_phase = server::late_chaos_cases();
  // A full sweep runs a campaign per case; keep the per-case cost modest
  // unless the scenario explicitly asked for more.
  Scenario scenario = opt.scenario;
  if (scenario.missions > 512) scenario.missions = 512;
  const ChaosReport report = run_chaos(scenario, chaos);
  std::cout << report.table();
  if (!report.all_passed()) {
    std::cerr << "mlecctl: " << report.failures() << " chaos case(s) failed\n";
    return 4;
  }
  return 0;
}

int cmd_serve(const Options& opt) {
  ThreadPool pool(opt.workers);  // 0 honors MLEC_THREADS, else hardware
  // Read-only getenv during single-threaded CLI startup.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* source = opt.workers > 0              ? "--workers"
                       : std::getenv("MLEC_THREADS") ? "MLEC_THREADS"
                                                      : "hardware";
  server::ServiceConfig config;
  config.state_dir = opt.state_dir;
  config.pool = &pool;
  config.runners = opt.runners;
  if (opt.shards > 0) config.shards = opt.shards;
  config.checkpoint_every = opt.checkpoint_every;

  server::EstimationService service(config);
  server::Server daemon(service, server::ServerConfig{opt.host, opt.port});
  service.start();
  daemon.start();
  std::cout << "mlecd: " << pool.size() << " pool workers (" << source << "), "
            << opt.runners << " campaign runners, " << config.shards
            << " shards per campaign\n"
            << "mlecd: state "
            << (opt.state_dir.empty() ? std::string("in-memory (no resume)")
                                      : "dir " + opt.state_dir)
            << "\nmlecd: listening on " << opt.host << ":" << daemon.port()
            << std::endl;
  daemon.wait_shutdown();
  std::cout << "mlecd: shutdown requested, checkpointing campaigns" << std::endl;
  daemon.stop();
  service.stop();
  return 0;
}

/// Render a wire Estimate for humans; the JSON path prints raw responses.
void print_wire_estimate(const json::Value& value) {
  const Estimate est = server::estimate_from_json(value);
  Table t({"quantity", "value"});
  t.add_row({"PDL", Table::num(est.pdl, 4)});
  t.add_row({"PDL 95% CI", Table::num(est.pdl_lo, 4) + " .. " + Table::num(est.pdl_hi, 4)});
  t.add_row({"durability (nines)", Table::num(est.nines, 2)});
  t.add_row({"samples", std::to_string(est.samples)});
  if (est.degraded) t.add_row({"degraded", est.degrade_note});
  std::cout << t.to_ascii("estimate, method " + est.method);
}

/// One-shot request helper shared by the client subcommands: send, check
/// ok, return the response (exits via the caller on ok:false).
json::Value server_roundtrip(const Options& opt, const json::Value& req, int& rc) {
  server::Client client(opt.host, opt.port);
  const json::Value resp = client.request(req);
  rc = resp.bool_or("ok", false) ? 0 : 1;
  return resp;
}

int cmd_submit(const Options& opt) {
  if (opt.methods.size() > 1) usage("submit takes a single --method");
  json::Value req = json::Value::object();
  req.set("op", "submit");
  // The daemon canonicalizes again; sending the parsed scenario keeps the
  // usual override flags (--code, --seed, ...) working for submissions.
  req.set("scenario_ini", format_scenario(opt.scenario));
  req.set("method", opt.methods.empty() ? std::string("dp") : opt.methods[0]);
  req.set("client", opt.client_name);
  req.set("priority", opt.priority);
  if (opt.target_rse > 0.0) req.set("rse_target", opt.target_rse);
  if (opt.wait) req.set("wait", true);

  int rc = 0;
  const json::Value resp = server_roundtrip(opt, req, rc);
  if (opt.json) {
    std::cout << json::dump(resp) << '\n';
    return rc;
  }
  if (rc != 0) {
    std::cerr << "mlecctl: " << resp.str_or("error", "submit failed") << '\n';
    return rc;
  }
  std::cout << "job " << resp.str_or("job", "-") << ", fingerprint "
            << resp.str_or("fingerprint", "-");
  if (resp.bool_or("cached", false)) std::cout << " (memo cache hit)";
  if (resp.bool_or("joined", false)) std::cout << " (joined identical in-flight job)";
  std::cout << '\n';
  if (const json::Value* est = resp.get("estimate"))
    print_wire_estimate(*est);
  else if (opt.wait)
    std::cout << "final state: " << resp.str_or("state", "?") << '\n';
  return 0;
}

int cmd_status(const Options& opt) {
  json::Value req = json::Value::object();
  req.set("op", "status");
  int rc = 0;
  const json::Value resp = server_roundtrip(opt, req, rc);
  if (opt.json) {
    std::cout << json::dump(resp) << '\n';
    return rc;
  }
  if (rc != 0) {
    std::cerr << "mlecctl: " << resp.str_or("error", "status failed") << '\n';
    return rc;
  }
  Table jobs({"job", "client", "method", "priority", "state", "progress", "rse"});
  if (const json::Value* list = resp.get("jobs")) {
    for (const json::Value& j : list->as_array()) {
      const std::string total = j.str_or("units_total", "0");
      jobs.add_row({j.str_or("id", "-"), j.str_or("client", "-"), j.str_or("method", "-"),
                    j.str_or("priority", "-"), j.str_or("state", "-"),
                    total == "0" ? "-" : j.str_or("units_done", "0") + "/" + total,
                    Table::num(j.num_or("rse", 0.0), 4)});
    }
  }
  std::cout << jobs.to_ascii("mlecd jobs, " + opt.host + ":" + std::to_string(opt.port));
  Table accounting({"counter", "value"});
  if (const json::Value* counters = resp.get("counters"))
    for (const auto& [key, value] : counters->as_object())
      accounting.add_row({key, value.as_string()});
  if (const json::Value* spent = resp.get("spent_by_client"))
    for (const auto& [client, tokens] : spent->as_object())
      accounting.add_row({"spent[" + client + "]", tokens.as_string()});
  std::cout << accounting.to_ascii("counters and fair-share spend");
  return 0;
}

int cmd_watch(const Options& opt) {
  if (opt.positional.size() != 1) usage("watch needs: mlecctl watch <job-id>");
  json::Value req = json::Value::object();
  req.set("op", "watch");
  req.set("job", opt.positional[0]);
  server::Client client(opt.host, opt.port);
  int rc = 0;
  client.stream(req, [&](const json::Value& event) {
    if (opt.json) {
      std::cout << json::dump(event) << std::endl;
    } else if (event.get("error") != nullptr) {
      std::cerr << "mlecctl: " << event.str_or("error", "watch failed") << '\n';
      rc = 1;
      return false;
    } else {
      const std::string kind = event.str_or("event", "?");
      std::cout << event.str_or("job", "-") << ": " << kind;
      if (kind == "progress")
        std::cout << ", " << event.str_or("units_done", "0") << "/"
                  << event.str_or("units_total", "0") << " units, rse "
                  << Table::num(event.num_or("rse", 0.0), 4);
      std::cout << std::endl;
      if (kind == "done" || kind == "cancelled" || kind == "failed" || kind == "interrupted") {
        if (const json::Value* est = event.get("estimate")) print_wire_estimate(*est);
        rc = kind == "done" ? 0 : 1;
        return false;
      }
    }
    return true;
  });
  return rc;
}

int cmd_cancel(const Options& opt) {
  if (opt.positional.size() != 1) usage("cancel needs: mlecctl cancel <job-id>");
  json::Value req = json::Value::object();
  req.set("op", "cancel");
  req.set("job", opt.positional[0]);
  int rc = 0;
  const json::Value resp = server_roundtrip(opt, req, rc);
  if (opt.json) {
    std::cout << json::dump(resp) << '\n';
    return rc;
  }
  if (rc != 0) {
    std::cerr << "mlecctl: " << resp.str_or("error", "cancel failed") << '\n';
    return rc;
  }
  const bool cancelled = resp.bool_or("cancelled", false);
  std::cout << opt.positional[0] << (cancelled ? ": cancelled" : ": already terminal or unknown")
            << '\n';
  return cancelled ? 0 : 1;
}

int cmd_shutdown(const Options& opt) {
  json::Value req = json::Value::object();
  req.set("op", "shutdown");
  int rc = 0;
  server_roundtrip(opt, req, rc);
  if (rc == 0) std::cout << "mlecd at " << opt.host << ":" << opt.port << " shutting down\n";
  return rc;
}

int cmd_advise(const Options& opt) {
  const auto rec = advise(opt.profile);
  std::cout << "recommendation: " << rec.summary() << '\n';
  for (const auto& line : rec.rationale) std::cout << "  - " << line << '\n';
  return 0;
}

int cmd_ec() {
  // active_backend() resolves MLEC_EC_BACKEND on first use and throws on an
  // unknown or unsupported value; report that and exit non-zero rather than
  // printing a matrix that claims some other backend is in charge.
  // Read-only getenv during single-threaded CLI startup.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* forced = std::getenv("MLEC_EC_BACKEND");
  ec::Backend active;
  try {
    active = ec::active_backend();
  } catch (const std::exception& e) {
    std::cerr << "mlecctl: " << e.what() << '\n';
    return 1;
  }
  const ec::Backend detected = ec::detect_backend();
  std::cout << "erasure-coding data plane (src/ec/):\n"
            << "  active backend:   " << ec::to_string(active) << '\n'
            << "  detected best:    " << ec::to_string(detected) << '\n'
            << "  forced via env:   " << (forced && *forced ? forced : "(unset)") << '\n'
            << '\n'
            << "  backend   built  host   usable  state\n";
  for (int i = 0; i < ec::kBackendCount; ++i) {
    const auto b = static_cast<ec::Backend>(i);
    const bool built = ec::backend_built(b);
    const bool host = ec::backend_host_supported(b);
    std::string state;
    if (b == active) state = "active";
    if (b == detected) state += state.empty() ? "detected-best" : ", detected-best";
    std::cout << "  " << std::left << std::setw(10) << ec::to_string(b) << std::setw(7)
              << (built ? "yes" : "no") << std::setw(7) << (host ? "yes" : "no") << std::setw(8)
              << (ec::backend_supported(b) ? "yes" : "no") << state << '\n';
  }
  std::cout << "\n  force via env:    MLEC_EC_BACKEND=scalar|ssse3|avx2|avx512|gfni|auto\n"
            << "  (unknown or unsupported values fail instead of falling back)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "ec") return cmd_ec();
  try {
    const Options opt = parse_options(argc, argv);
    // Arm the fault-injection schedule before any command runs; the chaos
    // harness manages its own schedules and refuses to start with one armed.
    if (!opt.faults.empty()) fault::configure(opt.faults);
    if (command == "analyze") return cmd_analyze(opt);
    if (command == "estimate") return cmd_estimate(opt);
    if (command == "durability") return cmd_durability(opt);
    if (command == "burst") return cmd_burst(opt);
    if (command == "traffic") return cmd_traffic(opt);
    if (command == "repair") return cmd_repair(opt);
    if (command == "tradeoff") return cmd_tradeoff(opt);
    if (command == "simulate") return cmd_simulate(opt);
    if (command == "chaos") return cmd_chaos(opt);
    if (command == "serve") return cmd_serve(opt);
    if (command == "submit") return cmd_submit(opt);
    if (command == "status") return cmd_status(opt);
    if (command == "watch") return cmd_watch(opt);
    if (command == "cancel") return cmd_cancel(opt);
    if (command == "shutdown") return cmd_shutdown(opt);
    if (command == "advise") return cmd_advise(opt);
    if (command == "spec") {
      std::cout << example_spec();
      return 0;
    }
    if (command == "scenario") {
      std::cout << example_scenario();
      return 0;
    }
    usage(("unknown command " + command).c_str());
  } catch (const std::exception& e) {
    std::cerr << "mlecctl: " << e.what() << '\n';
    return 1;
  }
}
