// Figure 15: durability vs encoding throughput, MLEC C/D vs declustered
// LRC, all points at ~30% parity-space overhead.
#include <iostream>

#include "analysis/tradeoff.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const DurabilityEnv env;
  const OverheadBand band{};
  const bool measure = !fast_mode();

  std::cout << "# paper: Figure 15 — MLEC C/D vs LRC-Dp tradeoff (~30% overhead)\n\n";

  auto print_points = [](const std::string& title, const std::vector<TradeoffPoint>& points) {
    Table t({"config", "overhead_%", "nines", "encode_GBps"});
    for (const auto& pt : points)
      t.add_row({pt.label, Table::num(100 * pt.overhead, 1), Table::num(pt.nines, 1),
                 Table::num(pt.encode_gbps, 2)});
    std::cout << t.to_ascii(title) << '\n';
  };

  print_points("MLEC C/D (repair R_MIN)",
               mlec_tradeoff(env, MlecScheme::kCD, RepairMethod::kRepairMinimum, band, measure));
  print_points("LRC-Dp", lrc_tradeoff(env, band, measure));

  std::cout << "# paper findings: F#1 MLEC reaches high durability at higher encoding\n"
            << "# throughput (LRC needs many global parities for the same nines);\n"
            << "# F#2 the 30-minute detection time caps declustered durability — MLEC's\n"
            << "# two-level parities suffer less than LRC-Dp's one-level placement.\n";
  return 0;
}
