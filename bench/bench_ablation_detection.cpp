// Ablation: failure-detection time (the paper's §5.2.2 future work).
//
// "If failure detection time is reduced significantly (e.g., to 1 minute),
// LRC-Dp's durability could be similar or slightly better than MLEC" — this
// sweep runs that experiment: detection from 1 minute to 2 hours for MLEC
// C/D (R_MIN), D/D (R_MIN), LRC-Dp (14,2,4), and a (14+6) network-Dp SLEC.
#include <iostream>

#include "analysis/durability.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const auto code = MlecCode::paper_default();

  std::cout << "# ablation (paper §5.2.2 F#2 / future work): durability in nines vs\n"
            << "# failure-detection time\n\n";
  Table t({"detection", "MLEC_C/D", "MLEC_D/D", "LRC-Dp(14,2,4)", "Net-Dp(14+6)"});
  const struct {
    const char* label;
    double hours;
  } sweeps[] = {{"1 min", 1.0 / 60}, {"5 min", 5.0 / 60},  {"15 min", 0.25},
                {"30 min", 0.5},     {"1 h", 1.0},         {"2 h", 2.0}};
  for (const auto& sweep : sweeps) {
    DurabilityEnv env;
    env.detection_hours = sweep.hours;
    t.add_row(
        {sweep.label,
         Table::num(
             mlec_durability(env, code, MlecScheme::kCD, RepairMethod::kRepairMinimum).nines, 1),
         Table::num(
             mlec_durability(env, code, MlecScheme::kDD, RepairMethod::kRepairMinimum).nines, 1),
         Table::num(lrc_durability(env, {14, 2, 4}).nines, 1),
         Table::num(
             slec_durability(env, {14, 6}, {SlecDomain::kNetwork, Placement::kDeclustered}).nines,
             1)});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# expectation: every declustered system gains nines as detection\n"
            << "# shrinks; the one-level placements (LRC-Dp, Net-Dp SLEC) gain the\n"
            << "# most and close on (or pass) MLEC near 1 minute — while at the\n"
            << "# paper's 30 minutes MLEC's two-level parities keep the lead.\n";
  return 0;
}
