// Ablation: the repair-bandwidth budget (the paper's §3 "capped at 20% of
// raw bandwidth" policy, made a knob).
//
// Operators trade repair speed against foreground I/O interference. This
// sweep shows how the reserved fraction moves Table 2's bandwidths and the
// end-to-end durability of the four schemes (R_MIN).
#include <iostream>

#include "analysis/durability.hpp"
#include "analysis/repair_time.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const auto code = MlecCode::paper_default();

  std::cout << "# ablation: repair-bandwidth reservation (paper default 20%)\n\n";
  Table t({"repair_%", "disk_MBps", "pool_Dp_MBps", "C/C", "C/D", "D/C", "D/D"});
  for (double fraction : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    DurabilityEnv env;
    env.bw.repair_fraction = fraction;
    const RepairTimeModel model(env.dc, env.bw, code);
    std::vector<std::string> row{
        Table::num(100 * fraction, 0),
        Table::num(env.bw.effective_disk_mbps(), 0),
        Table::num(model.table2_row(MlecScheme::kDD).pool_mbps, 0)};
    for (auto scheme : kAllMlecSchemes)
      row.push_back(Table::num(
          mlec_durability(env, code, scheme, RepairMethod::kRepairMinimum).nines, 1));
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# expectation: nines rise with the budget but with diminishing returns —\n"
            << "# the 30-minute detection floor caps what faster repair can buy\n"
            << "# (the same effect that limits R_MIN's gain in Figure 10 F#3).\n";
  return 0;
}
