// Figure 8: cross-rack network traffic of the four repair methods on the
// four MLEC schemes when one local pool fails catastrophically (p_l+1
// simultaneous disk failures).
#include <iostream>

#include "analysis/traffic.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const auto dc = DataCenterConfig::paper_default();
  const auto code = MlecCode::paper_default();

  std::cout << "# paper: Figure 8 — cross-rack repair traffic (TB)\n\n";
  Table t({"scheme", "R_ALL", "R_FCO", "R_HYB", "R_MIN"});
  for (auto scheme : kAllMlecSchemes) {
    std::vector<std::string> row{to_string(scheme)};
    for (auto method : kAllRepairMethods)
      row.push_back(Table::num(
          catastrophic_injection_traffic(dc, code, scheme, method).cross_rack_tb(), 2));
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# paper values: R_ALL 4400 (*/C) / 26400 (*/D); R_FCO 880;\n"
            << "# R_HYB 880 (*/C) / 3.1 (*/D); R_MIN >= 4x below R_HYB (F#4).\n\n";

  std::cout << "# local (intra-rack) traffic of the hybrid/minimum methods (TB)\n";
  Table local({"scheme", "R_HYB_local", "R_MIN_local"});
  for (auto scheme : kAllMlecSchemes) {
    local.add_row(
        {to_string(scheme),
         Table::num(catastrophic_injection_traffic(dc, code, scheme,
                                                   RepairMethod::kRepairHybrid)
                        .local_tb(),
                    2),
         Table::num(catastrophic_injection_traffic(dc, code, scheme,
                                                   RepairMethod::kRepairMinimum)
                        .local_tb(),
                    2)});
  }
  std::cout << local.to_ascii();
  return 0;
}
