// Figure 11: single-core encoding throughput for (k+p) SLEC.
//
// The paper measured Intel ISA-L on a Xeon Gold 6240R; this harness runs
// the repository's own GF(2^8) Reed-Solomon coder on the local CPU (see
// DESIGN.md "Substitutions"). Absolute numbers differ; the k/p scaling
// shape is the reproduction target.
#include <cstring>
#include <iostream>
#include <vector>

#include "analysis/encoding.hpp"
#include "ec/backend.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mlec;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const double seconds = fast_mode() ? 0.01 : (full ? 0.25 : 0.05);

  const std::vector<std::size_t> ks = full
      ? std::vector<std::size_t>{1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 35, 40, 45, 50}
      : std::vector<std::size_t>{1, 2, 5, 10, 20, 30, 40, 50};
  const std::vector<std::size_t> ps =
      full ? std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
           : std::vector<std::size_t>{1, 2, 4, 6, 8, 10};

  std::cout << "# paper: Figure 11 — single-core encoding throughput (MB/s of data),\n"
            << "# 128 KB chunks, rows = p (parities), columns = k (data chunks)\n"
            << "# ec backend: " << ec::to_string(ec::active_backend())
            << " (force with MLEC_EC_BACKEND=scalar|ssse3|avx2)\n\n";
  std::vector<std::string> header{"p\\k"};
  for (auto k : ks) header.push_back(std::to_string(k));
  Table t(header);
  for (auto p : ps) {
    std::vector<std::string> row{std::to_string(p)};
    for (auto k : ks)
      row.push_back(Table::num(measure_encoding_throughput(k, p, 128.0, seconds).data_mbps, 0));
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# paper shape: throughput decreases with p (more parity math) and\n"
            << "# with k (wider stripes stress the cache).\n";
  return 0;
}
