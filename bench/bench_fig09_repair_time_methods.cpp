// Figure 9: repair time of a catastrophic local failure, split into the
// network-level (-N) and local (-L) components, per repair method and
// MLEC scheme.
#include <iostream>

#include "analysis/repair_time.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const RepairTimeModel model(DataCenterConfig::paper_default(),
                              BandwidthConfig::paper_default(), MlecCode::paper_default());

  std::cout << "# paper: Figure 9 — repair time by method (hours; N=network, L=local)\n\n";
  Table t({"scheme", "R_ALL-N", "R_FCO-N", "R_HYB-N", "R_HYB-L", "R_MIN-N", "R_MIN-L"});
  for (auto scheme : kAllMlecSchemes) {
    const auto rall = model.method_repair_time(scheme, RepairMethod::kRepairAll);
    const auto rfco = model.method_repair_time(scheme, RepairMethod::kRepairFailedOnly);
    const auto rhyb = model.method_repair_time(scheme, RepairMethod::kRepairHybrid);
    const auto rmin = model.method_repair_time(scheme, RepairMethod::kRepairMinimum);
    t.add_row({to_string(scheme), Table::num(rall.network_hours, 1),
               Table::num(rfco.network_hours, 1), Table::num(rhyb.network_hours, 1),
               Table::num(rhyb.local_hours, 1), Table::num(rmin.network_hours, 1),
               Table::num(rmin.local_hours, 1)});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# paper findings: F#1 R_FCO cuts network time 5-30x; F#2 R_HYB trades\n"
            << "# network for local time (total ~= R_FCO on C/D); F#3 R_MIN exits the\n"
            << "# catastrophic state fastest but takes longer to finish locally.\n";
  return 0;
}
