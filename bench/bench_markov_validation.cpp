// Methodology cross-validation (paper §3, §6.2): the paper stresses that
// its strategies verify each other. This harness compares, at regimes hot
// enough for raw Monte Carlo:
//   1. the split estimator (stage-1 pool simulation) vs the markov and dp
//      estimators on one shared Scenario of clustered (4+2) pools;
//   2. the two-level (pool-as-a-disk) Markov model vs the chunk-exact
//      full-system simulator under R_ALL.
#include <iostream>

#include "core/estimator.hpp"
#include "math/markov.hpp"
#include "sim/system_sim.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace mlec;
  const std::uint64_t scale = fast_mode() ? 1 : 4;

  std::cout << "# paper: §3 'Mathematical model' — simulation vs Markov cross-checks\n\n";

  {
    // Clustered (4+2) pools expressed as MLEC with a trivial (1+0) network
    // code, so the full estimator stack applies. 60 TB disks keep rebuilds
    // slow enough for catastrophes to be observable at these AFRs.
    Scenario sc;
    sc.system.dc.racks = 3;
    sc.system.dc.enclosures_per_rack = 1;
    sc.system.dc.disks_per_enclosure = 6;
    sc.system.dc.disk_capacity_tb = 60.0;
    sc.system.code = {{1, 0}, {4, 2}};
    sc.system.scheme = MlecScheme::kCC;
    sc.system.repair = RepairMethod::kRepairAll;
    sc.split_missions = 3000 * scale;
    const Estimator& split = *find_estimator("split");
    const Estimator& markov = *find_estimator("markov");

    Table t({"AFR_%", "split_cat_per_sys_yr", "markov_cat_per_sys_yr", "missions"});
    for (double afr : {0.3, 0.6, 0.9}) {
      sc.system.afr = afr;
      sc.seed = static_cast<std::uint64_t>(afr * 1000);
      const Estimate s = split.estimate(sc);
      const Estimate m = markov.estimate(sc);
      t.add_row({Table::num(100 * afr, 0), Table::num(s.cat_rate_per_year, 3),
                 Table::num(m.cat_rate_per_year, 3), std::to_string(s.samples)});
    }
    std::cout << t.to_ascii("(1) clustered (4+2) pools: catastrophic-failure rate, "
                            "split (simulated stage 1) vs markov")
              << '\n';
  }

  {
    SystemSimConfig cfg;
    cfg.dc.racks = 3;
    cfg.dc.enclosures_per_rack = 1;
    cfg.dc.disks_per_enclosure = 3;
    cfg.dc.disk_capacity_tb = 50.0;
    cfg.code = {{2, 1}, {2, 1}};
    cfg.scheme = MlecScheme::kCC;
    cfg.stripes_per_network_pool = 2;
    cfg.failures.afr = 0.9;
    cfg.method = RepairMethod::kRepairAll;
    const auto sim = simulate_system(cfg, 2000 * scale, 7);

    MlecMarkovParams params;
    params.kn = 2;
    params.pn = 1;
    params.kl = 2;
    params.pl = 1;
    params.local_pool_disks = 3;
    params.disk_fail_rate = cfg.failures.afr / units::kHoursPerYear;
    params.disk_repair_rate = 1.0 / cfg.single_disk_repair_hours();
    params.pool_repair_rate = 1.0 / cfg.catastrophic_repair_hours(RepairMethod::kRepairAll);
    params.network_pools = 1;
    const auto markov = mlec_markov_mttdl(params);

    Table t({"quantity", "simulation", "markov"});
    t.add_row({"PDL over one year", Table::num(sim.pdl(), 4),
               Table::num(pdl_over_mission(markov.system_mttdl_hours, cfg.mission_hours), 4)});
    t.add_row({"catastrophic pool events", std::to_string(sim.catastrophic_pool_events),
               Table::num(static_cast<double>(cfg.mission_hours) /
                              markov.local_pool_mttf_hours * 3 * 2000 * scale,
                          0)});
    std::cout << t.to_ascii("(2) (2+1)/(2+1) C/C toy system, R_ALL, AFR 90%") << '\n';
  }

  std::cout << "# expectation: same order of magnitude in every row (the models differ\n"
            << "# in repair-time distribution assumptions, as the paper discusses).\n";
  return 0;
}
