// Methodology cross-validation (paper §3, §6.2): the paper stresses that
// its strategies verify each other. This harness compares, at regimes hot
// enough for raw Monte Carlo:
//   1. the stage-1 clustered-pool Markov closed form vs the event-driven
//      local-pool simulator;
//   2. the two-level (pool-as-a-disk) Markov model vs the chunk-exact
//      full-system simulator under R_ALL.
#include <iostream>

#include "math/markov.hpp"
#include "sim/local_pool_sim.hpp"
#include "sim/system_sim.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace mlec;
  const std::uint64_t scale = fast_mode() ? 1 : 4;

  std::cout << "# paper: §3 'Mathematical model' — simulation vs Markov cross-checks\n\n";

  {
    Table t({"AFR_%", "sim_cat_per_pool_yr", "markov_cat_per_pool_yr", "events"});
    for (double afr : {0.3, 0.6, 0.9}) {
      LocalPoolSimConfig cfg;
      cfg.code = {4, 2};
      cfg.placement = Placement::kClustered;
      cfg.pool_disks = 6;
      cfg.afr = afr;
      cfg.disk_capacity_tb = 60.0;
      Rng rng(static_cast<std::uint64_t>(afr * 1000));
      const auto sim = simulate_local_pool(cfg, 3000 * scale, rng);

      const double lambda = afr / units::kHoursPerYear;
      const double repair_hours =
          cfg.detection_hours +
          units::hours_to_move(cfg.disk_capacity_tb, cfg.bandwidth.effective_disk_mbps());
      const double markov =
          units::kHoursPerYear / erasure_set_mttdl(4, 2, lambda, 1.0 / repair_hours, true);
      t.add_row({Table::num(100 * afr, 0), Table::num(sim.catastrophe_rate_per_year(), 3),
                 Table::num(markov, 3), std::to_string(sim.catastrophes)});
    }
    std::cout << t.to_ascii("(1) clustered (4+2) pool: catastrophic-failure rate") << '\n';
  }

  {
    SystemSimConfig cfg;
    cfg.dc.racks = 3;
    cfg.dc.enclosures_per_rack = 1;
    cfg.dc.disks_per_enclosure = 3;
    cfg.dc.disk_capacity_tb = 50.0;
    cfg.code = {{2, 1}, {2, 1}};
    cfg.scheme = MlecScheme::kCC;
    cfg.stripes_per_network_pool = 2;
    cfg.failures.afr = 0.9;
    cfg.method = RepairMethod::kRepairAll;
    const auto sim = simulate_system(cfg, 2000 * scale, 7);

    MlecMarkovParams params;
    params.kn = 2;
    params.pn = 1;
    params.kl = 2;
    params.pl = 1;
    params.local_pool_disks = 3;
    params.disk_fail_rate = cfg.failures.afr / units::kHoursPerYear;
    params.disk_repair_rate = 1.0 / cfg.single_disk_repair_hours();
    params.pool_repair_rate = 1.0 / cfg.catastrophic_repair_hours(RepairMethod::kRepairAll);
    params.network_pools = 1;
    const auto markov = mlec_markov_mttdl(params);

    Table t({"quantity", "simulation", "markov"});
    t.add_row({"PDL over one year", Table::num(sim.pdl(), 4),
               Table::num(pdl_over_mission(markov.system_mttdl_hours, cfg.mission_hours), 4)});
    t.add_row({"catastrophic pool events", std::to_string(sim.catastrophic_pool_events),
               Table::num(static_cast<double>(cfg.mission_hours) /
                              markov.local_pool_mttf_hours * 3 * 2000 * scale,
                          0)});
    std::cout << t.to_ascii("(2) (2+1)/(2+1) C/C toy system, R_ALL, AFR 90%") << '\n';
  }

  std::cout << "# expectation: same order of magnitude in every row (the models differ\n"
            << "# in repair-time distribution assumptions, as the paper discusses).\n";
  return 0;
}
