// §5.1.4: annual cross-rack repair traffic, network SLEC vs MLEC.
//
// The paper reports no figure: a (7+3) network SLEC moves hundreds of TB
// per day across racks; MLEC moves a few TB per thousands of years.
#include <iostream>

#include "analysis/durability.hpp"
#include "analysis/traffic.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const auto dc = DataCenterConfig::paper_default();
  const DurabilityEnv env;
  const auto code = MlecCode::paper_default();

  std::cout << "# paper: §5.1.4 — repair network traffic, SLEC vs MLEC (1% AFR)\n\n";
  Table t({"system", "repairs_per_year", "cross_rack_TB_per_year", "TB_per_day"});

  for (const SlecCode slec : {SlecCode{7, 3}, SlecCode{14, 6}, SlecCode{28, 12}}) {
    const auto a = slec_network_annual_traffic(dc, slec, env.afr);
    t.add_row({"network SLEC " + slec.notation(), Table::num(a.failures_per_year, 0),
               Table::num(a.cross_rack_tb_per_year, 0), Table::num(a.cross_rack_tb_per_day(), 1)});
  }

  for (auto method : {RepairMethod::kRepairAll, RepairMethod::kRepairMinimum}) {
    const auto d = mlec_durability(env, code, MlecScheme::kCD, method);
    const auto a = mlec_annual_traffic(dc, code, MlecScheme::kCD, method,
                                       d.system_cat_rate_per_year);
    t.add_row({"MLEC C/D " + code.notation() + " " + to_string(method),
               Table::num(a.failures_per_year, 3), Table::num(a.cross_rack_tb_per_year, 3),
               Table::num(a.cross_rack_tb_per_day(), 3)});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# paper: network SLEC needs hundreds of TB/day; MLEC a few TB per\n"
            << "# thousands of years (local repairs absorb ordinary disk failures).\n";
  return 0;
}
