// Figure 5: PDL of the four MLEC schemes under correlated failure bursts.
//
// A (10+2)/(17+3) MLEC over the paper's 57,600-disk data center; y
// simultaneous disk failures scattered over x racks. Cells render as log10
// buckets matching the paper's -6..0 color scale.
//
// Flags: --full    fine grid (step 2) and more trials
//        MLEC_FAST coarse smoke grid
#include <cstring>
#include <iostream>

#include "analysis/burst_pdl.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace mlec;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  BurstPdlConfig cfg;
  cfg.trials_per_cell = fast_mode() ? 200 : (full ? 4000 : 1200);
  const std::size_t step = fast_mode() ? 12 : (full ? 2 : 6);
  const BurstPdlEngine engine(cfg);
  const auto code = MlecCode::paper_default();

  std::cout << "# paper: Figure 5 — PDL under correlated failures, "
            << code.notation() << " MLEC, " << cfg.dc.total_disks() << " disks\n";
  std::cout << "# grid step " << step << ", " << cfg.trials_per_cell
            << " conditional-MC trials/cell\n\n";

  for (auto scheme : kAllMlecSchemes) {
    const auto map = engine.mlec_heatmap(code, scheme, step, 60, 60, &global_pool());
    std::cout << HeatmapRenderer::render(map.values, map.y_labels, map.x_labels,
                                         "PDL heatmap — " + to_string(scheme) +
                                             " (y: failed disks, x: affected racks)")
              << '\n';
  }
  std::cout << "# paper findings to check: F#3 zero-PDL band (x <= 2; y <= x+8), "
               "F#4 hot column at x = 3,\n"
            << "# F#5/F#6 C/D and D/C worse than C/C, F#7 D/D most lossy.\n";
  return 0;
}
