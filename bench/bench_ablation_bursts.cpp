// Ablation: scheme choice vs correlated-burst frequency (paper §6.1,
// takeaways 3-4 made quantitative).
//
// Overlays a burst climate (30 simultaneous failures over 3 racks, the
// paper's worst-case topology) on the independent-failure durability
// pipeline and sweeps the burst rate. C/D wins in quiet climates; C/C's
// burst tolerance takes over as bursts become routine.
#include <iostream>

#include "analysis/burst_pdl.hpp"
#include "analysis/durability.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const DurabilityEnv env;
  const auto code = MlecCode::paper_default();
  BurstPdlConfig cfg;
  cfg.trials_per_cell = fast_mode() ? 300 : 3000;
  const BurstPdlEngine engine(cfg);

  std::cout << "# ablation (paper §6.1 takeaways 3-4): durability in nines vs burst\n"
            << "# frequency; bursts = 30 failures over 3 racks; repair R_MIN\n\n";

  Table t({"bursts_per_year", "C/C", "C/D", "D/C", "D/D", "winner"});
  for (double rate : {0.0, 0.001, 0.01, 0.1, 1.0, 10.0}) {
    const BurstClimate climate{rate, 3, 30};
    std::vector<double> nines;
    for (auto scheme : kAllMlecSchemes)
      nines.push_back(mlec_durability_with_bursts(env, code, scheme,
                                                  RepairMethod::kRepairMinimum, climate, engine)
                          .nines);
    const std::size_t best =
        static_cast<std::size_t>(std::max_element(nines.begin(), nines.end()) - nines.begin());
    t.add_row({Table::num(rate, 3), Table::num(nines[0], 1), Table::num(nines[1], 1),
               Table::num(nines[2], 1), Table::num(nines[3], 1),
               to_string(kAllMlecSchemes[best])});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# expectation: C/D (or D/D) leads at low burst rates; the crossover to\n"
            << "# C/C marks the 'systems detecting frequent bursts should use C/C' rule.\n";
  return 0;
}
