// Ablation: declustered-layout design (the substrate behind local-Dp).
//
// The paper's Table 2 assumes an ideally balanced declustered pool. This
// harness generates concrete layouts with three strategies, reports the
// balance metrics that assumption rests on, and shows how the single-disk
// rebuild bandwidth grows from the clustered 40 MB/s toward the ideal
// (n-1)*40/(k+1) as the pool widens — the paper's 6x Figure 6a effect.
#include <iostream>

#include "placement/declustered.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const std::size_t width = 20, k = 17;  // the paper's (17+3)
  const double disk_mbps = 40.0;         // 20% of 200 MB/s

  std::cout << "# ablation: declustered layout strategy and pool size, (17+3) stripes\n\n";

  auto strategy_name = [](DeclusterStrategy s) {
    switch (s) {
      case DeclusterStrategy::kRoundRobin: return "round-robin";
      case DeclusterStrategy::kPseudorandom: return "pseudorandom";
      case DeclusterStrategy::kLowOverlap: return "low-overlap";
    }
    return "?";
  };

  Table t({"pool_disks", "strategy", "rebuild_MBps", "ideal_MBps", "fanout", "read_imbalance",
           "max_pair_overlap"});
  for (std::size_t pool : {20u, 40u, 60u, 120u}) {
    const double ideal =
        pool == width ? disk_mbps
                      : static_cast<double>(pool - 1) * disk_mbps / static_cast<double>(k + 1);
    for (auto strategy : {DeclusterStrategy::kRoundRobin, DeclusterStrategy::kPseudorandom,
                          DeclusterStrategy::kLowOverlap}) {
      const std::size_t stripes = fast_mode() ? pool * 10 : pool * 40;
      const auto layout = make_declustered_layout(pool, width, stripes, strategy, 7);
      const auto q = analyze_layout(layout);
      t.add_row({std::to_string(pool), strategy_name(strategy),
                 Table::num(layout_rebuild_mbps(layout, k, disk_mbps), 0), Table::num(ideal, 0),
                 Table::num(q.mean_rebuild_fanout, 1), Table::num(q.read_imbalance, 2),
                 std::to_string(q.max_pair_overlap)});
    }
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# paper tie-in: at pool=120 the rebuild rate approaches Table 2's 264\n"
            << "# MB/s; at pool=20 (clustered) it collapses to the 40 MB/s spare-write\n"
            << "# bound. Low-overlap layouts trade a little rebuild balance for a\n"
            << "# smaller double-failure blast radius.\n";
  return 0;
}
