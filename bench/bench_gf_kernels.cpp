// Microbenchmarks for the GF(2^8)/Reed-Solomon kernels that power the
// Figure 11 study, now covering every dispatched ec backend.
//
// Two modes:
//   bench_gf_kernels [gbench flags]   google-benchmark tables, one series
//                                     per supported backend
//   bench_gf_kernels --json[=PATH]    self-timed sweep writing GB/s per
//                                     kernel x backend x buffer size to
//                                     PATH (default BENCH_ec_kernels.json),
//                                     the perf trajectory record
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "ec/backend.hpp"
#include "ec/codec.hpp"
#include "ec/decode.hpp"
#include "ec/kernels.hpp"
#include "ec/stream.hpp"
#include "gf/gf256.hpp"
#include "gf/rs.hpp"
#include "util/thread_pool.hpp"

namespace {

using mlec::gf::byte_t;

std::vector<mlec::ec::Backend> supported_backends() {
  std::vector<mlec::ec::Backend> out;
  for (int i = 0; i < mlec::ec::kBackendCount; ++i) {
    const auto b = static_cast<mlec::ec::Backend>(i);
    if (mlec::ec::backend_supported(b)) out.push_back(b);
  }
  return out;
}

std::vector<byte_t> pattern_buffer(std::size_t len, unsigned salt = 0) {
  std::vector<byte_t> buf(len);
  for (std::size_t i = 0; i < len; ++i) buf[i] = static_cast<byte_t>(i * 31 + 7 + salt * 131);
  return buf;
}

// --- google-benchmark registrations -----------------------------------------

void BM_MulAccFullTable(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  const auto src = pattern_buffer(len);
  std::vector<byte_t> dst(len);
  const auto table = mlec::gf::make_full_table(0x57);
  for (auto _ : state) {
    mlec::gf::mul_acc(table, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_MulAccFullTable)->Arg(4 << 10)->Arg(128 << 10)->Arg(1 << 20);

void BM_EcMulAcc(benchmark::State& state, mlec::ec::Backend backend) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  const auto src = pattern_buffer(len);
  std::vector<byte_t> dst(len);
  const auto table = mlec::ec::make_mul_table(0x57);
  const auto& k = mlec::ec::kernels_for(backend);
  for (auto _ : state) {
    k.mul_acc(table, src.data(), dst.data(), len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void BM_EcEncodeFused(benchmark::State& state, mlec::ec::Backend backend, std::size_t k,
                      std::size_t p) {
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  const mlec::gf::RsCode code(k, p);
  std::vector<std::vector<byte_t>> data, parity(p, std::vector<byte_t>(chunk));
  for (std::size_t i = 0; i < k; ++i) data.push_back(pattern_buffer(chunk, i));
  std::vector<const byte_t*> src(k);
  for (std::size_t i = 0; i < k; ++i) src[i] = data[i].data();
  std::vector<byte_t*> dst(p);
  for (std::size_t i = 0; i < p; ++i) dst[i] = parity[i].data();
  const auto& kern = mlec::ec::kernels_for(backend);
  const auto& plan = code.encode_plan();
  for (auto _ : state) {
    kern.dot(plan.tables(), k, p, src.data(), dst.data(), chunk, false);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * chunk));
}

void BM_RsEncode(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const std::size_t chunk = 128 << 10;
  const mlec::gf::RsCode code(k, p);
  std::vector<std::vector<byte_t>> data, parity(p, std::vector<byte_t>(chunk));
  for (std::size_t i = 0; i < k; ++i) data.push_back(pattern_buffer(chunk, i));
  for (auto _ : state) {
    code.encode(data, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * chunk));
}
BENCHMARK(BM_RsEncode)
    ->Args({10, 2})   // the paper's network code
    ->Args({17, 3})   // the paper's local code
    ->Args({28, 12})  // the paper's wide SLEC comparison point
    ->Args({50, 10});

void BM_RsDecode(benchmark::State& state) {
  const std::size_t k = 17, p = 3;
  const std::size_t chunk = 128 << 10;
  const mlec::gf::RsCode code(k, p);
  std::vector<std::vector<byte_t>> shards(k + p, std::vector<byte_t>(chunk));
  for (std::size_t i = 0; i < k; ++i) shards[i] = pattern_buffer(chunk, i);
  {
    std::vector<std::vector<byte_t>> data(shards.begin(), shards.begin() + k);
    std::vector<std::vector<byte_t>> parity(shards.begin() + k, shards.end());
    code.encode(data, parity);
    for (std::size_t i = 0; i < p; ++i) shards[k + i] = parity[i];
  }
  const std::vector<std::size_t> lost{0, 5, 11};
  for (auto _ : state) {
    code.decode(shards, lost);
    benchmark::DoNotOptimize(shards.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lost.size() * chunk));
}
BENCHMARK(BM_RsDecode);

// --- --json mode: the perf trajectory record --------------------------------

struct JsonResult {
  std::string kernel;
  std::string backend;
  std::size_t buffer_bytes;
  double gbps;
  double speedup_vs_scalar;
};

/// Run fn (processing `bytes` per call) until >= 20 ms elapsed; return GB/s.
template <typename Fn>
double measure_gbps(std::size_t bytes, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm caches / fault pages
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    if (dt >= 0.02)
      return static_cast<double>(bytes) * static_cast<double>(iters) / dt / 1e9;
    iters *= 4;
  }
}

int run_json_sweep(const std::string& path) {
  const std::vector<std::size_t> sizes{4 << 10, 64 << 10, 128 << 10, 1 << 20};
  // (10+2)/(17+3) are the paper's MLEC levels; (28+12) stresses high parity
  // counts; (50+10) is the wide-RS stripe served by CodeFamily::kRsWide.
  const std::vector<std::pair<std::size_t, std::size_t>> codes{
      {10, 2}, {17, 3}, {28, 12}, {50, 10}};
  std::vector<JsonResult> results;
  std::map<std::pair<std::string, std::size_t>, double> scalar_gbps;

  for (auto backend : supported_backends()) {
    const auto& kern = mlec::ec::kernels_for(backend);
    for (std::size_t len : sizes) {
      const auto src = pattern_buffer(len);
      std::vector<byte_t> dst(len);
      const auto table = mlec::ec::make_mul_table(0x57);
      for (const char* name : {"mul_acc", "mul_assign"}) {
        const bool acc = std::strcmp(name, "mul_acc") == 0;
        const double gbps = measure_gbps(len, [&] {
          (acc ? kern.mul_acc : kern.mul_assign)(table, src.data(), dst.data(), len);
        });
        const auto key = std::make_pair(std::string(name), len);
        if (backend == mlec::ec::Backend::kScalar) scalar_gbps[key] = gbps;
        results.push_back({name, mlec::ec::to_string(backend), len, gbps,
                           scalar_gbps.count(key) ? gbps / scalar_gbps[key] : 0.0});
      }
      for (auto [k, p] : codes) {
        const mlec::gf::RsCode code(k, p);
        std::vector<std::vector<byte_t>> data, parity(p, std::vector<byte_t>(len));
        for (std::size_t i = 0; i < k; ++i) data.push_back(pattern_buffer(len, i));
        std::vector<const byte_t*> sp(k);
        for (std::size_t i = 0; i < k; ++i) sp[i] = data[i].data();
        std::vector<byte_t*> dp(p);
        for (std::size_t i = 0; i < p; ++i) dp[i] = parity[i].data();
        const auto& plan = code.encode_plan();
        const std::string name = "encode_" + std::to_string(k) + "x" + std::to_string(p);
        const double gbps = measure_gbps(k * len, [&] {
          kern.dot(plan.tables(), k, p, sp.data(), dp.data(), len, false);
        });
        const auto key = std::make_pair(name, len);
        if (backend == mlec::ec::Backend::kScalar) scalar_gbps[key] = gbps;
        results.push_back({name, mlec::ec::to_string(backend), len, gbps,
                           scalar_gbps.count(key) ? gbps / scalar_gbps[key] : 0.0});

        // Decode: lose the first p DATA shards (worst case — every lost row
        // is a full inverted-matrix dot over the k survivors) and run the
        // fused DecodePlan under this backend. GB/s counts survivor source
        // bytes, mirroring the encode rows.
        std::vector<std::size_t> lost(p);
        for (std::size_t i = 0; i < p; ++i) lost[i] = i;
        const auto dplan = code.decode_plan(lost);
        std::vector<std::vector<byte_t>> shards = data;
        for (std::size_t i = 0; i < p; ++i) shards.push_back(parity[i]);
        std::vector<byte_t*> ptrs(k + p);
        for (std::size_t i = 0; i < k + p; ++i) ptrs[i] = shards[i].data();
        const std::string dname = "decode_" + std::to_string(k) + "x" + std::to_string(p);
        mlec::ec::ScopedBackend scope(backend);
        const double dgbps =
            measure_gbps(k * len, [&] { mlec::ec::decode(*dplan, ptrs.data(), len); });
        const auto dkey = std::make_pair(dname, len);
        if (backend == mlec::ec::Backend::kScalar) scalar_gbps[dkey] = dgbps;
        results.push_back({dname, mlec::ec::to_string(backend), len, dgbps,
                           scalar_gbps.count(dkey) ? dgbps / scalar_gbps[dkey] : 0.0});
      }
    }
  }

  // --- memory-bandwidth ceiling and the threaded decode against it ----------
  // Both rows count bytes MOVED (reads + writes), not source bytes: that is
  // the unit a bandwidth ceiling is quoted in, and the unit in which a
  // memory-bound decode can at best match memcpy. The ceiling is the better
  // of memcpy and a STREAM-triad-style pass.
  double ceiling_gbps = 0.0;
  double decode_parallel_gbps = 0.0;
  double fraction_of_ceiling = 0.0;
  std::size_t pool_threads = 0;
  {
    const std::size_t big = 64 << 20;
    std::vector<byte_t> a = pattern_buffer(big), b = pattern_buffer(big, 1), c(big);
    const double memcpy_gbps =
        measure_gbps(2 * big, [&] { std::memcpy(c.data(), a.data(), big); });
    const double triad_gbps = measure_gbps(3 * big, [&] {
      for (std::size_t i = 0; i < big; ++i)
        c[i] = static_cast<byte_t>(a[i] ^ (b[i] << 1));
    });
    ceiling_gbps = std::max(memcpy_gbps, triad_gbps);
    results.push_back({"memcpy_bandwidth", "memory", big, memcpy_gbps, 0.0});
    results.push_back({"stream_triad_bandwidth", "memory", big, triad_gbps, 0.0});

    // decode_parallel over the paper's 10+2 with both parities' worth of
    // data shards lost, 16 MiB shards, default pool (MLEC_THREADS or
    // hardware_concurrency), NUMA-aware slicing. Bytes moved per pass:
    // k survivor reads + |lost| writes per byte position.
    const std::size_t k = 10, p = 2, len = 16 << 20;
    const mlec::gf::RsCode code(k, p);
    std::vector<std::vector<byte_t>> shards;
    for (std::size_t i = 0; i < k; ++i) shards.push_back(pattern_buffer(len, i));
    {
      std::vector<std::vector<byte_t>> data(shards.begin(), shards.end());
      std::vector<std::vector<byte_t>> parity(p, std::vector<byte_t>(len));
      code.encode(data, parity);
      for (auto& q : parity) shards.push_back(std::move(q));
    }
    const std::vector<std::size_t> lost{0, 1};
    mlec::ThreadPool pool;
    pool_threads = pool.size();
    decode_parallel_gbps = measure_gbps((k + lost.size()) * len, [&] {
      code.decode_parallel(shards, lost, pool);
    });
    fraction_of_ceiling = ceiling_gbps > 0 ? decode_parallel_gbps / ceiling_gbps : 0.0;
    results.push_back({"decode_parallel_10x2", mlec::ec::to_string(mlec::ec::active_backend()),
                       len, decode_parallel_gbps, 0.0});
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"detected_backend\": \"%s\",\n",
               mlec::ec::to_string(mlec::ec::detect_backend()));
  std::fprintf(f,
               "  \"unit\": \"GB/s of source data, single thread (bandwidth and "
               "decode_parallel rows: GB/s of bytes moved)\",\n");
  std::fprintf(f, "  \"bandwidth_ceiling_gbps\": %.3f,\n", ceiling_gbps);
  std::fprintf(f, "  \"decode_parallel_gbps\": %.3f,\n", decode_parallel_gbps);
  std::fprintf(f, "  \"decode_parallel_threads\": %zu,\n", pool_threads);
  std::fprintf(f, "  \"decode_parallel_fraction_of_ceiling\": %.3f,\n", fraction_of_ceiling);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"backend\": \"%s\", \"buffer_bytes\": %zu, "
                 "\"gbps\": %.3f, \"speedup_vs_scalar\": %.2f}%s\n",
                 r.kernel.c_str(), r.backend.c_str(), r.buffer_bytes, r.gbps,
                 r.speedup_vs_scalar, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu results to %s\n", results.size(), path.c_str());
  std::printf("bandwidth ceiling %.2f GB/s; decode_parallel %.2f GB/s (%zu threads) = %.0f%% of ceiling\n",
              ceiling_gbps, decode_parallel_gbps, pool_threads, fraction_of_ceiling * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return run_json_sweep(eq != nullptr ? eq + 1 : "BENCH_ec_kernels.json");
    }
  }
  for (auto backend : supported_backends()) {
    const std::string suffix = mlec::ec::to_string(backend);
    auto* acc = benchmark::RegisterBenchmark(("BM_EcMulAcc/" + suffix).c_str(),
                                             [backend](benchmark::State& s) {
                                               BM_EcMulAcc(s, backend);
                                             });
    acc->Arg(4 << 10)->Arg(128 << 10)->Arg(1 << 20);
    for (auto [k, p] : {std::pair<std::size_t, std::size_t>{10, 2}, {17, 3}, {28, 12}}) {
      auto* enc = benchmark::RegisterBenchmark(
          ("BM_EcEncodeFused/" + suffix + "/" + std::to_string(k) + "x" + std::to_string(p))
              .c_str(),
          [backend, k = k, p = p](benchmark::State& s) { BM_EcEncodeFused(s, backend, k, p); });
      enc->Arg(128 << 10);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
