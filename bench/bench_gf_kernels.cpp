// google-benchmark microbenchmarks for the GF(2^8)/Reed-Solomon kernels that
// power the Figure 11 study.
#include <benchmark/benchmark.h>

#include <vector>

#include "gf/gf256.hpp"
#include "gf/rs.hpp"

namespace {

using mlec::gf::byte_t;

void BM_MulAcc(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  std::vector<byte_t> src(len), dst(len);
  for (std::size_t i = 0; i < len; ++i) src[i] = static_cast<byte_t>(i * 31 + 7);
  const auto table = mlec::gf::make_mul_table(0x57);
  for (auto _ : state) {
    mlec::gf::mul_acc(table, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_MulAcc)->Arg(4 << 10)->Arg(128 << 10)->Arg(1 << 20);

void BM_MulAccFullTable(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  std::vector<byte_t> src(len), dst(len);
  for (std::size_t i = 0; i < len; ++i) src[i] = static_cast<byte_t>(i * 31 + 7);
  const auto table = mlec::gf::make_full_table(0x57);
  for (auto _ : state) {
    mlec::gf::mul_acc(table, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_MulAccFullTable)->Arg(4 << 10)->Arg(128 << 10)->Arg(1 << 20);

void BM_RsEncode(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const std::size_t chunk = 128 << 10;
  const mlec::gf::RsCode code(k, p);
  std::vector<std::vector<byte_t>> data(k, std::vector<byte_t>(chunk));
  std::vector<std::vector<byte_t>> parity(p, std::vector<byte_t>(chunk));
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t b = 0; b < chunk; ++b) data[i][b] = static_cast<byte_t>(i + b * 13);
  for (auto _ : state) {
    code.encode(data, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * chunk));
}
BENCHMARK(BM_RsEncode)
    ->Args({10, 2})   // the paper's network code
    ->Args({17, 3})   // the paper's local code
    ->Args({28, 12})  // the paper's wide SLEC comparison point
    ->Args({50, 10});

void BM_RsDecode(benchmark::State& state) {
  const std::size_t k = 17, p = 3;
  const std::size_t chunk = 128 << 10;
  const mlec::gf::RsCode code(k, p);
  std::vector<std::vector<byte_t>> shards(k + p, std::vector<byte_t>(chunk));
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t b = 0; b < chunk; ++b) shards[i][b] = static_cast<byte_t>(i + b * 13);
  {
    std::vector<std::vector<byte_t>> data(shards.begin(), shards.begin() + k);
    std::vector<std::vector<byte_t>> parity(shards.begin() + k, shards.end());
    code.encode(data, parity);
    for (std::size_t i = 0; i < p; ++i) shards[k + i] = parity[i];
  }
  const std::vector<std::size_t> lost{0, 5, 11};
  for (auto _ : state) {
    code.decode(shards, lost);
    benchmark::DoNotOptimize(shards.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lost.size() * chunk));
}
BENCHMARK(BM_RsDecode);

}  // namespace

BENCHMARK_MAIN();
