// Ablation: chunk size vs single-core encoding throughput.
//
// Figure 11's cache argument ("with wider stripes, the encoding process
// might not fit the input into CPU cache") predicts a throughput cliff as
// k * chunk grows past the cache. This sweep varies the chunk size for the
// paper's three key codes to locate that cliff on the host CPU.
#include <iostream>

#include "analysis/encoding.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const double seconds = fast_mode() ? 0.01 : 0.08;

  std::cout << "# ablation: encoding throughput (MB/s) vs chunk size\n\n";
  Table t({"chunk_KB", "(10+2)", "(17+3)", "(28+12)", "working_set_(17+3)_KB"});
  for (double chunk_kb : {16.0, 64.0, 128.0, 512.0, 2048.0, 8192.0}) {
    t.add_row({Table::num(chunk_kb, 0),
               Table::num(measure_encoding_throughput(10, 2, chunk_kb, seconds).data_mbps, 0),
               Table::num(measure_encoding_throughput(17, 3, chunk_kb, seconds).data_mbps, 0),
               Table::num(measure_encoding_throughput(28, 12, chunk_kb, seconds).data_mbps, 0),
               Table::num(20 * chunk_kb, 0)});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# expectation: flat while the stripe working set fits cache, then a\n"
            << "# decline — the effect that motivates keeping k moderate (Figure 11).\n";
  return 0;
}
