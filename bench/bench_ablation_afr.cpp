// Ablation: annual failure rate sensitivity.
//
// The paper fixes AFR at 1% (§3); real fleets drift between ~0.5% and ~4%
// with drive vintage. This sweep shows how each scheme's durability (R_MIN)
// degrades with AFR, and that the scheme ranking is stable across the range.
#include <iostream>

#include "analysis/durability.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const auto code = MlecCode::paper_default();

  std::cout << "# ablation: durability in nines vs AFR (repair R_MIN)\n\n";
  Table t({"AFR_%", "C/C", "C/D", "D/C", "D/D"});
  for (double afr : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    DurabilityEnv env;
    env.afr = afr;
    std::vector<std::string> row{Table::num(100 * afr, 1)};
    for (auto scheme : kAllMlecSchemes)
      row.push_back(Table::num(
          mlec_durability(env, code, scheme, RepairMethod::kRepairMinimum).nines, 1));
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# expectation: nines fall roughly linearly in log10(AFR) — each level\n"
            << "# contributes (p+1) powers of lambda — and C/D,D/D stay on top.\n";
  return 0;
}
