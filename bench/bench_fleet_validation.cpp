// Fleet-scale simulation cross-validation (paper §3: the strategies verify
// each other, here at the full 57,600-disk deployment).
//
//   1. Independent failures at elevated AFR: the sim estimator (count-level
//      fleet Monte Carlo) vs the dp estimator (splitting/Markov pipeline)
//      on one shared Scenario.
//   2. A paper-style failure burst (60 failures over 3 racks) injected into
//      the full-scale fleet vs the conditional-MC burst engine's cell.
#include <iostream>

#include "analysis/burst_pdl.hpp"
#include "analysis/fleet_sim.hpp"
#include "core/estimator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace mlec;
  const std::uint64_t missions = fast_mode() ? 30 : 200;

  std::cout << "# fleet-scale cross-validation, " << DataCenterConfig{}.total_disks()
            << " disks\n\n";

  {
    Scenario sc = Scenario::paper_default();
    sc.system.scheme = MlecScheme::kCD;
    sc.system.repair = RepairMethod::kRepairFailedOnly;
    sc.system.afr = 0.35;  // hot enough to observe catastrophes directly
    sc.missions = missions;
    sc.seed = 11;

    EstimateOptions options;
    options.pool = &global_pool();
    const Estimate sim = find_estimator("sim")->estimate(sc, options);
    const Estimate dp = find_estimator("dp")->estimate(sc);

    Table t({"quantity", "sim_estimator", "dp_estimator"});
    t.add_row({"catastrophic pools / system-year", Table::num(sim.cat_rate_per_year, 3),
               Table::num(dp.cat_rate_per_year, 3)});
    t.add_row({"PDL over one year", Table::num(sim.pdl, 3), Table::num(dp.pdl, 3)});
    t.add_row({"mean exposure (h)", Table::num(sim.exposure_hours, 2),
               Table::num(dp.exposure_hours, 2)});
    std::cout << t.to_ascii("(1) C/D, R_FCO, AFR 35%: " + std::to_string(missions) +
                            " simulated mission-years")
              << '\n';
  }

  {
    Scenario sc = Scenario::paper_default();
    sc.system.scheme = MlecScheme::kDD;
    sc.system.repair = RepairMethod::kRepairMinimum;
    sc.system.afr = 1e-9;  // burst only
    sc.system.mission_hours = 48.0;
    sc.burst_trials = fast_mode() ? 300 : 3000;
    sc.seed = 13;

    FleetSimConfig cfg = sc.fleet_config();
    const BurstPdlEngine engine(sc.burst_config());
    const std::size_t racks = 3, failures = 60;
    const double expected = engine.mlec_cell(sc.system.code, sc.system.scheme, racks, failures);

    const Topology topo(cfg.dc);
    Rng rng(sc.seed);
    std::uint64_t losses = 0;
    const std::uint64_t burst_missions = fast_mode() ? 200 : 2000;
    for (std::uint64_t m = 0; m < burst_missions; ++m) {
      cfg.injected_events = generate_burst(topo, racks, failures, 1.0, rng);
      losses += simulate_fleet(cfg, 1, m).data_loss_missions;
    }
    Table t({"quantity", "fleet_sim", "burst_engine"});
    t.add_row({"PDL of a 60-failure/3-rack burst (D/D)",
               Table::num(static_cast<double>(losses) / static_cast<double>(burst_missions), 4),
               Table::num(expected, 4)});
    std::cout << t.to_ascii("(2) injected burst at full scale") << '\n';
  }

  std::cout << "# expectation: burst PDL matches tightly; the independent-failure rate\n"
            << "# agrees within an order of magnitude — the closed forms are calibrated\n"
            << "# for the rare regime (AFR ~1%), so at this 35x-hotter stress point the\n"
            << "# simulator sits above them (higher-order failure paths the fastest-path\n"
            << "# window model ignores).\n";
  return 0;
}
