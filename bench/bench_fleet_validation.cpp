// Fleet-scale simulation cross-validation (paper §3: the strategies verify
// each other, here at the full 57,600-disk deployment).
//
//   1. Independent failures at elevated AFR: the count-level fleet
//      simulator's catastrophic-pool rate and PDL vs the splitting/Markov
//      pipeline under identical assumptions.
//   2. A paper-style failure burst (60 failures over 3 racks) injected into
//      the full-scale fleet vs the conditional-MC burst engine's cell.
#include <iostream>

#include "analysis/burst_pdl.hpp"
#include "analysis/durability.hpp"
#include "analysis/fleet_sim.hpp"
#include "placement/pools.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace mlec;
  const std::uint64_t missions = fast_mode() ? 30 : 200;

  std::cout << "# fleet-scale cross-validation, " << DataCenterConfig{}.total_disks()
            << " disks\n\n";

  {
    FleetSimConfig cfg;
    cfg.scheme = MlecScheme::kCD;
    cfg.method = RepairMethod::kRepairFailedOnly;
    cfg.failures.afr = 0.35;  // hot enough to observe catastrophes directly
    const auto sim = simulate_fleet(cfg, missions, 11, &global_pool());

    DurabilityEnv env;
    env.afr = cfg.failures.afr;
    const auto pipeline = mlec_durability(env, cfg.code, cfg.scheme, cfg.method);

    Table t({"quantity", "fleet_sim", "pipeline"});
    t.add_row({"catastrophic pools / system-year",
               Table::num(sim.catastrophes_per_system_year(cfg.mission_hours), 3),
               Table::num(pipeline.system_cat_rate_per_year, 3)});
    t.add_row({"PDL over one year", Table::num(sim.pdl(), 3), Table::num(pipeline.pdl, 3)});
    t.add_row({"mean exposure (h)", Table::num(sim.catastrophe_exposure_hours.mean(), 2),
               Table::num(pipeline.exposure_hours, 2)});
    std::cout << t.to_ascii("(1) C/D, R_FCO, AFR 35%: " + std::to_string(missions) +
                            " simulated mission-years")
              << '\n';
  }

  {
    FleetSimConfig cfg;
    cfg.scheme = MlecScheme::kDD;
    cfg.method = RepairMethod::kRepairMinimum;
    cfg.failures.afr = 1e-9;  // burst only
    cfg.mission_hours = 48.0;

    BurstPdlConfig engine_cfg;
    engine_cfg.trials_per_cell = fast_mode() ? 300 : 3000;
    const BurstPdlEngine engine(engine_cfg);
    const std::size_t racks = 3, failures = 60;
    const double expected = engine.mlec_cell(cfg.code, cfg.scheme, racks, failures);

    const Topology topo(cfg.dc);
    Rng rng(13);
    std::uint64_t losses = 0;
    const std::uint64_t burst_missions = fast_mode() ? 200 : 2000;
    for (std::uint64_t m = 0; m < burst_missions; ++m) {
      cfg.injected_events = generate_burst(topo, racks, failures, 1.0, rng);
      losses += simulate_fleet(cfg, 1, m).data_loss_missions;
    }
    Table t({"quantity", "fleet_sim", "burst_engine"});
    t.add_row({"PDL of a 60-failure/3-rack burst (D/D)",
               Table::num(static_cast<double>(losses) / static_cast<double>(burst_missions), 4),
               Table::num(expected, 4)});
    std::cout << t.to_ascii("(2) injected burst at full scale") << '\n';
  }

  std::cout << "# expectation: burst PDL matches tightly; the independent-failure rate\n"
            << "# agrees within an order of magnitude — the closed forms are calibrated\n"
            << "# for the rare regime (AFR ~1%), so at this 35x-hotter stress point the\n"
            << "# simulator sits above them (higher-order failure paths the fastest-path\n"
            << "# window model ignores).\n";
  return 0;
}
