// Figure 13: PDL of a (7+3) SLEC under correlated failure bursts for the
// four SLEC placements, on the paper's 57,600-disk data center.
#include <cstring>
#include <iostream>

#include "analysis/burst_pdl.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace mlec;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  BurstPdlConfig cfg;
  cfg.trials_per_cell = fast_mode() ? 200 : (full ? 4000 : 1200);
  const std::size_t step = fast_mode() ? 12 : (full ? 2 : 6);
  const BurstPdlEngine engine(cfg);
  const SlecCode code{7, 3};

  std::cout << "# paper: Figure 13 — PDL of " << code.notation()
            << " SLEC under correlated failures\n\n";
  for (auto scheme : kAllSlecSchemes) {
    const auto map = engine.slec_heatmap(code, scheme, step, 60, 60, &global_pool());
    std::cout << HeatmapRenderer::render(map.values, map.y_labels, map.x_labels,
                                         "PDL heatmap — " + to_string(scheme) +
                                             " (y: failed disks, x: affected racks)")
              << '\n';
  }
  std::cout << "# paper shape: local SLEC loses to localized bursts (worse for Dp);\n"
            << "# network SLEC loses to scattered bursts (worse for Dp);\n"
            << "# Net-Cp has PDL 0 whenever x <= p = 3.\n";
  return 0;
}
