// Figure 10: one-year durability (nines) of every MLEC scheme under every
// repair method, via the two-stage splitting/Markov pipeline.
#include <iostream>

#include "analysis/durability.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const DurabilityEnv env;
  const auto code = MlecCode::paper_default();

  std::cout << "# paper: Figure 10 — durability in nines, " << code.notation() << " MLEC\n\n";
  Table t({"scheme", "R_ALL", "R_FCO", "R_HYB", "R_MIN"});
  for (auto scheme : kAllMlecSchemes) {
    std::vector<std::string> row{to_string(scheme)};
    for (auto method : kAllRepairMethods)
      row.push_back(Table::num(mlec_durability(env, code, scheme, method).nines, 1));
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii() << '\n';

  std::cout << "# stage-2 internals for D/D (the paper's §4.2.3 F#1 coverage effect):\n";
  Table internals({"method", "exposure_h", "coverage", "nines"});
  for (auto method : kAllRepairMethods) {
    const auto r = mlec_durability(env, code, MlecScheme::kDD, method);
    internals.add_row({to_string(method), Table::num(r.exposure_hours, 2),
                       Table::num(r.coverage, 3), Table::num(r.nines, 1)});
  }
  std::cout << internals.to_ascii() << '\n';
  std::cout << "# paper findings: F#1 R_FCO +0.9..6.6 nines; F#2 R_HYB +0.6..4.1;\n"
            << "# F#3 R_MIN +0.1..1.2; F#4 C/D and D/D best, D/C worst.\n";
  return 0;
}
