// Figure 10: one-year durability (nines) of every MLEC scheme under every
// repair method, via the dp estimator (the closed-form splitting pipeline)
// driven by the shared Scenario.
#include <iostream>

#include "core/estimator.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  Scenario sc = Scenario::paper_default();
  const Estimator& dp = *find_estimator("dp");

  std::cout << "# paper: Figure 10 — durability in nines, " << sc.system.code.notation()
            << " MLEC\n\n";
  Table t({"scheme", "R_ALL", "R_FCO", "R_HYB", "R_MIN"});
  for (auto scheme : kAllMlecSchemes) {
    sc.system.scheme = scheme;
    std::vector<std::string> row{to_string(scheme)};
    for (auto method : kAllRepairMethods) {
      sc.system.repair = method;
      row.push_back(Table::num(dp.estimate(sc).nines, 1));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii() << '\n';

  std::cout << "# stage-2 internals for D/D (the paper's §4.2.3 F#1 coverage effect):\n";
  Table internals({"method", "exposure_h", "coverage", "nines"});
  sc.system.scheme = MlecScheme::kDD;
  for (auto method : kAllRepairMethods) {
    sc.system.repair = method;
    const Estimate e = dp.estimate(sc);
    internals.add_row({to_string(method), Table::num(e.exposure_hours, 2),
                       Table::num(e.coverage, 3), Table::num(e.nines, 1)});
  }
  std::cout << internals.to_ascii() << '\n';
  std::cout << "# paper findings: F#1 R_FCO +0.9..6.6 nines; F#2 R_HYB +0.6..4.1;\n"
            << "# F#3 R_MIN +0.1..1.2; F#4 C/D and D/D best, D/C worst.\n";
  return 0;
}
