// Ablation: latent sector errors (unrecoverable read errors) during
// rebuilds — an extension beyond the paper's disk-failure-only model.
//
// A URE while rebuilding a stripe already at p_l failed chunks loses the
// stripe, so rebuild reads themselves become a catastrophe source. The
// sweep runs typical spec-sheet BERs and shows which schemes absorb the
// extra risk (clustered pools, which re-read everything at p_l failures,
// suffer first).
#include <iostream>

#include "analysis/durability.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const auto code = MlecCode::paper_default();

  std::cout << "# ablation (model extension): durability vs rebuild URE rate, R_MIN\n\n";
  Table t({"ure_per_bit", "C/C", "C/D", "D/C", "D/D"});
  for (double ure : {0.0, 1e-17, 1e-16, 1e-15, 1e-14}) {
    DurabilityEnv env;
    env.ure_per_bit = ure;
    std::vector<std::string> row{ure == 0.0 ? "0 (paper)" : Table::num(ure, 1)};
    for (auto scheme : kAllMlecSchemes)
      row.push_back(Table::num(
          mlec_durability(env, code, scheme, RepairMethod::kRepairMinimum).nines, 1));
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# expectation: nines erode as UREs climb toward consumer-class 1e-14;\n"
            << "# MLEC's network level still absorbs URE-induced catastrophic pools,\n"
            << "# which is exactly why two-level protection matters at 20 TB disks.\n";
  return 0;
}
