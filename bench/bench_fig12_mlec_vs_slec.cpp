// Figure 12: durability vs single-core encoding throughput, MLEC vs SLEC,
// every point at ~30% parity-space overhead. MLEC uses R_MIN (the paper's
// most optimized repair). The environment comes from the shared Scenario.
#include <iostream>

#include "analysis/tradeoff.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {
void print_points(const std::string& title, const std::vector<mlec::TradeoffPoint>& points) {
  mlec::Table t({"config", "overhead_%", "nines", "encode_GBps"});
  for (const auto& pt : points)
    t.add_row({pt.label, mlec::Table::num(100 * pt.overhead, 1), mlec::Table::num(pt.nines, 1),
               mlec::Table::num(pt.encode_gbps, 2)});
  std::cout << t.to_ascii(title) << '\n';
}
}  // namespace

int main() {
  using namespace mlec;
  const Scenario sc = Scenario::paper_default();
  const DurabilityEnv env = sc.durability_env();
  const OverheadBand band{};
  const bool measure = !fast_mode();

  std::cout << "# paper: Figure 12 — MLEC vs SLEC durability/throughput tradeoff\n"
            << "# (all configurations within " << 100 * band.lo << "-" << 100 * band.hi
            << "% parity overhead; MLEC repair = R_MIN)\n\n";

  print_points("(a) MLEC C/C",
               mlec_tradeoff(env, MlecScheme::kCC, RepairMethod::kRepairMinimum, band, measure));
  print_points("    SLEC Loc-Cp-S",
               slec_tradeoff(env, {SlecDomain::kLocal, Placement::kClustered}, band, measure));
  print_points("    SLEC Net-Cp-S",
               slec_tradeoff(env, {SlecDomain::kNetwork, Placement::kClustered}, band, measure));
  print_points("(b) MLEC C/D",
               mlec_tradeoff(env, MlecScheme::kCD, RepairMethod::kRepairMinimum, band, measure));
  print_points("    SLEC Loc-Dp-S",
               slec_tradeoff(env, {SlecDomain::kLocal, Placement::kDeclustered}, band, measure));
  print_points("    SLEC Net-Dp-S",
               slec_tradeoff(env, {SlecDomain::kNetwork, Placement::kDeclustered}, band, measure));

  std::cout << "# paper findings: F#1 durability trades against throughput everywhere;\n"
            << "# F#2 beyond ~20 nines MLEC keeps throughput high where SLEC cannot\n"
            << "# (paper anchor: (17+3)/(17+3) C/C 39 nines vs (28+12) local SLEC 33 nines).\n";
  return 0;
}
