// Figure 6 + Table 2: repair time and available repair bandwidth per MLEC
// scheme, for (a) a single disk failure and (b) a catastrophic local
// failure repaired with R_ALL.
#include <iostream>

#include "analysis/repair_time.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const RepairTimeModel model(DataCenterConfig::paper_default(),
                              BandwidthConfig::paper_default(), MlecCode::paper_default());

  std::cout << "# paper: Table 2 — repair size and available repair bandwidth\n";
  Table t2({"scheme", "disk_tb", "single_disk_MBps", "pool_tb", "pool_MBps"});
  for (auto scheme : kAllMlecSchemes) {
    const auto row = model.table2_row(scheme);
    t2.add_row({to_string(scheme), Table::num(row.disk_size_tb),
                Table::num(row.single_disk_mbps, 0), Table::num(row.pool_size_tb),
                Table::num(row.pool_mbps, 0)});
  }
  std::cout << t2.to_ascii() << '\n';
  std::cout << "# paper values: 40 / 264 / 40 / 264 MB/s single disk; "
               "250 / 250 / 1363 / 1363 MB/s pool\n\n";

  std::cout << "# paper: Figure 6 — rebuild time (hours)\n";
  Table fig6({"scheme", "single_disk_h", "catastrophic_pool_h"});
  for (auto scheme : kAllMlecSchemes) {
    fig6.add_row({to_string(scheme), Table::num(model.single_disk_repair_hours(scheme), 1),
                  Table::num(model.catastrophic_repair_hours(scheme), 1)});
  }
  std::cout << fig6.to_ascii() << '\n';
  std::cout << "# paper shape: C/D,D/D ~6x faster on single disks (F#1); C/D slowest (F#2),\n"
            << "# D/C fastest (F#3), D/D slightly slower than C/C (F#4) on pool repair.\n";
  return 0;
}
