// Figure 1: storage scaling over the years (motivation).
//
// The paper plots fleet sizes (Backblaze, US DOE) and per-disk capacities.
// These are external observations, not simulator output; the series below
// are digitized from the paper's Figure 1 so downstream tooling has the
// same reference data.
#include <iostream>

#include "util/table.hpp"

int main() {
  std::cout << "# paper: Figure 1 — storage scaling over the years\n\n";

  mlec::Table disks({"year", "backblaze_kdisks", "us_doe_kdisks"});
  const struct {
    int year;
    double backblaze, doe;
  } fleet[] = {{2010, 10, 5},  {2013, 25, 20},  {2016, 65, 40},
               {2019, 110, 44}, {2022, 202, 47}};
  for (const auto& row : fleet)
    disks.add_row({std::to_string(row.year), mlec::Table::num(row.backblaze),
                   mlec::Table::num(row.doe)});
  std::cout << disks.to_ascii("(a) Disks per system (thousands)") << '\n';

  mlec::Table capacity({"year", "max_available_tb", "average_sold_tb"});
  const struct {
    int year;
    double max_tb, avg_tb;
  } caps[] = {{2010, 3, 1}, {2013, 6, 2}, {2016, 10, 4.5}, {2019, 16, 9}, {2022, 20, 12.3}};
  for (const auto& row : caps)
    capacity.add_row({std::to_string(row.year), mlec::Table::num(row.max_tb),
                      mlec::Table::num(row.avg_tb)});
  std::cout << capacity.to_ascii("(b) Capacity per disk (TB)");
  return 0;
}
