// Head-to-head benchmark of the fleet-simulation core rewrite: the pre-PR
// event loop (lazy-deletion priority_queue + per-mission unordered_map +
// one-at-a-time RNG draws) vs the current zero-allocation core (TrialArena,
// IndexedMinHeap with decrease-key/remove, batched exponential fills,
// shared immutable context).
//
// The `legacy` namespace below is a faithful copy of the pre-rewrite
// RunContext/MissionRunner from src/analysis/fleet_sim.cpp, kept here as
// the measurement baseline. Both sides share the (now table-backed)
// PoolRepairModel; the bundled scenarios use clustered local placement,
// whose hot path never touches those tables, so the measured speedup
// isolates the event-queue/allocation/RNG changes and is conservative.
//
//   bench_sim_core [--quick] [--json[=PATH]] [--min-tps=X]
//                  [--scenario-dir=DIR]
//
//   --quick        shrink mission counts (CI smoke mode; MLEC_FAST=1 too)
//   --json[=PATH]  write machine-readable results (default
//                  BENCH_sim_core.json)
//   --min-tps=X    exit 1 unless the optimized core sustains at least X
//                  trials/sec on every scenario (CI regression floor)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/burst_pdl.hpp"
#include "analysis/fleet_sim.hpp"
#include "analysis/repair_time.hpp"
#include "core/spec_io.hpp"
#include "math/combin.hpp"
#include "placement/pools.hpp"
#include "sim/pool_state.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace mlec::legacy {

/// One fleet pool: the shared state machine plus a generation counter for
/// lazy invalidation of queued events.
struct PoolEntry {
  LocalPoolState state;
  std::uint64_t generation = 0;
};

struct Catastrophe {
  std::uint32_t pool;
  RackId rack;
  std::uint32_t network_pool;
  double until;
  double lost_fraction;
  std::size_t failed_disks;
};

/// Shared, immutable per-run constants (pre-rewrite layout).
struct RunContext {
  FleetSimConfig cfg;
  PoolLayout layout;
  bool local_clustered;
  bool network_clustered;
  std::size_t pool_disks;
  std::size_t pools_per_enclosure;
  std::size_t pools_per_rack;
  double lambda_hour;
  double fleet_rate;
  double net_bw_tb_h;
  double stripes_per_network_pool;
  double total_network_stripes;
  double rack_cover_times_pool_pick;
  PoolRepairModel model;

  explicit RunContext(const FleetSimConfig& config)
      : cfg(config), layout(config.dc, config.code, config.scheme) {
    cfg.validate();
    local_clustered = local_placement(cfg.scheme) == Placement::kClustered;
    network_clustered = network_placement(cfg.scheme) == Placement::kClustered;
    pool_disks = layout.local_pool_disks();
    pools_per_enclosure = layout.local_pools_per_enclosure();
    pools_per_rack = layout.local_pools_per_rack();
    lambda_hour = cfg.failures.afr / units::kHoursPerYear;
    fleet_rate = lambda_hour * static_cast<double>(cfg.dc.total_disks());

    model.code = cfg.code.local;
    model.pool_disks = pool_disks;
    model.clustered = local_clustered;
    model.priority_repair = cfg.priority_repair;
    model.detection_hours = cfg.detection_hours;
    model.disk_capacity_tb = cfg.dc.disk_capacity_tb;
    model.chunk_kb = cfg.dc.chunk_kb;
    model.disk_eff_mbps = cfg.bandwidth.effective_disk_mbps();
    model.finalize();

    const RepairTimeModel rtm(cfg.dc, cfg.bandwidth, cfg.code);
    const BandwidthModel bwm(cfg.bandwidth);
    net_bw_tb_h = bwm.available_repair_mbps(rtm.network_stage_flow(cfg.scheme, cfg.method)) *
                  units::kSecondsPerHour * 1e6 / 1e12;

    stripes_per_network_pool = layout.network_stripes_per_pool();
    total_network_stripes = layout.total_network_stripes();
    if (!network_clustered) {
      const auto R = static_cast<std::int64_t>(cfg.dc.racks);
      const auto W = static_cast<std::int64_t>(cfg.code.network_width());
      const auto pn1 = static_cast<std::int64_t>(cfg.code.network.p + 1);
      const double rack_cover =
          std::exp(log_choose(R - pn1, W - pn1) - log_choose(R, W));
      rack_cover_times_pool_pick =
          rack_cover * std::pow(1.0 / static_cast<double>(pools_per_rack),
                                static_cast<double>(pn1));
    } else {
      rack_cover_times_pool_pick = 0.0;
    }
  }

  std::uint32_t pool_of_disk(DiskId disk) const {
    const std::size_t enc = disk / cfg.dc.disks_per_enclosure;
    const std::size_t within = (disk % cfg.dc.disks_per_enclosure) /
                               (local_clustered ? pool_disks : cfg.dc.disks_per_enclosure);
    return static_cast<std::uint32_t>(enc * pools_per_enclosure + within);
  }
  RackId rack_of_pool(std::uint32_t pool) const {
    return static_cast<RackId>(pool / pools_per_rack);
  }
  std::uint32_t network_pool_of(std::uint32_t pool) const {
    if (!network_clustered) return 0;
    const std::size_t group = rack_of_pool(pool) / cfg.code.network_width();
    return static_cast<std::uint32_t>(group * pools_per_rack + pool % pools_per_rack);
  }

  double network_volume_tb(double unrebuilt_tb, std::size_t f, double stripe_frac) const {
    const double chunk_frac = std::min(
        1.0, stripe_frac * static_cast<double>(pool_disks) /
                 static_cast<double>(cfg.code.local_width()));
    switch (cfg.method) {
      case RepairMethod::kRepairAll:
        return layout.local_pool_capacity_tb();
      case RepairMethod::kRepairFailedOnly:
        return unrebuilt_tb;
      case RepairMethod::kRepairHybrid:
        return unrebuilt_tb * chunk_frac;
      case RepairMethod::kRepairMinimum:
        return unrebuilt_tb * chunk_frac *
               static_cast<double>(f - cfg.code.local.p) / static_cast<double>(f);
    }
    throw InternalError("unknown repair method");
  }
};

class MissionRunner {
 public:
  explicit MissionRunner(const RunContext& ctx) : ctx_(ctx) {}

  void run(Rng& rng, FleetSimResult& result) {
    rng_ = &rng;
    ++result.missions;
    const double mission = ctx_.cfg.mission_hours;
    double t = 0.0;
    double next_fail = rng_->exponential(ctx_.fleet_rate);
    std::size_t injected_idx = 0;
    pools_.clear();
    cats_.clear();
    events_ = {};

    bool lost_this_mission = false;

    while (true) {
      // Next pool event (lazy invalidation by generation).
      while (!events_.empty()) {
        const auto& top = events_.top();
        auto it = pools_.find(top.pool);
        if (it == pools_.end() || it->second.generation != top.generation) {
          events_.pop();
          continue;
        }
        break;
      }
      double next_event = next_fail;
      const auto& injected = ctx_.cfg.injected_events;
      if (injected_idx < injected.size())
        next_event = std::min(next_event, injected[injected_idx].time_hours);
      bool pool_event = false;
      if (!events_.empty() && events_.top().time < next_event) {
        next_event = events_.top().time;
        pool_event = true;
      }
      if (next_event >= mission) break;

      if (pool_event) {
        const auto ev = events_.top();
        events_.pop();
        ++result.events_processed;
        advance_pool(ev.pool, ev.time);
        schedule_pool(ev.pool, ev.time);
        continue;
      }

      DiskId disk;
      if (injected_idx < injected.size() &&
          injected[injected_idx].time_hours <= next_fail) {
        disk = injected[injected_idx].disk;
        ++injected_idx;
      } else {
        disk = static_cast<DiskId>(rng_->uniform_below(ctx_.cfg.dc.total_disks()));
        next_fail = next_event + rng_->exponential(ctx_.fleet_rate);
      }
      t = next_event;
      ++result.disk_failures;
      ++result.events_processed;
      std::erase_if(cats_, [t](const Catastrophe& c) { return c.until <= t; });

      const std::uint32_t pool = ctx_.pool_of_disk(disk);
      if (Catastrophe* active = active_catastrophe(pool, t); active != nullptr) {
        ++active->failed_disks;
        const double prev_frac = active->lost_fraction;
        if (!ctx_.local_clustered)
          active->lost_fraction = ctx_.model.declustered_lost_fraction(active->failed_disks);
        if (check_data_loss(*active, t, prev_frac)) {
          ++result.data_loss_events;
          if (!lost_this_mission) {
            lost_this_mission = true;
            ++result.data_loss_missions;
            result.loss_time_hours.add(t);
          }
          if (ctx_.cfg.stop_on_loss) break;
        }
        continue;
      }
      advance_pool(pool, t);
      auto& state = pools_[pool].state;
      state.add_failure(t, ctx_.model);
      const std::size_t f_after = state.failures.size();

      if (!state.catastrophic(t, ctx_.model)) {
        state.extend_critical_window(t, ctx_.model);
        schedule_pool(pool, t);
        continue;
      }

      ++result.catastrophic_pool_events;
      const double unrebuilt = state.unrebuilt_tb();
      const double frac = state.lost_stripe_fraction(ctx_.model);
      const double volume = ctx_.network_volume_tb(unrebuilt, f_after, frac);
      const double exposure = ctx_.cfg.detection_hours + volume / ctx_.net_bw_tb_h;
      result.catastrophe_exposure_hours.add(exposure);
      result.cross_rack_tb += volume * (static_cast<double>(ctx_.cfg.code.network.k) + 1.0);

      pools_.erase(pool);
      cats_.push_back({pool, ctx_.rack_of_pool(pool), ctx_.network_pool_of(pool), t + exposure,
                       frac, f_after});

      if (check_data_loss(cats_.back(), t)) {
        ++result.data_loss_events;
        if (!lost_this_mission) {
          lost_this_mission = true;
          ++result.data_loss_missions;
          result.loss_time_hours.add(t);
        }
        if (ctx_.cfg.stop_on_loss) break;
      }
    }
  }

 private:
  struct PoolEvent {
    double time;
    std::uint32_t pool;
    std::uint64_t generation;
    bool operator>(const PoolEvent& other) const { return time > other.time; }
  };

  void advance_pool(std::uint32_t pool, double t) {
    auto it = pools_.find(pool);
    if (it == pools_.end()) return;
    it->second.state.advance_to(t, ctx_.model);
    if (it->second.state.idle(t)) pools_.erase(it);
  }

  void schedule_pool(std::uint32_t pool, double t) {
    auto it = pools_.find(pool);
    if (it == pools_.end()) return;
    ++it->second.generation;
    const double next = it->second.state.next_event_after(t, ctx_.model);
    if (std::isfinite(next)) events_.push({next, pool, it->second.generation});
  }

  Catastrophe* active_catastrophe(std::uint32_t pool, double t) {
    for (auto& c : cats_)
      if (c.pool == pool && c.until > t) return &c;
    return nullptr;
  }

  bool check_data_loss(const Catastrophe& newest, double t, double prev_frac = -1.0) {
    const std::size_t pn1 = ctx_.cfg.code.network.p + 1;
    std::vector<const Catastrophe*> others;
    for (const auto& c : cats_) {
      if (&c == &newest || c.until <= t) continue;
      if (ctx_.network_clustered) {
        if (c.network_pool == newest.network_pool) others.push_back(&c);
      } else if (c.rack != newest.rack) {
        others.push_back(&c);
      }
    }
    if (others.size() + 1 < pn1) return false;

    const double frac_new =
        ctx_.cfg.method == RepairMethod::kRepairAll ? 1.0 : newest.lost_fraction;
    double log_no_cover = 0.0;
    std::vector<std::size_t> idx(pn1 - 1);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    while (true) {
      bool valid = true;
      if (!ctx_.network_clustered) {
        for (std::size_t a = 0; a < idx.size() && valid; ++a)
          for (std::size_t b = a + 1; b < idx.size() && valid; ++b)
            valid = others[idx[a]]->rack != others[idx[b]]->rack;
      }
      if (valid) {
        double partners = 1.0;
        for (std::size_t i : idx)
          partners *= ctx_.cfg.method == RepairMethod::kRepairAll ? 1.0
                                                                  : others[i]->lost_fraction;
        auto coverage_of = [&](double frac) {
          const double joint = frac * partners;
          return ctx_.network_clustered
                     ? saturating_loss(joint, ctx_.stripes_per_network_pool)
                     : saturating_loss(joint * ctx_.rack_cover_times_pool_pick,
                                       ctx_.total_network_stripes);
        };
        const double cov_new = coverage_of(frac_new);
        const double cov_old =
            prev_frac >= 0.0 && ctx_.cfg.method != RepairMethod::kRepairAll
                ? coverage_of(prev_frac)
                : (prev_frac >= 0.0 ? cov_new : 0.0);
        if (cov_new >= 1.0 && cov_old < 1.0) return rng_->bernoulli(1.0);
        if (cov_new > cov_old)
          log_no_cover += std::log1p(-cov_new) - std::log1p(-cov_old);
      }
      if (idx.empty()) break;
      std::size_t pos = idx.size();
      while (pos > 0) {
        --pos;
        if (idx[pos] + (idx.size() - pos) < others.size()) {
          ++idx[pos];
          for (std::size_t i = pos + 1; i < idx.size(); ++i) idx[i] = idx[i - 1] + 1;
          break;
        }
        if (pos == 0) {
          pos = idx.size() + 1;
          break;
        }
      }
      if (pos > idx.size()) break;
    }
    return rng_->bernoulli(-std::expm1(log_no_cover));
  }

  const RunContext& ctx_;
  Rng* rng_ = nullptr;
  std::unordered_map<std::uint32_t, PoolEntry> pools_;
  std::vector<Catastrophe> cats_;
  std::priority_queue<PoolEvent, std::vector<PoolEvent>, std::greater<>> events_;
};

/// Serial driver matching the optimized simulate_fleet's single-shard path.
FleetSimResult simulate(const FleetSimConfig& cfg, std::uint64_t missions,
                        std::uint64_t seed) {
  const RunContext ctx(cfg);
  MissionRunner runner(ctx);
  Rng rng = Rng::for_substream(seed, 0);
  FleetSimResult result;
  for (std::uint64_t m = 0; m < missions; ++m) runner.run(rng, result);
  return result;
}

}  // namespace mlec::legacy

namespace {

using namespace mlec;

struct Measurement {
  double elapsed_s = 0.0;
  double trials_per_sec = 0.0;
  double events_per_sec = 0.0;
  FleetSimResult result;
};

/// Best-of-N timing: the minimum elapsed over `reps` runs discards noise
/// from scheduler preemption and frequency ramps, for both contenders alike.
template <typename Run>
Measurement measure(std::uint64_t missions, int reps, Run&& run) {
  Measurement m;
  m.elapsed_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    FleetSimResult result = run(missions);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (elapsed < m.elapsed_s) {
      m.elapsed_s = elapsed;
      m.result = result;
    }
  }
  m.trials_per_sec = static_cast<double>(missions) / m.elapsed_s;
  m.events_per_sec = static_cast<double>(m.result.events_processed) / m.elapsed_s;
  return m;
}

struct ScenarioRow {
  std::string name;
  std::uint64_t missions = 0;
  Measurement baseline;
  Measurement optimized;
  double speedup = 0.0;
};

Scenario load(const std::string& path) {
  std::ifstream in(path);
  MLEC_REQUIRE(static_cast<bool>(in), "cannot open scenario file " + path);
  return load_scenario(IniFile::parse(in));
}

void write_json(const std::string& path, const std::vector<ScenarioRow>& rows, bool quick) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n  \"bench\": \"sim_core\",\n  \"quick\": " << (quick ? "true" : "false")
      << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    auto side = [&](const char* tag, const Measurement& m) {
      out << "      \"" << tag << "\": {\"elapsed_s\": " << m.elapsed_s
          << ", \"trials_per_sec\": " << m.trials_per_sec
          << ", \"events_per_sec\": " << m.events_per_sec
          << ", \"pdl\": " << m.result.pdl() << "}";
    };
    out << "    {\n      \"name\": \"" << r.name << "\",\n      \"missions\": " << r.missions
        << ",\n";
    side("baseline", r.baseline);
    out << ",\n";
    side("optimized", r.optimized);
    out << ",\n      \"speedup\": " << r.speedup << "\n    }" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = fast_mode();
  std::string json_path;
  double min_tps = 0.0;
  std::string scenario_dir = "examples/scenarios";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--json") json_path = "BENCH_sim_core.json";
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--min-tps=", 0) == 0) min_tps = std::stod(arg.substr(10));
    else if (arg.rfind("--scenario-dir=", 0) == 0) scenario_dir = arg.substr(15);
    else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: bench_sim_core [--quick] [--json[=PATH]] [--min-tps=X]"
                   " [--scenario-dir=DIR]\n";
      return 2;
    }
  }

  std::cout << "# fleet-sim core: legacy (priority_queue + unordered_map) vs current\n"
            << "# (indexed heap + trial arena + batched RNG), single-threaded\n\n";

  std::vector<ScenarioRow> rows;
  bool floor_ok = true;
  for (const char* file : {"crosscheck_mlec.ini", "crosscheck_slec.ini"}) {
    const Scenario sc = load(scenario_dir + "/" + file);
    const FleetSimConfig cfg = sc.fleet_config();
    ScenarioRow row;
    row.name = sc.name;
    // Enough missions for a stable single-threaded measurement; the hotter
    // MLEC scenario has 3x the disks, so it gets fewer.
    row.missions = quick ? 300 : 2000;

    const int reps = quick ? 2 : 4;
    // Warmup primes caches/allocators on both sides.
    (void)legacy::simulate(cfg, row.missions / 10 + 1, sc.seed);
    row.baseline = measure(row.missions, reps, [&](std::uint64_t n) {
      return legacy::simulate(cfg, n, sc.seed);
    });
    (void)simulate_fleet(cfg, row.missions / 10 + 1, sc.seed);
    row.optimized = measure(row.missions, reps, [&](std::uint64_t n) {
      return simulate_fleet(cfg, n, sc.seed);
    });
    row.speedup = row.optimized.trials_per_sec / row.baseline.trials_per_sec;
    if (min_tps > 0.0 && row.optimized.trials_per_sec < min_tps) floor_ok = false;
    rows.push_back(row);
  }

  Table t({"scenario", "missions", "legacy_tps", "current_tps", "speedup", "current_events/s",
           "legacy_pdl", "current_pdl"});
  for (const auto& r : rows)
    t.add_row({r.name, std::to_string(r.missions), Table::num(r.baseline.trials_per_sec, 1),
               Table::num(r.optimized.trials_per_sec, 1), Table::num(r.speedup, 2),
               Table::num(r.optimized.events_per_sec, 0), Table::num(r.baseline.result.pdl(), 4),
               Table::num(r.optimized.result.pdl(), 4)});
  std::cout << t.to_ascii("trials/sec, higher is better") << '\n';
  std::cout << "# the two cores draw the same distributions through different RNG\n"
            << "# schedules, so PDLs agree statistically, not bit-for-bit\n";

  if (!json_path.empty()) {
    write_json(json_path, rows, quick);
    std::cout << "# wrote " << json_path << '\n';
  }
  if (!floor_ok) {
    std::cerr << "FAIL: optimized core below --min-tps=" << min_tps << " floor\n";
    return 1;
  }
  return 0;
}
