// Figure 7: probability of a catastrophic local failure (per system-year)
// for each MLEC scheme.
//
// Primary numbers come from the stage-1 closed forms (clustered: Markov
// chain; declustered: priority-reconstruction window model). A splitting
// stage-1 simulation at elevated AFR cross-checks the clustered closed form
// (raw simulation cannot reach 1e-9/pool-year — the reason the paper
// introduces splitting).
#include <iostream>

#include "analysis/durability.hpp"
#include "placement/pools.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const DurabilityEnv env;
  const auto code = MlecCode::paper_default();

  std::cout << "# paper: Figure 7 — probability of catastrophic local failure\n\n";
  Table t({"scheme", "pool_disks", "pools", "per_pool_per_year", "per_system_per_year"});
  for (auto scheme : kAllMlecSchemes) {
    const PoolLayout layout(env.dc, code, scheme);
    const auto stats = local_pool_stats(env, code.local, local_placement(scheme),
                                        layout.local_pool_disks());
    t.add_row({to_string(scheme), std::to_string(layout.local_pool_disks()),
               std::to_string(layout.total_local_pools()),
               Table::num(stats.cat_rate_per_pool_year, 3),
               Table::num(stats.cat_rate_per_pool_year *
                              static_cast<double>(layout.total_local_pools()),
                          3)});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# paper shape: < 1e-5 per year for C/C,D/C; ~1e-7 for C/D,D/D\n"
            << "# (local-Dp pools are rarer and, with priority reconstruction, sturdier).\n\n";

  // Splitting stage-1 cross-check at elevated AFR (clustered pool).
  LocalPoolSimConfig sim_cfg;
  sim_cfg.code = code.local;
  sim_cfg.placement = Placement::kClustered;
  sim_cfg.pool_disks = code.local_width();
  sim_cfg.afr = 0.5;  // hot enough for Monte Carlo
  Rng rng(7);
  const std::uint64_t missions = fast_mode() ? 2000 : 20000;
  const auto sim = simulate_local_pool(sim_cfg, missions, rng);

  DurabilityEnv hot = env;
  hot.afr = sim_cfg.afr;
  const auto analytic = local_pool_stats(hot, code.local, Placement::kClustered,
                                         code.local_width());
  std::cout << "stage-1 cross-check at AFR 50% (clustered (17+3) pool):\n"
            << "  simulated  " << Table::num(sim.catastrophe_rate_per_year(), 3)
            << " catastrophes/pool-year (" << sim.catastrophes << " events)\n"
            << "  markov     " << Table::num(analytic.cat_rate_per_pool_year, 3)
            << " catastrophes/pool-year\n";
  return 0;
}
