// §5.2.4: annual cross-rack repair traffic, LRC-Dp vs network SLEC vs MLEC.
//
// LRC repairs most failures from a small local group, cutting traffic below
// network SLEC of the same durability class — but every repair still
// crosses racks, so MLEC stays orders of magnitude lower.
#include <iostream>

#include "analysis/durability.hpp"
#include "analysis/traffic.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;
  const auto dc = DataCenterConfig::paper_default();
  const DurabilityEnv env;
  const auto code = MlecCode::paper_default();

  std::cout << "# paper: §5.2.4 — repair network traffic, LRC vs SLEC vs MLEC (1% AFR)\n\n";
  Table t({"system", "avg_reads_per_repair", "cross_rack_TB_per_year", "TB_per_day"});

  for (const LrcCode lrc : {LrcCode{14, 2, 4}, LrcCode{28, 4, 8}}) {
    const auto a = lrc_annual_traffic(dc, lrc, env.afr);
    const double reads = a.cross_rack_tb_per_year / a.failures_per_year / dc.disk_capacity_tb - 1;
    t.add_row({"LRC-Dp " + lrc.notation(), Table::num(reads, 1),
               Table::num(a.cross_rack_tb_per_year, 0), Table::num(a.cross_rack_tb_per_day(), 1)});
  }
  {
    const SlecCode slec{14, 6};
    const auto a = slec_network_annual_traffic(dc, slec, env.afr);
    t.add_row({"network SLEC " + slec.notation(), Table::num(static_cast<double>(slec.k), 1),
               Table::num(a.cross_rack_tb_per_year, 0), Table::num(a.cross_rack_tb_per_day(), 1)});
  }
  {
    const auto d = mlec_durability(env, code, MlecScheme::kCD, RepairMethod::kRepairMinimum);
    const auto a = mlec_annual_traffic(dc, code, MlecScheme::kCD,
                                       RepairMethod::kRepairMinimum,
                                       d.system_cat_rate_per_year);
    t.add_row({"MLEC C/D " + code.notation() + " R_MIN", "-",
               Table::num(a.cross_rack_tb_per_year, 3), Table::num(a.cross_rack_tb_per_day(), 3)});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "# paper: LRC-Dp < network SLEC (local groups shrink reads), but MLEC\n"
            << "# requires much less network traffic than either.\n";
  return 0;
}
