// Figure 16: PDL of a (14,2,4) declustered LRC under correlated failure
// bursts (chosen by the paper for throughput parity with (10+2)/(17+3)
// MLEC).
#include <cstring>
#include <iostream>

#include "analysis/burst_pdl.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace mlec;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  BurstPdlConfig cfg;
  cfg.trials_per_cell = fast_mode() ? 100 : (full ? 2000 : 600);
  const std::size_t step = fast_mode() ? 12 : (full ? 2 : 6);
  const BurstPdlEngine engine(cfg);
  const LrcCode code{14, 2, 4};

  std::cout << "# paper: Figure 16 — PDL of " << code.notation()
            << " LRC-Dp under correlated failures\n\n";
  const auto map = engine.lrc_heatmap(code, step, 60, 60, &global_pool());
  std::cout << HeatmapRenderer::render(map.values, map.y_labels, map.x_labels,
                                       "PDL heatmap — LRC-Dp (y: failed disks, x: racks)")
            << '\n';
  std::cout << "# paper shape: like network-Dp SLEC, LRC-Dp is susceptible to highly\n"
            << "# scattered bursts (PDL grows to the right), unlike MLEC (Figure 5).\n";
  return 0;
}
