// Quickstart: analyze the paper's default deployment in a dozen lines.
//
//   $ ./quickstart
//
// Configures the (10+2)/(17+3) MLEC over 57,600 disks (paper §3), asks the
// analyzer for repair bandwidth, repair traffic, and two-stage durability,
// then compares all four schemes under the most optimized repair method.
#include <iostream>

#include "core/analyzer.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;

  // The defaults are the paper's setup; changing any field re-analyzes a
  // different deployment.
  SystemSpec spec;
  spec.scheme = MlecScheme::kCD;
  spec.repair = RepairMethod::kRepairMinimum;

  const MlecAnalyzer analyzer(spec);
  std::cout << analyzer.report() << '\n';

  std::cout << "scheme comparison under " << to_string(spec.repair) << ":\n";
  Table t({"scheme", "nines", "single_disk_repair_h", "catastrophic_traffic_TB"});
  for (auto scheme : kAllMlecSchemes) {
    SystemSpec variant = spec;
    variant.scheme = scheme;
    const MlecAnalyzer a(variant);
    t.add_row({to_string(scheme), Table::num(a.durability().nines, 1),
               Table::num(a.single_disk_repair_hours(), 1),
               Table::num(a.injection_traffic().cross_rack_tb(), 2)});
  }
  std::cout << t.to_ascii();
  return 0;
}
