// Layout explorer: prints the physical chunk placement of the paper's
// Figures 2/3 (the four MLEC schemes on a toy 3-rack data center) and the
// Figure 14 (4,2,2) LRC layout.
//
//   $ ./layout_explorer
#include <iostream>
#include <map>

#include "placement/lrc.hpp"
#include "placement/stripe_map.hpp"

namespace {

using namespace mlec;

// Figure 3's toy: 3 racks x 2 enclosures x 6 disks, (2+1)/(2+1).
DataCenterConfig figure3_dc() {
  DataCenterConfig dc;
  dc.racks = 3;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;
  return dc;
}

void print_scheme(MlecScheme scheme) {
  const Topology topo(figure3_dc());
  const MlecCode code{{2, 1}, {2, 1}};
  const StripeMap map(topo, code, scheme, 1, /*seed=*/7);

  std::cout << "--- " << to_string(scheme) << " scheme (paper Figure 3"
            << static_cast<char>('a' + static_cast<int>(scheme)) << ") ---\n";
  // Label network stripes a, b, c...; chunk j of local stripe i of stripe s
  // prints as "<stripe><i><j>" on its disk.
  std::map<DiskId, std::string> labels;
  char name = 'a';
  for (const auto& stripe : map.stripes()) {
    for (std::size_t i = 0; i < stripe.locals.size(); ++i) {
      for (std::size_t j = 0; j < stripe.locals[i].disks.size(); ++j) {
        std::string label{name};
        label += std::to_string(i + 1);
        label += std::to_string(j + 1);
        labels.emplace(stripe.locals[i].disks[j], label);
      }
    }
    if (++name > 'd') break;
  }

  const auto& dc = topo.config();
  for (RackId rack = 0; rack < dc.racks; ++rack) {
    std::cout << "Rack" << rack + 1 << ":";
    for (std::size_t e = 0; e < dc.enclosures_per_rack; ++e) {
      std::cout << "  E" << e + 1 << " [";
      for (std::size_t d = 0; d < dc.disks_per_enclosure; ++d) {
        const DiskId disk = topo.disk_at(rack, e, d);
        auto it = labels.find(disk);
        std::cout << (d ? " " : "") << (it == labels.end() ? "..." : it->second);
      }
      std::cout << "]";
    }
    std::cout << '\n';
  }
  std::cout << "(labels: stripe / local-stripe index / chunk index; '...' = unused)\n\n";
}

void print_lrc() {
  const LrcCode code{4, 2, 2};
  const LrcStripeShape shape(code);
  std::cout << "--- (4,2,2) LRC (paper Figure 14) ---\n";
  DataCenterConfig dc;
  dc.racks = 8;
  const Topology topo(dc);
  const auto placement = place_lrc_declustered(topo, code, 1, /*seed=*/3).front();
  for (std::size_t c = 0; c < code.width(); ++c) {
    std::string role;
    switch (shape.role(c)) {
      case LrcChunkRole::kData:
        role = "data (group " + std::to_string(shape.group(c)) + ")";
        break;
      case LrcChunkRole::kLocalParity:
        role = "local parity of group " + std::to_string(shape.group(c));
        break;
      case LrcChunkRole::kGlobalParity:
        role = "global parity";
        break;
    }
    std::cout << "  chunk " << c << " -> rack R" << placement.racks[c] + 1 << "  (" << role
              << ", single-failure repair reads " << shape.single_repair_reads(c)
              << " chunks)\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  for (auto scheme : kAllMlecSchemes) print_scheme(scheme);
  print_lrc();
  return 0;
}
