// Design advisor: the paper's §6.1 takeaways applied to your deployment.
//
//   $ ./design_advisor [--bursts] [--devops] [--nines N] [--throughput]
//
// Flags describe the environment; the advisor picks an architecture, scheme
// and repair method, prints the paper-backed rationale, and quantifies the
// recommendation with the analyzer.
#include <cstring>
#include <iostream>
#include <string>

#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mlec;

  DeploymentProfile profile;
  profile.required_nines = 25.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bursts") == 0) profile.frequent_failure_bursts = true;
    else if (std::strcmp(argv[i], "--devops") == 0) profile.has_devops_team = true;
    else if (std::strcmp(argv[i], "--throughput") == 0) profile.throughput_critical = true;
    else if (std::strcmp(argv[i], "--nines") == 0 && i + 1 < argc)
      profile.required_nines = std::stod(argv[++i]);
    else {
      std::cerr << "usage: design_advisor [--bursts] [--devops] [--nines N] [--throughput]\n";
      return 1;
    }
  }

  std::cout << "profile: bursts=" << (profile.frequent_failure_bursts ? "frequent" : "rare")
            << ", devops=" << (profile.has_devops_team ? "yes" : "no")
            << ", required nines=" << profile.required_nines
            << ", throughput-critical=" << (profile.throughput_critical ? "yes" : "no")
            << "\n\n";

  const auto rec = advise(profile);
  std::cout << "recommendation: " << rec.summary() << '\n';
  for (const auto& line : rec.rationale) std::cout << "  - " << line << '\n';
  std::cout << '\n';

  if (!rec.use_mlec) {
    std::cout << "(single-level EC recommended; see bench_fig12_mlec_vs_slec for the\n"
              << " durability/throughput frontier at your overhead budget)\n";
    return 0;
  }

  SystemSpec spec;
  spec.scheme = rec.scheme;
  spec.repair = rec.repair;
  const MlecAnalyzer analyzer(spec);
  std::cout << "with the paper's default " << spec.code.notation() << " code:\n"
            << analyzer.report();

  const auto d = analyzer.durability();
  if (d.nines < profile.required_nines)
    std::cout << "\nNOTE: " << Table::num(d.nines, 1) << " nines misses the "
              << profile.required_nines
              << "-nine target; widen parities (see bench_fig12) or relax the target.\n";
  return 0;
}
