// Repair drill: the paper's Figure 4 walk-through, executable.
//
//   $ ./repair_drill
//
// Injects a catastrophic local-pool failure (p_l+1 concurrent disk losses)
// into a toy C/D system, classifies the damage with the Table 1 taxonomy,
// and plans the repair under all four methods, printing exactly what each
// one moves over the network vs inside the rack.
#include <iostream>

#include "placement/stripe_map.hpp"
#include "sim/repair_planner.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlec;

  DataCenterConfig dc;
  dc.racks = 3;
  dc.enclosures_per_rack = 1;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;  // 10 chunks per disk
  const MlecCode code{{2, 1}, {2, 1}};
  const Topology topo(dc);
  const StripeMap map(topo, code, MlecScheme::kCD, 10, /*seed=*/11);

  // Fail p_l+1 = 2 disks of a rack-1 declustered pool that co-host a local
  // stripe (Figure 4's D1, D3): the pool then holds a lost local stripe and
  // is catastrophic, while other affected stripes remain locally repairable.
  std::vector<DiskId> failed;
  for (const auto& stripe : map.stripes()) {
    for (const auto& local : stripe.locals) {
      if (map.pool_rack(local.pool) == 0) {
        failed = {local.disks[0], local.disks[1]};
        break;
      }
    }
    if (!failed.empty()) break;
  }
  std::cout << "failing disks:";
  for (DiskId d : failed) std::cout << ' ' << topo.describe(d);
  std::cout << "\n\n";

  const auto damage = assess_failures(map, failed);
  std::cout << "Table 1 damage assessment:\n"
            << "  failed chunks:                     " << damage.failed_chunks << '\n'
            << "  affected local stripes:            " << damage.affected_local_stripes << '\n'
            << "  locally-recoverable local stripes: "
            << damage.locally_recoverable_local_stripes << '\n'
            << "  lost local stripes:                " << damage.lost_local_stripes << '\n'
            << "  catastrophic local pools:          " << damage.catastrophic_local_pools << '\n'
            << "  recoverable network stripes:       " << damage.recoverable_network_stripes
            << '\n'
            << "  lost network stripes (data loss):  " << damage.lost_network_stripes << "\n\n";

  std::cout << "repair plans (chunk transfers; network = cross-rack):\n";
  Table t({"method", "net_reads", "net_writes", "local_reads", "local_writes"});
  for (auto method : kAllRepairMethods) {
    const auto plan = plan_repair(map, failed, method);
    t.add_row({to_string(method), Table::num(plan.network_read_chunks, 0),
               Table::num(plan.network_write_chunks, 0), Table::num(plan.local_read_chunks, 0),
               Table::num(plan.local_write_chunks, 0)});
  }
  std::cout << t.to_ascii() << '\n';
  std::cout << "Figure 4's story: R_ALL rebuilds the whole pool over the network;\n"
            << "R_FCO only the failed chunks; R_HYB keeps locally-recoverable stripes\n"
            << "local; R_MIN network-repairs one chunk per lost stripe, then finishes\n"
            << "locally.\n";
  return 0;
}
