// Trace replay: run the chunk-exact system simulator from a failure trace.
//
//   $ ./trace_replay               # synthetic exponential trace
//   $ ./trace_replay my_trace.csv  # replay "time_hours,disk_id" lines
//
// The bundled synthetic mode generates a hot (AFR 60%) year on a shrunken
// 540-disk C/C system so something actually happens, prints the trace head,
// and reports the per-mission outcome; a trace file is replayed verbatim
// against the same deployment.
#include <fstream>
#include <iostream>

#include "sim/failure_gen.hpp"
#include "sim/system_sim.hpp"
#include "placement/stripe_map.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mlec;

  SystemSimConfig cfg;
  cfg.dc.racks = 6;
  cfg.dc.enclosures_per_rack = 3;
  cfg.dc.disks_per_enclosure = 30;
  cfg.dc.disk_capacity_tb = 8.0;
  cfg.code = {{2, 1}, {8, 2}};
  cfg.scheme = MlecScheme::kCC;
  cfg.method = RepairMethod::kRepairMinimum;
  cfg.failures.afr = 0.6;
  const Topology topo(cfg.dc);

  std::cout << "deployment: " << cfg.code.notation() << " " << to_string(cfg.scheme) << " over "
            << cfg.dc.total_disks() << " disks, repair " << to_string(cfg.method) << "\n\n";

  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    const auto trace = parse_trace(in, topo);
    std::cout << "replaying " << trace.size() << " failures from " << argv[1] << "\n";
    // Assess the end-state damage against a materialized placement.
    const StripeMap map(topo, cfg.code, cfg.scheme, 8, 42);
    std::vector<DiskId> failed;
    for (const auto& ev : trace) failed.push_back(ev.disk);
    const auto damage = assess_failures(map, failed);
    std::cout << "if nothing were repaired: " << damage.lost_local_stripes
              << " lost local stripes, " << damage.lost_network_stripes
              << " lost network stripes\n";
    return 0;
  }

  // Synthetic mode: show the trace format, then Monte-Carlo the year.
  Rng rng(99);
  const auto sample = generate_failures(topo, cfg.failures, 30.0 * 24.0, rng);
  std::cout << "first month of a sample trace (format: time_hours,disk_id):\n";
  std::cout << format_trace(FailureTrace(sample.begin(),
                                         sample.begin() + std::min<std::size_t>(8, sample.size())));
  std::cout << "...\n\n";

  const std::uint64_t missions = 400;
  const auto result = simulate_system(cfg, missions, 99);
  Table t({"missions", "data_loss_missions", "PDL", "catastrophic_pool_events"});
  t.add_row({std::to_string(result.missions), std::to_string(result.data_loss_missions),
             Table::num(result.pdl(), 4), std::to_string(result.catastrophic_pool_events)});
  std::cout << t.to_ascii("one-year Monte Carlo @ AFR 60%");
  if (result.loss_time_hours.count() > 0)
    std::cout << "mean time of first loss in lossy missions: "
              << Table::num(result.loss_time_hours.mean(), 0) << " h\n";
  return 0;
}
