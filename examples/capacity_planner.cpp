// Capacity planner: search the MLEC configuration space for the cheapest
// code meeting a durability target.
//
//   $ ./capacity_planner [--nines N] [--max-overhead PCT] [--bursts R]
//
// Enumerates (k_n+p_n)/(k_l+p_l) configurations that fit the paper's
// topology, filters to the overhead budget, evaluates durability with the
// splitting/Markov pipeline (optionally under a burst climate), and reports
// the lowest-overhead configurations that clear the target, with encoding
// throughput as the tiebreaker.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <vector>

#include "analysis/burst_pdl.hpp"
#include "analysis/durability.hpp"
#include "analysis/encoding.hpp"
#include "placement/pools.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mlec;

  double target_nines = 25.0;
  double max_overhead = 0.35;
  double burst_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nines") == 0 && i + 1 < argc)
      target_nines = std::stod(argv[++i]);
    else if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc)
      max_overhead = std::stod(argv[++i]) / 100.0;
    else if (std::strcmp(argv[i], "--bursts") == 0 && i + 1 < argc)
      burst_rate = std::stod(argv[++i]);
    else {
      std::cerr << "usage: capacity_planner [--nines N] [--max-overhead PCT] [--bursts R]\n";
      return 1;
    }
  }

  const DurabilityEnv env;
  BurstPdlConfig burst_cfg;
  burst_cfg.trials_per_cell = 800;
  const BurstPdlEngine engine(burst_cfg);
  const BurstClimate climate{burst_rate, 3, 30};

  std::cout << "target: >= " << target_nines << " nines, <= " << 100 * max_overhead
            << "% overhead, burst rate " << burst_rate << "/yr; repair R_MIN\n\n";

  struct Candidate {
    MlecCode code;
    MlecScheme scheme;
    double overhead, nines, gbps;
  };
  std::vector<Candidate> winners;

  for (auto scheme : kAllMlecSchemes) {
    for (std::size_t kn = 2; kn <= 20; ++kn) {
      for (std::size_t pn = 1; pn <= 3; ++pn) {
        for (std::size_t kl = 2; kl <= 24; ++kl) {
          for (std::size_t pl = 1; pl <= 4; ++pl) {
            const MlecCode code{{kn, pn}, {kl, pl}};
            if (code.overhead() > max_overhead) continue;
            // Placement constraints of the paper topology.
            try {
              const PoolLayout layout(env.dc, code, scheme);
              (void)layout;
            } catch (const PreconditionError&) {
              continue;
            }
            const double nines =
                burst_rate > 0.0
                    ? mlec_durability_with_bursts(env, code, scheme,
                                                  RepairMethod::kRepairMinimum, climate, engine)
                          .nines
                    : mlec_durability(env, code, scheme, RepairMethod::kRepairMinimum).nines;
            if (nines < target_nines) continue;
            winners.push_back({code, scheme, code.overhead(), nines, 0.0});
          }
        }
      }
    }
  }

  if (winners.empty()) {
    std::cout << "no configuration meets the target; raise the overhead budget or relax\n"
                 "the durability requirement (takeaway 5: consider SLEC for modest\n"
                 "targets).\n";
    return 0;
  }

  std::sort(winners.begin(), winners.end(), [](const Candidate& a, const Candidate& b) {
    if (a.overhead != b.overhead) return a.overhead < b.overhead;
    return a.nines > b.nines;
  });
  winners.resize(std::min<std::size_t>(winners.size(), 10));
  for (auto& w : winners) w.gbps = mlec_encoding_mbps(w.code, env.dc.chunk_kb) / 1e3;
  std::sort(winners.begin(), winners.end(), [](const Candidate& a, const Candidate& b) {
    if (a.overhead != b.overhead) return a.overhead < b.overhead;
    return a.gbps > b.gbps;
  });

  Table t({"config", "scheme", "overhead_%", "nines", "encode_GBps"});
  for (const auto& w : winners)
    t.add_row({w.code.notation(), to_string(w.scheme), Table::num(100 * w.overhead, 1),
               Table::num(w.nines, 1), Table::num(w.gbps, 2)});
  std::cout << t.to_ascii("cheapest configurations meeting the target") << '\n';
  std::cout << "pick the top row; rerun with --bursts if your site sees correlated\n"
               "failures (the ranking can flip toward C/C — takeaway 3).\n";
  return 0;
}
