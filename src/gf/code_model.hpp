// Pluggable code-family layer: every consumer of "the erasure code" talks
// to a CodeModel instead of a raw (k, p) pair, lifting the MDS assumption
// out of the simulators, planners, closed forms, and the byte-exact repair
// executor.
//
// A CodeModel answers four questions about one MLEC level's code:
//  * decodability — can_repair() over an erasure bitmask (or index list),
//    O(1) after construction via a precomputed table (the YTsaurus lrc.h
//    idiom) for the non-MDS families;
//  * repair cost — shards read to rebuild one position under a failure
//    pattern, and the average over single failures (the quantity that sets
//    cross-rack repair traffic);
//  * tolerance structure — min_tolerance (largest f with every f-pattern
//    decodable), max_tolerance, and the per-f decodable fraction the
//    closed forms consume in place of the MDS "p" everywhere;
//  * the concrete encoder/decoder over the SIMD ec:: data plane.
//
// Families shipped here: classic Reed-Solomon (kRs), wide Reed-Solomon
// (kRsWide, k >= 50, exercising the GF(256) 256-symbol limit), and
// Azure-style LRC (kLrc) with XOR local parities per group and Cauchy
// global parities. make_code_model() caches models per parameter set, so
// the (expensive for LRC) decodability table and the encode plans are
// built once per process.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gf/rs.hpp"
#include "placement/codes.hpp"

namespace mlec {

enum class CodeFamily {
  kRs,      ///< classic MDS Reed-Solomon
  kRsWide,  ///< Reed-Solomon with k >= 50 (wide stripes, plan caching)
  kLrc,     ///< Azure-style (k, l, r) locally repairable code
};

const char* to_string(CodeFamily family);
/// Parses "rs", "rs_wide", "lrc" (the spec_io [code] family key).
CodeFamily parse_code_family(const std::string& text);

/// One MLEC level's code selection: the family plus its parameters. The
/// rs field carries kRs/kRsWide shapes; the lrc field carries kLrc shapes.
struct LevelCode {
  CodeFamily family = CodeFamily::kRs;
  SlecCode rs{0, 0};
  LrcCode lrc{};

  static LevelCode make_rs(SlecCode code) { return {CodeFamily::kRs, code, {}}; }
  static LevelCode make_wide(SlecCode code) { return {CodeFamily::kRsWide, code, {}}; }
  static LevelCode make_lrc(LrcCode code) { return {CodeFamily::kLrc, {0, 0}, code}; }

  std::size_t data_chunks() const { return family == CodeFamily::kLrc ? lrc.k : rs.k; }
  std::size_t parity_chunks() const {
    return family == CodeFamily::kLrc ? lrc.l + lrc.r : rs.p;
  }
  std::size_t width() const { return data_chunks() + parity_chunks(); }

  /// Family-qualified notation, e.g. "rs(10+2)", "rs_wide(50+10)",
  /// "lrc(12,2,2)".
  std::string notation() const;
  void validate() const;
  bool operator==(const LevelCode&) const = default;
};

/// Erased-position bitmask: bit i set means shard i is lost. Mask-based
/// queries require width() <= 64; the index-list overloads have no such
/// limit (wide RS can exceed 64 shards).
using ErasureMask = std::uint64_t;

class CodeModel {
 public:
  virtual ~CodeModel() = default;

  virtual CodeFamily family() const = 0;
  virtual const LevelCode& level() const = 0;
  std::size_t data_chunks() const { return level().data_chunks(); }
  std::size_t parity_chunks() const { return level().parity_chunks(); }
  std::size_t width() const { return level().width(); }
  std::string notation() const { return level().notation(); }

  /// O(1) decodability test over an erasure bitmask.
  virtual bool can_repair(ErasureMask erased) const = 0;
  /// Index-list form (valid for any width; indices must be distinct).
  virtual bool can_repair(std::span<const std::size_t> erased) const = 0;
  bool is_data_loss(ErasureMask erased) const { return !can_repair(erased); }

  /// Largest f such that EVERY f-erasure pattern decodes (p for MDS codes;
  /// strictly less for LRC). The closed forms' overlap threshold.
  virtual std::size_t min_tolerance() const = 0;
  /// Largest f with at least one decodable f-erasure pattern (<= parities).
  virtual std::size_t max_tolerance() const = 0;
  /// Fraction of f-erasure patterns that decode (1 for f <= min_tolerance,
  /// 0 beyond max_tolerance). The closed forms and the fleet simulator
  /// both thin (min_tolerance+1)-overlaps by 1 - decodable_fraction(t+1).
  virtual double decodable_fraction(std::size_t f) const = 0;

  /// Shards read to rebuild `position` when `erased` (which must contain
  /// `position` and be decodable) is lost: k for MDS codes, the local
  /// group width minus one for LRC positions whose group holds no other
  /// erasure — the locality payoff.
  virtual double repair_reads(std::size_t position, ErasureMask erased) const = 0;
  double single_repair_reads(std::size_t position) const {
    return repair_reads(position, ErasureMask{1} << position);
  }
  /// Mean of single_repair_reads over all positions — the per-chunk read
  /// amplification that prices cross-rack repair traffic (k for RS).
  virtual double avg_single_repair_reads() const = 0;

  /// Compute all parity shards from the data shards (sizes data_chunks()
  /// and parity_chunks(); equal shard lengths).
  virtual void encode(std::span<const std::span<const gf::byte_t>> data,
                      std::span<const std::span<gf::byte_t>> parity) const = 0;
  /// Rebuild the shards listed in `lost` (global indices over width())
  /// in place; requires can_repair(lost).
  virtual void decode(std::vector<std::vector<gf::byte_t>>& shards,
                      std::span<const std::size_t> lost) const = 0;
};

/// Build (or fetch from the process-wide cache) the model for `level`.
/// Models are immutable and shared; repeated calls with the same parameters
/// return the same instance, so encode plans and decodability tables exist
/// once per process (the wide-RS "plan caching" requirement).
std::shared_ptr<const CodeModel> make_code_model(const LevelCode& level);

}  // namespace mlec
