// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// RsCode(k, p) produces p parity shards from k data shards and can rebuild
// any <= p lost shards from any k survivors (MDS, via a Cauchy generator).
// This is the encoder measured in the Figure 11 throughput study and the
// arithmetic backing every chunk-level repair walk-through in the examples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf/matrix.hpp"

namespace mlec::gf {

class RsCode {
 public:
  /// Requires 1 <= k, 0 <= p, and k + p <= 256 (field-size limit).
  RsCode(std::size_t k, std::size_t p);

  std::size_t k() const { return k_; }
  std::size_t p() const { return p_; }

  /// Compute parity shards from data shards. data.size() == k,
  /// parity.size() == p, all shards the same length.
  void encode(std::span<const std::span<const byte_t>> data,
              std::span<const std::span<byte_t>> parity) const;

  /// Convenience overload over vectors.
  void encode(const std::vector<std::vector<byte_t>>& data,
              std::vector<std::vector<byte_t>>& parity) const;

  /// Rebuild the shards listed in `lost` (global indices: 0..k-1 data,
  /// k..k+p-1 parity) from any k available shards.
  ///
  /// `shards` holds all k+p shard buffers; entries listed in `lost` are
  /// outputs (overwritten), all others must contain valid data. Requires
  /// lost.size() <= p.
  void decode(std::vector<std::vector<byte_t>>& shards,
              std::span<const std::size_t> lost) const;

  /// The p x k parity-generation rows (Cauchy).
  const Matrix& parity_rows() const { return parity_rows_; }

 private:
  std::size_t k_;
  std::size_t p_;
  Matrix parity_rows_;
  std::vector<FullMulTable> encode_tables_;  // p*k tables, row-major
};

}  // namespace mlec::gf
