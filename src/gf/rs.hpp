// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// RsCode(k, p) produces p parity shards from k data shards and can rebuild
// any <= p lost shards from any k survivors (MDS, via a Cauchy generator).
// This is the encoder measured in the Figure 11 throughput study and the
// arithmetic backing every chunk-level repair walk-through in the examples.
//
// The data plane is the SIMD-dispatched src/ec/ subsystem: encode runs as
// one fused multi-source x multi-parity pass over the shards (ec::encode
// over an ec::EncodePlan), and decode as fused passes over an
// ec::DecodePlan built once per erasure pattern and cached on the code —
// repeated repairs of the same pattern (the common case in a rebuild) pay
// zero matrix arithmetic. Everything is vectorized per the host CPU
// (scalar / SSSE3 / AVX2 / AVX-512 / GFNI — see ec/backend.hpp for the
// dispatch rules).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "ec/codec.hpp"
#include "ec/decode.hpp"
#include "ec/stream.hpp"
#include "gf/matrix.hpp"
#include "util/thread_safety.hpp"

namespace mlec::gf {

class RsCode {
 public:
  /// Requires 1 <= k and k + p <= 256 (field-size limit). p == 0 is a
  /// valid (replication-free) configuration, but such a code cannot repair
  /// anything: decode() rejects any non-empty `lost` set for it.
  RsCode(std::size_t k, std::size_t p);

  std::size_t k() const { return k_; }
  std::size_t p() const { return p_; }

  /// Compute parity shards from data shards. data.size() == k,
  /// parity.size() == p, all shards the same length.
  void encode(std::span<const std::span<const byte_t>> data,
              std::span<const std::span<byte_t>> parity) const;

  /// Convenience overload over vectors.
  void encode(const std::vector<std::vector<byte_t>>& data,
              std::vector<std::vector<byte_t>>& parity) const;

  /// Parallel encode for large shards: slices the buffers across `pool` via
  /// the ec streaming codec. Bit-identical to encode(); returns false when
  /// `stop` truncated the work (parity contents then undefined).
  bool encode_parallel(std::span<const std::span<const byte_t>> data,
                       std::span<const std::span<byte_t>> parity, ThreadPool& pool,
                       StopToken stop = {}) const;

  /// Rebuild the shards listed in `lost` (global indices: 0..k-1 data,
  /// k..k+p-1 parity) from any k available shards.
  ///
  /// `shards` holds all k+p shard buffers; entries listed in `lost` are
  /// outputs (overwritten), all others must contain valid data. Requires
  /// lost.size() <= p.
  void decode(std::vector<std::vector<byte_t>>& shards,
              std::span<const std::size_t> lost) const;

  /// Parallel decode for large shards, mirroring encode_parallel: same
  /// contract as decode(), sliced across `pool` via ec::decode_parallel
  /// (NUMA-aware partitioning per ec::StreamOptions). Bit-identical to
  /// decode(); returns false when `stop` truncated the work (rebuilt shard
  /// contents then undefined).
  bool decode_parallel(std::vector<std::vector<byte_t>>& shards,
                       std::span<const std::size_t> lost, ThreadPool& pool,
                       StopToken stop = {}) const;

  /// The fused plan for one erasure pattern, built on first use and cached
  /// (keyed by the sorted pattern) for the lifetime of the code. Streaming
  /// callers can drive ec::decode / ec::decode_parallel with it directly.
  std::shared_ptr<const ec::DecodePlan> decode_plan(std::span<const std::size_t> lost) const
      MLEC_EXCLUDES(plan_mutex_);

  /// Cached erasure patterns (tests/diagnostics).
  std::size_t cached_decode_plans() const MLEC_EXCLUDES(plan_mutex_);

  /// The p x k parity-generation rows (Cauchy).
  const Matrix& parity_rows() const { return parity_rows_; }

  /// The compiled p x k encoding plan (ec data plane), e.g. for streaming
  /// callers that drive ec::encode_parallel themselves.
  const ec::EncodePlan& encode_plan() const { return encode_plan_; }

 private:
  std::size_t k_;
  std::size_t p_;
  Matrix parity_rows_;
  ec::EncodePlan encode_plan_;      // p x k parity rows as nibble tables
  std::vector<byte_t> generator_;   // (k+p) x k systematic generator rows
  mutable Mutex plan_mutex_;
  /// Plans are built outside the lock and emplaced under it: a racing
  /// builder of the same pattern loses the emplace and its (identical)
  /// plan is dropped. The map itself is only ever touched locked.
  mutable std::map<std::vector<std::size_t>, std::shared_ptr<const ec::DecodePlan>> plan_cache_
      MLEC_GUARDED_BY(plan_mutex_);
};

}  // namespace mlec::gf
