// Dense matrices over GF(2^8): construction of MDS generator matrices and
// Gaussian elimination for decode.
#pragma once

#include <cstddef>
#include <vector>

#include "gf/gf256.hpp"

namespace mlec::gf {

/// Row-major byte matrix over GF(256).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  byte_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  byte_t at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  static Matrix identity(std::size_t n);

  /// Cauchy matrix rows x cols: a[i][j] = 1/(x_i + y_j) with distinct
  /// x_i = i + cols and y_j = j. Any square submatrix is invertible, making
  /// the systematic [I; C] generator MDS for k = cols, p = rows.
  static Matrix cauchy(std::size_t rows, std::size_t cols);

  /// Vandermonde rows x cols: a[i][j] = j^i (with 0^0 = 1). Kept for layout
  /// comparisons/tests; Cauchy is what the coder uses for guaranteed MDS.
  static Matrix vandermonde(std::size_t rows, std::size_t cols);

  Matrix multiply(const Matrix& other) const;

  /// Inverse via Gauss-Jordan. Requires a square, nonsingular matrix;
  /// returns false (leaving *out* unspecified) when singular.
  bool invert(Matrix& out) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<byte_t> data_;
};

}  // namespace mlec::gf
