#include "gf/code_model.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>

#include "ec/codec.hpp"
#include "ec/decode.hpp"
#include "gf/matrix.hpp"
#include "util/error.hpp"
#include "util/thread_safety.hpp"

namespace mlec {

namespace {

/// Widest LRC stripe whose decodability table we precompute: 2^20 entries
/// (1 MB of bools) covers every published Azure shape with lots of room.
constexpr std::size_t kLrcBitmaskWidthLimit = 20;

ErasureMask mask_of(std::span<const std::size_t> erased, std::size_t width) {
  ErasureMask mask = 0;
  for (std::size_t idx : erased) {
    MLEC_REQUIRE(idx < width, "erased index out of range");
    const ErasureMask bit = ErasureMask{1} << idx;
    MLEC_REQUIRE((mask & bit) == 0, "duplicate erased index");
    mask |= bit;
  }
  return mask;
}

// ---------------------------------------------------------------------------
// Reed-Solomon (classic and wide): MDS, so every structural query is closed
// form over (k, p); the byte plane delegates to gf::RsCode.

class RsCodeModel final : public CodeModel {
 public:
  explicit RsCodeModel(const LevelCode& level)
      : level_(level), code_(level.rs.k, level.rs.p) {}

  CodeFamily family() const override { return level_.family; }
  const LevelCode& level() const override { return level_; }

  bool can_repair(ErasureMask erased) const override {
    return static_cast<std::size_t>(std::popcount(erased)) <= level_.rs.p;
  }
  bool can_repair(std::span<const std::size_t> erased) const override {
    return erased.size() <= level_.rs.p;
  }

  std::size_t min_tolerance() const override { return level_.rs.p; }
  std::size_t max_tolerance() const override { return level_.rs.p; }
  double decodable_fraction(std::size_t f) const override {
    return f <= level_.rs.p ? 1.0 : 0.0;
  }

  double repair_reads(std::size_t position, ErasureMask erased) const override {
    MLEC_REQUIRE(position < width(), "position out of range");
    MLEC_REQUIRE((erased >> position) & 1U, "erased mask must contain the position");
    MLEC_REQUIRE(can_repair(erased), "pattern is not decodable");
    return static_cast<double>(level_.rs.k);
  }
  double avg_single_repair_reads() const override {
    return static_cast<double>(level_.rs.k);
  }

  void encode(std::span<const std::span<const gf::byte_t>> data,
              std::span<const std::span<gf::byte_t>> parity) const override {
    code_.encode(data, parity);
  }
  void decode(std::vector<std::vector<gf::byte_t>>& shards,
              std::span<const std::size_t> lost) const override {
    code_.decode(shards, lost);
  }

 private:
  LevelCode level_;
  gf::RsCode code_;
};

// ---------------------------------------------------------------------------
// Azure-style LRC: k data chunks in l groups (positions g*k/l..), one XOR
// local parity per group (positions k..k+l-1), r Cauchy global parities
// (positions k+l..). Decodability is the GF(256) rank of the survivor rows
// of this concrete generator, precomputed into a bitmask-indexed table
// (O(1) queries) with monotone pruning: erasing more never helps, so a mask
// whose one-bit-removed submask already fails skips the rank test.

class LrcCodeModel final : public CodeModel {
 public:
  explicit LrcCodeModel(const LevelCode& level) : level_(level) {
    const LrcCode& c = level.lrc;
    const std::size_t n = c.width();
    const std::size_t k = c.k;
    MLEC_REQUIRE(n <= kLrcBitmaskWidthLimit,
                 "LRC decodability table supports at most 20 shards");

    // Generator rows over the k data symbols: identity for data, all-ones
    // per group for local parities, Cauchy for globals.
    gen_ = gf::Matrix(n, k);
    const gf::Matrix global = gf::Matrix::cauchy(c.r, k);
    const std::size_t gd = c.group_data_chunks();
    for (std::size_t i = 0; i < k; ++i) gen_.at(i, i) = 1;
    for (std::size_t g = 0; g < c.l; ++g)
      for (std::size_t j = 0; j < gd; ++j) gen_.at(k + g, g * gd + j) = 1;
    for (std::size_t j = 0; j < c.r; ++j)
      for (std::size_t col = 0; col < k; ++col) gen_.at(k + c.l + j, col) = global.at(j, col);

    std::vector<gf::byte_t> coeffs((c.l + c.r) * k);
    for (std::size_t row = 0; row < c.l + c.r; ++row)
      for (std::size_t col = 0; col < k; ++col) coeffs[row * k + col] = gen_.at(k + row, col);
    encode_plan_ = ec::EncodePlan(c.l + c.r, k, coeffs);

    flat_gen_.resize(n * k);
    for (std::size_t row = 0; row < n; ++row)
      for (std::size_t col = 0; col < k; ++col) flat_gen_[row * k + col] = gen_.at(row, col);

    build_decodability_table();

    single_reads_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      single_reads_[i] = group_of(i) < c.l ? static_cast<double>(gd) : static_cast<double>(k);
      total += single_reads_[i];
    }
    avg_single_reads_ = total / static_cast<double>(n);
  }

  CodeFamily family() const override { return CodeFamily::kLrc; }
  const LevelCode& level() const override { return level_; }

  bool can_repair(ErasureMask erased) const override {
    MLEC_REQUIRE(erased < (ErasureMask{1} << width()), "erased mask wider than the code");
    return can_repair_[erased];
  }
  bool can_repair(std::span<const std::size_t> erased) const override {
    return can_repair_[mask_of(erased, width())];
  }

  std::size_t min_tolerance() const override { return min_tolerance_; }
  std::size_t max_tolerance() const override { return max_tolerance_; }
  double decodable_fraction(std::size_t f) const override {
    return f < decodable_frac_.size() ? decodable_frac_[f] : 0.0;
  }

  double repair_reads(std::size_t position, ErasureMask erased) const override {
    MLEC_REQUIRE(position < width(), "position out of range");
    MLEC_REQUIRE((erased >> position) & 1U, "erased mask must contain the position");
    MLEC_REQUIRE(can_repair(erased), "pattern is not decodable");
    // Local repair applies when the position's group holds no OTHER
    // erasure: read the surviving group members (group width minus one).
    const std::size_t g = group_of(position);
    if (g < level_.lrc.l && (erased & group_mask_[g]) == (ErasureMask{1} << position))
      return single_reads_[position];
    return static_cast<double>(level_.lrc.k);
  }
  double avg_single_repair_reads() const override { return avg_single_reads_; }

  void encode(std::span<const std::span<const gf::byte_t>> data,
              std::span<const std::span<gf::byte_t>> parity) const override {
    const LrcCode& c = level_.lrc;
    MLEC_REQUIRE(data.size() == c.k, "expected k data shards");
    MLEC_REQUIRE(parity.size() == c.l + c.r, "expected l+r parity shards");
    const std::size_t len = data.empty() ? 0 : data[0].size();
    for (const auto& shard : data) MLEC_REQUIRE(shard.size() == len, "data shard size mismatch");
    for (const auto& shard : parity)
      MLEC_REQUIRE(shard.size() == len, "parity shard size mismatch");
    ec::encode(encode_plan_, data, parity);
  }

  void decode(std::vector<std::vector<gf::byte_t>>& shards,
              std::span<const std::size_t> lost) const override {
    MLEC_REQUIRE(shards.size() == width(), "expected one buffer per shard");
    MLEC_REQUIRE(can_repair(lost), "pattern is not decodable");
    if (lost.empty()) return;
    const std::size_t len = shards[0].size();
    for (const auto& s : shards) MLEC_REQUIRE(s.size() == len, "shard size mismatch");

    // Fused plan per erasure pattern, cached: DecodePlan runs the same
    // greedy rank-growing survivor selection this model used to do inline
    // (stripe order, so intact data passes through untouched), then all
    // byte work is dispatched ec kernels.
    const auto plan = decode_plan(lost);
    std::vector<gf::byte_t*> ptrs(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) ptrs[i] = shards[i].data();
    ec::decode(*plan, ptrs.data(), len);
  }

  /// Plan for `lost`, built on first use and cached (keyed by the sorted
  /// pattern). A decodable pattern always yields a viable plan — both walk
  /// survivor rows the same way.
  std::shared_ptr<const ec::DecodePlan> decode_plan(std::span<const std::size_t> lost) const
      MLEC_EXCLUDES(plan_mutex_) {
    std::vector<std::size_t> key(lost.begin(), lost.end());
    std::sort(key.begin(), key.end());
    {
      const MutexLock lock(plan_mutex_);
      if (auto it = plan_cache_.find(key); it != plan_cache_.end()) return it->second;
    }
    // Built outside the lock (same emplace race as RsCode::decode_plan:
    // the losing builder's identical plan is dropped).
    auto plan = std::make_shared<const ec::DecodePlan>(width(), level_.lrc.k, flat_gen_, key);
    MLEC_ASSERT(plan->viable(), "decodable pattern must yield a full-rank survivor set");
    const MutexLock lock(plan_mutex_);
    return plan_cache_.emplace(std::move(key), std::move(plan)).first->second;
  }

 private:
  /// Local group of a position; l for global parities.
  std::size_t group_of(std::size_t position) const {
    const LrcCode& c = level_.lrc;
    if (position < c.k) return position / c.group_data_chunks();
    if (position < c.k + c.l) return position - c.k;
    return c.l;
  }

  /// Survivor rows span the k data symbols?
  bool full_rank_survivors(ErasureMask erased) const {
    const std::size_t n = width();
    const std::size_t k = level_.lrc.k;
    std::vector<std::vector<gf::byte_t>> reduced;
    std::vector<std::size_t> pivots;
    for (std::size_t row = 0; row < n && reduced.size() < k; ++row) {
      if ((erased >> row) & 1U) continue;
      std::vector<gf::byte_t> v(k);
      for (std::size_t col = 0; col < k; ++col) v[col] = gen_.at(row, col);
      for (std::size_t r = 0; r < reduced.size(); ++r) {
        const gf::byte_t factor = v[pivots[r]];
        if (factor == 0) continue;
        for (std::size_t col = 0; col < k; ++col)
          v[col] = gf::add(v[col], gf::mul(factor, reduced[r][col]));
      }
      std::size_t pivot = k;
      for (std::size_t col = 0; col < k; ++col)
        if (v[col] != 0) {
          pivot = col;
          break;
        }
      if (pivot == k) continue;
      const gf::byte_t scale = gf::inv(v[pivot]);
      for (std::size_t col = 0; col < k; ++col) v[col] = gf::mul(scale, v[col]);
      reduced.push_back(std::move(v));
      pivots.push_back(pivot);
    }
    return reduced.size() == k;
  }

  void build_decodability_table() {
    const std::size_t n = width();
    const std::size_t k = level_.lrc.k;
    const std::size_t parities = n - k;
    can_repair_.assign(ErasureMask{1} << n, false);
    std::vector<double> decodable(n + 1, 0.0);
    std::vector<double> patterns(n + 1, 0.0);

    // Increasing mask order guarantees every one-bit-removed submask is
    // already classified (it is numerically smaller).
    for (ErasureMask mask = 0; mask < (ErasureMask{1} << n); ++mask) {
      const auto f = static_cast<std::size_t>(std::popcount(mask));
      patterns[f] += 1.0;
      if (f > parities) continue;  // fewer than k survivors
      bool candidate = true;
      for (std::size_t b = 0; b < n && candidate; ++b)
        if ((mask >> b) & 1U) candidate = can_repair_[mask & ~(ErasureMask{1} << b)];
      const bool ok = candidate && (mask == 0 || full_rank_survivors(mask));
      can_repair_[mask] = ok;
      if (ok) decodable[f] += 1.0;
    }

    decodable_frac_.resize(n + 1);
    max_tolerance_ = 0;
    for (std::size_t f = 0; f <= n; ++f) {
      decodable_frac_[f] = decodable[f] / patterns[f];
      if (decodable[f] > 0.0) max_tolerance_ = f;
    }
    min_tolerance_ = 0;
    while (min_tolerance_ < n && decodable_frac_[min_tolerance_ + 1] == 1.0) ++min_tolerance_;

    group_mask_.assign(level_.lrc.l, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t g = group_of(i);
      if (g < level_.lrc.l) group_mask_[g] |= ErasureMask{1} << i;
    }
  }

  LevelCode level_;
  gf::Matrix gen_;                  ///< n x k generator over the data symbols
  std::vector<gf::byte_t> flat_gen_;  ///< gen_ flattened row-major for DecodePlan
  ec::EncodePlan encode_plan_;
  mutable Mutex plan_mutex_;
  mutable std::map<std::vector<std::size_t>, std::shared_ptr<const ec::DecodePlan>> plan_cache_
      MLEC_GUARDED_BY(plan_mutex_);
  std::vector<bool> can_repair_;  ///< indexed by erasure bitmask
  std::vector<double> decodable_frac_;
  std::vector<double> single_reads_;
  std::vector<ErasureMask> group_mask_;
  double avg_single_reads_ = 0.0;
  std::size_t min_tolerance_ = 0;
  std::size_t max_tolerance_ = 0;
};

}  // namespace

const char* to_string(CodeFamily family) {
  switch (family) {
    case CodeFamily::kRs: return "rs";
    case CodeFamily::kRsWide: return "rs_wide";
    case CodeFamily::kLrc: return "lrc";
  }
  throw InternalError("unknown code family");
}

CodeFamily parse_code_family(const std::string& text) {
  if (text == "rs") return CodeFamily::kRs;
  if (text == "rs_wide") return CodeFamily::kRsWide;
  if (text == "lrc") return CodeFamily::kLrc;
  throw PreconditionError("unknown code family '" + text +
                          "' (expected rs, rs_wide, or lrc)");
}

std::string LevelCode::notation() const {
  return std::string(to_string(family)) + (family == CodeFamily::kLrc ? lrc.notation() : rs.notation());
}

void LevelCode::validate() const {
  switch (family) {
    case CodeFamily::kRs:
      rs.validate();
      MLEC_REQUIRE(rs.width() <= 256, "RS over GF(256) supports at most 256 shards");
      return;
    case CodeFamily::kRsWide:
      rs.validate();
      MLEC_REQUIRE(rs.k >= 50, "wide RS starts at k = 50 (use family=rs below that)");
      MLEC_REQUIRE(rs.width() <= 256, "RS over GF(256) supports at most 256 shards");
      return;
    case CodeFamily::kLrc:
      lrc.validate();
      MLEC_REQUIRE(lrc.width() <= kLrcBitmaskWidthLimit,
                   "LRC decodability table supports at most 20 shards");
      return;
  }
  throw InternalError("unknown code family");
}

namespace {

/// Process-wide model cache. A named struct (not loose function-local
/// statics) so the map can carry a MLEC_GUARDED_BY annotation.
struct ModelCache {
  Mutex mutex;
  std::map<std::string, std::shared_ptr<const CodeModel>> entries MLEC_GUARDED_BY(mutex);
};

ModelCache& model_cache() {
  static ModelCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const CodeModel> make_code_model(const LevelCode& level) {
  level.validate();
  const std::string key = level.notation();
  ModelCache& cache = model_cache();
  // Models are built under the lock: construction cost (the LRC decodability
  // table) is paid once per shape and double-building would waste it.
  const MutexLock lock(cache.mutex);
  if (auto it = cache.entries.find(key); it != cache.entries.end()) return it->second;
  std::shared_ptr<const CodeModel> model;
  if (level.family == CodeFamily::kLrc)
    model = std::make_shared<const LrcCodeModel>(level);
  else
    model = std::make_shared<const RsCodeModel>(level);
  cache.entries.emplace(key, model);
  return model;
}

}  // namespace mlec
