// GF(2^8) arithmetic over the AES/ISA-L polynomial x^8+x^4+x^3+x^2+1 (0x1d).
//
// This is the arithmetic substrate for the Reed-Solomon coder that stands in
// for Intel ISA-L in the paper's encoding-throughput study (Figure 11). The
// bulk kernel uses split-nibble lookup tables (the scalar formulation of the
// PSHUFB trick), which is the fastest portable approach without intrinsics.
// The vectorized PSHUFB/VPSHUFB implementations of the same tables — and the
// fused multi-shard kernels the coder actually dispatches to — live in
// src/ec/ (see ec/kernels.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mlec::gf {

using byte_t = std::uint8_t;

/// Field addition/subtraction (XOR).
constexpr byte_t add(byte_t a, byte_t b) { return a ^ b; }

/// Field multiplication via log/exp tables.
byte_t mul(byte_t a, byte_t b);

/// Multiplicative inverse; requires a != 0.
byte_t inv(byte_t a);

/// a / b; requires b != 0.
byte_t div(byte_t a, byte_t b);

/// a^n (n >= 0).
byte_t pow(byte_t a, unsigned n);

/// Precomputed split-nibble tables for multiplying a buffer by a constant.
struct MulTable {
  std::array<byte_t, 16> lo;  ///< products of c with 0x00..0x0f
  std::array<byte_t, 16> hi;  ///< products of c with 0x00..0xf0 (high nibble)
};

/// Build the nibble tables for constant `c`.
MulTable make_mul_table(byte_t c);

/// dst[i] ^= c * src[i] for all i (the GF multiply-accumulate at the heart of
/// every RS encode). Sizes must match.
void mul_acc(const MulTable& table, std::span<const byte_t> src, std::span<byte_t> dst);

/// dst[i] = c * src[i].
void mul_assign(const MulTable& table, std::span<const byte_t> src, std::span<byte_t> dst);

/// Full 256-entry product table: one lookup per byte instead of two plus a
/// XOR. 8x the footprint of MulTable (256 B, still a fraction of L1), and
/// the faster choice for the long sequential buffers the encoder processes;
/// the coder uses these for its precomputed rows.
using FullMulTable = std::array<byte_t, 256>;

FullMulTable make_full_table(byte_t c);
void mul_acc(const FullMulTable& table, std::span<const byte_t> src, std::span<byte_t> dst);
void mul_assign(const FullMulTable& table, std::span<const byte_t> src, std::span<byte_t> dst);

/// Primitive element used to generate the field (0x02 for this polynomial).
inline constexpr byte_t kGenerator = 0x02;

}  // namespace mlec::gf
