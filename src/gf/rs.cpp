#include "gf/rs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mlec::gf {

namespace {

ec::EncodePlan plan_from_rows(const Matrix& m) {
  std::vector<byte_t> coeffs(m.rows() * m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) coeffs[r * m.cols() + c] = m.at(r, c);
  return ec::EncodePlan(m.rows(), m.cols(), coeffs);
}

}  // namespace

RsCode::RsCode(std::size_t k, std::size_t p) : k_(k), p_(p) {
  MLEC_REQUIRE(k >= 1, "RS needs at least one data shard");
  MLEC_REQUIRE(k + p <= 256, "RS over GF(256) supports at most 256 shards");
  parity_rows_ = Matrix::cauchy(p, k);
  encode_plan_ = plan_from_rows(parity_rows_);
  // Systematic generator [I; C] over the data symbols, the shape
  // ec::DecodePlan consumes.
  generator_.assign((k + p) * k, 0);
  for (std::size_t i = 0; i < k; ++i) generator_[i * k + i] = 1;
  for (std::size_t r = 0; r < p; ++r)
    for (std::size_t c = 0; c < k; ++c) generator_[(k + r) * k + c] = parity_rows_.at(r, c);
}

void RsCode::encode(std::span<const std::span<const byte_t>> data,
                    std::span<const std::span<byte_t>> parity) const {
  MLEC_REQUIRE(data.size() == k_, "expected k data shards");
  MLEC_REQUIRE(parity.size() == p_, "expected p parity shards");
  if (p_ == 0) return;
  const std::size_t len = data.empty() ? 0 : data[0].size();
  for (const auto& shard : data) MLEC_REQUIRE(shard.size() == len, "data shard size mismatch");
  for (const auto& shard : parity) MLEC_REQUIRE(shard.size() == len, "parity shard size mismatch");
  ec::encode(encode_plan_, data, parity);
}

void RsCode::encode(const std::vector<std::vector<byte_t>>& data,
                    std::vector<std::vector<byte_t>>& parity) const {
  std::vector<std::span<const byte_t>> d(data.begin(), data.end());
  std::vector<std::span<byte_t>> q(parity.begin(), parity.end());
  encode(std::span<const std::span<const byte_t>>(d), std::span<const std::span<byte_t>>(q));
}

bool RsCode::encode_parallel(std::span<const std::span<const byte_t>> data,
                             std::span<const std::span<byte_t>> parity, ThreadPool& pool,
                             StopToken stop) const {
  MLEC_REQUIRE(data.size() == k_, "expected k data shards");
  MLEC_REQUIRE(parity.size() == p_, "expected p parity shards");
  if (p_ == 0) return true;
  return ec::encode_parallel(encode_plan_, data, parity, pool, stop);
}

std::shared_ptr<const ec::DecodePlan> RsCode::decode_plan(
    std::span<const std::size_t> lost) const {
  MLEC_REQUIRE(p_ > 0 || lost.empty(), "a p == 0 code has no parity to repair from");
  MLEC_REQUIRE(lost.size() <= p_, "cannot recover more shards than parities");
  std::vector<std::size_t> key(lost.begin(), lost.end());
  std::sort(key.begin(), key.end());
  {
    const MutexLock lock(plan_mutex_);
    if (auto it = plan_cache_.find(key); it != plan_cache_.end()) return it->second;
  }
  // Build outside the lock (inversion can be expensive for wide codes); a
  // racing builder of the same pattern loses the emplace and its plan is
  // dropped — both are identical.
  auto plan = std::make_shared<const ec::DecodePlan>(k_ + p_, k_, generator_, key);
  MLEC_REQUIRE(plan->viable(), "generator submatrix singular (not MDS?)");
  const MutexLock lock(plan_mutex_);
  return plan_cache_.emplace(std::move(key), std::move(plan)).first->second;
}

std::size_t RsCode::cached_decode_plans() const {
  const MutexLock lock(plan_mutex_);
  return plan_cache_.size();
}

void RsCode::decode(std::vector<std::vector<byte_t>>& shards,
                    std::span<const std::size_t> lost) const {
  MLEC_REQUIRE(shards.size() == k_ + p_, "expected k+p shard buffers");
  if (lost.empty()) return;
  const std::size_t len = shards[0].size();
  for (const auto& s : shards) MLEC_REQUIRE(s.size() == len, "shard size mismatch");
  const auto plan = decode_plan(lost);
  std::vector<byte_t*> ptrs(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) ptrs[i] = shards[i].data();
  ec::decode(*plan, ptrs.data(), len);
}

bool RsCode::decode_parallel(std::vector<std::vector<byte_t>>& shards,
                             std::span<const std::size_t> lost, ThreadPool& pool,
                             StopToken stop) const {
  MLEC_REQUIRE(shards.size() == k_ + p_, "expected k+p shard buffers");
  if (lost.empty()) return true;
  const auto plan = decode_plan(lost);
  std::vector<std::span<byte_t>> spans(shards.begin(), shards.end());
  return ec::decode_parallel(*plan, std::span<const std::span<byte_t>>(spans), pool, stop);
}

}  // namespace mlec::gf
