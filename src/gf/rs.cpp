#include "gf/rs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mlec::gf {

RsCode::RsCode(std::size_t k, std::size_t p) : k_(k), p_(p) {
  MLEC_REQUIRE(k >= 1, "RS needs at least one data shard");
  MLEC_REQUIRE(k + p <= 256, "RS over GF(256) supports at most 256 shards");
  parity_rows_ = Matrix::cauchy(p, k);
  encode_tables_.reserve(p * k);
  for (std::size_t r = 0; r < p; ++r)
    for (std::size_t c = 0; c < k; ++c)
      encode_tables_.push_back(make_full_table(parity_rows_.at(r, c)));
}

void RsCode::encode(std::span<const std::span<const byte_t>> data,
                    std::span<const std::span<byte_t>> parity) const {
  MLEC_REQUIRE(data.size() == k_, "expected k data shards");
  MLEC_REQUIRE(parity.size() == p_, "expected p parity shards");
  if (p_ == 0) return;
  const std::size_t len = data.empty() ? 0 : data[0].size();
  for (const auto& shard : data) MLEC_REQUIRE(shard.size() == len, "data shard size mismatch");
  for (const auto& shard : parity) MLEC_REQUIRE(shard.size() == len, "parity shard size mismatch");

  for (std::size_t r = 0; r < p_; ++r) {
    mul_assign(encode_tables_[r * k_], data[0], parity[r]);
    for (std::size_t c = 1; c < k_; ++c) mul_acc(encode_tables_[r * k_ + c], data[c], parity[r]);
  }
}

void RsCode::encode(const std::vector<std::vector<byte_t>>& data,
                    std::vector<std::vector<byte_t>>& parity) const {
  std::vector<std::span<const byte_t>> d(data.begin(), data.end());
  std::vector<std::span<byte_t>> q(parity.begin(), parity.end());
  encode(std::span<const std::span<const byte_t>>(d), std::span<const std::span<byte_t>>(q));
}

void RsCode::decode(std::vector<std::vector<byte_t>>& shards,
                    std::span<const std::size_t> lost) const {
  MLEC_REQUIRE(shards.size() == k_ + p_, "expected k+p shard buffers");
  MLEC_REQUIRE(lost.size() <= p_, "cannot recover more shards than parities");
  if (lost.empty()) return;
  const std::size_t len = shards[0].size();
  for (const auto& s : shards) MLEC_REQUIRE(s.size() == len, "shard size mismatch");

  std::vector<bool> is_lost(k_ + p_, false);
  for (std::size_t idx : lost) {
    MLEC_REQUIRE(idx < k_ + p_, "lost index out of range");
    MLEC_REQUIRE(!is_lost[idx], "duplicate lost index");
    is_lost[idx] = true;
  }

  // Pick the first k surviving shards; build the k x k submatrix of the
  // systematic generator [I; C] restricted to those rows.
  std::vector<std::size_t> survivors;
  survivors.reserve(k_);
  for (std::size_t i = 0; i < k_ + p_ && survivors.size() < k_; ++i)
    if (!is_lost[i]) survivors.push_back(i);
  MLEC_REQUIRE(survivors.size() == k_, "not enough surviving shards to decode");

  Matrix sub(k_, k_);
  for (std::size_t r = 0; r < k_; ++r) {
    const std::size_t row = survivors[r];
    for (std::size_t c = 0; c < k_; ++c)
      sub.at(r, c) = row < k_ ? static_cast<byte_t>(row == c ? 1 : 0) : parity_rows_.at(row - k_, c);
  }
  Matrix invsub;
  const bool ok = sub.invert(invsub);
  MLEC_REQUIRE(ok, "generator submatrix singular (not MDS?)");

  // data[c] = sum_r invsub[c][r] * shard[survivors[r]] — rebuild only the
  // data shards that were lost.
  for (std::size_t idx : lost) {
    if (idx >= k_) continue;
    std::fill(shards[idx].begin(), shards[idx].end(), 0);
    for (std::size_t r = 0; r < k_; ++r) {
      const byte_t coef = invsub.at(idx, r);
      if (coef == 0) continue;
      mul_acc(make_full_table(coef), shards[survivors[r]], shards[idx]);
    }
  }
  // Lost parity shards: re-encode from the (now complete) data shards.
  for (std::size_t idx : lost) {
    if (idx < k_) continue;
    const std::size_t r = idx - k_;
    mul_assign(encode_tables_[r * k_], shards[0], shards[idx]);
    for (std::size_t c = 1; c < k_; ++c) mul_acc(encode_tables_[r * k_ + c], shards[c], shards[idx]);
  }
}

}  // namespace mlec::gf
