#include "gf/rs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mlec::gf {

namespace {

ec::EncodePlan plan_from_rows(const Matrix& m) {
  std::vector<byte_t> coeffs(m.rows() * m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) coeffs[r * m.cols() + c] = m.at(r, c);
  return ec::EncodePlan(m.rows(), m.cols(), coeffs);
}

}  // namespace

RsCode::RsCode(std::size_t k, std::size_t p) : k_(k), p_(p) {
  MLEC_REQUIRE(k >= 1, "RS needs at least one data shard");
  MLEC_REQUIRE(k + p <= 256, "RS over GF(256) supports at most 256 shards");
  parity_rows_ = Matrix::cauchy(p, k);
  encode_plan_ = plan_from_rows(parity_rows_);
}

void RsCode::encode(std::span<const std::span<const byte_t>> data,
                    std::span<const std::span<byte_t>> parity) const {
  MLEC_REQUIRE(data.size() == k_, "expected k data shards");
  MLEC_REQUIRE(parity.size() == p_, "expected p parity shards");
  if (p_ == 0) return;
  const std::size_t len = data.empty() ? 0 : data[0].size();
  for (const auto& shard : data) MLEC_REQUIRE(shard.size() == len, "data shard size mismatch");
  for (const auto& shard : parity) MLEC_REQUIRE(shard.size() == len, "parity shard size mismatch");
  ec::encode(encode_plan_, data, parity);
}

void RsCode::encode(const std::vector<std::vector<byte_t>>& data,
                    std::vector<std::vector<byte_t>>& parity) const {
  std::vector<std::span<const byte_t>> d(data.begin(), data.end());
  std::vector<std::span<byte_t>> q(parity.begin(), parity.end());
  encode(std::span<const std::span<const byte_t>>(d), std::span<const std::span<byte_t>>(q));
}

bool RsCode::encode_parallel(std::span<const std::span<const byte_t>> data,
                             std::span<const std::span<byte_t>> parity, ThreadPool& pool,
                             StopToken stop) const {
  MLEC_REQUIRE(data.size() == k_, "expected k data shards");
  MLEC_REQUIRE(parity.size() == p_, "expected p parity shards");
  if (p_ == 0) return true;
  return ec::encode_parallel(encode_plan_, data, parity, pool, stop);
}

void RsCode::decode(std::vector<std::vector<byte_t>>& shards,
                    std::span<const std::size_t> lost) const {
  MLEC_REQUIRE(shards.size() == k_ + p_, "expected k+p shard buffers");
  MLEC_REQUIRE(p_ > 0 || lost.empty(), "a p == 0 code has no parity to repair from");
  MLEC_REQUIRE(lost.size() <= p_, "cannot recover more shards than parities");
  if (lost.empty()) return;
  const std::size_t len = shards[0].size();
  for (const auto& s : shards) MLEC_REQUIRE(s.size() == len, "shard size mismatch");

  std::vector<bool> is_lost(k_ + p_, false);
  for (std::size_t idx : lost) {
    MLEC_REQUIRE(idx < k_ + p_, "lost index out of range");
    MLEC_REQUIRE(!is_lost[idx], "duplicate lost index");
    is_lost[idx] = true;
  }

  // Pick the first k surviving shards; build the k x k submatrix of the
  // systematic generator [I; C] restricted to those rows.
  std::vector<std::size_t> survivors;
  survivors.reserve(k_);
  for (std::size_t i = 0; i < k_ + p_ && survivors.size() < k_; ++i)
    if (!is_lost[i]) survivors.push_back(i);
  MLEC_REQUIRE(survivors.size() == k_, "not enough surviving shards to decode");

  Matrix sub(k_, k_);
  for (std::size_t r = 0; r < k_; ++r) {
    const std::size_t row = survivors[r];
    for (std::size_t c = 0; c < k_; ++c)
      sub.at(r, c) = row < k_ ? static_cast<byte_t>(row == c ? 1 : 0) : parity_rows_.at(row - k_, c);
  }
  Matrix invsub;
  const bool ok = sub.invert(invsub);
  MLEC_REQUIRE(ok, "generator submatrix singular (not MDS?)");

  // Lost data shards: data[idx] = sum_r invsub[idx][r] * shard[survivors[r]].
  // All lost data rows are rebuilt in ONE fused pass over the k survivors
  // (multi-dest ec dot product) instead of per-coefficient buffer sweeps.
  std::vector<std::size_t> lost_data;
  for (std::size_t idx : lost)
    if (idx < k_) lost_data.push_back(idx);
  if (!lost_data.empty()) {
    std::vector<byte_t> coeffs(lost_data.size() * k_);
    for (std::size_t r = 0; r < lost_data.size(); ++r)
      for (std::size_t c = 0; c < k_; ++c) coeffs[r * k_ + c] = invsub.at(lost_data[r], c);
    const ec::EncodePlan plan(lost_data.size(), k_, coeffs);
    std::vector<const byte_t*> src(k_);
    for (std::size_t c = 0; c < k_; ++c) src[c] = shards[survivors[c]].data();
    std::vector<byte_t*> dst(lost_data.size());
    for (std::size_t r = 0; r < lost_data.size(); ++r) dst[r] = shards[lost_data[r]].data();
    ec::encode(plan, src.data(), dst.data(), len);
  }

  // Lost parity shards: re-encode their rows from the (now complete) data
  // shards, again as one fused pass.
  std::vector<std::size_t> lost_parity;
  for (std::size_t idx : lost)
    if (idx >= k_) lost_parity.push_back(idx - k_);
  if (!lost_parity.empty()) {
    std::vector<byte_t> coeffs(lost_parity.size() * k_);
    for (std::size_t r = 0; r < lost_parity.size(); ++r)
      for (std::size_t c = 0; c < k_; ++c) coeffs[r * k_ + c] = parity_rows_.at(lost_parity[r], c);
    const ec::EncodePlan plan(lost_parity.size(), k_, coeffs);
    std::vector<const byte_t*> src(k_);
    for (std::size_t c = 0; c < k_; ++c) src[c] = shards[c].data();
    std::vector<byte_t*> dst(lost_parity.size());
    for (std::size_t r = 0; r < lost_parity.size(); ++r) dst[r] = shards[k_ + lost_parity[r]].data();
    ec::encode(plan, src.data(), dst.data(), len);
  }
}

}  // namespace mlec::gf
