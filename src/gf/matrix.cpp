#include "gf/matrix.hpp"

#include "util/error.hpp"

namespace mlec::gf {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::cauchy(std::size_t rows, std::size_t cols) {
  MLEC_REQUIRE(rows + cols <= 256, "Cauchy construction needs rows+cols <= 256");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m.at(i, j) = inv(static_cast<byte_t>((i + cols) ^ j));
  return m;
}

Matrix Matrix::vandermonde(std::size_t rows, std::size_t cols) {
  MLEC_REQUIRE(cols <= 256, "Vandermonde needs cols <= 256");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m.at(i, j) = pow(static_cast<byte_t>(j), static_cast<unsigned>(i));
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  MLEC_REQUIRE(cols_ == other.rows_, "dimension mismatch in matrix multiply");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const byte_t a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j)
        out.at(i, j) = add(out.at(i, j), mul(a, other.at(k, j)));
    }
  return out;
}

bool Matrix::invert(Matrix& out) const {
  MLEC_REQUIRE(rows_ == cols_, "only square matrices invert");
  const std::size_t n = rows_;
  Matrix work = *this;
  out = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(out.at(pivot, j), out.at(col, j));
      }
    }
    // Scale pivot row to 1.
    const byte_t scale = inv(work.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      work.at(col, j) = mul(work.at(col, j), scale);
      out.at(col, j) = mul(out.at(col, j), scale);
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const byte_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(r, j) = add(work.at(r, j), mul(factor, work.at(col, j)));
        out.at(r, j) = add(out.at(r, j), mul(factor, out.at(col, j)));
      }
    }
  }
  return true;
}

}  // namespace mlec::gf
