#include "gf/gf256.hpp"

#include "util/error.hpp"

namespace mlec::gf {

namespace {

struct Tables {
  std::array<byte_t, 256> log;
  std::array<byte_t, 512> exp;  // doubled to skip a mod in mul
};

const Tables& tables() {
  static const Tables t = [] {
    Tables t{};
    // Generate with the 0x11d polynomial: exp[i] = g^i.
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      t.exp[i] = static_cast<byte_t>(x);
      t.log[x] = static_cast<byte_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (unsigned i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
    t.log[0] = 0;  // undefined; guarded by callers
    return t;
  }();
  return t;
}

}  // namespace

byte_t mul(byte_t a, byte_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + t.log[b]];
}

byte_t inv(byte_t a) {
  MLEC_REQUIRE(a != 0, "zero has no inverse in GF(256)");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

byte_t div(byte_t a, byte_t b) {
  MLEC_REQUIRE(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + 255 - t.log[b]];
}

byte_t pow(byte_t a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  // Reduce the exponent first: log[a] * n overflows 32 bits for n > ~16.9M
  // (a^n = a^(n mod 255) for nonzero a, since the multiplicative group has
  // order 255).
  return t.exp[(static_cast<unsigned>(t.log[a]) * (n % 255)) % 255];
}

MulTable make_mul_table(byte_t c) {
  MulTable table{};
  for (unsigned n = 0; n < 16; ++n) {
    table.lo[n] = mul(c, static_cast<byte_t>(n));
    table.hi[n] = mul(c, static_cast<byte_t>(n << 4));
  }
  return table;
}

void mul_acc(const MulTable& table, std::span<const byte_t> src, std::span<byte_t> dst) {
  MLEC_REQUIRE(src.size() == dst.size(), "buffer sizes must match");
  const byte_t* __restrict s = src.data();
  byte_t* __restrict d = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    const byte_t v = s[i];
    d[i] ^= table.lo[v & 0x0f] ^ table.hi[v >> 4];
  }
}

void mul_assign(const MulTable& table, std::span<const byte_t> src, std::span<byte_t> dst) {
  MLEC_REQUIRE(src.size() == dst.size(), "buffer sizes must match");
  const byte_t* __restrict s = src.data();
  byte_t* __restrict d = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    const byte_t v = s[i];
    d[i] = table.lo[v & 0x0f] ^ table.hi[v >> 4];
  }
}

FullMulTable make_full_table(byte_t c) {
  FullMulTable table{};
  for (unsigned v = 0; v < 256; ++v) table[v] = mul(c, static_cast<byte_t>(v));
  return table;
}

void mul_acc(const FullMulTable& table, std::span<const byte_t> src, std::span<byte_t> dst) {
  MLEC_REQUIRE(src.size() == dst.size(), "buffer sizes must match");
  const byte_t* __restrict s = src.data();
  byte_t* __restrict d = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) d[i] ^= table[s[i]];
}

void mul_assign(const FullMulTable& table, std::span<const byte_t> src, std::span<byte_t> dst) {
  MLEC_REQUIRE(src.size() == dst.size(), "buffer sizes must match");
  const byte_t* __restrict s = src.data();
  byte_t* __restrict d = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) d[i] = table[s[i]];
}

}  // namespace mlec::gf
