#include "runtime/pool_campaign.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace mlec {

namespace {

constexpr const char* kMissions = "missions";
constexpr const char* kCatastrophes = "catastrophes";
constexpr const char* kPoolYears = "pool_years";
constexpr const char* kLostFraction = "lost_stripe_fraction";
constexpr const char* kUnrebuiltTb = "unrebuilt_tb";
constexpr const char* kRepairHours = "single_disk_repair_hours";
constexpr const char* kEvents = "events_processed";
constexpr const char* kRngDraws = "rng_draws";

}  // namespace

LocalPoolStats LocalPoolCampaignResult::stats() const {
  LocalPoolStats s;
  s.cat_rate_per_pool_year = catastrophe_rate_per_year();
  s.lost_stripe_fraction = lost_stripe_fraction.mean();
  return s;
}

void accumulate_local_pool_result(const LocalPoolSimResult& result, CampaignAccumulator& acc) {
  acc.counter(kMissions) += result.missions;
  acc.counter(kCatastrophes) += result.catastrophes;
  acc.scalar(kPoolYears) += result.pool_years;
  auto& frac = acc.stats(kLostFraction);
  auto& unrebuilt = acc.stats(kUnrebuiltTb);
  for (const auto& s : result.samples) {
    frac.add(s.lost_stripe_fraction);
    unrebuilt.add(s.unrebuilt_tb);
  }
  acc.stats(kRepairHours).merge(result.single_disk_repair_hours);
  acc.counter(kEvents) += result.events_processed;
  acc.counter(kRngDraws) += result.rng_draws;
}

std::string local_pool_campaign_fingerprint(const LocalPoolSimConfig& config) {
  std::ostringstream os;
  os.precision(17);
  os << "localpool-v1;code=" << config.code.k << '+' << config.code.p << ";placement="
     << (config.placement == Placement::kClustered ? 'C' : 'D') << ";disks=" << config.pool_disks
     << ";disk_tb=" << config.disk_capacity_tb << ";chunk_kb=" << config.chunk_kb
     << ";afr=" << config.afr << ";detect=" << config.detection_hours
     << ";bw=" << config.bandwidth.disk_mbps << '/' << config.bandwidth.rack_gbps << '/'
     << config.bandwidth.repair_fraction << ";mission=" << config.mission_hours
     << ";priority=" << config.priority_repair;
  return os.str();
}

LocalPoolCampaignResult run_local_pool_campaign(const LocalPoolSimConfig& config,
                                                std::uint64_t missions, std::uint64_t seed,
                                                const LocalPoolCampaignOptions& options,
                                                ThreadPool* pool) {
  config.validate();

  CampaignConfig campaign;
  campaign.total_units = missions;
  campaign.seed = seed;
  campaign.shards = options.shards;
  campaign.checkpoint_every = options.checkpoint_every;
  campaign.checkpoint_path = options.checkpoint_path;
  campaign.resume = options.resume;
  campaign.max_attempts = options.max_attempts;
  campaign.retry_backoff_ms = options.retry_backoff_ms;
  campaign.shard_timeout_s = options.shard_timeout_s;
  campaign.target_rse = options.target_rse;
  campaign.unit_budget = options.unit_budget;
  campaign.fingerprint = local_pool_campaign_fingerprint(config);
  campaign.stop = options.stop;
  campaign.progress = options.progress;
  campaign.pool_lane = options.pool_lane;

  auto factory = [&config](std::uint32_t, Rng& rng) -> CampaignRunner::UnitRunner {
    return [&config, &rng](CampaignAccumulator& acc) {
      const LocalPoolSimResult one = simulate_local_pool(config, 1, rng);
      accumulate_local_pool_result(one, acc);
    };
  };
  // The splitting pipeline is rate-limited by the catastrophe count, whose
  // relative error is Poisson: 1/sqrt(count).
  auto cat_rse = [](const CampaignAccumulator& merged) {
    const std::uint64_t cat = merged.counter(kCatastrophes);
    return cat > 0 ? 1.0 / std::sqrt(static_cast<double>(cat))
                   : std::numeric_limits<double>::infinity();
  };

  CampaignRunner runner(std::move(campaign), factory, cat_rse);
  auto [merged, report] = runner.run(pool);

  LocalPoolCampaignResult out;
  out.missions = merged.counter(kMissions);
  out.catastrophes = merged.counter(kCatastrophes);
  out.pool_years = merged.scalar(kPoolYears);
  out.lost_stripe_fraction = merged.stats(kLostFraction);
  out.unrebuilt_tb = merged.stats(kUnrebuiltTb);
  out.single_disk_repair_hours = merged.stats(kRepairHours);
  out.events_processed = merged.counter(kEvents);
  out.rng_draws = merged.counter(kRngDraws);
  out.report = std::move(report);
  return out;
}

}  // namespace mlec
