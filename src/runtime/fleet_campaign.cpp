#include "runtime/fleet_campaign.hpp"

#include <memory>
#include <sstream>

#include "placement/notation.hpp"

namespace mlec {

namespace {

constexpr const char* kMissions = "missions";
constexpr const char* kLossMissions = "data_loss_missions";
constexpr const char* kLossEvents = "data_loss_events";
constexpr const char* kDiskFailures = "disk_failures";
constexpr const char* kCatastrophes = "catastrophic_pool_events";
constexpr const char* kCrossRackTb = "cross_rack_tb";
constexpr const char* kLossTime = "loss_time_hours";
constexpr const char* kExposure = "catastrophe_exposure_hours";
constexpr const char* kEvents = "events_processed";
constexpr const char* kRngDraws = "rng_draws";
constexpr const char* kArenaAllocs = "arena_allocations";

}  // namespace

void accumulate_fleet_result(const FleetSimResult& result, CampaignAccumulator& acc) {
  acc.counter(kMissions) += result.missions;
  acc.counter(kLossMissions) += result.data_loss_missions;
  acc.counter(kLossEvents) += result.data_loss_events;
  acc.counter(kDiskFailures) += result.disk_failures;
  acc.counter(kCatastrophes) += result.catastrophic_pool_events;
  acc.scalar(kCrossRackTb) += result.cross_rack_tb;
  acc.stats(kLossTime).merge(result.loss_time_hours);
  acc.stats(kExposure).merge(result.catastrophe_exposure_hours);
  acc.counter(kEvents) += result.events_processed;
  acc.counter(kRngDraws) += result.rng_draws;
  acc.counter(kArenaAllocs) += result.arena_allocations;
}

FleetSimResult fleet_result_from(const CampaignAccumulator& acc) {
  FleetSimResult result;
  result.missions = acc.counter(kMissions);
  result.data_loss_missions = acc.counter(kLossMissions);
  result.data_loss_events = acc.counter(kLossEvents);
  result.disk_failures = acc.counter(kDiskFailures);
  result.catastrophic_pool_events = acc.counter(kCatastrophes);
  result.cross_rack_tb = acc.scalar(kCrossRackTb);
  result.loss_time_hours = acc.stats(kLossTime);
  result.catastrophe_exposure_hours = acc.stats(kExposure);
  result.events_processed = acc.counter(kEvents);
  result.rng_draws = acc.counter(kRngDraws);
  result.arena_allocations = acc.counter(kArenaAllocs);
  return result;
}

std::string fleet_campaign_fingerprint(const FleetSimConfig& config) {
  std::ostringstream os;
  os.precision(17);
  // v2: the sim core's RNG consumption changed (batched inter-failure gaps),
  // so journals written by the v1 core must not resume into this one.
  os << "fleet-v2;dc=" << config.dc.racks << 'x' << config.dc.enclosures_per_rack << 'x'
     << config.dc.disks_per_enclosure << ";disk_tb=" << config.dc.disk_capacity_tb
     << ";chunk_kb=" << config.dc.chunk_kb << ";code=" << config.code.notation()
     << ";scheme=" << to_string(config.scheme) << ";method=" << to_string(config.method)
     << ";bw=" << config.bandwidth.disk_mbps << '/' << config.bandwidth.rack_gbps << '/'
     << config.bandwidth.repair_fraction
     << ";fail=" << static_cast<int>(config.failures.kind) << '/' << config.failures.afr << '/'
     << config.failures.weibull_shape << '/' << config.failures.weibull_scale_hours
     << ";detect=" << config.detection_hours << ";mission=" << config.mission_hours
     << ";priority=" << config.priority_repair << ";stop_on_loss=" << config.stop_on_loss
     << ";injected=" << config.injected_events.size();
  for (const auto& ev : config.injected_events) os << ',' << ev.time_hours << ':' << ev.disk;
  return os.str();
}

FleetCampaignResult run_fleet_campaign(const FleetSimConfig& config, std::uint64_t missions,
                                       std::uint64_t seed,
                                       const FleetCampaignOptions& options, ThreadPool* pool) {
  config.validate();

  CampaignConfig campaign;
  campaign.total_units = missions;
  campaign.seed = seed;
  campaign.shards = options.shards;
  campaign.checkpoint_every = options.checkpoint_every;
  campaign.checkpoint_path = options.checkpoint_path;
  campaign.resume = options.resume;
  campaign.max_attempts = options.max_attempts;
  campaign.retry_backoff_ms = options.retry_backoff_ms;
  campaign.shard_timeout_s = options.shard_timeout_s;
  campaign.target_rse = options.target_rse;
  campaign.unit_budget = options.unit_budget;
  campaign.fingerprint = fleet_campaign_fingerprint(config);
  campaign.stop = options.stop;
  campaign.progress = options.progress;
  campaign.pool_lane = options.pool_lane;

  // One immutable context (validated config + lookup tables) shared by every
  // shard's engine; each engine keeps only its own mutable trial state.
  auto context = make_fleet_context(config);
  auto factory = [context](std::uint32_t, Rng& rng) -> CampaignRunner::UnitRunner {
    auto engine = std::make_shared<FleetMissionEngine>(context);
    return [engine, &rng](CampaignAccumulator& acc) {
      FleetSimResult one;
      engine->run_mission(rng, one);
      accumulate_fleet_result(one, acc);
    };
  };
  auto pdl_rse = [](const CampaignAccumulator& merged) {
    return bernoulli_rse(merged.counter(kLossMissions), merged.counter(kMissions));
  };

  CampaignRunner runner(std::move(campaign), factory, pdl_rse);
  auto [merged, report] = runner.run(pool);

  FleetCampaignResult out;
  out.result = fleet_result_from(merged);
  out.result.truncated = report.truncated;
  out.report = std::move(report);
  return out;
}

}  // namespace mlec
