// Little-endian binary primitives for the campaign journal format.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace mlec::campaign_io {

inline void write_u64(std::ostream& out, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(buf), 8);
}

inline void write_u32(std::ostream& out, std::uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(buf), 4);
}

inline void write_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

inline void write_f64(std::ostream& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  write_u64(out, bits);
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::uint64_t read_u64(std::istream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  MLEC_REQUIRE(in.good(), "campaign journal truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

inline std::uint32_t read_u32(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  MLEC_REQUIRE(in.good(), "campaign journal truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

inline std::uint8_t read_u8(std::istream& in) {
  const int c = in.get();
  MLEC_REQUIRE(c != std::char_traits<char>::eof(), "campaign journal truncated");
  return static_cast<std::uint8_t>(c);
}

inline double read_f64(std::istream& in) {
  const std::uint64_t bits = read_u64(in);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

inline std::string read_string(std::istream& in) {
  const std::uint32_t size = read_u32(in);
  MLEC_REQUIRE(size <= 1 << 20, "campaign journal string implausibly large");
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  MLEC_REQUIRE(in.good() || (in.eof() && in.gcount() == static_cast<std::streamsize>(size)),
               "campaign journal truncated");
  return s;
}

}  // namespace mlec::campaign_io
