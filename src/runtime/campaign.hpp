// Resilient shard-based execution harness for long Monte-Carlo campaigns.
//
// A campaign partitions `total_units` work units (missions, trials) over
// shards, each driven by a deterministic RNG substream
// (Rng::for_substream(seed, shard | attempt << 32)). The runner layers four
// robustness mechanisms over the raw sweep:
//
//  * checkpoint/resume — every `checkpoint_every` units a shard commits its
//    accumulator + RNG state to the journal (see journal.hpp); a killed run
//    resumes from the last commit and finishes bit-identical to an
//    uninterrupted run with the same seed and shard count.
//  * cooperative cancellation — a StopToken (SIGINT/SIGTERM, --time-budget)
//    and an optional per-invocation unit budget stop shards at batch
//    boundaries; partial results stay statistically valid and the report is
//    flagged `truncated`.
//  * shard fault isolation — a throwing shard restarts on a fresh RNG
//    substream with deterministically jittered exponential backoff, up to
//    `max_attempts`; persistent failures are quarantined into the
//    CampaignReport (shard id, attempts, what()) instead of aborting the
//    sweep, and the report is flagged `degraded()`.
//  * shard watchdog — with `shard_timeout_s` set, a supervisor thread
//    watches each shard's commit heartbeat; a stalled attempt is cancelled
//    cooperatively (per-attempt StopToken, also registered as the thread's
//    fault-delay cancellation) and treated as a failed attempt.
//  * adaptive stopping — when `target_rse` is set and the workload supplies
//    an RSE estimator, the campaign ends early once the estimate's relative
//    standard error falls below target; the report is flagged `converged`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/accumulator.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"
#include "util/thread_safety.hpp"

namespace mlec {

/// Snapshot handed to CampaignConfig::progress at every shard commit —
/// the live feed behind `mlecctl watch` and the server's progress streams.
struct CampaignProgress {
  std::uint32_t shard = 0;         ///< shard that just committed
  std::uint64_t units_done = 0;    ///< across all shards, incl. resumed work
  std::uint64_t units_total = 0;
  /// Current adaptive-stopping estimate; 0 when no RSE estimator is wired
  /// or it is still infinite (too few successes observed).
  double achieved_rse = 0.0;
};

struct CampaignConfig {
  std::uint64_t total_units = 0;
  std::uint64_t seed = 0;
  /// Shard count; 0 derives 2x pool workers (or 1 without a pool). The
  /// shard count is part of the campaign identity: resume requires a match.
  std::size_t shards = 0;
  /// Units a shard runs between journal commits (also the cancellation
  /// latency in units).
  std::uint64_t checkpoint_every = 256;
  /// Journal path; empty disables persistence (in-memory campaign).
  std::string checkpoint_path;
  /// Resume from checkpoint_path when the file exists (fresh start when it
  /// does not); an existing journal with a mismatched identity throws.
  bool resume = false;
  /// Attempts per shard before quarantine (>= 1).
  std::size_t max_attempts = 3;
  /// Base backoff between shard retries; attempt k sleeps ~2^k * this,
  /// scaled by a deterministic seeded jitter in [0.5, 1.5) so retrying
  /// shards do not stampede the journal in lockstep.
  double retry_backoff_ms = 100.0;
  /// Watchdog deadline: a shard whose attempt makes no commit progress for
  /// this many seconds is cancelled cooperatively (its attempt StopToken
  /// fires, which also cuts short injected fault delays) and funnels into
  /// the normal retry/quarantine path. 0 disables the watchdog. Must
  /// comfortably exceed the wall time of one checkpoint batch, since
  /// commits are the progress heartbeat.
  double shard_timeout_s = 0.0;
  /// Target relative standard error for adaptive stopping; 0 disables.
  double target_rse = 0.0;
  /// Max units to run in this invocation (across all shards, approximately —
  /// enforced at batch boundaries); 0 = unlimited. Models wall-clock limits
  /// deterministically, which is what the resume tests rely on.
  std::uint64_t unit_budget = 0;
  /// Workload identity (config text) folded into the journal fingerprint.
  std::string fingerprint;
  StopToken stop{};
  /// Invoked after every shard commit with a merged-progress snapshot.
  /// Called concurrently from shard threads (outside the campaign mutex):
  /// the callback must be thread-safe and cheap — it sits on the commit
  /// path of every shard.
  std::function<void(const CampaignProgress&)> progress;
  /// ThreadPool dispatch lane for the shard chunks (kLaneInteractive /
  /// kLaneNormal / kLaneBatch): the server maps client priority classes
  /// here so interactive campaigns overtake queued batch work.
  std::size_t pool_lane = kLaneNormal;

  void validate() const;
};

/// Final status of one shard.
struct ShardOutcome {
  std::uint32_t shard = 0;
  std::uint32_t attempts = 1;   ///< attempts consumed (1 = clean first run)
  std::uint64_t assigned = 0;
  std::uint64_t done = 0;
  bool quarantined = false;
  std::uint32_t timeouts = 0;   ///< attempts cancelled by the shard watchdog
  std::string error;            ///< what() of the last failure, if any
  /// Wall-clock seconds this shard spent in the current invocation (all
  /// attempts; excludes resumed prior runs). done / elapsed_s is the
  /// shard's units-per-second throughput.
  double elapsed_s = 0.0;
};

/// Structured result of a campaign run, alongside the merged accumulator.
struct CampaignReport {
  std::vector<ShardOutcome> shards;
  std::uint64_t units_requested = 0;
  std::uint64_t units_done = 0;
  bool truncated = false;   ///< stop token or unit budget fired early
  bool converged = false;   ///< target_rse reached before total_units
  bool resumed = false;     ///< state was restored from a journal
  double achieved_rse = 0.0;  ///< final estimator value (NaN-free; 0 if unset)
  double elapsed_s = 0.0;   ///< wall-clock seconds of this invocation's run()
  /// Non-empty when resume found a damaged or unusable journal and had to
  /// recover partially or start fresh (the run itself proceeded normally).
  std::string resume_warning;

  std::size_t quarantined() const;
  bool complete() const { return units_done == units_requested; }
  /// True when quarantined shards left part of the sweep uncomputed: the
  /// merged result is statistically valid but based on fewer units than
  /// requested. Consumers should surface this (see Estimate::degraded).
  bool degraded() const { return quarantined() > 0; }
};

class CampaignRunner {
 public:
  /// Runs one unit, drawing randomness from the rng bound at attempt start
  /// and accumulating into `acc`.
  using UnitRunner = std::function<void(CampaignAccumulator& acc)>;
  /// Called at the start of every shard attempt with the shard id and the
  /// attempt's generator (already positioned — fresh substream or restored
  /// checkpoint state). Per-shard workload state lives in the closure.
  using WorkerFactory = std::function<UnitRunner(std::uint32_t shard, Rng& rng)>;
  /// Relative standard error of the merged partial estimate; drives
  /// adaptive stopping. May return infinity while too few units completed.
  using RseEstimator = std::function<double(const CampaignAccumulator& merged)>;

  CampaignRunner(CampaignConfig config, WorkerFactory factory, RseEstimator rse = {});
  ~CampaignRunner();  // out-of-line: ShardState is incomplete here

  /// Execute (shards in parallel when `pool` is given). Shard failures are
  /// contained; configuration errors and journal mismatches throw.
  std::pair<CampaignAccumulator, CampaignReport> run(ThreadPool* pool = nullptr);

 private:
  struct ShardState;

  void restore_from_journal() MLEC_REQUIRES(mutex_);
  void run_shard(std::uint32_t shard) MLEC_EXCLUDES(mutex_);
  /// Commit a batch: copy the shard's accumulator/rng into shared state,
  /// journal if persistent, and evaluate the adaptive-stopping rule.
  /// Excluded: takes the campaign mutex itself, and the progress callback
  /// fan-out at the end must run outside it.
  void commit(std::uint32_t shard, const CampaignAccumulator& acc, const Rng& rng,
              std::uint64_t done, std::uint32_t attempt) MLEC_EXCLUDES(mutex_);
  void write_journal_locked() MLEC_REQUIRES(mutex_);
  CampaignAccumulator merged_locked() const MLEC_REQUIRES(mutex_);
  bool should_stop();
  /// Deterministically jittered exponential sleep before a shard retry.
  /// The MLEC_EXCLUDES contract is the PR 5 fix made machine-checked:
  /// holding the campaign mutex across this (exponential) sleep would stall
  /// every other shard's commit for its whole duration.
  void backoff_before_retry(std::uint32_t shard, std::uint32_t retry_attempt) const
      MLEC_EXCLUDES(mutex_);

  CampaignConfig config_;
  WorkerFactory factory_;
  RseEstimator rse_;
  mutable Mutex mutex_;
  /// All per-shard state — partitioning, checkpoints, retry bookkeeping,
  /// and the watchdog heartbeat — guarded wholesale: shard threads copy
  /// what an attempt needs under the lock and run on the copies.
  std::vector<ShardState> states_ MLEC_GUARDED_BY(mutex_);
  std::atomic<bool> converged_{false};
  std::atomic<bool> truncated_{false};
  /// Units committed during this invocation (excludes resumed progress);
  /// drives the unit_budget check.
  std::atomic<std::uint64_t> invocation_units_{0};
  bool resumed_ MLEC_GUARDED_BY(mutex_) = false;
  std::string resume_warning_ MLEC_GUARDED_BY(mutex_);
};

/// Relative standard error of a Bernoulli proportion estimate
/// (sqrt((1-p)/(p n))); infinity until at least one success is observed.
double bernoulli_rse(std::uint64_t successes, std::uint64_t trials);

}  // namespace mlec
