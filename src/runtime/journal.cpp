#include "runtime/journal.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

#include "runtime/io_detail.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace mlec {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'E', 'C', 'C', 'A', 'M', 'P'};
constexpr std::uint8_t kFlagQuarantined = 1;
constexpr std::size_t kPreambleSize = sizeof kMagic + 4;  // magic + u32 version
constexpr std::size_t kFrameHeaderSize = 8;               // u32 len + u32 crc
// A shard record is the accumulator (a handful of named slots) plus fixed
// fields — far below a megabyte. The cap exists so a corrupt length field
// cannot drive a multi-gigabyte allocation before the CRC check runs.
constexpr std::uint32_t kMaxFramePayload = 16u << 20;
// Likewise for counts read out of (possibly hostile) headers.
constexpr std::uint32_t kMaxPlausibleShards = 1u << 20;

std::uint32_t peek_u32(const std::string& data, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[offset + i])) << (8 * i);
  return v;
}

void write_frame(std::ostream& out, const std::string& payload) {
  using namespace campaign_io;
  write_u32(out, static_cast<std::uint32_t>(payload.size()));
  write_u32(out, crc32(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

/// Extract the next length-framed, CRC-verified payload starting at
/// `offset`. Returns false — without advancing — on truncation, an
/// implausible length, or a checksum mismatch; `why` says which.
bool next_frame(const std::string& data, std::size_t& offset, std::string& payload,
                const char*& why) {
  if (data.size() - offset < kFrameHeaderSize) {
    why = "truncated frame header";
    return false;
  }
  const std::uint32_t len = peek_u32(data, offset);
  const std::uint32_t expected_crc = peek_u32(data, offset + 4);
  if (len > kMaxFramePayload) {
    why = "implausible frame length";
    return false;
  }
  if (data.size() - offset - kFrameHeaderSize < len) {
    why = "truncated frame payload";
    return false;
  }
  if (crc32(data.data() + offset + kFrameHeaderSize, len) != expected_crc) {
    why = "frame checksum mismatch";
    return false;
  }
  payload.assign(data, offset + kFrameHeaderSize, len);
  offset += kFrameHeaderSize + len;
  return true;
}

std::string header_payload(const CampaignJournal& journal) {
  using namespace campaign_io;
  std::ostringstream os(std::ios::binary);
  write_u64(os, journal.seed);
  write_u64(os, journal.total_units);
  write_u32(os, journal.shards);
  write_u64(os, journal.fingerprint);
  write_u32(os, static_cast<std::uint32_t>(journal.records.size()));
  return std::move(os).str();
}

std::string record_payload(const ShardRecord& rec) {
  using namespace campaign_io;
  std::ostringstream os(std::ios::binary);
  write_u32(os, rec.shard);
  write_u32(os, rec.attempt);
  write_u8(os, rec.quarantined ? kFlagQuarantined : 0);
  write_u64(os, rec.assigned);
  write_u64(os, rec.done);
  for (const auto word : rec.rng_state) write_u64(os, word);
  rec.acc.save(os);
  return std::move(os).str();
}

/// Payload parsers reuse the campaign_io readers over an in-memory stream;
/// a payload that runs short (CRC-valid but semantically malformed) throws
/// PreconditionError, which recover_from_buffer() converts to a drop.
struct HeaderFields {
  std::uint64_t seed = 0;
  std::uint64_t total_units = 0;
  std::uint32_t shards = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t count = 0;
};

HeaderFields parse_header(const std::string& payload) {
  using namespace campaign_io;
  std::istringstream in(payload, std::ios::binary);
  HeaderFields h;
  h.seed = read_u64(in);
  h.total_units = read_u64(in);
  h.shards = read_u32(in);
  h.fingerprint = read_u64(in);
  h.count = read_u32(in);
  MLEC_REQUIRE(h.shards <= kMaxPlausibleShards && h.count <= kMaxPlausibleShards,
               "campaign journal header implausible");
  return h;
}

ShardRecord parse_record(const std::string& payload) {
  using namespace campaign_io;
  std::istringstream in(payload, std::ios::binary);
  ShardRecord rec;
  rec.shard = read_u32(in);
  rec.attempt = read_u32(in);
  rec.quarantined = (read_u8(in) & kFlagQuarantined) != 0;
  rec.assigned = read_u64(in);
  rec.done = read_u64(in);
  for (auto& word : rec.rng_state) word = read_u64(in);
  rec.acc = CampaignAccumulator::load(in);
  return rec;
}

JournalLoadResult unusable(std::string warning) {
  JournalLoadResult result;
  result.status = JournalLoadResult::Status::kUnusable;
  result.warning = std::move(warning);
  return result;
}

JournalLoadResult recover_from_buffer(const std::string& data) {
  if (data.size() < kPreambleSize ||
      !std::equal(kMagic, kMagic + sizeof kMagic, data.data()))
    return unusable("not a campaign journal (bad magic)");
  const std::uint32_t version = peek_u32(data, sizeof kMagic);
  if (version == 1)
    return unusable(
        "campaign journal is format v1 (pre-checksum); v1 cannot be validated "
        "and is not migrated — delete the journal to start fresh");
  if (version != kCampaignJournalVersion)
    return unusable("unsupported campaign journal version " + std::to_string(version));

  std::size_t offset = kPreambleSize;
  std::string payload;
  const char* why = "";
  if (!next_frame(data, offset, payload, why))
    return unusable(std::string("campaign journal header unreadable: ") + why);

  JournalLoadResult result;
  HeaderFields header;
  try {
    header = parse_header(payload);
  } catch (const PreconditionError& e) {
    return unusable(std::string("campaign journal header malformed: ") + e.what());
  }
  result.seed = header.seed;
  result.total_units = header.total_units;
  result.shards = header.shards;
  result.fingerprint = header.fingerprint;

  // Per-record damage truncates: everything before the first bad frame is
  // trusted (each frame was independently CRC-verified), everything after
  // is dropped because frame boundaries can no longer be located.
  std::vector<bool> seen(header.shards, false);
  std::string tail_warning;
  result.records.reserve(header.count);
  std::size_t i = 0;
  for (; i < header.count; ++i) {
    if (!next_frame(data, offset, payload, why)) {
      tail_warning = why;
      break;
    }
    ShardRecord rec;
    try {
      rec = parse_record(payload);
    } catch (const PreconditionError&) {
      tail_warning = "malformed record payload";
      break;
    }
    if (rec.shard >= header.shards) {
      tail_warning = "record shard id out of range";
      break;
    }
    if (seen[rec.shard]) {
      tail_warning = "duplicate shard record";
      break;
    }
    seen[rec.shard] = true;
    result.records.push_back(std::move(rec));
  }
  result.records_recovered = result.records.size();
  result.records_dropped = header.count - i;
  if (tail_warning.empty() && offset != data.size())
    tail_warning = "trailing bytes after last record";
  if (tail_warning.empty()) {
    result.status = JournalLoadResult::Status::kOk;
  } else {
    result.status = JournalLoadResult::Status::kRecovered;
    result.warning = "campaign journal damaged (" + tail_warning + "): kept " +
                     std::to_string(result.records_recovered) + " of " +
                     std::to_string(header.count) +
                     " shard records; dropped shards will be recomputed";
  }
  return result;
}

std::string slurp(std::istream& in) {
  std::ostringstream os;
  os << in.rdbuf();
  return std::move(os).str();
}

#ifndef _WIN32
void write_file_durable(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  MLEC_REQUIRE(fd >= 0, "cannot open campaign journal for writing: " + path + ": " +
                            // Copied into the message before any other call
                            // can clobber strerror's static buffer.
                            // NOLINTNEXTLINE(concurrency-mt-unsafe)
                            std::strerror(errno));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw PreconditionError("campaign journal write failed: " + path + ": " +
                              // NOLINTNEXTLINE(concurrency-mt-unsafe)
                              std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw PreconditionError("campaign journal fsync failed: " + path + ": " +
                            // NOLINTNEXTLINE(concurrency-mt-unsafe)
                            std::strerror(err));
  }
  MLEC_REQUIRE(::close(fd) == 0, "campaign journal close failed: " + path);
}

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  // Some filesystems refuse O_RDONLY on directories; the rename itself is
  // still atomic, so degrade to best-effort rather than failing the save.
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}
#endif

}  // namespace

void save_bytes_durable(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
#ifndef _WIN32
  write_file_durable(tmp, bytes);
  MLEC_FAULT_POINT("journal.rename.pre");
  MLEC_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot atomically replace campaign journal: " + path);
  MLEC_FAULT_POINT("journal.rename.post");
  fsync_parent_dir(path);
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    MLEC_REQUIRE(out.good(), "cannot open campaign journal for writing: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    MLEC_REQUIRE(out.good(), "campaign journal write failed: " + tmp);
  }
  MLEC_FAULT_POINT("journal.rename.pre");
  std::remove(path.c_str());
  MLEC_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot atomically replace campaign journal: " + path);
  MLEC_FAULT_POINT("journal.rename.post");
#endif
}

std::uint64_t fingerprint_of(const std::string& identity) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : identity) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void CampaignJournal::save(std::ostream& out) const {
  using namespace campaign_io;
  out.write(kMagic, sizeof kMagic);
  write_u32(out, kCampaignJournalVersion);
  write_frame(out, header_payload(*this));
  for (const auto& rec : records) write_frame(out, record_payload(rec));
}

CampaignJournal CampaignJournal::load(std::istream& in) {
  JournalLoadResult result = recover(in);
  MLEC_REQUIRE(result.status == JournalLoadResult::Status::kOk,
               result.warning.empty() ? "campaign journal unreadable" : result.warning);
  CampaignJournal journal;
  journal.seed = result.seed;
  journal.total_units = result.total_units;
  journal.shards = result.shards;
  journal.fingerprint = result.fingerprint;
  journal.records = std::move(result.records);
  MLEC_REQUIRE(journal.records.size() == journal.shards,
               "campaign journal record count mismatch");
  return journal;
}

JournalLoadResult CampaignJournal::recover(std::istream& in) {
  if (!in.good()) return unusable("campaign journal stream unreadable");
  return recover_from_buffer(slurp(in));
}

void CampaignJournal::save_file(const std::string& path) const {
  MLEC_FAULT_POINT("journal.save.pre");
  std::ostringstream os(std::ios::binary);
  save(os);
  save_bytes_durable(path, std::move(os).str());
}

CampaignJournal CampaignJournal::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MLEC_REQUIRE(in.good(), "cannot open campaign journal: " + path);
  return load(in);
}

JournalLoadResult CampaignJournal::recover_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    JournalLoadResult result;
    result.status = JournalLoadResult::Status::kMissing;
    result.warning = "no campaign journal at " + path;
    return result;
  }
  return recover(in);
}

}  // namespace mlec
