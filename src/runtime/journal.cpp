#include "runtime/journal.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>

#include "runtime/io_detail.hpp"
#include "util/error.hpp"

namespace mlec {

namespace {
constexpr char kMagic[8] = {'M', 'L', 'E', 'C', 'C', 'A', 'M', 'P'};
constexpr std::uint8_t kFlagQuarantined = 1;
}  // namespace

std::uint64_t fingerprint_of(const std::string& identity) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : identity) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void CampaignJournal::save(std::ostream& out) const {
  using namespace campaign_io;
  out.write(kMagic, sizeof kMagic);
  write_u32(out, kCampaignJournalVersion);
  write_u64(out, seed);
  write_u64(out, total_units);
  write_u32(out, shards);
  write_u64(out, fingerprint);
  write_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const auto& rec : records) {
    write_u32(out, rec.shard);
    write_u32(out, rec.attempt);
    write_u8(out, rec.quarantined ? kFlagQuarantined : 0);
    write_u64(out, rec.assigned);
    write_u64(out, rec.done);
    for (const auto word : rec.rng_state) write_u64(out, word);
    rec.acc.save(out);
  }
}

CampaignJournal CampaignJournal::load(std::istream& in) {
  using namespace campaign_io;
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  MLEC_REQUIRE(in.good() && std::equal(magic, magic + sizeof magic, kMagic),
               "not a campaign journal (bad magic)");
  const std::uint32_t version = read_u32(in);
  MLEC_REQUIRE(version == kCampaignJournalVersion,
               "unsupported campaign journal version " + std::to_string(version));
  CampaignJournal journal;
  journal.seed = read_u64(in);
  journal.total_units = read_u64(in);
  journal.shards = read_u32(in);
  journal.fingerprint = read_u64(in);
  const std::uint32_t count = read_u32(in);
  MLEC_REQUIRE(count == journal.shards, "campaign journal record count mismatch");
  journal.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ShardRecord rec;
    rec.shard = read_u32(in);
    rec.attempt = read_u32(in);
    rec.quarantined = (read_u8(in) & kFlagQuarantined) != 0;
    rec.assigned = read_u64(in);
    rec.done = read_u64(in);
    for (auto& word : rec.rng_state) word = read_u64(in);
    rec.acc = CampaignAccumulator::load(in);
    journal.records.push_back(std::move(rec));
  }
  return journal;
}

void CampaignJournal::save_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    MLEC_REQUIRE(out.good(), "cannot open campaign journal for writing: " + tmp);
    save(out);
    MLEC_REQUIRE(out.good(), "campaign journal write failed: " + tmp);
  }
  MLEC_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot atomically replace campaign journal: " + path);
}

CampaignJournal CampaignJournal::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MLEC_REQUIRE(in.good(), "cannot open campaign journal: " + path);
  return load(in);
}

}  // namespace mlec
