// Campaign-runner adapter for the fleet Monte-Carlo simulator: resumable,
// cancellable, fault-isolated mission sweeps with adaptive PDL stopping.
//
// One campaign unit = one mission. Shard s / attempt a draws from
// Rng::for_substream(seed, s | a << 32); with the same seed, shard count,
// and checkpoint file, a run killed mid-flight and resumed produces
// bit-identical FleetSimResult statistics to an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/fleet_sim.hpp"
#include "runtime/campaign.hpp"

namespace mlec {

struct FleetCampaignOptions {
  /// Journal file; empty runs in-memory (no persistence).
  std::string checkpoint_path;
  /// Resume from checkpoint_path if it exists (see CampaignConfig::resume).
  bool resume = false;
  std::uint64_t checkpoint_every = 256;
  std::size_t shards = 0;  ///< 0 = derive from the pool
  std::size_t max_attempts = 3;
  double retry_backoff_ms = 100.0;
  /// Shard watchdog deadline in seconds; 0 disables (see
  /// CampaignConfig::shard_timeout_s).
  double shard_timeout_s = 0.0;
  /// Stop early once the PDL estimate's relative standard error drops below
  /// this (0 disables adaptive stopping).
  double target_rse = 0.0;
  /// Max missions to run this invocation (0 = unlimited); deterministic
  /// stand-in for a wall-clock budget.
  std::uint64_t unit_budget = 0;
  StopToken stop{};
  /// Per-commit progress feed (see CampaignConfig::progress).
  std::function<void(const CampaignProgress&)> progress;
  /// ThreadPool dispatch lane (see CampaignConfig::pool_lane).
  std::size_t pool_lane = kLaneNormal;
};

struct FleetCampaignResult {
  FleetSimResult result;
  CampaignReport report;
};

/// Translate a FleetSimResult into campaign accumulator slots (and back).
/// Exposed so other sweeps can reuse the fleet slot layout.
void accumulate_fleet_result(const FleetSimResult& result, CampaignAccumulator& acc);
FleetSimResult fleet_result_from(const CampaignAccumulator& acc);

/// Identity string folded into the journal fingerprint: any change to the
/// physics configuration invalidates old checkpoints.
std::string fleet_campaign_fingerprint(const FleetSimConfig& config);

FleetCampaignResult run_fleet_campaign(const FleetSimConfig& config, std::uint64_t missions,
                                       std::uint64_t seed,
                                       const FleetCampaignOptions& options = {},
                                       ThreadPool* pool = nullptr);

}  // namespace mlec
