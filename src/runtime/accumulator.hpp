// Named-slot accumulator for campaign shards.
//
// Monte-Carlo workloads reduce to three kinds of per-shard state: event
// counters, additive scalars (e.g. traffic TB), and RunningStats moments.
// CampaignAccumulator holds all three under stable names so the campaign
// runner can journal, restore, and merge partial results without knowing
// the workload's concrete result struct; adapters (see fleet_campaign.hpp)
// translate to and from their domain types.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace mlec {

class CampaignAccumulator {
 public:
  /// Slot accessors create the slot on first use; insertion order is part of
  /// the identity (merge and serialization require identical layouts).
  std::uint64_t& counter(std::string_view name);
  double& scalar(std::string_view name);
  RunningStats& stats(std::string_view name);

  /// Const lookups return the zero/empty value when the slot is absent, so
  /// estimators and adapters stay total over partially filled accumulators.
  std::uint64_t counter(std::string_view name) const;
  double scalar(std::string_view name) const;
  const RunningStats& stats(std::string_view name) const;

  bool empty() const { return counters_.empty() && scalars_.empty() && stats_.empty(); }

  /// Element-wise merge. Slots are matched by name; `other` must have a
  /// layout compatible with this accumulator (same names in the same order,
  /// or one of the two empty).
  void merge(const CampaignAccumulator& other);

  void save(std::ostream& out) const;
  static CampaignAccumulator load(std::istream& in);

  bool operator==(const CampaignAccumulator&) const = default;

 private:
  // Few slots per workload: ordered vectors with linear lookup beat maps and
  // keep serialization order deterministic.
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, RunningStats>> stats_;
};

}  // namespace mlec
