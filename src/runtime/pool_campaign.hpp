// Campaign-runner adapter for the stage-1 local-pool simulator — the front
// half of the splitting estimator, with checkpoint/resume, cancellation,
// shard fault isolation, and adaptive stopping on the catastrophe count.
//
// One campaign unit = one pool mission. Shard s / attempt a draws from
// Rng::for_substream(seed, s | a << 32); with the same seed, shard count,
// and checkpoint file, a run killed mid-flight and resumed produces
// bit-identical statistics to an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/durability.hpp"
#include "runtime/campaign.hpp"
#include "sim/local_pool_sim.hpp"

namespace mlec {

struct LocalPoolCampaignOptions {
  /// Journal file; empty runs in-memory (no persistence).
  std::string checkpoint_path;
  bool resume = false;
  std::uint64_t checkpoint_every = 256;
  std::size_t shards = 0;  ///< 0 = derive from the pool
  std::size_t max_attempts = 3;
  double retry_backoff_ms = 100.0;
  /// Shard watchdog deadline in seconds; 0 disables (see
  /// CampaignConfig::shard_timeout_s).
  double shard_timeout_s = 0.0;
  /// Stop early once the catastrophe count's Poisson relative standard
  /// error (1/sqrt(count)) drops below this (0 disables).
  double target_rse = 0.0;
  /// Max missions to run this invocation (0 = unlimited).
  std::uint64_t unit_budget = 0;
  StopToken stop{};
  /// Per-commit progress feed (see CampaignConfig::progress).
  std::function<void(const CampaignProgress&)> progress;
  /// ThreadPool dispatch lane (see CampaignConfig::pool_lane).
  std::size_t pool_lane = kLaneNormal;
};

struct LocalPoolCampaignResult {
  std::uint64_t missions = 0;
  std::uint64_t catastrophes = 0;
  double pool_years = 0.0;  ///< total simulated pool-time in years
  RunningStats lost_stripe_fraction;  ///< per-catastrophe lost fraction
  RunningStats unrebuilt_tb;          ///< per-catastrophe missing data
  RunningStats single_disk_repair_hours;
  /// Perf counters merged from the shard simulators.
  std::uint64_t events_processed = 0;
  std::uint64_t rng_draws = 0;
  CampaignReport report;

  double catastrophe_rate_per_year() const {
    return pool_years > 0.0 ? static_cast<double>(catastrophes) / pool_years : 0.0;
  }
  /// Stage-1 statistics for the splitting stage 2 (mlec_durability).
  LocalPoolStats stats() const;
};

/// Translate one LocalPoolSimResult into campaign accumulator slots.
/// Touches every slot on every call so the accumulator layout is
/// deterministic regardless of which missions hit catastrophes.
void accumulate_local_pool_result(const LocalPoolSimResult& result, CampaignAccumulator& acc);

/// Identity string folded into the journal fingerprint: any change to the
/// physics configuration invalidates old checkpoints.
std::string local_pool_campaign_fingerprint(const LocalPoolSimConfig& config);

LocalPoolCampaignResult run_local_pool_campaign(const LocalPoolSimConfig& config,
                                                std::uint64_t missions, std::uint64_t seed,
                                                const LocalPoolCampaignOptions& options = {},
                                                ThreadPool* pool = nullptr);

}  // namespace mlec
