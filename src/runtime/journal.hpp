// Campaign checkpoint journal: the on-disk format behind resumable sweeps.
//
// A journal is a single versioned binary file, rewritten atomically
// (tmp + rename) at every checkpoint. Layout (little-endian):
//
//   header:  magic "MLECCAMP" | u32 version | u64 seed | u64 total_units
//            | u32 shards | u64 fingerprint (FNV-1a of the workload's
//            config identity — resuming under a different config refuses)
//   records: one per shard —
//            u32 shard | u32 attempt | u8 flags (1 = quarantined)
//            | u64 assigned | u64 done | 4 x u64 rng state
//            | accumulator (counters, scalars, RunningStats — see
//              CampaignAccumulator serialization)
//
// Resume restores each shard's accumulator and RNG state exactly, so a run
// killed between checkpoints replays only the tail of the last batch and
// finishes bit-identical to an uninterrupted run with the same seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/accumulator.hpp"

namespace mlec {

inline constexpr std::uint32_t kCampaignJournalVersion = 1;

/// Persistent per-shard progress record.
struct ShardRecord {
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;
  bool quarantined = false;
  std::uint64_t assigned = 0;
  std::uint64_t done = 0;
  std::array<std::uint64_t, 4> rng_state{};
  CampaignAccumulator acc;
};

struct CampaignJournal {
  std::uint64_t seed = 0;
  std::uint64_t total_units = 0;
  std::uint32_t shards = 0;
  std::uint64_t fingerprint = 0;
  std::vector<ShardRecord> records;

  void save(std::ostream& out) const;
  static CampaignJournal load(std::istream& in);

  /// Atomic file write: serialize to `path + ".tmp"`, then rename over
  /// `path` so readers never observe a torn journal.
  void save_file(const std::string& path) const;
  /// Load `path`; throws PreconditionError on malformed/unversioned data.
  static CampaignJournal load_file(const std::string& path);
};

/// FNV-1a hash of an arbitrary identity string (workload config text).
std::uint64_t fingerprint_of(const std::string& identity);

}  // namespace mlec
