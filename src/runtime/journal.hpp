// Campaign checkpoint journal: the on-disk format behind resumable sweeps.
//
// A journal is a single versioned binary file, rewritten crash-safely at
// every checkpoint: serialize to `path + ".tmp"`, fsync the tmp file,
// rename over `path`, then fsync the parent directory so the rename itself
// is durable. A crash at any instant leaves either the previous journal or
// the new one — never a torn file (torn *bytes* are additionally caught by
// per-record CRCs, below).
//
// Format v2 (little-endian). Every record after the fixed preamble is
// length-framed and checksummed:
//
//   preamble: magic "MLECCAMP" | u32 version (= 2)
//   frame:    u32 payload_len | u32 crc32(payload) | payload bytes
//   frame 0:  header payload — u64 seed | u64 total_units | u32 shards
//             | u64 fingerprint (FNV-1a of the workload's config identity —
//             resuming under a different config refuses) | u32 record_count
//   frames 1..record_count: one shard record each —
//             u32 shard | u32 attempt | u8 flags (1 = quarantined)
//             | u64 assigned | u64 done | 4 x u64 rng state
//             | accumulator (counters, scalars, RunningStats — see
//               CampaignAccumulator serialization)
//
// Two read paths share the parser:
//   * load()/load_file() — strict: any damage throws PreconditionError.
//   * recover()/recover_file() — resilient: returns a typed
//     JournalLoadResult. A corrupt or truncated tail is dropped at the last
//     CRC-valid record (shards whose records were lost simply restart their
//     deterministic substreams, so the resumed campaign is still
//     bit-identical); an unusable preamble/header falls back to a fresh
//     start. recover never throws on malformed bytes.
//
// Version 1 files (pre-CRC) are reported unusable with a migration warning
// rather than parsed: their unframed layout cannot distinguish truncation
// from garbage, which is the hole v2 closes.
//
// Resume restores each shard's accumulator and RNG state exactly, so a run
// killed between checkpoints replays only the tail of the last batch and
// finishes bit-identical to an uninterrupted run with the same seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/accumulator.hpp"

namespace mlec {

inline constexpr std::uint32_t kCampaignJournalVersion = 2;

/// Persistent per-shard progress record.
struct ShardRecord {
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;
  bool quarantined = false;
  std::uint64_t assigned = 0;
  std::uint64_t done = 0;
  std::array<std::uint64_t, 4> rng_state{};
  CampaignAccumulator acc;
};

struct CampaignJournal;

/// Typed outcome of the resilient read path (CampaignJournal::recover).
struct JournalLoadResult {
  enum class Status {
    kOk,         ///< fully intact: every framed record parsed and verified
    kRecovered,  ///< damaged tail dropped at the last CRC-valid record
    kMissing,    ///< no file at the given path (recover_file only)
    kUnusable,   ///< bad magic/version/header or no valid records: start fresh
  };

  Status status = Status::kUnusable;
  std::vector<ShardRecord> records;  ///< recovered records (usable() states only)
  std::uint64_t seed = 0;
  std::uint64_t total_units = 0;
  std::uint32_t shards = 0;
  std::uint64_t fingerprint = 0;
  std::size_t records_recovered = 0;
  std::size_t records_dropped = 0;  ///< records lost to the damaged tail
  std::string warning;              ///< human-readable damage description ("" when kOk)

  /// True when the caller can resume from `records` (possibly a subset).
  bool usable() const { return status == Status::kOk || status == Status::kRecovered; }
};

struct CampaignJournal {
  std::uint64_t seed = 0;
  std::uint64_t total_units = 0;
  std::uint32_t shards = 0;
  std::uint64_t fingerprint = 0;
  std::vector<ShardRecord> records;

  void save(std::ostream& out) const;
  /// Strict load: throws PreconditionError on any malformed, truncated, or
  /// checksum-failing input. Equivalent to recover() + requiring kOk.
  static CampaignJournal load(std::istream& in);
  /// Resilient load: never throws on malformed bytes (see file comment).
  static JournalLoadResult recover(std::istream& in);

  /// Crash-safe file write: serialize to `path + ".tmp"`, fsync it, rename
  /// over `path`, fsync the parent directory. Fault points:
  /// journal.save.pre, journal.rename.pre, journal.rename.post.
  void save_file(const std::string& path) const;
  /// Strict file load; throws PreconditionError on malformed data.
  static CampaignJournal load_file(const std::string& path);
  /// Resilient file load; kMissing when the path does not exist.
  static JournalLoadResult recover_file(const std::string& path);
};

/// FNV-1a hash of an arbitrary identity string (workload config text).
std::uint64_t fingerprint_of(const std::string& identity);

/// Crash-safe atomic file replacement shared by every durable store in the
/// tree (campaign journals, the server's submission/estimate store): write
/// `path + ".tmp"`, fsync it, rename over `path`, fsync the parent
/// directory. A crash at any instant leaves either the old file or the new
/// one — never a torn mix. Hits the journal.rename.pre/.post fault points.
void save_bytes_durable(const std::string& path, const std::string& bytes);

}  // namespace mlec
