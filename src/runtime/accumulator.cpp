#include "runtime/accumulator.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "runtime/io_detail.hpp"
#include "util/error.hpp"

namespace mlec {

namespace {

template <typename T>
T* find_slot(std::vector<std::pair<std::string, T>>& slots, std::string_view name) {
  for (auto& [key, value] : slots)
    if (key == name) return &value;
  return nullptr;
}

template <typename T>
const T* find_slot(const std::vector<std::pair<std::string, T>>& slots,
                   std::string_view name) {
  for (const auto& [key, value] : slots)
    if (key == name) return &value;
  return nullptr;
}

template <typename T, typename MergeFn>
void merge_slots(std::vector<std::pair<std::string, T>>& into,
                 const std::vector<std::pair<std::string, T>>& from, MergeFn&& merge_one) {
  if (from.empty()) return;
  if (into.empty()) {
    into = from;
    return;
  }
  MLEC_REQUIRE(into.size() == from.size(),
               "campaign accumulator layouts differ; cannot merge");
  for (std::size_t i = 0; i < into.size(); ++i) {
    MLEC_REQUIRE(into[i].first == from[i].first,
                 "campaign accumulator slot order differs; cannot merge");
    merge_one(into[i].second, from[i].second);
  }
}

}  // namespace

std::uint64_t& CampaignAccumulator::counter(std::string_view name) {
  if (auto* slot = find_slot(counters_, name)) return *slot;
  return counters_.emplace_back(std::string(name), 0).second;
}

double& CampaignAccumulator::scalar(std::string_view name) {
  if (auto* slot = find_slot(scalars_, name)) return *slot;
  return scalars_.emplace_back(std::string(name), 0.0).second;
}

RunningStats& CampaignAccumulator::stats(std::string_view name) {
  if (auto* slot = find_slot(stats_, name)) return *slot;
  return stats_.emplace_back(std::string(name), RunningStats{}).second;
}

std::uint64_t CampaignAccumulator::counter(std::string_view name) const {
  const auto* slot = find_slot(counters_, name);
  return slot != nullptr ? *slot : 0;
}

double CampaignAccumulator::scalar(std::string_view name) const {
  const auto* slot = find_slot(scalars_, name);
  return slot != nullptr ? *slot : 0.0;
}

const RunningStats& CampaignAccumulator::stats(std::string_view name) const {
  static const RunningStats empty;
  const auto* slot = find_slot(stats_, name);
  return slot != nullptr ? *slot : empty;
}

void CampaignAccumulator::merge(const CampaignAccumulator& other) {
  merge_slots(counters_, other.counters_,
              [](std::uint64_t& a, const std::uint64_t& b) { a += b; });
  merge_slots(scalars_, other.scalars_, [](double& a, const double& b) { a += b; });
  merge_slots(stats_, other.stats_,
              [](RunningStats& a, const RunningStats& b) { a.merge(b); });
}

void CampaignAccumulator::save(std::ostream& out) const {
  using namespace campaign_io;
  write_u32(out, static_cast<std::uint32_t>(counters_.size()));
  for (const auto& [name, value] : counters_) {
    write_string(out, name);
    write_u64(out, value);
  }
  write_u32(out, static_cast<std::uint32_t>(scalars_.size()));
  for (const auto& [name, value] : scalars_) {
    write_string(out, name);
    write_f64(out, value);
  }
  write_u32(out, static_cast<std::uint32_t>(stats_.size()));
  for (const auto& [name, value] : stats_) {
    write_string(out, name);
    const auto raw = value.raw();
    write_u64(out, raw.n);
    write_f64(out, raw.mean);
    write_f64(out, raw.m2);
    write_f64(out, raw.min);
    write_f64(out, raw.max);
  }
}

CampaignAccumulator CampaignAccumulator::load(std::istream& in) {
  using namespace campaign_io;
  CampaignAccumulator acc;
  const std::uint32_t counters = read_u32(in);
  for (std::uint32_t i = 0; i < counters; ++i) {
    const std::string name = read_string(in);
    acc.counter(name) = read_u64(in);
  }
  const std::uint32_t scalars = read_u32(in);
  for (std::uint32_t i = 0; i < scalars; ++i) {
    const std::string name = read_string(in);
    acc.scalar(name) = read_f64(in);
  }
  const std::uint32_t stats = read_u32(in);
  for (std::uint32_t i = 0; i < stats; ++i) {
    const std::string name = read_string(in);
    RunningStats::Raw raw;
    raw.n = read_u64(in);
    raw.mean = read_f64(in);
    raw.m2 = read_f64(in);
    raw.min = read_f64(in);
    raw.max = read_f64(in);
    acc.stats(name) = RunningStats::from_raw(raw);
  }
  return acc;
}

}  // namespace mlec
