#include "runtime/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <thread>

#include "runtime/journal.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace mlec {

namespace {

/// Raised inside a shard attempt when its watchdog token fires; funnels
/// into the same retry/quarantine path as workload exceptions but is
/// counted separately (ShardOutcome::timeouts).
class ShardTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace

void CampaignConfig::validate() const {
  MLEC_REQUIRE(total_units > 0, "campaign needs at least one unit of work");
  MLEC_REQUIRE(checkpoint_every > 0, "checkpoint interval must be positive");
  MLEC_REQUIRE(max_attempts >= 1, "at least one attempt per shard required");
  MLEC_REQUIRE(retry_backoff_ms >= 0.0, "retry backoff must be non-negative");
  MLEC_REQUIRE(shard_timeout_s >= 0.0, "shard timeout must be non-negative");
  MLEC_REQUIRE(target_rse >= 0.0, "target RSE must be non-negative");
}

std::size_t CampaignReport::quarantined() const {
  return static_cast<std::size_t>(
      std::count_if(shards.begin(), shards.end(),
                    [](const ShardOutcome& s) { return s.quarantined; }));
}

double bernoulli_rse(std::uint64_t successes, std::uint64_t trials) {
  if (successes == 0 || trials == 0) return std::numeric_limits<double>::infinity();
  const double p = static_cast<double>(successes) / static_cast<double>(trials);
  return std::sqrt((1.0 - p) / static_cast<double>(successes));
}

struct CampaignRunner::ShardState {
  std::uint64_t assigned = 0;
  std::uint64_t done = 0;
  std::uint32_t attempt = 0;  ///< 0-based index of the current/last attempt
  /// rng_state (and acc) hold a committed checkpoint of the current attempt.
  bool has_checkpoint = false;
  std::array<std::uint64_t, 4> rng_state{};
  CampaignAccumulator acc;
  bool finished = false;
  bool quarantined = false;
  std::string error;
  std::uint32_t timeouts = 0;  ///< attempts cancelled by the watchdog
  double elapsed_s = 0.0;  ///< wall time across this invocation's attempts
  // Watchdog view of the shard (all guarded by the campaign mutex): a shard
  // is watched only while `running`; `last_progress` is refreshed at every
  // commit; `attempt_stop` is replaced at each attempt start so cancelling
  // one attempt cannot leak into its retry.
  bool running = false;
  std::chrono::steady_clock::time_point last_progress{};
  StopSource attempt_stop;
};

CampaignRunner::CampaignRunner(CampaignConfig config, WorkerFactory factory, RseEstimator rse)
    : config_(std::move(config)), factory_(std::move(factory)), rse_(std::move(rse)) {
  config_.validate();
  MLEC_REQUIRE(factory_ != nullptr, "campaign needs a worker factory");
}

CampaignRunner::~CampaignRunner() = default;

bool CampaignRunner::should_stop() {
  if (converged_.load(std::memory_order_relaxed)) return true;
  if (config_.stop.stop_requested() ||
      (config_.unit_budget > 0 &&
       invocation_units_.load(std::memory_order_relaxed) >= config_.unit_budget)) {
    truncated_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

CampaignAccumulator CampaignRunner::merged_locked() const {
  CampaignAccumulator merged;
  for (const auto& st : states_)
    if (!st.quarantined) merged.merge(st.acc);
  return merged;
}

void CampaignRunner::write_journal_locked() {
  if (config_.checkpoint_path.empty()) return;
  CampaignJournal journal;
  journal.seed = config_.seed;
  journal.total_units = config_.total_units;
  journal.shards = static_cast<std::uint32_t>(states_.size());
  journal.fingerprint = fingerprint_of(config_.fingerprint);
  journal.records.reserve(states_.size());
  for (std::uint32_t s = 0; s < states_.size(); ++s) {
    const auto& st = states_[s];
    ShardRecord rec;
    rec.shard = s;
    rec.attempt = st.attempt;
    rec.quarantined = st.quarantined;
    rec.assigned = st.assigned;
    rec.done = st.done;
    rec.rng_state = st.rng_state;
    rec.acc = st.acc;
    journal.records.push_back(std::move(rec));
  }
  journal.save_file(config_.checkpoint_path);
}

void CampaignRunner::restore_from_journal() {
  JournalLoadResult loaded = CampaignJournal::recover_file(config_.checkpoint_path);
  if (loaded.status == JournalLoadResult::Status::kMissing) return;
  if (!loaded.usable()) {
    // Corruption is an operational hazard, not a configuration error: fall
    // back to a fresh start (bit-identical to a never-checkpointed run) and
    // surface the damage through the report instead of aborting.
    resume_warning_ = loaded.warning + " — starting fresh";
    return;
  }
  // A *valid* journal for the wrong campaign is a user error: resuming it
  // would silently mix incompatible statistics, so these still throw.
  MLEC_REQUIRE(loaded.seed == config_.seed, "campaign journal seed mismatch");
  MLEC_REQUIRE(loaded.total_units == config_.total_units,
               "campaign journal total-unit mismatch");
  MLEC_REQUIRE(loaded.shards == states_.size(), "campaign journal shard-count mismatch");
  MLEC_REQUIRE(loaded.fingerprint == fingerprint_of(config_.fingerprint),
               "campaign journal belongs to a different workload configuration");
  for (const auto& rec : loaded.records) {
    MLEC_REQUIRE(rec.shard < states_.size(), "campaign journal shard id out of range");
    auto& st = states_[rec.shard];
    MLEC_REQUIRE(rec.assigned == st.assigned, "campaign journal shard partition mismatch");
    st.done = rec.done;
    st.attempt = rec.attempt;
    st.quarantined = rec.quarantined;
    st.acc = rec.acc;
    st.rng_state = rec.rng_state;
    st.has_checkpoint = rec.done > 0;
    st.finished = rec.done == rec.assigned;
  }
  // Shards whose records were dropped with the damaged tail simply keep
  // their fresh-start state and recompute their deterministic substreams.
  resumed_ = true;
  resume_warning_ = loaded.warning;
}

void CampaignRunner::commit(std::uint32_t shard, const CampaignAccumulator& acc,
                            const Rng& rng, std::uint64_t done, std::uint32_t attempt) {
  MLEC_FAULT_POINT("campaign.checkpoint.pre");
  CampaignProgress snapshot;
  {
    MutexLock lock(mutex_);
    auto& st = states_[shard];
    invocation_units_.fetch_add(done - st.done, std::memory_order_relaxed);
    st.acc = acc;
    st.rng_state = rng.state();
    st.done = done;
    st.attempt = attempt;
    st.has_checkpoint = true;
    st.last_progress = std::chrono::steady_clock::now();  // watchdog heartbeat
    write_journal_locked();
    if (rse_ != nullptr && (config_.target_rse > 0.0 || config_.progress != nullptr)) {
      const double rse = rse_(merged_locked());
      if (config_.target_rse > 0.0 && rse <= config_.target_rse)
        converged_.store(true, std::memory_order_relaxed);
      if (std::isfinite(rse)) snapshot.achieved_rse = rse;
    }
    if (config_.progress != nullptr) {
      snapshot.shard = shard;
      snapshot.units_total = config_.total_units;
      for (const auto& s : states_) snapshot.units_done += s.done;
    }
  }
  // The callback runs outside the campaign mutex so a slow subscriber fan-
  // out cannot stall other shards' commits.
  if (config_.progress != nullptr) config_.progress(snapshot);
  MLEC_FAULT_POINT("campaign.checkpoint.post");
}

void CampaignRunner::backoff_before_retry(std::uint32_t shard,
                                          std::uint32_t retry_attempt) const {
  if (config_.retry_backoff_ms <= 0.0) return;
  const double factor = std::pow(2.0, static_cast<double>(retry_attempt - 1));
  // Jitter is drawn from seeded SplitMix64 over (seed, shard,
  // attempt), never wall clock or rand(): retries stay reproducible
  // run-to-run while still de-synchronizing across shards.
  std::uint64_t jitter_state = config_.seed ^
                               (static_cast<std::uint64_t>(shard) *
                                0x9e3779b97f4a7c15ULL) ^
                               retry_attempt;
  const double jitter =
      0.5 + static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      config_.retry_backoff_ms * factor * jitter));
}

void CampaignRunner::run_shard(std::uint32_t shard) {
  const auto started = std::chrono::steady_clock::now();
  // Charges wall time on every exit path. Declared first so its destructor
  // runs after every inner MutexLock has released (locals destroy in
  // reverse order) — it can safely take the mutex itself.
  struct Timer {
    CampaignRunner& self;
    std::uint32_t shard;
    std::chrono::steady_clock::time_point start;
    ~Timer() {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      MutexLock lock(self.mutex_);
      self.states_[shard].elapsed_s += elapsed;
    }
  } timer{*this, shard, started};
  for (;;) {
    // Copy everything the attempt needs under the lock, then run on the
    // copies: shard threads never touch ShardState unlocked.
    std::uint64_t assigned = 0;
    std::uint64_t done = 0;
    std::uint32_t attempt = 0;
    bool has_checkpoint = false;
    std::array<std::uint64_t, 4> rng_state{};
    CampaignAccumulator acc;
    StopToken attempt_token;
    {
      MutexLock lock(mutex_);
      ShardState& st = states_[shard];
      if (st.finished || st.quarantined) return;
      assigned = st.assigned;
      done = st.done;
      attempt = st.attempt;
      has_checkpoint = st.has_checkpoint;
      rng_state = st.rng_state;
      acc = st.acc;
      st.attempt_stop = StopSource{};  // fresh per attempt: no stale cancels
      attempt_token = st.attempt_stop.token();
      st.last_progress = std::chrono::steady_clock::now();
      st.running = true;
    }
    const std::uint64_t stream =
        static_cast<std::uint64_t>(shard) | (static_cast<std::uint64_t>(attempt) << 32);
    Rng rng = Rng::for_substream(config_.seed, stream);
    if (has_checkpoint) rng.set_state(rng_state);
    // Injected fault delays on this thread poll the attempt token, so the
    // watchdog can cut a hung (delay-injected) shard loose mid-sleep.
    fault::ScopedCancellation cancel_scope(attempt_token);
    try {
      auto worker = factory_(shard, rng);
      MLEC_REQUIRE(worker != nullptr, "campaign worker factory returned null");
      while (done < assigned) {
        if (should_stop()) {  // progress up to `done` is committed
          MutexLock lock(mutex_);
          states_[shard].running = false;
          return;
        }
        MLEC_FAULT_POINT("shard.slow");
        if (attempt_token.stop_requested())
          throw ShardTimeoutError("shard " + std::to_string(shard) +
                                  " made no progress within " +
                                  std::to_string(config_.shard_timeout_s) + "s");
        const std::uint64_t batch = std::min(config_.checkpoint_every, assigned - done);
        for (std::uint64_t u = 0; u < batch; ++u) {
          MLEC_FAULT_POINT("pool.task.throw");
          worker(acc);
        }
        done += batch;
        commit(shard, acc, rng, done, attempt);
      }
      {
        MutexLock lock(mutex_);
        ShardState& st = states_[shard];
        st.running = false;
        st.finished = true;
      }
      return;
    } catch (const std::exception& e) {
      std::uint32_t retry_attempt = 0;
      {
        MutexLock lock(mutex_);
        ShardState& st = states_[shard];
        st.running = false;
        st.error = e.what();
        if (dynamic_cast<const ShardTimeoutError*>(&e) != nullptr) ++st.timeouts;
        // Retry from scratch on a fresh substream: the failed attempt's
        // partial accumulation (committed or not) is discarded so a
        // mid-stream fault cannot bias the surviving statistics.
        st.done = 0;
        st.acc = CampaignAccumulator{};
        st.has_checkpoint = false;
        if (st.attempt + 1 >= config_.max_attempts) {
          st.quarantined = true;
          write_journal_locked();
          return;
        }
        retry_attempt = ++st.attempt;
      }
      backoff_before_retry(shard, retry_attempt);
    }
  }
}

std::pair<CampaignAccumulator, CampaignReport> CampaignRunner::run(ThreadPool* pool) {
  const auto run_started = std::chrono::steady_clock::now();
  std::size_t shard_count = config_.shards;
  if (shard_count == 0) shard_count = pool != nullptr ? pool->size() * 2 : 1;
  shard_count = std::clamp<std::size_t>(shard_count, 1, config_.total_units);

  {
    // No shard threads exist yet, but partitioning and journal restore still
    // run under the mutex: `states_` is guarded wholesale and the analysis
    // (rightly) has no notion of "before the races start".
    MutexLock lock(mutex_);
    states_.assign(shard_count, ShardState{});
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::uint64_t lo = config_.total_units * s / shard_count;
      const std::uint64_t hi = config_.total_units * (s + 1) / shard_count;
      states_[s].assigned = hi - lo;
    }

    if (config_.resume && !config_.checkpoint_path.empty() &&
        std::filesystem::exists(config_.checkpoint_path))
      restore_from_journal();
  }

  // The watchdog polls each running shard's commit heartbeat and fires the
  // shard's per-attempt StopSource once it goes stale; the shard observes
  // the token at its next batch boundary (or mid fault-delay) and converts
  // it into a retryable timeout.
  std::atomic<bool> watchdog_exit{false};
  std::thread watchdog;
  if (config_.shard_timeout_s > 0.0) {
    watchdog = std::thread([this, &watchdog_exit] {
      const auto timeout = std::chrono::duration<double>(config_.shard_timeout_s);
      const auto poll = std::chrono::duration<double>(
          std::max(config_.shard_timeout_s / 8.0, 0.001));
      while (!watchdog_exit.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(poll);
        const auto now = std::chrono::steady_clock::now();
        MutexLock lock(mutex_);
        for (auto& st : states_) {
          if (!st.running || st.attempt_stop.stop_requested()) continue;
          if (now - st.last_progress > timeout) st.attempt_stop.request_stop();
        }
      }
    });
  }

  if (pool != nullptr && shard_count > 1) {
    pool->parallel_chunks(
        0, shard_count, shard_count,
        [&](std::size_t shard, std::size_t, std::size_t) {
          run_shard(static_cast<std::uint32_t>(shard));
        },
        StopToken{}, config_.pool_lane);
  } else {
    for (std::size_t s = 0; s < shard_count; ++s)
      run_shard(static_cast<std::uint32_t>(s));
  }

  if (watchdog.joinable()) {
    watchdog_exit.store(true, std::memory_order_relaxed);
    watchdog.join();
  }

  MutexLock lock(mutex_);
  write_journal_locked();

  CampaignReport report;
  report.units_requested = config_.total_units;
  report.resumed = resumed_;
  report.resume_warning = resume_warning_;
  report.shards.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const auto& st = states_[s];
    ShardOutcome outcome;
    outcome.shard = s;
    outcome.attempts = st.attempt + 1;
    outcome.assigned = st.assigned;
    outcome.done = st.done;
    outcome.quarantined = st.quarantined;
    outcome.timeouts = st.timeouts;
    outcome.error = st.error;
    outcome.elapsed_s = st.elapsed_s;
    report.shards.push_back(std::move(outcome));
    report.units_done += st.done;
  }
  report.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_started).count();
  report.converged = converged_.load();
  report.truncated = truncated_.load() && !report.converged && !report.complete();

  CampaignAccumulator merged = merged_locked();
  if (rse_ != nullptr) {
    const double rse = rse_(merged);
    report.achieved_rse = std::isfinite(rse) ? rse : 0.0;
  }
  return {std::move(merged), std::move(report)};
}

}  // namespace mlec
