#include "runtime/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <thread>

#include "runtime/journal.hpp"
#include "util/error.hpp"

namespace mlec {

void CampaignConfig::validate() const {
  MLEC_REQUIRE(total_units > 0, "campaign needs at least one unit of work");
  MLEC_REQUIRE(checkpoint_every > 0, "checkpoint interval must be positive");
  MLEC_REQUIRE(max_attempts >= 1, "at least one attempt per shard required");
  MLEC_REQUIRE(retry_backoff_ms >= 0.0, "retry backoff must be non-negative");
  MLEC_REQUIRE(target_rse >= 0.0, "target RSE must be non-negative");
}

std::size_t CampaignReport::quarantined() const {
  return static_cast<std::size_t>(
      std::count_if(shards.begin(), shards.end(),
                    [](const ShardOutcome& s) { return s.quarantined; }));
}

double bernoulli_rse(std::uint64_t successes, std::uint64_t trials) {
  if (successes == 0 || trials == 0) return std::numeric_limits<double>::infinity();
  const double p = static_cast<double>(successes) / static_cast<double>(trials);
  return std::sqrt((1.0 - p) / static_cast<double>(successes));
}

struct CampaignRunner::ShardState {
  std::uint64_t assigned = 0;
  std::uint64_t done = 0;
  std::uint32_t attempt = 0;  ///< 0-based index of the current/last attempt
  /// rng_state (and acc) hold a committed checkpoint of the current attempt.
  bool has_checkpoint = false;
  std::array<std::uint64_t, 4> rng_state{};
  CampaignAccumulator acc;
  bool finished = false;
  bool quarantined = false;
  std::string error;
  double elapsed_s = 0.0;  ///< wall time across this invocation's attempts
};

CampaignRunner::CampaignRunner(CampaignConfig config, WorkerFactory factory, RseEstimator rse)
    : config_(std::move(config)), factory_(std::move(factory)), rse_(std::move(rse)) {
  config_.validate();
  MLEC_REQUIRE(factory_ != nullptr, "campaign needs a worker factory");
}

CampaignRunner::~CampaignRunner() = default;

bool CampaignRunner::should_stop() {
  if (converged_.load(std::memory_order_relaxed)) return true;
  if (config_.stop.stop_requested() ||
      (config_.unit_budget > 0 &&
       invocation_units_.load(std::memory_order_relaxed) >= config_.unit_budget)) {
    truncated_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

CampaignAccumulator CampaignRunner::merged_locked() const {
  CampaignAccumulator merged;
  for (const auto& st : states_)
    if (!st.quarantined) merged.merge(st.acc);
  return merged;
}

void CampaignRunner::write_journal_locked() {
  if (config_.checkpoint_path.empty()) return;
  CampaignJournal journal;
  journal.seed = config_.seed;
  journal.total_units = config_.total_units;
  journal.shards = static_cast<std::uint32_t>(states_.size());
  journal.fingerprint = fingerprint_of(config_.fingerprint);
  journal.records.reserve(states_.size());
  for (std::uint32_t s = 0; s < states_.size(); ++s) {
    const auto& st = states_[s];
    ShardRecord rec;
    rec.shard = s;
    rec.attempt = st.attempt;
    rec.quarantined = st.quarantined;
    rec.assigned = st.assigned;
    rec.done = st.done;
    rec.rng_state = st.rng_state;
    rec.acc = st.acc;
    journal.records.push_back(std::move(rec));
  }
  journal.save_file(config_.checkpoint_path);
}

void CampaignRunner::restore_from_journal() {
  const auto journal = CampaignJournal::load_file(config_.checkpoint_path);
  MLEC_REQUIRE(journal.seed == config_.seed, "campaign journal seed mismatch");
  MLEC_REQUIRE(journal.total_units == config_.total_units,
               "campaign journal total-unit mismatch");
  MLEC_REQUIRE(journal.shards == states_.size(), "campaign journal shard-count mismatch");
  MLEC_REQUIRE(journal.fingerprint == fingerprint_of(config_.fingerprint),
               "campaign journal belongs to a different workload configuration");
  for (const auto& rec : journal.records) {
    MLEC_REQUIRE(rec.shard < states_.size(), "campaign journal shard id out of range");
    auto& st = states_[rec.shard];
    MLEC_REQUIRE(rec.assigned == st.assigned, "campaign journal shard partition mismatch");
    st.done = rec.done;
    st.attempt = rec.attempt;
    st.quarantined = rec.quarantined;
    st.acc = rec.acc;
    st.rng_state = rec.rng_state;
    st.has_checkpoint = rec.done > 0;
    st.finished = rec.done == rec.assigned;
  }
  resumed_ = true;
}

void CampaignRunner::commit(std::uint32_t shard, const CampaignAccumulator& acc,
                            const Rng& rng, std::uint64_t done, std::uint32_t attempt) {
  std::scoped_lock lock(mutex_);
  auto& st = states_[shard];
  invocation_units_.fetch_add(done - st.done, std::memory_order_relaxed);
  st.acc = acc;
  st.rng_state = rng.state();
  st.done = done;
  st.attempt = attempt;
  st.has_checkpoint = true;
  write_journal_locked();
  if (config_.target_rse > 0.0 && rse_ != nullptr) {
    const double rse = rse_(merged_locked());
    if (rse <= config_.target_rse) converged_.store(true, std::memory_order_relaxed);
  }
}

void CampaignRunner::run_shard(std::uint32_t shard) {
  auto& st = states_[shard];
  const auto started = std::chrono::steady_clock::now();
  struct Timer {
    std::chrono::steady_clock::time_point start;
    double& into;
    ~Timer() {
      into += std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    }
  } timer{started, st.elapsed_s};
  while (!st.finished && !st.quarantined) {
    const std::uint64_t stream =
        static_cast<std::uint64_t>(shard) | (static_cast<std::uint64_t>(st.attempt) << 32);
    Rng rng = Rng::for_substream(config_.seed, stream);
    CampaignAccumulator acc;
    std::uint64_t done;
    {
      std::scoped_lock lock(mutex_);
      if (st.has_checkpoint) rng.set_state(st.rng_state);
      acc = st.acc;
      done = st.done;
    }
    try {
      auto worker = factory_(shard, rng);
      MLEC_REQUIRE(worker != nullptr, "campaign worker factory returned null");
      while (done < st.assigned) {
        if (should_stop()) return;  // progress up to `done` is committed
        const std::uint64_t batch = std::min(config_.checkpoint_every, st.assigned - done);
        for (std::uint64_t u = 0; u < batch; ++u) worker(acc);
        done += batch;
        commit(shard, acc, rng, done, st.attempt);
      }
      st.finished = true;
      return;
    } catch (const std::exception& e) {
      std::uint32_t retry_attempt = 0;
      {
        std::scoped_lock lock(mutex_);
        st.error = e.what();
        // Retry from scratch on a fresh substream: the failed attempt's
        // partial accumulation (committed or not) is discarded so a
        // mid-stream fault cannot bias the surviving statistics.
        st.done = 0;
        st.acc = CampaignAccumulator{};
        st.has_checkpoint = false;
        if (st.attempt + 1 >= config_.max_attempts) {
          st.quarantined = true;
          write_journal_locked();
          return;
        }
        retry_attempt = ++st.attempt;
      }
      // Back off outside the campaign mutex: holding it here would stall
      // every other shard's commit for the whole (exponential) sleep.
      if (config_.retry_backoff_ms > 0.0) {
        const double factor = std::pow(2.0, static_cast<double>(retry_attempt - 1));
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            config_.retry_backoff_ms * factor));
      }
    }
  }
}

std::pair<CampaignAccumulator, CampaignReport> CampaignRunner::run(ThreadPool* pool) {
  const auto run_started = std::chrono::steady_clock::now();
  std::size_t shard_count = config_.shards;
  if (shard_count == 0) shard_count = pool != nullptr ? pool->size() * 2 : 1;
  shard_count = std::clamp<std::size_t>(shard_count, 1, config_.total_units);

  states_.assign(shard_count, ShardState{});
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::uint64_t lo = config_.total_units * s / shard_count;
    const std::uint64_t hi = config_.total_units * (s + 1) / shard_count;
    states_[s].assigned = hi - lo;
  }

  if (config_.resume && !config_.checkpoint_path.empty() &&
      std::filesystem::exists(config_.checkpoint_path))
    restore_from_journal();

  if (pool != nullptr && shard_count > 1) {
    pool->parallel_chunks(0, shard_count, shard_count,
                          [&](std::size_t shard, std::size_t, std::size_t) {
                            run_shard(static_cast<std::uint32_t>(shard));
                          });
  } else {
    for (std::size_t s = 0; s < shard_count; ++s)
      run_shard(static_cast<std::uint32_t>(s));
  }

  std::scoped_lock lock(mutex_);
  write_journal_locked();

  CampaignReport report;
  report.units_requested = config_.total_units;
  report.resumed = resumed_;
  report.shards.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const auto& st = states_[s];
    ShardOutcome outcome;
    outcome.shard = s;
    outcome.attempts = st.attempt + 1;
    outcome.assigned = st.assigned;
    outcome.done = st.done;
    outcome.quarantined = st.quarantined;
    outcome.error = st.error;
    outcome.elapsed_s = st.elapsed_s;
    report.shards.push_back(std::move(outcome));
    report.units_done += st.done;
  }
  report.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_started).count();
  report.converged = converged_.load();
  report.truncated = truncated_.load() && !report.converged && !report.complete();

  CampaignAccumulator merged = merged_locked();
  if (rse_ != nullptr) {
    const double rse = rse_(merged);
    report.achieved_rse = std::isfinite(rse) ? rse : 0.0;
  }
  return {std::move(merged), std::move(report)};
}

}  // namespace mlec
