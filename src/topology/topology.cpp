#include "topology/topology.hpp"

#include <sstream>

namespace mlec {

void DataCenterConfig::validate() const {
  MLEC_REQUIRE(racks >= 1, "need at least one rack");
  MLEC_REQUIRE(enclosures_per_rack >= 1, "need at least one enclosure per rack");
  MLEC_REQUIRE(disks_per_enclosure >= 1, "need at least one disk per enclosure");
  MLEC_REQUIRE(disk_capacity_tb > 0.0, "disk capacity must be positive");
  MLEC_REQUIRE(chunk_kb > 0.0, "chunk size must be positive");
}

Topology::Topology(DataCenterConfig config) : config_(config) { config_.validate(); }

DiskId Topology::disk_at(RackId rack, std::size_t enclosure_pos, std::size_t disk_pos) const {
  MLEC_REQUIRE(rack < config_.racks, "rack out of range");
  MLEC_REQUIRE(enclosure_pos < config_.enclosures_per_rack, "enclosure position out of range");
  MLEC_REQUIRE(disk_pos < config_.disks_per_enclosure, "disk position out of range");
  return static_cast<DiskId>(rack * config_.disks_per_rack() +
                             enclosure_pos * config_.disks_per_enclosure + disk_pos);
}

EnclosureId Topology::enclosure_at(RackId rack, std::size_t enclosure_pos) const {
  MLEC_REQUIRE(rack < config_.racks, "rack out of range");
  MLEC_REQUIRE(enclosure_pos < config_.enclosures_per_rack, "enclosure position out of range");
  return static_cast<EnclosureId>(rack * config_.enclosures_per_rack + enclosure_pos);
}

std::string Topology::describe(DiskId disk) const {
  MLEC_REQUIRE(disk < config_.total_disks(), "disk out of range");
  std::ostringstream os;
  os << 'R' << rack_of(disk) + 1 << 'E' << enclosure_position(enclosure_of(disk)) + 1 << 'D'
     << disk_position(disk) + 1;
  return os.str();
}

}  // namespace mlec
