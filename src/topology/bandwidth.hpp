// Available-repair-bandwidth model (paper §3 "Available repair bandwidth"
// and Table 2).
//
// Raw device/link rates are capped at a repair fraction (20% by default).
// A repair is described as a flow: how many bytes are read and written per
// repaired byte, and which disk/rack sets carry each direction. The
// available repair bandwidth is the minimum over all resource bottlenecks.
#pragma once

#include <cstddef>

#include "util/error.hpp"

namespace mlec {

struct BandwidthConfig {
  double disk_mbps = 200.0;       ///< raw per-disk sequential bandwidth
  double rack_gbps = 10.0;        ///< raw per-rack cross-rack link
  double repair_fraction = 0.2;   ///< share of raw bandwidth repairs may use

  static BandwidthConfig paper_default() { return {}; }

  double effective_disk_mbps() const { return disk_mbps * repair_fraction; }
  double effective_rack_mbps() const { return rack_gbps * 1e9 / 8.0 / 1e6 * repair_fraction; }

  void validate() const {
    MLEC_REQUIRE(disk_mbps > 0.0 && rack_gbps > 0.0, "raw bandwidths must be positive");
    MLEC_REQUIRE(repair_fraction > 0.0 && repair_fraction <= 1.0,
                 "repair fraction must be in (0, 1]");
  }
};

/// One repair's traffic pattern. Amplifications are bytes moved per repaired
/// byte (e.g. rebuilding one chunk of a (17+3) stripe reads 17 chunks:
/// read_amp = 17). Participant sets are either dedicated to one direction
/// (read_only_*, write_only_*) or carry both (shared_*), which matches every
/// placement in the paper: clustered repairs use disjoint source/target
/// sets, declustered repairs spread both directions over one set.
/// Rack-level fields of 0 with cross_rack=false describe an enclosure-local
/// repair with no network constraint.
struct RepairFlow {
  double read_amp = 1.0;
  double write_amp = 1.0;

  std::size_t read_only_disks = 0;
  std::size_t write_only_disks = 0;
  std::size_t shared_disks = 0;

  bool cross_rack = false;
  std::size_t read_only_racks = 0;
  std::size_t write_only_racks = 0;
  std::size_t shared_racks = 0;
};

class BandwidthModel {
 public:
  explicit BandwidthModel(BandwidthConfig config) : config_(config) { config_.validate(); }

  const BandwidthConfig& config() const { return config_; }

  /// Available repair bandwidth (MB/s of *repaired* bytes per second) for
  /// the given flow: min over disk-read, disk-write, shared-disk, rack
  /// egress/ingress and shared-rack bottlenecks.
  double available_repair_mbps(const RepairFlow& flow) const;

  /// Hours to repair `tb` terabytes under the given flow.
  double repair_hours(double tb, const RepairFlow& flow) const;

 private:
  BandwidthConfig config_;
};

}  // namespace mlec
