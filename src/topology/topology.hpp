// Data-center topology model: racks -> enclosures -> disks.
//
// Mirrors the paper's §3 setup: 57,600 disks across 60 racks, 8 enclosures
// per rack, 120 disks per enclosure, 20 TB per disk, 128 KB chunks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace mlec {

/// Flat disk identifier in [0, total_disks).
using DiskId = std::uint32_t;
/// Rack index in [0, racks).
using RackId = std::uint32_t;
/// Enclosure index, global across the data center.
using EnclosureId = std::uint32_t;

struct DataCenterConfig {
  std::size_t racks = 60;
  std::size_t enclosures_per_rack = 8;
  std::size_t disks_per_enclosure = 120;
  double disk_capacity_tb = 20.0;
  double chunk_kb = 128.0;

  /// The paper's default §3 deployment.
  static DataCenterConfig paper_default() { return {}; }

  std::size_t disks_per_rack() const { return enclosures_per_rack * disks_per_enclosure; }
  std::size_t total_enclosures() const { return racks * enclosures_per_rack; }
  std::size_t total_disks() const { return racks * disks_per_rack(); }
  double total_capacity_tb() const { return static_cast<double>(total_disks()) * disk_capacity_tb; }
  double chunks_per_disk() const { return disk_capacity_tb * 1e12 / (chunk_kb * 1e3); }

  void validate() const;
};

/// Address arithmetic for the three-level hierarchy. All methods are O(1);
/// the topology itself is implicit (no per-disk objects at 57.6k scale).
class Topology {
 public:
  explicit Topology(DataCenterConfig config);

  const DataCenterConfig& config() const { return config_; }

  RackId rack_of(DiskId disk) const {
    return static_cast<RackId>(disk / config_.disks_per_rack());
  }
  EnclosureId enclosure_of(DiskId disk) const {
    return static_cast<EnclosureId>(disk / config_.disks_per_enclosure);
  }
  RackId rack_of_enclosure(EnclosureId enc) const {
    return static_cast<RackId>(enc / config_.enclosures_per_rack);
  }
  /// Enclosure position within its rack.
  std::size_t enclosure_position(EnclosureId enc) const {
    return enc % config_.enclosures_per_rack;
  }
  /// Disk position within its enclosure.
  std::size_t disk_position(DiskId disk) const { return disk % config_.disks_per_enclosure; }

  DiskId disk_at(RackId rack, std::size_t enclosure_pos, std::size_t disk_pos) const;
  EnclosureId enclosure_at(RackId rack, std::size_t enclosure_pos) const;

  /// Human-readable "R3E1D42" form used in examples and logs.
  std::string describe(DiskId disk) const;

 private:
  DataCenterConfig config_;
};

}  // namespace mlec
