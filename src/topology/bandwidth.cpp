#include "topology/bandwidth.hpp"

#include <algorithm>
#include <limits>

#include "util/units.hpp"

namespace mlec {

double BandwidthModel::available_repair_mbps(const RepairFlow& flow) const {
  MLEC_REQUIRE(flow.read_amp >= 0.0 && flow.write_amp >= 0.0,
               "amplifications must be non-negative");
  MLEC_REQUIRE(flow.read_only_disks + flow.write_only_disks + flow.shared_disks > 0,
               "a repair needs participating disks");

  const double disk = config_.effective_disk_mbps();
  const double rack = config_.effective_rack_mbps();
  double best = std::numeric_limits<double>::infinity();
  auto bottleneck = [&](std::size_t participants, double rate, double amp) {
    if (participants == 0 || amp <= 0.0) return;
    best = std::min(best, static_cast<double>(participants) * rate / amp);
  };

  bottleneck(flow.read_only_disks, disk, flow.read_amp);
  bottleneck(flow.write_only_disks, disk, flow.write_amp);
  bottleneck(flow.shared_disks, disk, flow.read_amp + flow.write_amp);

  if (flow.cross_rack) {
    MLEC_REQUIRE(flow.read_only_racks + flow.write_only_racks + flow.shared_racks > 0,
                 "cross-rack repair needs participating racks");
    bottleneck(flow.read_only_racks, rack, flow.read_amp);
    bottleneck(flow.write_only_racks, rack, flow.write_amp);
    bottleneck(flow.shared_racks, rack, flow.read_amp + flow.write_amp);
  }
  return best;
}

double BandwidthModel::repair_hours(double tb, const RepairFlow& flow) const {
  MLEC_REQUIRE(tb >= 0.0, "repair size must be non-negative");
  if (tb == 0.0) return 0.0;
  return units::hours_to_move(tb, available_repair_mbps(flow));
}

}  // namespace mlec
