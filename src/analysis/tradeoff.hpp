// Durability-versus-encoding-throughput tradeoff sweeps
// (paper §5.1.2 Figure 12 and §5.2.2 Figure 15).
//
// Enumerates MLEC / SLEC / LRC configurations whose capacity (parity space)
// overhead falls in a band around the paper's ~30%, then evaluates each
// point's durability (analysis/durability.hpp) and single-core encoding
// throughput (analysis/encoding.hpp).
#pragma once

#include <string>
#include <vector>

#include "analysis/durability.hpp"
#include "placement/codes.hpp"
#include "placement/schemes.hpp"

namespace mlec {

struct TradeoffPoint {
  std::string label;      ///< e.g. "(10+2)/(17+3)"
  double overhead = 0;    ///< parity space fraction
  double nines = 0;
  double encode_gbps = 0; ///< single-core data throughput
};

struct OverheadBand {
  double lo = 0.27;
  double hi = 0.33;
  bool contains(double x) const { return x >= lo && x <= hi; }
};

/// MLEC configurations of one scheme within the band, evaluated with the
/// given repair method (the paper uses R_MIN). Only configurations whose
/// placement constraints fit the topology are emitted.
std::vector<TradeoffPoint> mlec_tradeoff(const DurabilityEnv& env, MlecScheme scheme,
                                         RepairMethod method, const OverheadBand& band,
                                         bool measure_encoding = true);

/// SLEC configurations within the band for one placement.
std::vector<TradeoffPoint> slec_tradeoff(const DurabilityEnv& env, SlecScheme scheme,
                                         const OverheadBand& band,
                                         bool measure_encoding = true);

/// Declustered LRC configurations within the band.
std::vector<TradeoffPoint> lrc_tradeoff(const DurabilityEnv& env, const OverheadBand& band,
                                        bool measure_encoding = true);

}  // namespace mlec
