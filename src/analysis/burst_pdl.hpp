// Probability of data loss under correlated failure bursts
// (paper §4.1.1 Figure 5, §5.1.3 Figure 13, §5.2.3 Figure 16).
//
// A burst cell (x racks, y failures) scatters y simultaneous disk failures
// uniformly over x racks (every rack hit). The engine estimates the PDL of
// each cell with *conditional* Monte Carlo: the failure allocation (which is
// not rare) is sampled exactly, and the data-loss probability given the
// allocation is computed analytically, integrating the rare stripe-level
// events in closed form. This is the Rao-Blackwellized analogue of the
// paper's layout-counting dynamic program and resolves PDLs down to the
// paper's 1e-6 color floor with a few thousand trials per cell.
//
// Per-scheme conditioning (see DESIGN.md §4 for derivations):
//  * network-clustered schemes factor across rack groups and pool positions
//    with Poisson-binomial tails over per-rack catastrophe probabilities;
//  * network-declustered schemes use a random-rack-choice DP for the
//    per-stripe loss probability, raised to the (enormous) stripe count;
//  * declustered local pools contribute hypergeometric per-stripe loss
//    probabilities; clustered local pools contribute exact no-pool-over-
//    threshold allocation DPs.
#pragma once

#include <cstdint>
#include <vector>

#include "placement/codes.hpp"
#include "placement/pools.hpp"
#include "placement/schemes.hpp"
#include "topology/topology.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"

namespace mlec {

struct BurstPdlConfig {
  DataCenterConfig dc = DataCenterConfig::paper_default();
  std::size_t trials_per_cell = 1500;
  std::uint64_t seed = 20230712;
};

/// A computed heatmap: values[yi][xi] = PDL for y_labels[yi] failures over
/// x_labels[xi] racks.
struct BurstHeatmap {
  std::vector<int> x_labels;
  std::vector<int> y_labels;
  std::vector<std::vector<double>> values;
  /// True when a stop token skipped cells; skipped cells read 0.
  bool truncated = false;
};

class BurstPdlEngine {
 public:
  explicit BurstPdlEngine(BurstPdlConfig config);

  /// PDL for one burst cell of an MLEC scheme.
  double mlec_cell(const MlecCode& code, MlecScheme scheme, std::size_t racks,
                   std::size_t failures) const;

  /// PDL for one burst cell of a SLEC placement.
  double slec_cell(const SlecCode& code, SlecScheme scheme, std::size_t racks,
                   std::size_t failures) const;

  /// PDL for one burst cell of a declustered LRC.
  double lrc_cell(const LrcCode& code, std::size_t racks, std::size_t failures) const;

  /// Sweep a full grid (cells with failures < racks are infeasible and
  /// report 0). x/y run over {step, 2*step, ..., max} like the paper's axes.
  /// A fired `stop` token skips remaining cells and flags the heatmap
  /// `truncated`.
  BurstHeatmap mlec_heatmap(const MlecCode& code, MlecScheme scheme, std::size_t step,
                            std::size_t max_racks, std::size_t max_failures,
                            ThreadPool* pool = nullptr, StopToken stop = {}) const;
  BurstHeatmap slec_heatmap(const SlecCode& code, SlecScheme scheme, std::size_t step,
                            std::size_t max_racks, std::size_t max_failures,
                            ThreadPool* pool = nullptr, StopToken stop = {}) const;
  BurstHeatmap lrc_heatmap(const LrcCode& code, std::size_t step, std::size_t max_racks,
                           std::size_t max_failures, ThreadPool* pool = nullptr,
                           StopToken stop = {}) const;

  const BurstPdlConfig& config() const { return config_; }

 private:
  template <typename CellFn>
  BurstHeatmap sweep(std::size_t step, std::size_t max_racks, std::size_t max_failures,
                     ThreadPool* pool, StopToken stop, CellFn&& cell) const;

  BurstPdlConfig config_;
};

/// P(a uniformly random choice of `choose` distinct racks out of `total`,
/// with an independent Bernoulli(prob[r]) loss for each *chosen* rack from
/// the `prob` list (racks beyond the list never lose), accumulates at least
/// `threshold` losses). The network-declustered per-stripe loss DP.
double random_rack_choice_tail(const std::vector<double>& prob, std::size_t total,
                               std::size_t choose, std::size_t threshold);

/// P(no pool exceeds `threshold-1` failures) when `failures` failed disks are
/// scattered uniformly over `pools` pools of `pool_size` disks each.
double prob_no_pool_reaches(std::size_t pools, std::size_t pool_size, std::size_t failures,
                            std::size_t threshold);

/// 1 - (1-p)^n evaluated stably for huge n and tiny p.
double saturating_loss(double per_stripe, double stripes);

}  // namespace mlec
