#include "analysis/repair_time.hpp"

#include "placement/pools.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

RepairTimeModel::RepairTimeModel(DataCenterConfig dc, BandwidthConfig bw, MlecCode code)
    : dc_(dc), bw_(bw), code_(code) {
  dc_.validate();
  code_.validate();
}

RepairFlow RepairTimeModel::single_disk_flow(MlecScheme scheme) const {
  RepairFlow flow;
  flow.read_amp = static_cast<double>(code_.local.k);
  flow.write_amp = 1.0;
  if (local_placement(scheme) == Placement::kClustered) {
    flow.read_only_disks = code_.local_width() - 1;
    flow.write_only_disks = 1;  // the spare disk
  } else {
    flow.shared_disks = dc_.disks_per_enclosure - 1;  // pool-wide read+write
  }
  return flow;
}

RepairFlow RepairTimeModel::network_pool_flow(MlecScheme scheme) const {
  return network_stage_flow(scheme, RepairMethod::kRepairAll);
}

RepairFlow RepairTimeModel::local_stage_flow(MlecScheme scheme) const {
  RepairFlow flow;
  flow.read_amp = static_cast<double>(code_.local.k);
  flow.write_amp = 1.0;
  const std::size_t pl1 = code_.local.p + 1;
  if (local_placement(scheme) == Placement::kClustered) {
    // After the network stage each stripe has k_l readable chunks; writes
    // land on the not-yet-filled replacement disks.
    flow.read_only_disks = code_.local.k;
    flow.write_only_disks = code_.local.p;
  } else {
    flow.shared_disks = dc_.disks_per_enclosure - pl1;
  }
  return flow;
}

RepairFlow RepairTimeModel::network_stage_flow(MlecScheme scheme, RepairMethod method) const {
  const PoolLayout layout(dc_, code_, scheme);
  RepairFlow flow;
  flow.read_amp = static_cast<double>(code_.network.k);
  flow.write_amp = 1.0;
  flow.cross_rack = true;
  if (network_placement(scheme) == Placement::kClustered) {
    flow.read_only_racks = code_.network.k;
    flow.write_only_racks = 1;
  } else {
    flow.shared_racks = dc_.racks;
  }
  if (network_placement(scheme) == Placement::kDeclustered) {
    // Network-declustered repairs read sibling local stripes scattered over
    // every rack and write to spare space spread over all racks (paper
    // §4.1.2 F#3), so neither disk side bottlenecks.
    flow.shared_disks = dc_.total_disks() - layout.local_pool_disks();
    return flow;
  }
  // Network-clustered: sources are the k_n sibling pools.
  flow.read_only_disks = code_.network.k * layout.local_pool_disks();
  if (local_placement(scheme) == Placement::kClustered) {
    // Writes land on replacement disks: the whole replacement pool for
    // R_ALL, the p_l+1 replacements otherwise.
    flow.write_only_disks = method == RepairMethod::kRepairAll ? layout.local_pool_disks()
                                                               : code_.local.p + 1;
  } else {
    // Declustered spare space spreads writes across the surviving pool.
    flow.write_only_disks = layout.local_pool_disks() - (code_.local.p + 1);
  }
  return flow;
}

Table2Row RepairTimeModel::table2_row(MlecScheme scheme) const {
  const PoolLayout layout(dc_, code_, scheme);
  Table2Row row;
  row.scheme = scheme;
  row.disk_size_tb = dc_.disk_capacity_tb;
  row.single_disk_mbps = bw_.available_repair_mbps(single_disk_flow(scheme));
  row.pool_size_tb = layout.local_pool_capacity_tb();
  row.pool_mbps = bw_.available_repair_mbps(network_pool_flow(scheme));
  return row;
}

double RepairTimeModel::single_disk_repair_hours(MlecScheme scheme) const {
  return bw_.repair_hours(dc_.disk_capacity_tb, single_disk_flow(scheme));
}

double RepairTimeModel::catastrophic_repair_hours(MlecScheme scheme) const {
  const PoolLayout layout(dc_, code_, scheme);
  return bw_.repair_hours(layout.local_pool_capacity_tb(), network_pool_flow(scheme));
}

RepairTimeModel::MethodTime RepairTimeModel::method_repair_time(MlecScheme scheme,
                                                                RepairMethod method) const {
  const InjectionTraffic traffic = catastrophic_injection_traffic(dc_, code_, scheme, method);
  MethodTime t;
  t.network_hours = bw_.repair_hours(traffic.network_rebuilt_tb,
                                     network_stage_flow(scheme, method));
  if (traffic.local_rebuilt_tb > 0.0)
    t.local_hours = bw_.repair_hours(traffic.local_rebuilt_tb, local_stage_flow(scheme));
  return t;
}

}  // namespace mlec
