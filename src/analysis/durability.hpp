// Long-term durability pipeline: the paper's splitting methodology (§3)
// with Markov-chain closed forms at both stages.
//
// Stage 1 produces, per local pool, the catastrophic-failure rate and the
// expected lost-local-stripe fraction at catastrophe — either from the
// closed forms here (clustered pools: birth-death Markov chain; declustered
// pools: the priority-reconstruction critical-window model) or from
// sim::simulate_local_pool samples (local_pool_stats_from_sim).
//
// Stage 2 treats catastrophic pools as failing units at the network level
// (the paper's "treat a local pool like a disk"), with a per-repair-method
// exposure time from the repair-time model and a stripe-coverage factor for
// the repair methods that know which chunks failed (the paper's §4.2.3 F#1
// "0.03%" effect). Durability is reported in nines over the mission.
//
// The same machinery evaluates SLEC and LRC deployments for the §5
// comparisons, including the declustered detection-time floor (§5.2.2 F#2).
#pragma once

#include <optional>

#include "gf/code_model.hpp"
#include "placement/codes.hpp"
#include "placement/schemes.hpp"
#include "sim/local_pool_sim.hpp"
#include "topology/bandwidth.hpp"
#include "topology/topology.hpp"

namespace mlec {

/// Shared environment for all durability evaluations (paper §3 setup).
struct DurabilityEnv {
  DataCenterConfig dc = DataCenterConfig::paper_default();
  BandwidthConfig bw{};
  double afr = 0.01;
  double detection_hours = 0.5;
  double mission_hours = 8766.0;
  /// Unrecoverable-read-error probability per bit read during rebuilds
  /// (latent sector errors). 0 (the paper's implicit assumption) disables
  /// the extension; enterprise HDDs quote ~1e-15. A URE while rebuilding a
  /// stripe that already carries p_l failed chunks pushes it over the
  /// tolerance — the classic "RAID rebuild reads too many bits" effect,
  /// folded into the stage-1 catastrophe rates.
  double ure_per_bit = 0.0;
};

/// Stage-1 summary of one local pool.
struct LocalPoolStats {
  double cat_rate_per_pool_year = 0;  ///< catastrophic failures per pool-year
  double lost_stripe_fraction = 0;    ///< mean lost-local-stripe fraction
};

/// Closed-form stage 1 for a pool of `pool_disks` disks running `local_code`
/// with the given placement.
LocalPoolStats local_pool_stats(const DurabilityEnv& env, const SlecCode& local_code,
                                Placement placement, std::size_t pool_disks);

/// Stage 1 from splitting simulation samples.
LocalPoolStats local_pool_stats_from_sim(const LocalPoolSimResult& sim);

struct MlecDurabilityResult {
  LocalPoolStats stage1;
  double system_cat_rate_per_year = 0;  ///< catastrophic pools across the system
  double exposure_hours = 0;            ///< time a pool stays catastrophic
  double coverage = 1;                  ///< P(real loss | p_n+1 overlapping pools)
  double pdl = 0;                       ///< over the mission
  double nines = 0;
};

/// Full two-stage MLEC durability for one (code, scheme, repair method).
/// Pass `stage1` to substitute simulation-derived pool statistics
/// (the splitting workflow); otherwise the closed forms are used.
/// A non-null `network` swaps the MDS network level for that code model:
/// the overlap threshold becomes its min tolerance t (< p_n for LRC) and
/// every stripe-coverage term is thinned by the fraction of (t+1)-erasure
/// patterns that are undecodable — the same two quantities the fleet
/// simulator consumes, so sim-vs-closed-form crosschecks stay provable.
MlecDurabilityResult mlec_durability(const DurabilityEnv& env, const MlecCode& code,
                                     MlecScheme scheme, RepairMethod method,
                                     const std::optional<LocalPoolStats>& stage1 = std::nullopt,
                                     const CodeModel* network = nullptr);

/// Stage-2 building blocks, exposed so other closed-form models (the Markov
/// pool-as-a-disk estimator) share the exact same repair-method physics.
///
/// How long one catastrophic pool stays exposed: detection plus rebuilding
/// the method-dependent network volume over the network-stage fabric.
double stage2_exposure_hours(const DurabilityEnv& env, const MlecCode& code, MlecScheme scheme,
                             RepairMethod method, double lost_stripe_fraction);
/// P(t+1 overlapping catastrophic pools actually share a lost network
/// stripe), t = p_n for the MDS default: 1 for R_ALL, the stripe-coverage
/// thinning for chunk-aware methods (paper §4.2.3 F#1). With a non-MDS
/// `network` model the R_ALL shortcut no longer applies (a full overlap
/// pattern may still decode) and every term carries the undecodable
/// fraction.
double stage2_coverage(const DurabilityEnv& env, const MlecCode& code, MlecScheme scheme,
                       RepairMethod method, double lost_stripe_fraction,
                       const CodeModel* network = nullptr);

struct SimpleDurability {
  double pdl = 0;
  double nines = 0;
};

/// One-level SLEC durability (used by the Figure 12 comparison).
SimpleDurability slec_durability(const DurabilityEnv& env, const SlecCode& code,
                                 SlecScheme scheme);

/// Declustered LRC durability (used by the Figure 15 comparison). Uses the
/// maximally-recoverable criterion for the critical-stripe census.
SimpleDurability lrc_durability(const DurabilityEnv& env, const LrcCode& code);

/// A correlated-burst climate overlaid on independent failures — the
/// quantitative form of the paper's takeaways 3-4 (§6.1): sites that see
/// frequent bursts should run C/C; burst-free sites get more nines from
/// C/D or D/D. Bursts arrive `bursts_per_year` times per year, each
/// scattering `failures` simultaneous disk failures over `racks` racks.
struct BurstClimate {
  double bursts_per_year = 0;
  std::size_t racks = 3;
  std::size_t failures = 30;
};

class BurstPdlEngine;  // analysis/burst_pdl.hpp

/// Mission PDL combining the independent-failure pipeline with burst-induced
/// losses: 1 - (1 - pdl_indep) * (1 - pdl_per_burst)^(expected bursts).
SimpleDurability mlec_durability_with_bursts(const DurabilityEnv& env, const MlecCode& code,
                                             MlecScheme scheme, RepairMethod method,
                                             const BurstClimate& climate,
                                             const BurstPdlEngine& engine);

}  // namespace mlec
