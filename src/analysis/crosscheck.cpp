#include "analysis/crosscheck.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "math/markov.hpp"
#include "placement/notation.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace mlec {

namespace {

/// 95% interval in nines space. pdl_hi (the pessimistic edge) maps to the
/// interval's low-nines edge and vice versa; pdl == 0 maps to +inf nines.
struct NinesInterval {
  double lo = 0.0;
  double hi = 0.0;
};

NinesInterval nines_interval(const Estimate& e) {
  NinesInterval iv;
  iv.lo = durability_nines(std::min(1.0, e.pdl_hi));
  iv.hi = durability_nines(std::min(1.0, e.pdl_lo));
  return iv;
}

/// Distance between two intervals: 0 when they overlap, +inf when one is a
/// point at +inf nines (pdl exactly 0) and the other is finite.
double interval_gap(const NinesInterval& a, const NinesInterval& b) {
  const double lo = std::max(a.lo, b.lo);
  const double hi = std::min(a.hi, b.hi);
  if (lo <= hi) return 0.0;
  return lo - hi;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << v;
}

std::string fmt_nines(double nines) {
  if (std::isinf(nines)) return "inf";
  return Table::num(nines, 2);
}

}  // namespace

std::size_t CrosscheckReport::methods_run() const {
  std::size_t n = 0;
  for (const auto& row : rows) n += row.ran() ? 1 : 0;
  return n;
}

std::string CrosscheckReport::table() const {
  Table t({"method", "status", "PDL", "nines", "nines 95%", "samples", "note"});
  for (const auto& row : rows) {
    if (!row.applicable) {
      t.add_row({row.method, "skipped", "-", "-", "-", "-", row.skip_reason});
      continue;
    }
    if (row.failed) {
      t.add_row({row.method, "error", "-", "-", "-", "-", row.error});
      continue;
    }
    const auto iv = nines_interval(row.estimate);
    t.add_row({row.method, row.estimate.degraded ? "degraded" : "ok",
               Table::num(row.estimate.pdl, 4), fmt_nines(row.estimate.nines),
               fmt_nines(iv.lo) + " .. " + fmt_nines(iv.hi),
               row.estimate.stochastic ? std::to_string(row.estimate.samples) : "closed form",
               row.estimate.degraded ? row.estimate.degrade_note : row.estimate.provenance});
  }
  std::ostringstream os;
  const std::string title = "cross-method estimation, " + to_string(scenario.system.scheme) +
                            " " + scenario.system.code.notation() + ", " +
                            to_string(scenario.system.repair) +
                            (scenario.name.empty() ? "" : " (" + scenario.name + ")");
  os << t.to_ascii(title);
  if (divergences.empty()) {
    if (methods_run() >= 2)
      os << "agreement: all " << methods_run() << " methods within " << nines_tolerance
         << " nines\n";
  } else {
    for (const auto& d : divergences)
      os << "DIVERGENCE: " << d.method_a << " vs " << d.method_b << " — intervals "
         << (std::isinf(d.gap_nines) ? std::string("infinitely")
                                     : Table::num(d.gap_nines, 2) + " nines")
         << " apart (tolerance " << nines_tolerance << ")\n";
  }
  return os.str();
}

std::string CrosscheckReport::json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\n  \"scenario\": ";
  json_string(os, scenario.name);
  os << ",\n  \"code\": ";
  json_string(os, scenario.system.code.notation());
  os << ",\n  \"scheme\": ";
  json_string(os, to_string(scenario.system.scheme));
  os << ",\n  \"repair\": ";
  json_string(os, to_string(scenario.system.repair));
  os << ",\n  \"mission_hours\": ";
  json_number(os, scenario.system.mission_hours);
  os << ",\n  \"nines_tolerance\": ";
  json_number(os, nines_tolerance);
  os << ",\n  \"agreed\": " << (agreed() ? "true" : "false");
  os << ",\n  \"methods\": [";
  bool first = true;
  for (const auto& row : rows) {
    os << (first ? "\n" : ",\n") << "    {\"method\": ";
    json_string(os, row.method);
    first = false;
    if (!row.applicable) {
      os << ", \"applicable\": false, \"reason\": ";
      json_string(os, row.skip_reason);
      os << '}';
      continue;
    }
    if (row.failed) {
      os << ", \"applicable\": true, \"failed\": true, \"error\": ";
      json_string(os, row.error);
      os << '}';
      continue;
    }
    const Estimate& e = row.estimate;
    const auto iv = nines_interval(e);
    os << ", \"applicable\": true, \"failed\": false";
    os << ", \"pdl\": ";
    json_number(os, e.pdl);
    os << ", \"nines\": ";
    json_number(os, e.nines);
    os << ", \"pdl_lo\": ";
    json_number(os, e.pdl_lo);
    os << ", \"pdl_hi\": ";
    json_number(os, e.pdl_hi);
    os << ", \"nines_lo\": ";
    json_number(os, iv.lo);
    os << ", \"nines_hi\": ";
    json_number(os, iv.hi);
    os << ", \"stochastic\": " << (e.stochastic ? "true" : "false");
    os << ", \"samples\": " << e.samples;
    os << ", \"exposure_hours\": ";
    json_number(os, e.exposure_hours);
    os << ", \"cat_rate_per_year\": ";
    json_number(os, e.cat_rate_per_year);
    os << ", \"coverage\": ";
    json_number(os, e.coverage);
    os << ", \"cross_rack_tb\": ";
    json_number(os, e.cross_rack_tb);
    os << ", \"truncated\": " << (e.truncated ? "true" : "false");
    os << ", \"converged\": " << (e.converged ? "true" : "false");
    os << ", \"resumed\": " << (e.resumed ? "true" : "false");
    os << ", \"degraded\": " << (e.degraded ? "true" : "false");
    if (e.degraded) {
      os << ", \"degrade_note\": ";
      json_string(os, e.degrade_note);
    }
    os << ", \"provenance\": ";
    json_string(os, e.provenance);
    os << '}';
  }
  os << "\n  ],\n  \"divergences\": [";
  first = true;
  for (const auto& d : divergences) {
    os << (first ? "\n" : ",\n") << "    {\"a\": ";
    json_string(os, d.method_a);
    os << ", \"b\": ";
    json_string(os, d.method_b);
    os << ", \"gap_nines\": ";
    json_number(os, d.gap_nines);
    os << '}';
    first = false;
  }
  os << (divergences.empty() ? "]" : "\n  ]") << "\n}";
  return os.str();
}

CrosscheckReport run_crosscheck(const Scenario& scenario, const CrosscheckOptions& options) {
  scenario.validate();
  MLEC_REQUIRE(options.nines_tolerance >= 0.0, "nines tolerance must be non-negative");

  std::vector<const Estimator*> methods;
  if (options.methods.empty()) {
    methods = estimator_registry();
  } else {
    for (const auto& name : options.methods) {
      const Estimator* estimator = find_estimator(name);
      MLEC_REQUIRE(estimator != nullptr, "unknown estimation method '" + name +
                                             "' (expected sim, split, dp, or markov)");
      methods.push_back(estimator);
    }
  }

  CrosscheckReport report;
  report.scenario = scenario;
  report.nines_tolerance = options.nines_tolerance;

  for (const Estimator* estimator : methods) {
    CrosscheckRow row;
    row.method = std::string(estimator->name());
    row.skip_reason = estimator->applicability(scenario);
    row.applicable = row.skip_reason.empty();
    if (row.applicable) {
      try {
        row.estimate = estimator->estimate(scenario, options.estimate);
      } catch (const std::exception& e) {
        if (options.fail_fast) throw;
        // Fall back past the failed method: a crash in one engine must not
        // mask the comparison between the others.
        row.failed = true;
        row.error = e.what();
      }
    }
    report.rows.push_back(std::move(row));
  }

  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    if (!report.rows[i].ran()) continue;
    const auto iv_i = nines_interval(report.rows[i].estimate);
    for (std::size_t j = i + 1; j < report.rows.size(); ++j) {
      if (!report.rows[j].ran()) continue;
      const double gap = interval_gap(iv_i, nines_interval(report.rows[j].estimate));
      if (gap > options.nines_tolerance)
        report.divergences.push_back({report.rows[i].method, report.rows[j].method, gap});
    }
  }
  return report;
}

}  // namespace mlec
