#include "analysis/encoding.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "gf/rs.hpp"
#include "util/error.hpp"
#include "util/thread_safety.hpp"

namespace mlec {

namespace {

/// Process-wide throughput memo. A named struct (not loose function-local
/// statics) so the map can carry a MLEC_GUARDED_BY annotation.
struct EncodingCache {
  Mutex mutex;
  std::map<std::tuple<std::size_t, std::size_t, long>, double> mbps MLEC_GUARDED_BY(mutex);
};

EncodingCache& encoding_cache() {
  static EncodingCache cache;
  return cache;
}

}  // namespace

EncodingMeasurement measure_encoding_throughput(std::size_t k, std::size_t p, double chunk_kb,
                                                double min_seconds) {
  MLEC_REQUIRE(k >= 1 && p >= 1, "throughput is defined for k >= 1, p >= 1");
  MLEC_REQUIRE(chunk_kb > 0.0, "chunk size must be positive");
  const auto chunk_bytes = static_cast<std::size_t>(chunk_kb * 1e3);
  const gf::RsCode code(k, p);

  std::vector<std::vector<gf::byte_t>> data(k), parity(p);
  for (std::size_t i = 0; i < k; ++i) {
    data[i].resize(chunk_bytes);
    for (std::size_t b = 0; b < chunk_bytes; ++b)
      data[i][b] = static_cast<gf::byte_t>((i * 131 + b * 7 + 13) & 0xff);
  }
  for (auto& shard : parity) shard.assign(chunk_bytes, 0);

  using clock = std::chrono::steady_clock;
  // Warm-up pass to populate caches and fault pages.
  code.encode(data, parity);

  // Size a batch from a calibration pass so each timed batch runs ~1 ms:
  // with the SIMD kernels a single encode can be cheaper than the clock
  // read, and reading steady_clock every iteration would measure the clock.
  const auto cal_start = clock::now();
  code.encode(data, parity);
  const double once = std::chrono::duration<double>(clock::now() - cal_start).count();
  const std::size_t batch =
      std::clamp<std::size_t>(once > 0.0 ? static_cast<std::size_t>(1e-3 / once) : 1 << 16, 1,
                              1 << 16);

  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    for (std::size_t b = 0; b < batch; ++b) code.encode(data, parity);
    iters += batch;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);

  EncodingMeasurement m;
  m.k = k;
  m.p = p;
  const double data_bytes = static_cast<double>(iters) * static_cast<double>(k) *
                            static_cast<double>(chunk_bytes);
  m.data_mbps = data_bytes / elapsed / 1e6;
  return m;
}

double cached_encoding_mbps(std::size_t k, std::size_t p, double chunk_kb) {
  EncodingCache& cache = encoding_cache();
  const auto key = std::make_tuple(k, p, std::lround(chunk_kb * 1000));
  {
    MutexLock lock(cache.mutex);
    if (auto it = cache.mbps.find(key); it != cache.mbps.end()) return it->second;
  }
  // Measure outside the lock — it spins for min_seconds of wall time, and
  // concurrent callers measuring distinct shapes must not serialize. A
  // racing measurement of the same shape just overwrites with its own
  // (equally valid) sample.
  const double mbps = measure_encoding_throughput(k, p, chunk_kb).data_mbps;
  MutexLock lock(cache.mutex);
  cache.mbps.emplace(key, mbps);
  return mbps;
}

double mlec_encoding_mbps(const MlecCode& code, double chunk_kb) {
  code.validate();
  MLEC_REQUIRE(code.network.p >= 1 && code.local.p >= 1, "MLEC stages need parities");
  const double net = cached_encoding_mbps(code.network.k, code.network.p, chunk_kb);
  const double loc = cached_encoding_mbps(code.local.k, code.local.p, chunk_kb);
  return 1.0 / (1.0 / net + 1.0 / loc);
}

double lrc_encoding_mbps(const LrcCode& code, double chunk_kb) {
  code.validate();
  MLEC_REQUIRE(code.r >= 1, "LRC needs global parities");
  const double local = cached_encoding_mbps(code.group_data_chunks(), 1, chunk_kb);
  const double global = cached_encoding_mbps(code.k, code.r, chunk_kb);
  return 1.0 / (1.0 / local + 1.0 / global);
}

}  // namespace mlec
