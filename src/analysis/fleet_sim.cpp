#include "analysis/fleet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "analysis/burst_pdl.hpp"
#include "analysis/repair_time.hpp"
#include "math/combin.hpp"
#include "placement/pools.hpp"
#include "sim/pool_state.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

void FleetSimConfig::validate() const {
  dc.validate();
  code.validate();
  bandwidth.validate();
  MLEC_REQUIRE(detection_hours >= 0.0, "detection time must be non-negative");
  MLEC_REQUIRE(mission_hours > 0.0, "mission must be positive");
}

ProportionEstimate::Interval FleetSimResult::pdl_interval() const {
  ProportionEstimate est;
  est.add_many(data_loss_missions, missions);
  return est.wilson();
}

double FleetSimResult::catastrophes_per_system_year(double mission_hours) const {
  const double years =
      static_cast<double>(missions) * mission_hours / units::kHoursPerYear;
  return years > 0 ? static_cast<double>(catastrophic_pool_events) / years : 0.0;
}

namespace {

/// One fleet pool: the shared state machine plus a generation counter for
/// lazy invalidation of queued events.
struct PoolEntry {
  LocalPoolState state;
  std::uint64_t generation = 0;
};

struct Catastrophe {
  std::uint32_t pool;
  RackId rack;
  std::uint32_t network_pool;
  double until;
  double lost_fraction;
  std::size_t failed_disks;
};

/// Shared, immutable per-run constants.
struct RunContext {
  FleetSimConfig cfg;
  PoolLayout layout;
  bool local_clustered;
  bool network_clustered;
  std::size_t pool_disks;
  std::size_t pools_per_enclosure;
  std::size_t pools_per_rack;
  double lambda_hour;       // per disk
  double fleet_rate;        // per hour, whole fleet
  double net_bw_tb_h;       // network-stage bandwidth for cfg.method
  double stripes_per_network_pool;
  double total_network_stripes;
  double rack_cover_times_pool_pick;  // D/* coverage geometry factor
  PoolRepairModel model;              // shared per-pool rebuild physics

  explicit RunContext(const FleetSimConfig& config)
      : cfg(config), layout(config.dc, config.code, config.scheme) {
    cfg.validate();
    MLEC_REQUIRE(std::is_sorted(cfg.injected_events.begin(), cfg.injected_events.end(),
                                [](const FailureEvent& a, const FailureEvent& b) {
                                  return a.time_hours < b.time_hours;
                                }),
                 "injected events must be time-sorted");
    local_clustered = local_placement(cfg.scheme) == Placement::kClustered;
    network_clustered = network_placement(cfg.scheme) == Placement::kClustered;
    pool_disks = layout.local_pool_disks();
    pools_per_enclosure = layout.local_pools_per_enclosure();
    pools_per_rack = layout.local_pools_per_rack();
    lambda_hour = cfg.failures.afr / units::kHoursPerYear;
    fleet_rate = lambda_hour * static_cast<double>(cfg.dc.total_disks());

    model.code = cfg.code.local;
    model.pool_disks = pool_disks;
    model.clustered = local_clustered;
    model.priority_repair = cfg.priority_repair;
    model.detection_hours = cfg.detection_hours;
    model.disk_capacity_tb = cfg.dc.disk_capacity_tb;
    model.chunk_kb = cfg.dc.chunk_kb;
    model.disk_eff_mbps = cfg.bandwidth.effective_disk_mbps();
    model.finalize();

    const RepairTimeModel rtm(cfg.dc, cfg.bandwidth, cfg.code);
    const BandwidthModel bwm(cfg.bandwidth);
    net_bw_tb_h = bwm.available_repair_mbps(rtm.network_stage_flow(cfg.scheme, cfg.method)) *
                  units::kSecondsPerHour * 1e6 / 1e12;

    stripes_per_network_pool = layout.network_stripes_per_pool();
    total_network_stripes = layout.total_network_stripes();
    if (!network_clustered) {
      const auto R = static_cast<std::int64_t>(cfg.dc.racks);
      const auto W = static_cast<std::int64_t>(cfg.code.network_width());
      const auto pn1 = static_cast<std::int64_t>(cfg.code.network.p + 1);
      const double rack_cover =
          std::exp(log_choose(R - pn1, W - pn1) - log_choose(R, W));
      rack_cover_times_pool_pick =
          rack_cover * std::pow(1.0 / static_cast<double>(pools_per_rack),
                                static_cast<double>(pn1));
    } else {
      rack_cover_times_pool_pick = 0.0;
    }
  }

  std::uint32_t pool_of_disk(DiskId disk) const {
    const std::size_t enc = disk / cfg.dc.disks_per_enclosure;
    const std::size_t within = (disk % cfg.dc.disks_per_enclosure) /
                               (local_clustered ? pool_disks : cfg.dc.disks_per_enclosure);
    return static_cast<std::uint32_t>(enc * pools_per_enclosure + within);
  }
  RackId rack_of_pool(std::uint32_t pool) const {
    return static_cast<RackId>(pool / pools_per_rack);
  }
  std::uint32_t network_pool_of(std::uint32_t pool) const {
    if (!network_clustered) return 0;
    const std::size_t group = rack_of_pool(pool) / cfg.code.network_width();
    return static_cast<std::uint32_t>(group * pools_per_rack + pool % pools_per_rack);
  }

  /// Network-rebuilt volume for one catastrophe, from the realized state.
  double network_volume_tb(double unrebuilt_tb, std::size_t f, double stripe_frac) const {
    const double chunk_frac = std::min(
        1.0, stripe_frac * static_cast<double>(pool_disks) /
                 static_cast<double>(cfg.code.local_width()));
    switch (cfg.method) {
      case RepairMethod::kRepairAll:
        return layout.local_pool_capacity_tb();
      case RepairMethod::kRepairFailedOnly:
        return unrebuilt_tb;
      case RepairMethod::kRepairHybrid:
        return unrebuilt_tb * chunk_frac;
      case RepairMethod::kRepairMinimum:
        return unrebuilt_tb * chunk_frac *
               static_cast<double>(f - cfg.code.local.p) / static_cast<double>(f);
    }
    throw InternalError("unknown repair method");
  }
};

class MissionRunner {
 public:
  explicit MissionRunner(const RunContext& ctx) : ctx_(ctx) {}

  void run(Rng& rng, FleetSimResult& result) {
    rng_ = &rng;
    ++result.missions;
    const double mission = ctx_.cfg.mission_hours;
    double t = 0.0;
    double next_fail = rng_->exponential(ctx_.fleet_rate);
    std::size_t injected_idx = 0;
    pools_.clear();
    cats_.clear();
    events_ = {};

    bool lost_this_mission = false;

    while (true) {
      // Next pool event (lazy invalidation by generation).
      while (!events_.empty()) {
        const auto& top = events_.top();
        auto it = pools_.find(top.pool);
        if (it == pools_.end() || it->second.generation != top.generation) {
          events_.pop();
          continue;
        }
        break;
      }
      double next_event = next_fail;
      const auto& injected = ctx_.cfg.injected_events;
      if (injected_idx < injected.size())
        next_event = std::min(next_event, injected[injected_idx].time_hours);
      bool pool_event = false;
      if (!events_.empty() && events_.top().time < next_event) {
        next_event = events_.top().time;
        pool_event = true;
      }
      if (next_event >= mission) break;

      if (pool_event) {
        const auto ev = events_.top();
        events_.pop();
        advance_pool(ev.pool, ev.time);
        schedule_pool(ev.pool, ev.time);
        continue;
      }

      // Disk failure: sampled or injected.
      DiskId disk;
      if (injected_idx < injected.size() &&
          injected[injected_idx].time_hours <= next_fail) {
        disk = injected[injected_idx].disk;
        ++injected_idx;
      } else {
        disk = static_cast<DiskId>(rng_->uniform_below(ctx_.cfg.dc.total_disks()));
        next_fail = next_event + rng_->exponential(ctx_.fleet_rate);
      }
      t = next_event;
      ++result.disk_failures;
      std::erase_if(cats_, [t](const Catastrophe& c) { return c.until <= t; });

      const std::uint32_t pool = ctx_.pool_of_disk(disk);
      if (Catastrophe* active = active_catastrophe(pool, t); active != nullptr) {
        // The pool is already under network repair: the extra failure
        // deepens the damage (more lost stripes) and gives the overlap
        // another chance to cover a network stripe — crucial for bursts,
        // where all failures land before any repair begins.
        ++active->failed_disks;
        const double prev_frac = active->lost_fraction;
        if (!ctx_.local_clustered)
          active->lost_fraction = ctx_.model.declustered_lost_fraction(active->failed_disks);
        // Only the *incremental* coverage gets a fresh draw: overlaps were
        // already tested at the old fraction when they formed.
        if (check_data_loss(*active, t, prev_frac)) {
          ++result.data_loss_events;
          if (!lost_this_mission) {
            lost_this_mission = true;
            ++result.data_loss_missions;
            result.loss_time_hours.add(t);
          }
          if (ctx_.cfg.stop_on_loss) break;
        }
        continue;
      }
      advance_pool(pool, t);  // may retire the pool's map entry entirely
      auto& state = pools_[pool].state;
      state.add_failure(t, ctx_.model);
      const std::size_t f_after = state.failures.size();

      if (!state.catastrophic(t, ctx_.model)) {
        state.extend_critical_window(t, ctx_.model);
        schedule_pool(pool, t);
        continue;
      }

      // Catastrophic local pool: compute realized state, enter exposure.
      ++result.catastrophic_pool_events;
      const double unrebuilt = state.unrebuilt_tb();
      const double frac = state.lost_stripe_fraction(ctx_.model);
      const double volume = ctx_.network_volume_tb(unrebuilt, f_after, frac);
      const double exposure = ctx_.cfg.detection_hours + volume / ctx_.net_bw_tb_h;
      result.catastrophe_exposure_hours.add(exposure);
      result.cross_rack_tb += volume * (static_cast<double>(ctx_.cfg.code.network.k) + 1.0);

      pools_.erase(pool);  // network repair owns the pool now
      cats_.push_back({pool, ctx_.rack_of_pool(pool), ctx_.network_pool_of(pool), t + exposure,
                       frac, f_after});

      if (check_data_loss(cats_.back(), t)) {
        ++result.data_loss_events;
        if (!lost_this_mission) {
          lost_this_mission = true;
          ++result.data_loss_missions;
          result.loss_time_hours.add(t);
        }
        if (ctx_.cfg.stop_on_loss) break;
      }
    }
  }

 private:
  struct PoolEvent {
    double time;
    std::uint32_t pool;
    std::uint64_t generation;
    bool operator>(const PoolEvent& other) const { return time > other.time; }
  };

  /// Progress repairs in [state.last_advance, t] (shared state machine) and
  /// retire pools with nothing left in flight.
  void advance_pool(std::uint32_t pool, double t) {
    auto it = pools_.find(pool);
    if (it == pools_.end()) return;
    it->second.state.advance_to(t, ctx_.model);
    if (it->second.state.idle(t)) pools_.erase(it);
  }

  /// Queue this pool's next intrinsic event (detection or completion).
  void schedule_pool(std::uint32_t pool, double t) {
    auto it = pools_.find(pool);
    if (it == pools_.end()) return;
    ++it->second.generation;
    const double next = it->second.state.next_event_after(t, ctx_.model);
    if (std::isfinite(next)) events_.push({next, pool, it->second.generation});
  }

  /// The pool's in-flight catastrophe, if any.
  Catastrophe* active_catastrophe(std::uint32_t pool, double t) {
    for (auto& c : cats_)
      if (c.pool == pool && c.until > t) return &c;
    return nullptr;
  }

  /// Does the overlap of `newest` with the other active catastrophes lose a
  /// network stripe? Enumerates every p_n+1-subset containing `newest`
  /// (same network pool for clustered networks, distinct racks for
  /// declustered ones) and draws once against the union of their
  /// stripe-coverage probabilities.
  /// `prev_frac >= 0` re-tests existing overlaps after the newest pool's
  /// lost fraction grew: the draw targets only the added coverage
  /// (cov_new - cov_old) / (1 - cov_old) per combination.
  bool check_data_loss(const Catastrophe& newest, double t, double prev_frac = -1.0) {
    const std::size_t pn1 = ctx_.cfg.code.network.p + 1;
    std::vector<const Catastrophe*> others;
    for (const auto& c : cats_) {
      if (&c == &newest || c.until <= t) continue;
      if (ctx_.network_clustered) {
        if (c.network_pool == newest.network_pool) others.push_back(&c);
      } else if (c.rack != newest.rack) {
        others.push_back(&c);
      }
    }
    if (others.size() + 1 < pn1) return false;

    const double frac_new =
        ctx_.cfg.method == RepairMethod::kRepairAll ? 1.0 : newest.lost_fraction;
    double log_no_cover = 0.0;
    // Enumerate (p_n)-subsets of `others` via an index odometer.
    std::vector<std::size_t> idx(pn1 - 1);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    while (true) {
      bool valid = true;
      if (!ctx_.network_clustered) {
        // Distinct racks within the subset (newest's rack already excluded).
        for (std::size_t a = 0; a < idx.size() && valid; ++a)
          for (std::size_t b = a + 1; b < idx.size() && valid; ++b)
            valid = others[idx[a]]->rack != others[idx[b]]->rack;
      }
      if (valid) {
        double partners = 1.0;
        for (std::size_t i : idx)
          partners *= ctx_.cfg.method == RepairMethod::kRepairAll ? 1.0
                                                                  : others[i]->lost_fraction;
        auto coverage_of = [&](double frac) {
          const double joint = frac * partners;
          return ctx_.network_clustered
                     ? saturating_loss(joint, ctx_.stripes_per_network_pool)
                     : saturating_loss(joint * ctx_.rack_cover_times_pool_pick,
                                       ctx_.total_network_stripes);
        };
        const double cov_new = coverage_of(frac_new);
        const double cov_old =
            prev_frac >= 0.0 && ctx_.cfg.method != RepairMethod::kRepairAll
                ? coverage_of(prev_frac)
                : (prev_frac >= 0.0 ? cov_new : 0.0);
        if (cov_new >= 1.0 && cov_old < 1.0) return rng_->bernoulli(1.0);
        if (cov_new > cov_old)
          log_no_cover += std::log1p(-cov_new) - std::log1p(-cov_old);
      }
      // Advance the odometer.
      if (idx.empty()) break;
      std::size_t pos = idx.size();
      while (pos > 0) {
        --pos;
        if (idx[pos] + (idx.size() - pos) < others.size()) {
          ++idx[pos];
          for (std::size_t i = pos + 1; i < idx.size(); ++i) idx[i] = idx[i - 1] + 1;
          break;
        }
        if (pos == 0) {
          pos = idx.size() + 1;  // exhausted
          break;
        }
      }
      if (pos > idx.size()) break;
    }
    return rng_->bernoulli(-std::expm1(log_no_cover));
  }

  const RunContext& ctx_;
  Rng* rng_ = nullptr;  ///< caller-owned, bound for the duration of run()
  std::unordered_map<std::uint32_t, PoolEntry> pools_;
  std::vector<Catastrophe> cats_;
  std::priority_queue<PoolEvent, std::vector<PoolEvent>, std::greater<>> events_;
};

}  // namespace

struct FleetMissionEngine::Impl {
  RunContext ctx;
  MissionRunner runner;

  explicit Impl(const FleetSimConfig& config) : ctx(config), runner(ctx) {}
};

FleetMissionEngine::FleetMissionEngine(const FleetSimConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}
FleetMissionEngine::~FleetMissionEngine() = default;
FleetMissionEngine::FleetMissionEngine(FleetMissionEngine&&) noexcept = default;
FleetMissionEngine& FleetMissionEngine::operator=(FleetMissionEngine&&) noexcept = default;

void FleetMissionEngine::run_mission(Rng& rng, FleetSimResult& into) {
  impl_->runner.run(rng, into);
}

FleetSimResult simulate_fleet(const FleetSimConfig& config, std::uint64_t missions,
                              std::uint64_t seed, ThreadPool* pool, StopToken stop) {
  const RunContext ctx(config);

  const std::size_t shards =
      pool != nullptr ? std::min<std::size_t>(pool->size() * 2, missions) : 1;
  std::vector<FleetSimResult> partial(shards);

  auto run_shard = [&](std::size_t shard, std::uint64_t count) {
    Rng rng = Rng::for_substream(seed, shard);
    MissionRunner runner(ctx);
    auto& result = partial[shard];
    for (std::uint64_t m = 0; m < count; ++m) {
      if (stop.stop_requested()) {
        result.truncated = true;
        break;
      }
      runner.run(rng, result);
    }
  };

  if (pool != nullptr && shards > 1) {
    pool->parallel_chunks(0, missions, shards,
                          [&](std::size_t shard, std::size_t lo, std::size_t hi) {
                            run_shard(shard, hi - lo);
                          });
  } else {
    run_shard(0, missions);
  }

  FleetSimResult merged;
  for (auto& part : partial) {
    merged.missions += part.missions;
    merged.data_loss_missions += part.data_loss_missions;
    merged.data_loss_events += part.data_loss_events;
    merged.disk_failures += part.disk_failures;
    merged.catastrophic_pool_events += part.catastrophic_pool_events;
    merged.loss_time_hours.merge(part.loss_time_hours);
    merged.catastrophe_exposure_hours.merge(part.catastrophe_exposure_hours);
    merged.cross_rack_tb += part.cross_rack_tb;
    merged.truncated = merged.truncated || part.truncated;
  }
  return merged;
}

}  // namespace mlec
