#include "analysis/fleet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "analysis/burst_pdl.hpp"
#include "analysis/repair_time.hpp"
#include "math/combin.hpp"
#include "placement/pools.hpp"
#include "sim/indexed_heap.hpp"
#include "sim/pool_state.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

void FleetSimConfig::validate() const {
  dc.validate();
  code.validate();
  bandwidth.validate();
  MLEC_REQUIRE(detection_hours >= 0.0, "detection time must be non-negative");
  MLEC_REQUIRE(mission_hours > 0.0, "mission must be positive");
}

ProportionEstimate::Interval FleetSimResult::pdl_interval() const {
  ProportionEstimate est;
  est.add_many(data_loss_missions, missions);
  return est.wilson();
}

double FleetSimResult::catastrophes_per_system_year(double mission_hours) const {
  const double years =
      static_cast<double>(missions) * mission_hours / units::kHoursPerYear;
  return years > 0 ? static_cast<double>(catastrophic_pool_events) / years : 0.0;
}

/// Shared, immutable per-run constants. One instance serves every shard of
/// a simulate_fleet call or every shard engine of a campaign — the repair
/// model's lookup tables (hypergeometric tails, per-f declustered
/// bandwidths, critical-window lengths) are built exactly once.
class FleetSimContext {
 public:
  FleetSimConfig cfg;
  PoolLayout layout;
  bool local_clustered;
  bool network_clustered;
  std::size_t pool_disks;
  std::size_t pools_per_enclosure;
  std::size_t pools_per_rack;
  std::size_t total_pools;
  double lambda_hour;       // per disk
  double fleet_rate;        // per hour, whole fleet
  double net_bw_tb_h;       // network-stage bandwidth for cfg.method
  double stripes_per_network_pool;
  double total_network_stripes;
  double rack_cover_times_pool_pick;  // D/* coverage geometry factor
  PoolRepairModel model;              // shared per-pool rebuild physics
  std::shared_ptr<const CodeModel> net_model;  // network-level code family
  std::size_t net_tolerance;   // model min tolerance (p_n for MDS)
  double net_loss_frac;        // 1 - P(decodable | net_tolerance+1 erasures)
  double net_repair_reads;     // avg shards read per rebuilt chunk (k_n for MDS)
  std::vector<std::uint32_t> disk_pool_tab;  // disk id -> local pool id

  explicit FleetSimContext(const FleetSimConfig& config)
      : cfg(config), layout(config.dc, config.code, config.scheme) {
    cfg.validate();
    MLEC_REQUIRE(std::is_sorted(cfg.injected_events.begin(), cfg.injected_events.end(),
                                [](const FailureEvent& a, const FailureEvent& b) {
                                  return a.time_hours < b.time_hours;
                                }),
                 "injected events must be time-sorted");
    local_clustered = local_placement(cfg.scheme) == Placement::kClustered;
    network_clustered = network_placement(cfg.scheme) == Placement::kClustered;
    pool_disks = layout.local_pool_disks();
    pools_per_enclosure = layout.local_pools_per_enclosure();
    pools_per_rack = layout.local_pools_per_rack();
    total_pools = cfg.dc.total_disks() / cfg.dc.disks_per_enclosure * pools_per_enclosure;
    lambda_hour = cfg.failures.afr / units::kHoursPerYear;
    fleet_rate = lambda_hour * static_cast<double>(cfg.dc.total_disks());

    model.code = cfg.code.local;
    model.pool_disks = pool_disks;
    model.clustered = local_clustered;
    model.priority_repair = cfg.priority_repair;
    model.detection_hours = cfg.detection_hours;
    model.disk_capacity_tb = cfg.dc.disk_capacity_tb;
    model.chunk_kb = cfg.dc.chunk_kb;
    model.disk_eff_mbps = cfg.bandwidth.effective_disk_mbps();
    model.finalize();

    // Network-level code model: the zero-width default means classic RS
    // over cfg.code.network; anything else must keep that shape's counts.
    const LevelCode net_level = cfg.network_level.width() == 0
                                    ? LevelCode::make_rs(cfg.code.network)
                                    : cfg.network_level;
    MLEC_REQUIRE(net_level.data_chunks() == cfg.code.network.k &&
                     net_level.width() == cfg.code.network_width(),
                 "network_level must match code.network's data count and width");
    net_model = make_code_model(net_level);
    net_tolerance = net_model->min_tolerance();
    net_loss_frac = 1.0 - net_model->decodable_fraction(net_tolerance + 1);
    net_repair_reads = net_model->avg_single_repair_reads();

    const RepairTimeModel rtm(cfg.dc, cfg.bandwidth, cfg.code);
    const BandwidthModel bwm(cfg.bandwidth);
    net_bw_tb_h = bwm.available_repair_mbps(rtm.network_stage_flow(cfg.scheme, cfg.method)) *
                  units::kSecondsPerHour * 1e6 / 1e12;

    stripes_per_network_pool = layout.network_stripes_per_pool();
    total_network_stripes = layout.total_network_stripes();
    if (!network_clustered) {
      const auto R = static_cast<std::int64_t>(cfg.dc.racks);
      const auto W = static_cast<std::int64_t>(cfg.code.network_width());
      const auto pn1 = static_cast<std::int64_t>(net_tolerance + 1);
      const double rack_cover =
          std::exp(log_choose(R - pn1, W - pn1) - log_choose(R, W));
      rack_cover_times_pool_pick =
          rack_cover * std::pow(1.0 / static_cast<double>(pools_per_rack),
                                static_cast<double>(pn1));
    } else {
      rack_cover_times_pool_pick = 0.0;
    }

    // The disk->pool map costs three integer divisions per lookup; on the
    // per-failure hot path a shared table beats redoing them every draw.
    disk_pool_tab.resize(cfg.dc.total_disks());
    for (std::size_t d = 0; d < disk_pool_tab.size(); ++d) {
      const std::size_t enc = d / cfg.dc.disks_per_enclosure;
      const std::size_t within = (d % cfg.dc.disks_per_enclosure) /
                                 (local_clustered ? pool_disks : cfg.dc.disks_per_enclosure);
      disk_pool_tab[d] = static_cast<std::uint32_t>(enc * pools_per_enclosure + within);
    }
  }

  std::uint32_t pool_of_disk(DiskId disk) const { return disk_pool_tab[disk]; }
  RackId rack_of_pool(std::uint32_t pool) const {
    return static_cast<RackId>(pool / pools_per_rack);
  }
  std::uint32_t network_pool_of(std::uint32_t pool) const {
    if (!network_clustered) return 0;
    const std::size_t group = rack_of_pool(pool) / cfg.code.network_width();
    return static_cast<std::uint32_t>(group * pools_per_rack + pool % pools_per_rack);
  }

  /// Network-rebuilt volume for one catastrophe, from the realized state.
  double network_volume_tb(double unrebuilt_tb, std::size_t f, double stripe_frac) const {
    const double chunk_frac = std::min(
        1.0, stripe_frac * static_cast<double>(pool_disks) /
                 static_cast<double>(cfg.code.local_width()));
    switch (cfg.method) {
      case RepairMethod::kRepairAll:
        return layout.local_pool_capacity_tb();
      case RepairMethod::kRepairFailedOnly:
        return unrebuilt_tb;
      case RepairMethod::kRepairHybrid:
        return unrebuilt_tb * chunk_frac;
      case RepairMethod::kRepairMinimum:
        return unrebuilt_tb * chunk_frac *
               static_cast<double>(f - cfg.code.local.p) / static_cast<double>(f);
    }
    throw InternalError("unknown repair method");
  }
};

std::shared_ptr<const FleetSimContext> make_fleet_context(const FleetSimConfig& config) {
  return std::make_shared<const FleetSimContext>(config);
}

namespace {

struct Catastrophe {
  std::uint32_t pool;
  RackId rack;
  std::uint32_t network_pool;
  double until;
  double lost_fraction;
  std::size_t failed_disks;
};

/// Per-mission inter-failure gaps are drawn this many at a time; leftovers
/// are discarded at mission end so the Rng's journaled state at any mission
/// boundary is independent of the batching (checkpoint/resume bit-identity).
constexpr std::size_t kExpBatch = 32;

/// One shard's mission loop. All working storage (pool arena, event heap,
/// catastrophe list, subset-enumeration scratch, RNG batch buffer) lives on
/// the runner and is reset — never reallocated — per mission: the steady
/// state performs no heap traffic.
class MissionRunner {
 public:
  explicit MissionRunner(const FleetSimContext& ctx) : ctx_(ctx) {
    pools_.resize(ctx.total_pools);
    events_.resize(ctx.total_pools);
    exp_buf_.resize(kExpBatch);
    allocs_baseline_ = pools_.allocations();
  }

  void run(Rng& rng, FleetSimResult& result) {
    rng_ = &rng;
    result_ = &result;
    ++result.missions;
    const double mission = ctx_.cfg.mission_hours;
    double t = 0.0;
    std::size_t injected_idx = 0;
    pools_.begin_trial();
    events_.clear();
    cats_.clear();
    exp_pos_ = 0;
    exp_len_ = 0;
    double next_fail = next_gap(0.0);

    bool lost_this_mission = false;

    while (true) {
      double next_event = next_fail;
      const auto& injected = ctx_.cfg.injected_events;
      if (injected_idx < injected.size())
        next_event = std::min(next_event, injected[injected_idx].time_hours);
      bool pool_event = false;
      if (!events_.empty() && events_.top_key() < next_event) {
        next_event = events_.top_key();
        pool_event = true;
      }
      if (next_event >= mission) break;

      if (pool_event) {
        const std::uint32_t pool = events_.top_id();
        events_.pop();
        ++result.events_processed;
        advance_pool(pool, next_event);
        schedule_pool(pool, next_event);
        continue;
      }

      // Disk failure: sampled or injected.
      DiskId disk;
      if (injected_idx < injected.size() &&
          injected[injected_idx].time_hours <= next_fail) {
        disk = injected[injected_idx].disk;
        ++injected_idx;
      } else {
        disk = static_cast<DiskId>(rng_->uniform_below(ctx_.cfg.dc.total_disks()));
        ++result.rng_draws;
        next_fail = next_event + next_gap(next_event);
      }
      t = next_event;
      ++result.disk_failures;
      ++result.events_processed;
      if (!cats_.empty())
        std::erase_if(cats_, [t](const Catastrophe& c) { return c.until <= t; });

      const std::uint32_t pool = ctx_.pool_of_disk(disk);
      if (Catastrophe* active = active_catastrophe(pool, t); active != nullptr) {
        // The pool is already under network repair: the extra failure
        // deepens the damage (more lost stripes) and gives the overlap
        // another chance to cover a network stripe — crucial for bursts,
        // where all failures land before any repair begins.
        ++active->failed_disks;
        const double prev_frac = active->lost_fraction;
        if (!ctx_.local_clustered)
          active->lost_fraction = ctx_.model.declustered_lost_fraction(active->failed_disks);
        // Only the *incremental* coverage gets a fresh draw: overlaps were
        // already tested at the old fraction when they formed.
        if (check_data_loss(*active, t, prev_frac)) {
          ++result.data_loss_events;
          if (!lost_this_mission) {
            lost_this_mission = true;
            ++result.data_loss_missions;
            result.loss_time_hours.add(t);
          }
          if (ctx_.cfg.stop_on_loss) break;
        }
        continue;
      }
      advance_pool(pool, t);  // may retire the pool entirely
      LocalPoolState& state =
          pools_.activate(pool, [](LocalPoolState& s) { s.reset(); });
      state.add_failure(t, ctx_.model);
      const std::size_t f_after = state.failures.size();

      if (!state.catastrophic(t, ctx_.model)) {
        state.extend_critical_window(t, ctx_.model);
        schedule_pool(pool, t);
        continue;
      }

      // Catastrophic local pool: compute realized state, enter exposure.
      ++result.catastrophic_pool_events;
      const double unrebuilt = state.unrebuilt_tb();
      const double frac = state.lost_stripe_fraction(ctx_.model);
      const double volume = ctx_.network_volume_tb(unrebuilt, f_after, frac);
      const double exposure = ctx_.cfg.detection_hours + volume / ctx_.net_bw_tb_h;
      result.catastrophe_exposure_hours.add(exposure);
      // Each rebuilt chunk reads the model's average repair fan-in across
      // racks and writes once (k_n + 1 for MDS; below k_n for LRC — the
      // locality payoff the paper's Figure 8 arithmetic cannot see).
      result.cross_rack_tb += volume * (ctx_.net_repair_reads + 1.0);

      // Network repair owns the pool now.
      pools_.deactivate(pool);
      events_.remove(pool);
      cats_.push_back({pool, ctx_.rack_of_pool(pool), ctx_.network_pool_of(pool), t + exposure,
                       frac, f_after});

      if (check_data_loss(cats_.back(), t)) {
        ++result.data_loss_events;
        if (!lost_this_mission) {
          lost_this_mission = true;
          ++result.data_loss_missions;
          result.loss_time_hours.add(t);
        }
        if (ctx_.cfg.stop_on_loss) break;
      }
    }

    result.arena_allocations += pools_.allocations() - allocs_baseline_;
    allocs_baseline_ = pools_.allocations();
  }

 private:
  /// Next inter-failure gap from the batch buffer, refilling (and counting
  /// the refill's draws) when empty. The refill size tracks the expected
  /// number of failures left before `now` reaches mission end, so the
  /// variates discarded at the next mission-start reset — each one a log()
  /// the legacy core never paid for — stay near zero. The size is a pure
  /// function of simulation state, so trajectories remain deterministic.
  double next_gap(double now) {
    if (exp_pos_ == exp_len_) {
      const double expected = (ctx_.cfg.mission_hours - now) * ctx_.fleet_rate;
      const std::size_t n =
          std::min(kExpBatch, static_cast<std::size_t>(std::max(expected, 0.0)) + 1);
      rng_->exponential_fill(std::span<double>(exp_buf_.data(), n), ctx_.fleet_rate);
      result_->rng_draws += n;
      exp_pos_ = 0;
      exp_len_ = n;
    }
    return exp_buf_[exp_pos_++];
  }

  /// Bernoulli draw with the perf counter kept honest: p <= 0 and p >= 1
  /// consume no variate.
  bool draw_bernoulli(double p) {
    if (p > 0.0 && p < 1.0) ++result_->rng_draws;
    return rng_->bernoulli(p);
  }

  /// Progress repairs in [state.last_advance, t] (shared state machine) and
  /// retire pools with nothing left in flight — their heap entry goes too.
  void advance_pool(std::uint32_t pool, double t) {
    LocalPoolState* state = pools_.find(pool);
    if (state == nullptr) return;
    state->advance_to(t, ctx_.model);
    if (state->idle(t)) {
      pools_.deactivate(pool);
      events_.remove(pool);
    }
  }

  /// Reposition this pool's single heap entry at its next intrinsic event
  /// (detection or completion) — updated in place, never lazily deleted.
  ///
  /// Only declustered pools need stepping events: their per-failure rates
  /// interlock (pool-wide bandwidth split across detected failures), so the
  /// piecewise-constant state machine must be walked boundary by boundary.
  /// Clustered rebuilds are independent, and nothing observable happens
  /// between a pool's failures — losses, catastrophes, and window checks
  /// all fire at failure arrivals, where advance_pool() reconstructs the
  /// interim segments and retires the pool if it drained. Scheduling no
  /// event at all for clustered pools removes roughly two heap events per
  /// failure from the hot loop at identical trajectories.
  void schedule_pool(std::uint32_t pool, double t) {
    if (ctx_.local_clustered) return;
    const LocalPoolState* state = pools_.find(pool);
    if (state == nullptr) return;
    const double next = state->next_event_after(t, ctx_.model);
    if (std::isfinite(next))
      events_.push_or_update(pool, next);
    else
      events_.remove(pool);  // live critical window, nothing in flight
  }

  /// The pool's in-flight catastrophe, if any.
  Catastrophe* active_catastrophe(std::uint32_t pool, double t) {
    for (auto& c : cats_)
      if (c.pool == pool && c.until > t) return &c;
    return nullptr;
  }

  /// Does the overlap of `newest` with the other active catastrophes lose a
  /// network stripe? Enumerates every (t+1)-subset containing `newest`
  /// (t = the network code model's min tolerance — p_n for MDS; same
  /// network pool for clustered networks, distinct racks for declustered
  /// ones) and draws once against the union of their stripe-coverage
  /// probabilities. Non-MDS levels additionally thin each combination by
  /// the fraction of (t+1)-erasure patterns that are actually undecodable
  /// (ctx_.net_loss_frac; 1 for MDS) — the stripe's erased positions within
  /// its network pool are modeled as a uniform (t+1)-subset.
  /// `prev_frac >= 0` re-tests existing overlaps after the newest pool's
  /// lost fraction grew: the draw targets only the added coverage
  /// (cov_new - cov_old) / (1 - cov_old) per combination.
  bool check_data_loss(const Catastrophe& newest, double t, double prev_frac = -1.0) {
    const std::size_t pn1 = ctx_.net_tolerance + 1;
    others_.clear();
    for (const auto& c : cats_) {
      if (&c == &newest || c.until <= t) continue;
      if (ctx_.network_clustered) {
        if (c.network_pool == newest.network_pool) others_.push_back(&c);
      } else if (c.rack != newest.rack) {
        others_.push_back(&c);
      }
    }
    if (others_.size() + 1 < pn1) return false;

    const double frac_new =
        ctx_.cfg.method == RepairMethod::kRepairAll ? 1.0 : newest.lost_fraction;
    double log_no_cover = 0.0;
    // Enumerate (p_n)-subsets of `others_` via an index odometer.
    idx_.resize(pn1 - 1);
    for (std::size_t i = 0; i < idx_.size(); ++i) idx_[i] = i;
    while (true) {
      bool valid = true;
      if (!ctx_.network_clustered) {
        // Distinct racks within the subset (newest's rack already excluded).
        for (std::size_t a = 0; a < idx_.size() && valid; ++a)
          for (std::size_t b = a + 1; b < idx_.size() && valid; ++b)
            valid = others_[idx_[a]]->rack != others_[idx_[b]]->rack;
      }
      if (valid) {
        double partners = 1.0;
        for (std::size_t i : idx_)
          partners *= ctx_.cfg.method == RepairMethod::kRepairAll ? 1.0
                                                                  : others_[i]->lost_fraction;
        auto coverage_of = [&](double frac) {
          const double joint = frac * partners * ctx_.net_loss_frac;
          return ctx_.network_clustered
                     ? saturating_loss(joint, ctx_.stripes_per_network_pool)
                     : saturating_loss(joint * ctx_.rack_cover_times_pool_pick,
                                       ctx_.total_network_stripes);
        };
        const double cov_new = coverage_of(frac_new);
        const double cov_old =
            prev_frac >= 0.0 && ctx_.cfg.method != RepairMethod::kRepairAll
                ? coverage_of(prev_frac)
                : (prev_frac >= 0.0 ? cov_new : 0.0);
        if (cov_new >= 1.0 && cov_old < 1.0) return draw_bernoulli(1.0);
        if (cov_new > cov_old)
          log_no_cover += std::log1p(-cov_new) - std::log1p(-cov_old);
      }
      // Advance the odometer.
      if (idx_.empty()) break;
      std::size_t pos = idx_.size();
      while (pos > 0) {
        --pos;
        if (idx_[pos] + (idx_.size() - pos) < others_.size()) {
          ++idx_[pos];
          for (std::size_t i = pos + 1; i < idx_.size(); ++i) idx_[i] = idx_[i - 1] + 1;
          break;
        }
        if (pos == 0) {
          pos = idx_.size() + 1;  // exhausted
          break;
        }
      }
      if (pos > idx_.size()) break;
    }
    return draw_bernoulli(-std::expm1(log_no_cover));
  }

  const FleetSimContext& ctx_;
  Rng* rng_ = nullptr;              ///< caller-owned, bound for the duration of run()
  FleetSimResult* result_ = nullptr;  ///< likewise
  TrialArena<LocalPoolState> pools_;
  IndexedMinHeap events_;
  std::vector<Catastrophe> cats_;
  /// Subset-enumeration scratch, hoisted out of check_data_loss so the
  /// per-event path performs no allocation (capacity is retained).
  std::vector<const Catastrophe*> others_;
  std::vector<std::size_t> idx_;
  /// Batched inter-failure gaps; reset per mission (see kExpBatch).
  std::vector<double> exp_buf_;
  std::size_t exp_pos_ = 0;
  std::size_t exp_len_ = 0;
  std::uint64_t allocs_baseline_ = 0;
};

}  // namespace

struct FleetMissionEngine::Impl {
  std::shared_ptr<const FleetSimContext> ctx;
  MissionRunner runner;

  explicit Impl(std::shared_ptr<const FleetSimContext> context)
      : ctx(std::move(context)), runner(*ctx) {}
};

FleetMissionEngine::FleetMissionEngine(const FleetSimConfig& config)
    : impl_(std::make_unique<Impl>(make_fleet_context(config))) {}
FleetMissionEngine::FleetMissionEngine(std::shared_ptr<const FleetSimContext> context)
    : impl_(std::make_unique<Impl>(std::move(context))) {}
FleetMissionEngine::~FleetMissionEngine() = default;
FleetMissionEngine::FleetMissionEngine(FleetMissionEngine&&) noexcept = default;
FleetMissionEngine& FleetMissionEngine::operator=(FleetMissionEngine&&) noexcept = default;

void FleetMissionEngine::run_mission(Rng& rng, FleetSimResult& into) {
  impl_->runner.run(rng, into);
}

FleetSimResult simulate_fleet(const FleetSimConfig& config, std::uint64_t missions,
                              std::uint64_t seed, ThreadPool* pool, StopToken stop) {
  const auto ctx = make_fleet_context(config);

  const std::size_t shards =
      pool != nullptr ? std::min<std::size_t>(pool->size() * 2, missions) : 1;
  std::vector<FleetSimResult> partial(shards);

  auto run_shard = [&](std::size_t shard, std::uint64_t count) {
    Rng rng = Rng::for_substream(seed, shard);
    MissionRunner runner(*ctx);
    auto& result = partial[shard];
    for (std::uint64_t m = 0; m < count; ++m) {
      if (stop.stop_requested()) {
        result.truncated = true;
        break;
      }
      runner.run(rng, result);
    }
  };

  if (pool != nullptr && shards > 1) {
    pool->parallel_chunks(0, missions, shards,
                          [&](std::size_t shard, std::size_t lo, std::size_t hi) {
                            run_shard(shard, hi - lo);
                          });
  } else {
    run_shard(0, missions);
  }

  FleetSimResult merged;
  for (auto& part : partial) {
    merged.missions += part.missions;
    merged.data_loss_missions += part.data_loss_missions;
    merged.data_loss_events += part.data_loss_events;
    merged.disk_failures += part.disk_failures;
    merged.catastrophic_pool_events += part.catastrophic_pool_events;
    merged.loss_time_hours.merge(part.loss_time_hours);
    merged.catastrophe_exposure_hours.merge(part.catastrophe_exposure_hours);
    merged.cross_rack_tb += part.cross_rack_tb;
    merged.events_processed += part.events_processed;
    merged.rng_draws += part.rng_draws;
    merged.arena_allocations += part.arena_allocations;
    merged.truncated = merged.truncated || part.truncated;
  }
  return merged;
}

}  // namespace mlec
