#include "analysis/tradeoff.hpp"

#include <algorithm>

#include "analysis/encoding.hpp"
#include "placement/pools.hpp"

namespace mlec {

namespace {

bool mlec_fits(const DataCenterConfig& dc, const MlecCode& code, MlecScheme scheme) {
  if (network_placement(scheme) == Placement::kClustered) {
    if (dc.racks % code.network_width() != 0) return false;
  } else if (code.network_width() > dc.racks) {
    return false;
  }
  if (local_placement(scheme) == Placement::kClustered) {
    if (dc.disks_per_enclosure % code.local_width() != 0) return false;
  } else if (code.local_width() > dc.disks_per_enclosure) {
    return false;
  }
  return true;
}

bool slec_fits(const DataCenterConfig& dc, const SlecCode& code, SlecScheme scheme) {
  const std::size_t w = code.width();
  if (scheme.domain == SlecDomain::kLocal)
    return scheme.placement == Placement::kClustered ? dc.disks_per_enclosure % w == 0
                                                     : w <= dc.disks_per_enclosure;
  return scheme.placement == Placement::kClustered ? dc.racks % w == 0 : w <= dc.racks;
}

void sort_points(std::vector<TradeoffPoint>& points) {
  std::sort(points.begin(), points.end(), [](const TradeoffPoint& a, const TradeoffPoint& b) {
    return a.nines < b.nines;
  });
}

}  // namespace

std::vector<TradeoffPoint> mlec_tradeoff(const DurabilityEnv& env, MlecScheme scheme,
                                         RepairMethod method, const OverheadBand& band,
                                         bool measure_encoding) {
  std::vector<TradeoffPoint> points;
  for (std::size_t kn = 2; kn <= 22; ++kn) {
    for (std::size_t pn = 1; pn <= 4; ++pn) {
      for (std::size_t kl = 2; kl <= 28; ++kl) {
        for (std::size_t pl = 1; pl <= 6; ++pl) {
          const MlecCode code{{kn, pn}, {kl, pl}};
          if (!band.contains(code.overhead())) continue;
          if (!mlec_fits(env.dc, code, scheme)) continue;
          TradeoffPoint pt;
          pt.label = code.notation();
          pt.overhead = code.overhead();
          pt.nines = mlec_durability(env, code, scheme, method).nines;
          pt.encode_gbps = measure_encoding ? mlec_encoding_mbps(code, env.dc.chunk_kb) / 1e3 : 0;
          points.push_back(std::move(pt));
        }
      }
    }
  }
  sort_points(points);
  return points;
}

std::vector<TradeoffPoint> slec_tradeoff(const DurabilityEnv& env, SlecScheme scheme,
                                         const OverheadBand& band, bool measure_encoding) {
  std::vector<TradeoffPoint> points;
  for (std::size_t k = 2; k <= 46; ++k) {
    for (std::size_t p = 1; p <= 15; ++p) {
      const SlecCode code{k, p};
      if (!band.contains(code.overhead())) continue;
      if (!slec_fits(env.dc, code, scheme)) continue;
      TradeoffPoint pt;
      pt.label = code.notation();
      pt.overhead = code.overhead();
      pt.nines = slec_durability(env, code, scheme).nines;
      pt.encode_gbps = measure_encoding ? cached_encoding_mbps(k, p, env.dc.chunk_kb) / 1e3 : 0;
      points.push_back(std::move(pt));
    }
  }
  sort_points(points);
  return points;
}

std::vector<TradeoffPoint> lrc_tradeoff(const DurabilityEnv& env, const OverheadBand& band,
                                        bool measure_encoding) {
  std::vector<TradeoffPoint> points;
  for (std::size_t l = 1; l <= 4; ++l) {
    for (std::size_t r = 1; r <= 8; ++r) {
      for (std::size_t k = l; k <= 44; k += l) {
        const LrcCode code{k, l, r};
        if (code.width() > env.dc.racks) continue;
        if (!band.contains(code.overhead())) continue;
        TradeoffPoint pt;
        pt.label = code.notation();
        pt.overhead = code.overhead();
        pt.nines = lrc_durability(env, code).nines;
        pt.encode_gbps = measure_encoding ? lrc_encoding_mbps(code, env.dc.chunk_kb) / 1e3 : 0;
        points.push_back(std::move(pt));
      }
    }
  }
  sort_points(points);
  return points;
}

}  // namespace mlec
