// Encoding-throughput measurement (paper §5.1.1 Figure 11 and the
// throughput axis of Figures 12 and 15).
//
// The paper measured Intel ISA-L on a Xeon Gold 6240R; this repository
// substitutes its own GF(2^8) Reed-Solomon coder measured on the host CPU
// (documented in DESIGN.md). Absolute GB/s differ; the k/p scaling shape and
// all cross-scheme comparisons (which use the same coder everywhere) are
// preserved.
#pragma once

#include <cstddef>

#include "placement/codes.hpp"

namespace mlec {

struct EncodingMeasurement {
  std::size_t k = 0;
  std::size_t p = 0;
  double data_mbps = 0;  ///< user data encoded per second (MB/s)
};

/// Measure single-core (k+p) RS encode throughput on buffers of `chunk_kb`,
/// running at least `min_seconds`. p == 0 measures a pure memory pass and is
/// rejected (a (k+0) code encodes nothing).
EncodingMeasurement measure_encoding_throughput(std::size_t k, std::size_t p,
                                                double chunk_kb = 128.0,
                                                double min_seconds = 0.05);

/// Memoizing wrapper (measurements are deterministic enough for sweeps).
double cached_encoding_mbps(std::size_t k, std::size_t p, double chunk_kb = 128.0);

/// MLEC encodes in two serial stages (network then local); the combined
/// data throughput is the harmonic composition 1/(1/T_net + 1/T_loc).
double mlec_encoding_mbps(const MlecCode& code, double chunk_kb = 128.0);

/// LRC encodes local parities per group ((k/l)+1) and r global parities
/// (k+r), also serially.
double lrc_encoding_mbps(const LrcCode& code, double chunk_kb = 128.0);

}  // namespace mlec
