// Chaos harness: sweep every registered fault point and prove the system
// survives it.
//
// Each case arms one MLEC_FAULTS schedule and asserts the robustness
// contract the ISSUE of record demands: every injected crash, hang, or
// corruption must end in either a bit-identical resumed estimate or an
// explicitly degraded partial estimate — never an abort, a deadlock, or a
// silently wrong number. The case families:
//
//   crash-*        fork a child, inject `crash` (std::_Exit mid-write) at a
//                  journal or checkpoint fault point, then resume in the
//                  parent and require the estimate bit-identical to the
//                  un-faulted baseline.
//   corrupt-*      truncate / bit-flip / de-magic a checkpoint journal left
//                  by a partial run, then resume and require bit-identity
//                  (damaged shards recompute their deterministic substreams).
//   hang/throw-*   delay- and throw-injected shards must retry (watchdog
//                  timeout or exception), then either complete cleanly or
//                  quarantine into an explicitly degraded estimate.
//   fallback-*     a throwing estimator must not take down `--method=all`;
//                  DegradePolicy::kFailFast must raise DegradedError.
//   repair-*       the byte-exact repair executor survives an injected
//                  throw and still verifies afterwards.
//
// Case order is load-bearing: the fork-based crash cases run FIRST, before
// anything touches the global thread pool, so the child never forks a
// multi-threaded process (the repair cases, which materialize stripes on
// the pool, run last). Campaign cases run single-threaded so fault-point
// hit ordering — and therefore which shard a trigger lands on — is
// deterministic.
//
// Driven by `mlecctl chaos` and tests/test_chaos.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/scenario.hpp"

namespace mlec {

struct ChaosOptions;

struct ChaosCaseResult {
  std::string name;
  std::string faults;  ///< MLEC_FAULTS schedule the case armed ("" = none)
  bool passed = false;
  std::string detail;  ///< what held, or how it failed
};

/// A case supplied by a layer above this library (the server registers its
/// daemon crash/survival cases this way — analysis cannot link it). The
/// case owns its own fault schedule via fault::configure/clear and must
/// leave nothing armed; its `faults` string feeds the coverage check.
struct ChaosExtraCase {
  std::string name;  ///< drives `only` selection
  std::function<ChaosCaseResult(const Scenario& scenario, const ChaosOptions& options,
                                const std::string& workdir)>
      run;
};

struct ChaosOptions {
  /// Directory for the journals the cases crash, corrupt, and resume.
  /// Empty uses a process-unique directory under the system temp dir.
  std::string workdir;
  /// Run only the cases whose name contains one of these substrings;
  /// empty runs the full sweep (including the fault-point coverage check).
  std::vector<std::string> only;
  /// Campaign shard count for the faulted runs (single-threaded execution
  /// keeps hit order deterministic regardless of this).
  std::size_t shards = 2;
  /// Extra cases run alongside the early fork-based crash cases: they may
  /// fork but must not spawn threads (fork safety — see file comment).
  std::vector<ChaosExtraCase> fork_phase;
  /// Extra cases run after every fork in the sweep: free to spawn threads
  /// (TCP listeners, service runners).
  std::vector<ChaosExtraCase> late_phase;
};

struct ChaosReport {
  std::vector<ChaosCaseResult> cases;

  bool all_passed() const;
  std::size_t failures() const;
  std::string table() const;
};

/// Run the chaos sweep against `scenario` (its missions/seed control the
/// campaign size; keep missions modest — every case runs a campaign).
/// Never leaves a fault schedule armed, even on failure paths.
ChaosReport run_chaos(const Scenario& scenario, const ChaosOptions& options = {});

/// Bit-exact comparison of everything an Estimate derives from the sweep's
/// accumulated statistics (samples, pdl, interval, repair metadata): ""
/// on equality, else a description of the first mismatch. The contract
/// every crash/resume case asserts — exported so the server's extra cases
/// (and its tests) assert the same one.
std::string diff_estimates(const Estimate& a, const Estimate& b);

}  // namespace mlec
