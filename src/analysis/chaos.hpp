// Chaos harness: sweep every registered fault point and prove the system
// survives it.
//
// Each case arms one MLEC_FAULTS schedule and asserts the robustness
// contract the ISSUE of record demands: every injected crash, hang, or
// corruption must end in either a bit-identical resumed estimate or an
// explicitly degraded partial estimate — never an abort, a deadlock, or a
// silently wrong number. The case families:
//
//   crash-*        fork a child, inject `crash` (std::_Exit mid-write) at a
//                  journal or checkpoint fault point, then resume in the
//                  parent and require the estimate bit-identical to the
//                  un-faulted baseline.
//   corrupt-*      truncate / bit-flip / de-magic a checkpoint journal left
//                  by a partial run, then resume and require bit-identity
//                  (damaged shards recompute their deterministic substreams).
//   hang/throw-*   delay- and throw-injected shards must retry (watchdog
//                  timeout or exception), then either complete cleanly or
//                  quarantine into an explicitly degraded estimate.
//   fallback-*     a throwing estimator must not take down `--method=all`;
//                  DegradePolicy::kFailFast must raise DegradedError.
//   repair-*       the byte-exact repair executor survives an injected
//                  throw and still verifies afterwards.
//
// Case order is load-bearing: the fork-based crash cases run FIRST, before
// anything touches the global thread pool, so the child never forks a
// multi-threaded process (the repair cases, which materialize stripes on
// the pool, run last). Campaign cases run single-threaded so fault-point
// hit ordering — and therefore which shard a trigger lands on — is
// deterministic.
//
// Driven by `mlecctl chaos` and tests/test_chaos.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace mlec {

struct ChaosOptions {
  /// Directory for the journals the cases crash, corrupt, and resume.
  /// Empty uses a process-unique directory under the system temp dir.
  std::string workdir;
  /// Run only the cases whose name contains one of these substrings;
  /// empty runs the full sweep (including the fault-point coverage check).
  std::vector<std::string> only;
  /// Campaign shard count for the faulted runs (single-threaded execution
  /// keeps hit order deterministic regardless of this).
  std::size_t shards = 2;
};

struct ChaosCaseResult {
  std::string name;
  std::string faults;  ///< MLEC_FAULTS schedule the case armed ("" = none)
  bool passed = false;
  std::string detail;  ///< what held, or how it failed
};

struct ChaosReport {
  std::vector<ChaosCaseResult> cases;

  bool all_passed() const;
  std::size_t failures() const;
  std::string table() const;
};

/// Run the chaos sweep against `scenario` (its missions/seed control the
/// campaign size; keep missions modest — every case runs a campaign).
/// Never leaves a fault schedule armed, even on failure paths.
ChaosReport run_chaos(const Scenario& scenario, const ChaosOptions& options = {});

}  // namespace mlec
