#include "analysis/chaos.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "analysis/crosscheck.hpp"
#include "core/estimator.hpp"
#include "sim/repair_executor.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"

namespace mlec {

namespace {

/// Disarms whatever schedule a case configured, even when it fails by
/// throwing: a leaked schedule would poison every later case.
struct ScopedFaults {
  explicit ScopedFaults(const std::string& spec) { fault::configure(spec); }
  ~ScopedFaults() { fault::clear(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

}  // namespace

std::string diff_estimates(const Estimate& a, const Estimate& b) {
  const auto field = [](const char* name, double x, double y) {
    std::ostringstream os;
    os.precision(17);
    os << name << " differs: " << x << " vs " << y;
    return os.str();
  };
  if (a.samples != b.samples)
    return "samples differ: " + std::to_string(a.samples) + " vs " + std::to_string(b.samples);
  if (!same_bits(a.pdl, b.pdl)) return field("pdl", a.pdl, b.pdl);
  if (!same_bits(a.pdl_lo, b.pdl_lo)) return field("pdl_lo", a.pdl_lo, b.pdl_lo);
  if (!same_bits(a.pdl_hi, b.pdl_hi)) return field("pdl_hi", a.pdl_hi, b.pdl_hi);
  if (!same_bits(a.exposure_hours, b.exposure_hours))
    return field("exposure_hours", a.exposure_hours, b.exposure_hours);
  if (!same_bits(a.cat_rate_per_year, b.cat_rate_per_year))
    return field("cat_rate_per_year", a.cat_rate_per_year, b.cat_rate_per_year);
  if (!same_bits(a.cross_rack_tb, b.cross_rack_tb))
    return field("cross_rack_tb", a.cross_rack_tb, b.cross_rack_tb);
  return {};
}

namespace {

/// Shared fixture: the sim estimator, deterministic campaign knobs, and the
/// un-faulted baseline every crash/corruption case compares against.
struct ChaosContext {
  const Scenario& scenario;
  const ChaosOptions& options;
  const Estimator* sim = nullptr;
  EstimateOptions base;  ///< single-threaded, no checkpoint
  Estimate baseline;
  std::string workdir;

  std::string journal_base(const std::string& case_name) const {
    return workdir + "/" + case_name + ".journal";
  }
  /// The file the sim estimator actually writes under a base path.
  std::string journal_file(const std::string& case_name) const {
    return journal_base(case_name) + ".sim";
  }
};

ChaosCaseResult make_result(const std::string& name, const std::string& faults) {
  ChaosCaseResult r;
  r.name = name;
  r.faults = faults;
  return r;
}

// ---------------------------------------------------------------------------
// crash-* : fork, kill the child at a journal/checkpoint fault point, resume.

#ifndef _WIN32
ChaosCaseResult run_crash_case(const ChaosContext& ctx, const std::string& point) {
  const std::string name = "crash-" + point;
  const std::string schedule = point + "=crash@hit=2";
  ChaosCaseResult result = make_result(name, schedule);
  const std::string base_path = ctx.journal_base(name);

  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: arm the crash, run the campaign, and either die at the fault
    // point (exit 42, the expected path) or report what happened instead.
    try {
      fault::configure(schedule);
      EstimateOptions eo = ctx.base;
      eo.checkpoint_path = base_path;
      ctx.sim->estimate(ctx.scenario, eo);
      std::_Exit(64);  // ran to completion: the fault never fired
    } catch (...) {
      std::_Exit(65);  // the crash action must not surface as an exception
    }
  }
  MLEC_REQUIRE(pid > 0, "chaos: fork failed");
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 42) {
    result.detail = "child did not die at the fault point (status " +
                    std::to_string(status) + ")";
    return result;
  }

  // Parent: resume from whatever the crash left behind; the estimate must
  // be bit-identical to the uninterrupted baseline.
  EstimateOptions eo = ctx.base;
  eo.checkpoint_path = base_path;
  eo.resume = true;
  try {
    const Estimate resumed = ctx.sim->estimate(ctx.scenario, eo);
    const std::string diff = diff_estimates(resumed, ctx.baseline);
    if (!diff.empty()) {
      result.detail = "resumed estimate not bit-identical: " + diff;
      return result;
    }
    result.passed = true;
    result.detail = "killed at hit 2, resumed bit-identical";
  } catch (const std::exception& e) {
    result.detail = std::string("resume threw: ") + e.what();
  }
  return result;
}
#endif

// ---------------------------------------------------------------------------
// corrupt-* : damage a journal left by a partial run, resume, compare.

enum class Damage { kTruncateTail, kFlipByte, kBadMagic };

ChaosCaseResult run_corruption_case(const ChaosContext& ctx, const std::string& name,
                                    Damage damage) {
  ChaosCaseResult result = make_result(name, "");
  const std::string base_path = ctx.journal_base(name);
  const std::string file = ctx.journal_file(name);

  // Leave a journal mid-sweep: a unit budget truncates the run after ~3/4
  // of the missions, so the journal holds real partial progress.
  EstimateOptions partial = ctx.base;
  partial.checkpoint_path = base_path;
  partial.unit_budget = std::max<std::uint64_t>(1, ctx.scenario.missions * 3 / 4);
  ctx.sim->estimate(ctx.scenario, partial);

  std::string bytes;
  {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.detail = "partial run left no journal at " + file;
      return result;
    }
    std::ostringstream os;
    os << in.rdbuf();
    bytes = std::move(os).str();
  }
  switch (damage) {
    case Damage::kTruncateTail:
      bytes.resize(bytes.size() - std::min<std::size_t>(bytes.size(), 7));
      break;
    case Damage::kFlipByte:
      bytes[bytes.size() * 3 / 5] ^= 0x40;
      break;
    case Damage::kBadMagic:
      std::memcpy(bytes.data(), "XXXX", 4);
      break;
  }
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  EstimateOptions eo = ctx.base;
  eo.checkpoint_path = base_path;
  eo.resume = true;
  try {
    const Estimate resumed = ctx.sim->estimate(ctx.scenario, eo);
    const std::string diff = diff_estimates(resumed, ctx.baseline);
    if (!diff.empty()) {
      result.detail = "estimate after corruption not bit-identical: " + diff;
      return result;
    }
    if (resumed.campaign.resume_warning.empty()) {
      result.detail = "damage went unreported (no resume warning)";
      return result;
    }
    result.passed = true;
    result.detail = "recovered: " + resumed.campaign.resume_warning;
  } catch (const std::exception& e) {
    result.detail = std::string("resume threw instead of recovering: ") + e.what();
  }
  return result;
}

// ---------------------------------------------------------------------------
// hang / throw / degrade / fail-fast / fallback / repair cases.

ChaosCaseResult run_hung_shard_case(const ChaosContext& ctx) {
  // One 2-second injected stall against a 0.2s watchdog: the attempt must
  // be cut loose and the retry (which the @hit=1 trigger spares) completes.
  const std::string schedule = "shard.slow=delay:2000@hit=1";
  ChaosCaseResult result = make_result("hang-watchdog-retry", schedule);
  ScopedFaults faults(schedule);
  EstimateOptions eo = ctx.base;
  eo.shard_timeout_s = 0.2;
  try {
    const Estimate e = ctx.sim->estimate(ctx.scenario, eo);
    std::uint32_t timeouts = 0;
    for (const auto& s : e.campaign.shards) timeouts += s.timeouts;
    if (timeouts == 0) {
      result.detail = "watchdog never fired";
    } else if (e.degraded || !e.campaign.complete()) {
      result.detail = "run did not complete after the timed-out retry";
    } else {
      result.passed = true;
      result.detail = "watchdog cancelled " + std::to_string(timeouts) +
                      " attempt(s); retry completed the sweep";
    }
  } catch (const std::exception& e) {
    result.detail = std::string("threw: ") + e.what();
  }
  return result;
}

ChaosCaseResult run_task_throw_retry_case(const ChaosContext& ctx) {
  const std::string schedule = "pool.task.throw=throw@hit=1";
  ChaosCaseResult result = make_result("throw-task-retry", schedule);
  ScopedFaults faults(schedule);
  try {
    const Estimate e = ctx.sim->estimate(ctx.scenario, ctx.base);
    const bool retried = !e.campaign.shards.empty() && e.campaign.shards[0].attempts > 1;
    if (!retried) {
      result.detail = "shard 0 never retried";
    } else if (e.degraded || !e.campaign.complete()) {
      result.detail = "run did not complete after the retry";
    } else {
      result.passed = true;
      result.detail = "shard 0 retried once and the sweep completed";
    }
  } catch (const std::exception& e) {
    result.detail = std::string("threw: ") + e.what();
  }
  return result;
}

ChaosCaseResult run_degraded_case(const ChaosContext& ctx) {
  // Three injected throws against max_attempts=3 exhaust shard 0; shard 1's
  // later hits are spared. The estimate must come back explicitly degraded
  // with a widened interval, not abort and not silently complete.
  const std::string schedule = "pool.task.throw=throw@first=3";
  ChaosCaseResult result = make_result("throw-quarantine-degrade", schedule);
  ScopedFaults faults(schedule);
  try {
    const Estimate e = ctx.sim->estimate(ctx.scenario, ctx.base);
    if (e.campaign.quarantined() == 0) {
      result.detail = "no shard was quarantined";
    } else if (!e.degraded || e.degrade_note.empty()) {
      result.detail = "quarantine was not surfaced as a degraded estimate";
    } else if (e.pdl_lo > e.pdl || e.pdl_hi < e.pdl) {
      result.detail = "widened interval does not bracket the point estimate";
    } else {
      result.passed = true;
      result.detail = e.degrade_note;
    }
  } catch (const std::exception& e) {
    result.detail = std::string("threw instead of degrading: ") + e.what();
  }
  return result;
}

ChaosCaseResult run_fail_fast_case(const ChaosContext& ctx) {
  const std::string schedule = "pool.task.throw=throw@first=3";
  ChaosCaseResult result = make_result("throw-quarantine-fail-fast", schedule);
  ScopedFaults faults(schedule);
  EstimateOptions eo = ctx.base;
  eo.degrade = DegradePolicy::kFailFast;
  try {
    ctx.sim->estimate(ctx.scenario, eo);
    result.detail = "fail-fast returned an estimate instead of throwing";
  } catch (const DegradedError& e) {
    result.passed = true;
    result.detail = std::string("raised DegradedError: ") + e.what();
  } catch (const std::exception& e) {
    result.detail = std::string("wrong exception type: ") + e.what();
  }
  return result;
}

ChaosCaseResult run_method_fallback_case(const ChaosContext& ctx) {
  // `--method=all` semantics: a method killed at its entry point is
  // reported as failed while the surviving methods still produce numbers.
  const std::string schedule =
      "estimator.sim.pre=throw;estimator.split.pre=throw;estimator.markov.pre=throw";
  ChaosCaseResult result = make_result("fallback-methods", schedule);
  ScopedFaults faults(schedule);
  CrosscheckOptions cc;
  cc.estimate = ctx.base;
  try {
    const CrosscheckReport report = run_crosscheck(ctx.scenario, cc);
    std::size_t failed = 0;
    bool dp_ran = false;
    for (const auto& row : report.rows) {
      if (row.failed) ++failed;
      if (row.method == "dp" && row.ran()) dp_ran = true;
    }
    if (!dp_ran) {
      result.detail = "dp did not survive the other methods' failures";
    } else if (failed == 0) {
      result.detail = "no method failed — the injected throws never fired";
    } else {
      result.passed = true;
      result.detail = std::to_string(failed) + " methods failed, dp still answered";
    }
  } catch (const std::exception& e) {
    result.detail = std::string("run_crosscheck threw: ") + e.what();
  }
  return result;
}

ChaosCaseResult run_estimator_dp_case(const ChaosContext& ctx) {
  const std::string schedule = "estimator.dp.pre=throw";
  ChaosCaseResult result = make_result("fallback-dp", schedule);
  ScopedFaults faults(schedule);
  CrosscheckOptions cc;
  cc.methods = {"dp", "markov"};
  cc.estimate = ctx.base;
  try {
    const CrosscheckReport report = run_crosscheck(ctx.scenario, cc);
    const bool dp_failed = report.rows.at(0).failed;
    const bool markov_ran = report.rows.at(1).ran();
    if (dp_failed && markov_ran) {
      result.passed = true;
      result.detail = "dp failed as injected, markov answered";
    } else {
      result.detail = "expected dp to fail and markov to run";
    }
  } catch (const std::exception& e) {
    result.detail = std::string("run_crosscheck threw: ") + e.what();
  }
  return result;
}

/// Runs LAST: materializing stripes uses the global thread pool, which must
/// not exist while the crash cases fork.
ChaosCaseResult run_repair_case() {
  const std::string schedule = "repair.execute.pre=throw";
  ChaosCaseResult result = make_result("repair-throw-then-verify", schedule);
  DataCenterConfig dc;
  dc.racks = 6;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;
  const MlecCode code{{2, 1}, {2, 1}};
  try {
    const Topology topo(dc);
    const StripeMap map(topo, code, MlecScheme::kCC, 4, /*seed=*/7);
    MaterializedSystem system(map, 32, /*seed=*/9);
    system.fail_disks({map.stripes().front().locals.front().disks[0]});
    bool threw = false;
    {
      ScopedFaults faults(schedule);
      try {
        system.execute(RepairMethod::kRepairMinimum);
      } catch (const fault::FaultInjectedError&) {
        threw = true;
      }
    }
    if (!threw) {
      result.detail = "injected throw never fired";
      return result;
    }
    const auto exec = system.execute(RepairMethod::kRepairMinimum);
    if (!exec.verified) {
      result.detail = "repair after the injected failure did not verify byte-exact";
      return result;
    }
    result.passed = true;
    result.detail = "injected failure thrown, subsequent repair verified byte-exact";
  } catch (const std::exception& e) {
    result.detail = std::string("threw: ") + e.what();
  }
  return result;
}

bool selected(const ChaosOptions& options, const std::string& name) {
  if (options.only.empty()) return true;
  for (const auto& needle : options.only)
    if (name.find(needle) != std::string::npos) return true;
  return false;
}

}  // namespace

bool ChaosReport::all_passed() const { return failures() == 0; }

std::size_t ChaosReport::failures() const {
  std::size_t n = 0;
  for (const auto& c : cases) n += c.passed ? 0 : 1;
  return n;
}

std::string ChaosReport::table() const {
  Table t({"case", "faults", "result", "detail"});
  for (const auto& c : cases)
    t.add_row({c.name, c.faults.empty() ? "-" : c.faults, c.passed ? "pass" : "FAIL",
               c.detail});
  std::ostringstream os;
  os << t.to_ascii("chaos sweep (" + std::to_string(cases.size()) + " cases)");
  if (all_passed())
    os << "all " << cases.size() << " cases passed\n";
  else
    os << failures() << " of " << cases.size() << " cases FAILED\n";
  return os.str();
}

ChaosReport run_chaos(const Scenario& scenario, const ChaosOptions& options) {
  scenario.validate();
  MLEC_REQUIRE(!fault::enabled(),
               "chaos: a fault schedule is already armed; clear MLEC_FAULTS first");

  ChaosContext ctx{scenario, options};
  ctx.sim = find_estimator("sim");
  MLEC_REQUIRE(ctx.sim != nullptr, "chaos: sim estimator not registered");
  MLEC_REQUIRE(ctx.sim->applicability(scenario).empty(),
               "chaos needs a sim-applicable scenario: " + ctx.sim->applicability(scenario));

  namespace fs = std::filesystem;
  ctx.workdir = options.workdir;
  if (ctx.workdir.empty()) {
#ifndef _WIN32
    const std::string unique = std::to_string(::getpid());
#else
    const std::string unique = "default";
#endif
    ctx.workdir = (fs::temp_directory_path() / ("mlec-chaos-" + unique)).string();
  }
  fs::create_directories(ctx.workdir);

  // Deterministic campaign shape: single-threaded (pool=nullptr) so fault
  // hits land on the same shard/batch every run, with enough checkpoint
  // boundaries for the @hit=2 crash triggers to have something to hit.
  ctx.base.pool = nullptr;
  ctx.base.shards = std::max<std::size_t>(1, options.shards);
  ctx.base.checkpoint_every = std::max<std::uint64_t>(1, scenario.missions / 8);

  ctx.baseline = ctx.sim->estimate(scenario, ctx.base);

  ChaosReport report;
  const auto add = [&](ChaosCaseResult result) { report.cases.push_back(std::move(result)); };

  // Fork-based crash cases first — see the header comment on ordering.
#ifndef _WIN32
  for (const char* point : {"journal.save.pre", "journal.rename.pre", "journal.rename.post",
                            "campaign.checkpoint.pre", "campaign.checkpoint.post"})
    if (selected(options, std::string("crash-") + point)) add(run_crash_case(ctx, point));
#endif
  for (const ChaosExtraCase& extra : options.fork_phase)
    if (selected(options, extra.name)) add(extra.run(scenario, options, ctx.workdir));

  if (selected(options, "corrupt-truncated-tail"))
    add(run_corruption_case(ctx, "corrupt-truncated-tail", Damage::kTruncateTail));
  if (selected(options, "corrupt-flipped-byte"))
    add(run_corruption_case(ctx, "corrupt-flipped-byte", Damage::kFlipByte));
  if (selected(options, "corrupt-bad-magic"))
    add(run_corruption_case(ctx, "corrupt-bad-magic", Damage::kBadMagic));

  if (selected(options, "hang-watchdog-retry")) add(run_hung_shard_case(ctx));
  if (selected(options, "throw-task-retry")) add(run_task_throw_retry_case(ctx));
  if (selected(options, "throw-quarantine-degrade")) add(run_degraded_case(ctx));
  if (selected(options, "throw-quarantine-fail-fast")) add(run_fail_fast_case(ctx));
  if (selected(options, "fallback-methods")) add(run_method_fallback_case(ctx));
  if (selected(options, "fallback-dp")) add(run_estimator_dp_case(ctx));

  // From here on cases may spawn threads; every fork is behind us.
  for (const ChaosExtraCase& extra : options.late_phase)
    if (selected(options, extra.name)) add(extra.run(scenario, options, ctx.workdir));

  // Last: touches the global thread pool (fork-safety, see above).
  if (selected(options, "repair-throw-then-verify")) add(run_repair_case());

  // Coverage check: the full sweep must mention every fault point the
  // library registers, so a new MLEC_FAULT_POINT cannot dodge chaos simply
  // by being forgotten here.
  if (options.only.empty()) {
    ChaosCaseResult coverage = make_result("coverage-known-points", "");
    std::string missing;
    for (const auto& point : fault::known_points()) {
      bool mentioned = false;
      for (const auto& c : report.cases)
        if (c.faults.find(point.name) != std::string::npos) mentioned = true;
      if (!mentioned) missing += std::string(missing.empty() ? "" : ", ") + point.name;
    }
    coverage.passed = missing.empty();
    coverage.detail = missing.empty()
                          ? "all " + std::to_string(fault::known_points().size()) +
                                " registered fault points exercised"
                          : "uncovered fault points: " + missing;
    report.cases.push_back(std::move(coverage));
  }
  return report;
}

}  // namespace mlec
