#include "analysis/durability.hpp"

#include <cmath>
#include <functional>

#include "analysis/burst_pdl.hpp"
#include "analysis/repair_time.hpp"
#include "math/combin.hpp"
#include "math/distribution.hpp"
#include "math/markov.hpp"
#include "placement/lrc.hpp"
#include "placement/pools.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

namespace {

double tb_per_hour(double mbps) { return mbps * units::kSecondsPerHour * 1e6 / 1e12; }

/// Hours to rebuild one failed disk inside its pool, detection included.
double single_disk_hours(const DurabilityEnv& env, const SlecCode& code, Placement placement,
                         std::size_t pool_disks) {
  const BandwidthModel bw(env.bw);
  RepairFlow flow;
  flow.read_amp = static_cast<double>(code.k);
  flow.write_amp = 1.0;
  if (placement == Placement::kClustered) {
    flow.read_only_disks = code.width() - 1;
    flow.write_only_disks = 1;
  } else {
    flow.shared_disks = pool_disks - 1;
  }
  return env.detection_hours + bw.repair_hours(env.dc.disk_capacity_tb, flow);
}

/// The priority-reconstruction critical-window model for declustered pools
/// and whole-system declustered placements.
///
/// Under priority reconstruction, stripes at j failed chunks (the risk class
/// at level j) are demoted — one rebuilt chunk each — within a window
///   W_j = detection + (class-j volume)/bandwidth.
/// A stripe dies only if every next failure lands inside the previous
/// window AND on a surviving chunk of a still-critical stripe, so the loss
/// rate is the initiating failure rate times the product of per-transition
/// probabilities:
///   rate = n*lambda * prod_{j=1..p} (1 - exp(-(n-j) lambda W_j h_j)),
/// where h_j = P(a random newly failed disk hits a class-j stripe)
///           = 1 - exp(-K_j (w-j)/(n-j)),  K_j = E[#class-j stripes].
/// The h_j factor is ~1 inside a 120-disk pool but decisive for whole-system
/// declustered placements (and is what makes wide-pool priority repair so
/// strong — the paper's Figure 7 and §5.2.2 detection-floor effects).
struct WindowModel {
  std::size_t units = 0;      ///< disks participating
  std::size_t tolerance = 0;  ///< stripe failure tolerance p
  double lambda_hour = 0;     ///< per-disk failure rate
  double detection_hours = 0;
  double chunk_tb = 0;
  /// E[#stripes with exactly j failed chunks] when j disks are down.
  std::function<double(std::size_t)> class_stripes;
  /// Surviving chunks whose loss advances a class-j stripe.
  std::function<double(std::size_t)> kill_chunks;
  /// Aggregate rebuild bandwidth (TB/h) at j concurrent failures.
  std::function<double(std::size_t)> bw_tb_h;
};

double window_loss_rate_per_hour(const WindowModel& m) {
  MLEC_REQUIRE(m.tolerance >= 1, "window model needs at least one tolerated failure");
  MLEC_REQUIRE(m.units > m.tolerance, "pool too small for the tolerance");

  double rate = static_cast<double>(m.units) * m.lambda_hour;
  for (std::size_t j = 1; j <= m.tolerance; ++j) {
    const double k_j = m.class_stripes(j);
    const double window_hours = m.detection_hours + k_j * m.chunk_tb / m.bw_tb_h(j);
    const double hit = -std::expm1(-k_j * m.kill_chunks(j) /
                                   static_cast<double>(m.units - j));
    const double next_rate = static_cast<double>(m.units - j) * m.lambda_hour;
    rate *= -std::expm1(-next_rate * window_hours * hit);
  }
  return rate;
}

/// Declustered rebuild bandwidth of a pool: survivors share reads+writes at
/// (k+1) transferred bytes per repaired byte.
std::function<double(std::size_t)> pool_dp_bw(const DurabilityEnv& env, std::size_t pool_disks,
                                              std::size_t k) {
  const double disk_eff = env.bw.effective_disk_mbps();
  return [pool_disks, k, disk_eff](std::size_t f) {
    return tb_per_hour(static_cast<double>(pool_disks - f) * disk_eff /
                       static_cast<double>(k + 1));
  };
}

/// Whole-system declustered rebuild bandwidth: min of the disk fabric and
/// the cross-rack fabric at `reads` read-amplification.
std::function<double(std::size_t)> system_dp_bw(const DurabilityEnv& env, double reads) {
  const double disk_eff = env.bw.effective_disk_mbps();
  const double rack_total = static_cast<double>(env.dc.racks) * env.bw.effective_rack_mbps();
  const std::size_t disks = env.dc.total_disks();
  return [disks, disk_eff, rack_total, reads](std::size_t f) {
    const double disk_fabric = static_cast<double>(disks - f) * disk_eff / (reads + 1.0);
    const double rack_fabric = rack_total / (reads + 1.0);
    return tb_per_hour(std::min(disk_fabric, rack_fabric));
  };
}

double chunk_tb(const DataCenterConfig& dc) { return dc.chunk_kb * 1e3 / 1e12; }

}  // namespace

LocalPoolStats local_pool_stats(const DurabilityEnv& env, const SlecCode& local_code,
                                Placement placement, std::size_t pool_disks) {
  local_code.validate();
  MLEC_REQUIRE(pool_disks >= local_code.width(), "pool smaller than the stripe width");
  const double lambda = env.afr / units::kHoursPerYear;
  LocalPoolStats stats;

  const double chunk_bits = env.dc.chunk_kb * 1e3 * 8.0;

  if (placement == Placement::kClustered) {
    const double repair_hours = single_disk_hours(env, local_code, placement, pool_disks);
    const double mttdl = erasure_set_mttdl(local_code.k, local_code.p, lambda,
                                           1.0 / repair_hours, /*parallel_repair=*/true);
    stats.cat_rate_per_pool_year = units::kHoursPerYear / mttdl;
    if (env.ure_per_bit > 0.0 && local_code.p >= 1) {
      // Latent-error extension: at p_l concurrent failures, every stripe
      // sits one error from loss while the rebuild reads k_l chunks per
      // stripe; a single URE then loses a stripe (catastrophic pool).
      BirthDeathChain reach;
      reach.birth.resize(local_code.p);
      reach.death.resize(local_code.p);
      for (std::size_t i = 0; i < local_code.p; ++i) {
        reach.birth[i] = static_cast<double>(local_code.width() - i) * lambda;
        reach.death[i] = i == 0 ? 0.0 : static_cast<double>(i) / repair_hours;
      }
      const double stripes = static_cast<double>(pool_disks) * env.dc.chunks_per_disk() /
                             static_cast<double>(local_code.width());
      const double read_bits = stripes * static_cast<double>(local_code.k) * chunk_bits;
      const double p_ure = -std::expm1(-read_bits * env.ure_per_bit);
      stats.cat_rate_per_pool_year +=
          units::kHoursPerYear / reach.mean_time_to_absorption() * p_ure;
    }
    // At catastrophe the overlapping rebuilds are partially done; stripes
    // past the most-rebuilt disk's progress survive. The analytic default is
    // the midpoint; splitting simulation refines it.
    stats.lost_stripe_fraction = 0.5;
    return stats;
  }

  const std::size_t w = local_code.width();
  const std::size_t p = local_code.p;
  const double stripes = static_cast<double>(pool_disks) * env.dc.chunks_per_disk() /
                         static_cast<double>(w);
  WindowModel m;
  m.units = pool_disks;
  m.tolerance = p;
  m.lambda_hour = lambda;
  m.detection_hours = env.detection_hours;
  m.chunk_tb = chunk_tb(env.dc);
  m.class_stripes = [stripes, pool_disks, w](std::size_t j) {
    return stripes * hypergeom_pmf(static_cast<std::int64_t>(pool_disks),
                                   static_cast<std::int64_t>(j), static_cast<std::int64_t>(w),
                                   static_cast<std::int64_t>(j));
  };
  m.kill_chunks = [w](std::size_t j) { return static_cast<double>(w - j); };
  m.bw_tb_h = pool_dp_bw(env, pool_disks, local_code.k);
  stats.cat_rate_per_pool_year = window_loss_rate_per_hour(m) * units::kHoursPerYear;
  if (env.ure_per_bit > 0.0 && p >= 1) {
    // Latent-error extension: a URE while demoting a class-p stripe (k_l
    // chunks read per demotion) loses that stripe. The class-p state is
    // created at the rate of the first p-1 ladder transitions.
    double reach_rate = static_cast<double>(pool_disks) * lambda;
    for (std::size_t j = 1; j + 1 <= p; ++j) {
      const double k_j = m.class_stripes(j);
      const double window = m.detection_hours + k_j * m.chunk_tb / m.bw_tb_h(j);
      const double hit =
          -std::expm1(-k_j * m.kill_chunks(j) / static_cast<double>(pool_disks - j));
      reach_rate *=
          -std::expm1(-static_cast<double>(pool_disks - j) * lambda * window * hit);
    }
    const double read_bits =
        m.class_stripes(p) * static_cast<double>(local_code.k) * chunk_bits;
    const double p_ure = -std::expm1(-read_bits * env.ure_per_bit);
    stats.cat_rate_per_pool_year += reach_rate * p_ure * units::kHoursPerYear;
  }
  stats.lost_stripe_fraction =
      hypergeom_tail_geq(static_cast<std::int64_t>(pool_disks), static_cast<std::int64_t>(p + 1),
                         static_cast<std::int64_t>(w), static_cast<std::int64_t>(p + 1));
  return stats;
}

LocalPoolStats local_pool_stats_from_sim(const LocalPoolSimResult& sim) {
  LocalPoolStats stats;
  stats.cat_rate_per_pool_year = sim.catastrophe_rate_per_year();
  if (!sim.samples.empty()) {
    double acc = 0.0;
    for (const auto& s : sim.samples) acc += s.lost_stripe_fraction;
    stats.lost_stripe_fraction = acc / static_cast<double>(sim.samples.size());
  }
  return stats;
}

double stage2_exposure_hours(const DurabilityEnv& env, const MlecCode& code, MlecScheme scheme,
                             RepairMethod method, double lost_stripe_fraction) {
  const PoolLayout layout(env.dc, code, scheme);
  const RepairTimeModel rtm(env.dc, env.bw, code);
  // The network-rebuilt volume depends on the repair method and, for the
  // chunk-aware methods, on the lost-stripe fraction at catastrophe
  // (long-term failures arrive staggered, so partial rebuilds shrink the
  // lost set — paper §4.2.3 F#2).
  const std::size_t pl1 = code.local.p + 1;
  const double failed_tb = static_cast<double>(pl1) * env.dc.disk_capacity_tb;
  // Chunk-level fraction of a failed disk's data sitting in lost stripes.
  const double chunk_frac =
      std::min(1.0, lost_stripe_fraction * static_cast<double>(layout.local_pool_disks()) /
                        static_cast<double>(code.local_width()));
  double network_tb = 0.0;
  switch (method) {
    case RepairMethod::kRepairAll:
      network_tb = layout.local_pool_capacity_tb();
      break;
    case RepairMethod::kRepairFailedOnly:
      network_tb = failed_tb;
      break;
    case RepairMethod::kRepairHybrid:
      network_tb = failed_tb * chunk_frac;
      break;
    case RepairMethod::kRepairMinimum:
      network_tb = failed_tb * chunk_frac / static_cast<double>(pl1);
      break;
  }
  const BandwidthModel bwm(env.bw);
  return env.detection_hours +
         bwm.repair_hours(network_tb, rtm.network_stage_flow(scheme, method));
}

double stage2_coverage(const DurabilityEnv& env, const MlecCode& code, MlecScheme scheme,
                       RepairMethod method, double lost_stripe_fraction,
                       const CodeModel* network) {
  // An MDS network level loses data exactly when p_n+1 stripes overlap, so
  // R_ALL (which cannot tell which chunks are lost) must declare loss. A
  // non-MDS level keeps two corrections even for R_ALL: the overlap
  // threshold is its min tolerance t (t+1 pools may overlap without loss
  // when t < p_n is set by the worst pattern, not every pattern) and only
  // the undecodable fraction of (t+1)-erasure patterns actually loses.
  const std::size_t tol = network ? network->min_tolerance() : code.network.p;
  const double loss_frac = network ? 1.0 - network->decodable_fraction(tol + 1) : 1.0;
  if (method == RepairMethod::kRepairAll && !network) return 1.0;
  const PoolLayout layout(env.dc, code, scheme);
  const double frac =
      method == RepairMethod::kRepairAll ? 1.0 : std::max(1e-12, lost_stripe_fraction);
  const double joint = std::pow(frac, static_cast<double>(tol + 1)) * loss_frac;
  if (network_placement(scheme) == Placement::kClustered)
    return saturating_loss(joint, layout.network_stripes_per_pool());
  // P(one network stripe touches the t+1 specific pools): racks first,
  // then the pool within each rack.
  const std::size_t R = env.dc.racks;
  const std::size_t W = code.network_width();
  const double rack_cover =
      std::exp(log_choose(static_cast<std::int64_t>(R - (tol + 1)),
                          static_cast<std::int64_t>(W - (tol + 1))) -
               log_choose(static_cast<std::int64_t>(R), static_cast<std::int64_t>(W)));
  const double pool_pick = std::pow(1.0 / static_cast<double>(layout.local_pools_per_rack()),
                                    static_cast<double>(tol + 1));
  return saturating_loss(rack_cover * pool_pick * joint, layout.total_network_stripes());
}

MlecDurabilityResult mlec_durability(const DurabilityEnv& env, const MlecCode& code,
                                     MlecScheme scheme, RepairMethod method,
                                     const std::optional<LocalPoolStats>& stage1,
                                     const CodeModel* network) {
  code.validate();
  if (network != nullptr) {
    MLEC_REQUIRE(network->level().data_chunks() == code.network.k &&
                     network->level().width() == code.network_width(),
                 "network code model must match code.network's data count and width");
  }
  const PoolLayout layout(env.dc, code, scheme);
  MlecDurabilityResult r;
  r.stage1 = stage1.value_or(local_pool_stats(env, code.local, local_placement(scheme),
                                              layout.local_pool_disks()));
  const double cat_rate_hour = r.stage1.cat_rate_per_pool_year / units::kHoursPerYear;
  r.system_cat_rate_per_year =
      r.stage1.cat_rate_per_pool_year * static_cast<double>(layout.total_local_pools());

  // Exposure: how long the pool stays catastrophic.
  r.exposure_hours =
      stage2_exposure_hours(env, code, scheme, method, r.stage1.lost_stripe_fraction);

  // Stage 2: overlap of t+1 catastrophic pools, t = the network level's min
  // tolerance (= p_n for the MDS default; smaller for LRC, whose worst
  // (t+1)-pattern is already fatal).
  const std::size_t tol = network ? network->min_tolerance() : code.network.p;
  double mttdl_sys_hours = 0.0;
  if (network_placement(scheme) == Placement::kClustered) {
    const double mttdl_np = erasure_set_mttdl(code.network_width() - tol, tol, cat_rate_hour,
                                              1.0 / r.exposure_hours,
                                              /*parallel_repair=*/true);
    mttdl_sys_hours = mttdl_np / static_cast<double>(layout.network_pools());
  } else {
    const std::size_t pools = layout.total_local_pools();
    BirthDeathChain chain;
    chain.birth.resize(tol + 1);
    chain.death.resize(tol + 1);
    for (std::size_t i = 0; i <= tol; ++i) {
      chain.birth[i] = static_cast<double>(pools - i) * cat_rate_hour;
      chain.death[i] = static_cast<double>(i) / r.exposure_hours;
    }
    mttdl_sys_hours = chain.mean_time_to_absorption();
  }

  // Coverage: do t+1 overlapping catastrophic pools actually share a lost
  // network stripe — and, for a non-MDS level, is the realized pattern one
  // of the undecodable ones? R_ALL under MDS cannot tell and must declare
  // loss (paper §4.2.3 F#1); the chunk-aware methods thin the loss rate.
  r.coverage =
      stage2_coverage(env, code, scheme, method, r.stage1.lost_stripe_fraction, network);

  r.pdl = -std::expm1(-r.coverage * env.mission_hours / mttdl_sys_hours);
  r.nines = durability_nines(r.pdl);
  return r;
}

SimpleDurability slec_durability(const DurabilityEnv& env, const SlecCode& code,
                                 SlecScheme scheme) {
  code.validate();
  const SlecLayout layout(env.dc, code, scheme);
  const double lambda = env.afr / units::kHoursPerYear;
  SimpleDurability out;

  if (scheme.placement == Placement::kClustered) {
    // Pool = k+p dedicated disks (local: one enclosure; network: one disk
    // per rack — the rebuild is spare-write-bound either way).
    const double repair_hours = single_disk_hours(env, code, Placement::kClustered, code.width());
    const double mttdl = erasure_set_mttdl(code.k, code.p, lambda, 1.0 / repair_hours,
                                           /*parallel_repair=*/true);
    const double rate = static_cast<double>(layout.total_pools()) / mttdl;
    out.pdl = -std::expm1(-rate * env.mission_hours);
  } else {
    WindowModel m;
    m.tolerance = code.p;
    m.lambda_hour = lambda;
    m.detection_hours = env.detection_hours;
    m.chunk_tb = chunk_tb(env.dc);
    const std::size_t w = code.width();
    m.kill_chunks = [w](std::size_t j) { return static_cast<double>(w - j); };
    double rate_hour = 0.0;
    if (scheme.domain == SlecDomain::kLocal) {
      m.units = env.dc.disks_per_enclosure;
      const double stripes = layout.stripes_per_pool();
      const std::size_t units = m.units;
      m.class_stripes = [stripes, units, w](std::size_t j) {
        return stripes * hypergeom_pmf(static_cast<std::int64_t>(units),
                                       static_cast<std::int64_t>(j),
                                       static_cast<std::int64_t>(w),
                                       static_cast<std::int64_t>(j));
      };
      m.bw_tb_h = pool_dp_bw(env, m.units, code.k);
      rate_hour = window_loss_rate_per_hour(m) * static_cast<double>(layout.total_pools());
    } else {
      m.units = env.dc.total_disks();
      const double stripes = layout.total_stripes();
      const std::size_t units = m.units;
      m.class_stripes = [stripes, units, w](std::size_t j) {
        return stripes * hypergeom_pmf(static_cast<std::int64_t>(units),
                                       static_cast<std::int64_t>(j),
                                       static_cast<std::int64_t>(w),
                                       static_cast<std::int64_t>(j));
      };
      m.bw_tb_h = system_dp_bw(env, static_cast<double>(code.k));
      rate_hour = window_loss_rate_per_hour(m);
    }
    out.pdl = -std::expm1(-rate_hour * env.mission_hours);
  }
  out.nines = durability_nines(out.pdl);
  return out;
}

SimpleDurability lrc_durability(const DurabilityEnv& env, const LrcCode& code) {
  code.validate();
  const std::size_t n = env.dc.total_disks();
  const std::size_t w = code.width();
  MLEC_REQUIRE(w <= env.dc.racks, "LRC-Dp needs a rack per chunk");
  const double lambda = env.afr / units::kHoursPerYear;
  const double stripes =
      static_cast<double>(n) * env.dc.chunks_per_disk() / static_cast<double>(w);

  // Risk-class census at f concurrent failures: stripes whose failure
  // pattern has residual exactly f-1 under the maximally-recoverable
  // criterion, i.e. stripes on the fastest path to unrecoverability.
  auto residual_census = [&](std::size_t f, std::size_t residual_target) {
    const double u = static_cast<double>(f) / static_cast<double>(n);
    DiscreteDist residual = DiscreteDist::delta(0);
    for (std::size_t g = 0; g < code.l; ++g) {
      const std::vector<double> probs(code.group_width(), u);
      auto pmf = poisson_binomial_pmf(probs);
      std::vector<double> def(pmf.size() - 1, 0.0);
      def[0] = pmf[0] + pmf[1];
      for (std::size_t k = 2; k < pmf.size(); ++k) def[k - 1] = pmf[k];
      residual = residual.convolve(DiscreteDist(std::move(def)), code.r + 1);
    }
    const std::vector<double> gprobs(code.r, u);
    residual = residual.convolve(
        DiscreteDist(poisson_binomial_pmf(gprobs, static_cast<std::int64_t>(code.r + 1))),
        code.r + 1);
    double mass = residual.pmf(residual_target);
    // Residual 0 includes untouched stripes; the risk class needs a failure.
    if (residual_target == 0)
      mass -= std::pow(1.0 - u, static_cast<double>(code.width()));
    return stripes * std::max(0.0, mass);
  };

  // Minimum concurrent failures that can produce an unrecoverable pattern is
  // r+2; the transition ladder runs through residuals 0..r with a window at
  // each step.
  WindowModel m;
  m.units = n;
  m.tolerance = code.r + 1;
  m.lambda_hour = lambda;
  m.detection_hours = env.detection_hours;
  m.chunk_tb = chunk_tb(env.dc);
  m.class_stripes = [&](std::size_t j) { return residual_census(j, j - 1); };
  // Conservative: any surviving non-absorbed chunk advances the residual.
  m.kill_chunks = [w](std::size_t j) { return static_cast<double>(w - j); };
  m.bw_tb_h = system_dp_bw(env, static_cast<double>(code.group_data_chunks()));

  SimpleDurability out;
  out.pdl = -std::expm1(-window_loss_rate_per_hour(m) * env.mission_hours);
  out.nines = durability_nines(out.pdl);
  return out;
}

SimpleDurability mlec_durability_with_bursts(const DurabilityEnv& env, const MlecCode& code,
                                             MlecScheme scheme, RepairMethod method,
                                             const BurstClimate& climate,
                                             const BurstPdlEngine& engine) {
  MLEC_REQUIRE(climate.bursts_per_year >= 0.0, "burst rate must be non-negative");
  const double pdl_indep = mlec_durability(env, code, scheme, method).pdl;
  double log_survival = std::log1p(-pdl_indep);
  if (climate.bursts_per_year > 0.0) {
    const double pdl_burst = engine.mlec_cell(code, scheme, climate.racks, climate.failures);
    const double bursts = climate.bursts_per_year * env.mission_hours / units::kHoursPerYear;
    if (pdl_burst >= 1.0) {
      log_survival = -std::numeric_limits<double>::infinity();
    } else {
      log_survival += bursts * std::log1p(-pdl_burst);
    }
  }
  SimpleDurability out;
  out.pdl = -std::expm1(log_survival);
  out.nines = durability_nines(out.pdl);
  return out;
}

}  // namespace mlec
