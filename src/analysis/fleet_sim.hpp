// Count-level full-fleet Monte-Carlo simulator — the paper's "measure MLEC
// performance and durability at scale (over 50,000 disks)" capability.
//
// Unlike sim/system_sim.hpp (chunk-exact, small topologies only), FleetSim
// keeps per-pool *counts*: each local pool tracks its concurrent failures,
// rebuild progress, and — for declustered pools — the priority-
// reconstruction critical window, via the same shared state machine
// (sim/pool_state.hpp) that sim/local_pool_sim.hpp runs for one pool.
// Catastrophic pools enter a network-repair exposure whose
// duration depends on the repair method and the realized lost-stripe
// fraction; data loss occurs when p_n+1 catastrophic pools overlap in the
// same network pool (clustered network placement) or in distinct racks
// (declustered), thinned by the stripe-coverage probability for the
// chunk-aware repair methods (the paper's §4.2.3 F#1).
//
// Failure sources merged into one mission timeline: exponential lifetimes
// drawn from `failures.afr` (the Weibull kind is served by dedicated
// engines — see the sim estimator's applicability note), injected bursts,
// and replayed traces.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "gf/code_model.hpp"
#include "placement/codes.hpp"
#include "placement/schemes.hpp"
#include "sim/failure_gen.hpp"
#include "topology/bandwidth.hpp"
#include "topology/topology.hpp"
#include "util/stats.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"

namespace mlec {

struct FleetSimConfig {
  DataCenterConfig dc = DataCenterConfig::paper_default();
  MlecCode code = MlecCode::paper_default();
  MlecScheme scheme = MlecScheme::kCC;
  RepairMethod method = RepairMethod::kRepairMinimum;
  BandwidthConfig bandwidth{};
  FailureDistribution failures{};
  double detection_hours = 0.5;
  double mission_hours = 8766.0;
  bool priority_repair = true;
  /// Network-level code family (gf/code_model.hpp). The default (a
  /// zero-width LevelCode) derives classic RS from code.network; a non-MDS
  /// level must keep code.network's (k, p) arithmetic: same data count,
  /// same width. Drives the loss test (overlap threshold = the model's
  /// min tolerance, thinned by its undecodable-pattern fraction) and the
  /// cross-rack read amplification.
  LevelCode network_level = LevelCode::make_rs({0, 0});
  /// Deterministic events merged into every mission (bursts, trace replay).
  FailureTrace injected_events{};
  /// Stop each mission at its first data loss (PDL estimation). When false,
  /// losses are counted and the mission continues (loss-rate estimation).
  bool stop_on_loss = true;

  void validate() const;
};

struct FleetSimResult {
  std::uint64_t missions = 0;
  std::uint64_t data_loss_missions = 0;
  std::uint64_t data_loss_events = 0;
  std::uint64_t disk_failures = 0;
  std::uint64_t catastrophic_pool_events = 0;
  RunningStats loss_time_hours;
  RunningStats catastrophe_exposure_hours;
  /// Cross-rack repair traffic accumulated over all missions (TB).
  double cross_rack_tb = 0;
  /// Perf counters (DESIGN.md §10): discrete events processed (pool events
  /// plus disk failures), RNG variates drawn (batch refills included), and
  /// arena slot-storage growths after warm-up (0 in steady state).
  std::uint64_t events_processed = 0;
  std::uint64_t rng_draws = 0;
  std::uint64_t arena_allocations = 0;
  /// True when a stop token ended the sweep before all requested missions
  /// ran; `missions` then counts only the completed ones, so the PDL
  /// estimate and its interval remain valid (just wider).
  bool truncated = false;

  double pdl() const {
    return missions ? static_cast<double>(data_loss_missions) / static_cast<double>(missions)
                    : 0.0;
  }
  ProportionEstimate::Interval pdl_interval() const;
  double catastrophes_per_system_year(double mission_hours) const;
};

/// Immutable per-run constants of the fleet simulator: validated config,
/// pool layout/indexing, failure rates, and the finalized PoolRepairModel
/// lookup tables. Built once and shared read-only across every shard of a
/// run (or every shard of a campaign) instead of being recomputed per
/// engine. Opaque: the definition lives in fleet_sim.cpp.
class FleetSimContext;

/// Build (and validate) the shared context for `config`.
std::shared_ptr<const FleetSimContext> make_fleet_context(const FleetSimConfig& config);

/// Run `missions` independent missions. When `pool` is provided, missions
/// are sharded across its workers (deterministic per-shard seeding via
/// Rng::for_substream). A fired `stop` token ends each shard at its next
/// mission boundary and flags the merged result `truncated`.
FleetSimResult simulate_fleet(const FleetSimConfig& config, std::uint64_t missions,
                              std::uint64_t seed, ThreadPool* pool = nullptr,
                              StopToken stop = {});

/// One-mission-at-a-time view of the fleet simulator, exposed for the
/// campaign runner: the engine owns the precomputed per-run constants and
/// per-shard mutable pool state; the caller owns the Rng (so its state can
/// be journaled between missions for bit-identical resume).
class FleetMissionEngine {
 public:
  explicit FleetMissionEngine(const FleetSimConfig& config);
  /// Share an already-built context (campaign shards of one run should all
  /// use this form so the lookup tables exist once per process, not per
  /// shard).
  explicit FleetMissionEngine(std::shared_ptr<const FleetSimContext> context);
  ~FleetMissionEngine();
  FleetMissionEngine(FleetMissionEngine&&) noexcept;
  FleetMissionEngine& operator=(FleetMissionEngine&&) noexcept;

  /// Simulate one mission, accumulating into `into` (missions counter
  /// included).
  void run_mission(Rng& rng, FleetSimResult& into);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mlec
