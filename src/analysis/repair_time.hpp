// Repair-time models (paper §4.1.2 Figure 6 + Table 2, §4.2.2 Figure 9).
//
// Combines the bandwidth solver (topology/bandwidth.hpp) with the traffic
// closed forms (analysis/traffic.hpp) to produce, per MLEC scheme:
//  * the Table 2 rows: repair size and available repair bandwidth for a
//    single-disk failure and a catastrophic local failure (R_ALL);
//  * the Figure 6 rebuild times;
//  * the Figure 9 per-method network/local repair-time split.
#pragma once

#include "analysis/traffic.hpp"
#include "placement/codes.hpp"
#include "placement/schemes.hpp"
#include "topology/bandwidth.hpp"
#include "topology/topology.hpp"

namespace mlec {

/// One row of the paper's Table 2.
struct Table2Row {
  MlecScheme scheme{};
  double disk_size_tb = 0;
  double single_disk_mbps = 0;   ///< available repair BW, single disk failure
  double pool_size_tb = 0;
  double pool_mbps = 0;          ///< available repair BW, whole-pool (R_ALL)
};

class RepairTimeModel {
 public:
  RepairTimeModel(DataCenterConfig dc, BandwidthConfig bw, MlecCode code);

  /// Flow of a local single-disk rebuild (clustered: 19 readers -> 1 spare;
  /// declustered: pool-wide shared read+write).
  RepairFlow single_disk_flow(MlecScheme scheme) const;
  /// Flow of a network-level pool rebuild (clustered: k_n source racks -> 1
  /// target rack; declustered: all racks shared).
  RepairFlow network_pool_flow(MlecScheme scheme) const;
  /// Flow of the *local* stage of R_HYB/R_MIN repairs inside the damaged
  /// pool (clustered pools read k_l surviving chunks and write to the p_l+1
  /// replacement disks; declustered pools use the shared pool flow).
  RepairFlow local_stage_flow(MlecScheme scheme) const;
  /// Flow of the network stage when rebuilding into clustered replacement
  /// disks (R_FCO/R_MIN on local-clustered schemes write to p_l+1 spares).
  RepairFlow network_stage_flow(MlecScheme scheme, RepairMethod method) const;

  Table2Row table2_row(MlecScheme scheme) const;

  /// Figure 6a: hours to rebuild a single failed disk.
  double single_disk_repair_hours(MlecScheme scheme) const;
  /// Figure 6b: hours to rebuild a catastrophic local pool with R_ALL.
  double catastrophic_repair_hours(MlecScheme scheme) const;

  /// Figure 9: network and local repair-time components for a catastrophic
  /// local failure (p_l+1 simultaneous failures) under `method`.
  struct MethodTime {
    double network_hours = 0;
    double local_hours = 0;
    double total_hours() const { return network_hours + local_hours; }
  };
  MethodTime method_repair_time(MlecScheme scheme, RepairMethod method) const;

  const DataCenterConfig& dc() const { return dc_; }
  const BandwidthConfig& bandwidth() const { return bw_.config(); }
  const MlecCode& code() const { return code_; }

 private:
  DataCenterConfig dc_;
  BandwidthModel bw_;
  MlecCode code_;
};

}  // namespace mlec
