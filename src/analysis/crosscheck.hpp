// Cross-method validation harness: run every applicable estimation
// strategy on one Scenario and compare the answers in nines space.
//
// The paper validates its closed forms against simulation (§3 "our Markov
// models and simulation results match"); this harness makes that check a
// first-class, repeatable artifact. Each method contributes a 95% interval
// in nines (analytic methods a point); two methods agree when their
// intervals are within `nines_tolerance` of overlapping. Inapplicable
// methods (applicability() non-empty) are reported but excluded from the
// comparison, as are methods that throw — a crash in one engine must not
// mask a divergence between the others.
//
// Lives above mlec_core (it drives the estimator registry), so it is built
// as its own target (mlec_crosscheck) even though it sits in analysis/.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/scenario.hpp"

namespace mlec {

struct CrosscheckOptions {
  /// Method names to run; empty = every registered estimator. Unknown
  /// names throw PreconditionError.
  std::vector<std::string> methods;
  /// Two methods agree when their nines intervals are at most this far
  /// apart (0 = intervals must overlap exactly).
  double nines_tolerance = 1.0;
  /// Rethrow the first estimator failure instead of recording it in the
  /// row and continuing with the remaining methods.
  bool fail_fast = false;
  /// Execution knobs forwarded to every estimator.
  EstimateOptions estimate;
};

/// One method's row in the comparison.
struct CrosscheckRow {
  std::string method;
  bool applicable = false;
  std::string skip_reason;  ///< applicability() text when !applicable
  bool failed = false;
  std::string error;  ///< what() when the estimator threw
  Estimate estimate;  ///< valid when applicable && !failed

  bool ran() const { return applicable && !failed; }
};

/// A method pair whose nines intervals sit further apart than the
/// tolerance.
struct Divergence {
  std::string method_a;
  std::string method_b;
  double gap_nines = 0.0;  ///< distance between the intervals (may be +inf)
};

struct CrosscheckReport {
  Scenario scenario;
  double nines_tolerance = 1.0;
  std::vector<CrosscheckRow> rows;
  std::vector<Divergence> divergences;

  bool agreed() const { return divergences.empty(); }
  std::size_t methods_run() const;

  /// Human-readable comparison table (plus divergence lines, if any).
  std::string table() const;
  /// One JSON document: scenario identity, per-method estimates,
  /// divergences. Non-finite numbers are emitted as null.
  std::string json() const;
};

/// Run the selected estimators on the scenario and compare pairwise.
CrosscheckReport run_crosscheck(const Scenario& scenario, const CrosscheckOptions& options = {});

}  // namespace mlec
