#include "analysis/traffic.hpp"

#include "util/error.hpp"

namespace mlec {

double lost_chunk_fraction(std::size_t pool_disks, std::size_t width, std::size_t pl,
                           std::size_t failed) {
  MLEC_REQUIRE(width <= pool_disks, "stripe cannot be wider than its pool");
  if (failed <= pl) return 0.0;
  // lint:allow(float-eq): both operands are std::size_t; `width` is a double elsewhere in this file
  if (width == pool_disks) return 1.0;  // clustered: every stripe spans every disk
  // A chunk on a failed disk belongs to a lost stripe iff at least p_l of the
  // other failed disks host the stripe's remaining width-1 chunks. With
  // failed == p_l+1 (the injection case) this means all of them:
  //   prod_{i=0}^{pl-1} (width-1-i)/(pool-1-i).
  MLEC_REQUIRE(failed == pl + 1,
               "general lost fractions are sample-driven; closed form covers the injection case");
  double frac = 1.0;
  for (std::size_t i = 0; i < pl; ++i)
    frac *= static_cast<double>(width - 1 - i) / static_cast<double>(pool_disks - 1 - i);
  return frac;
}

InjectionTraffic catastrophic_injection_traffic(const DataCenterConfig& dc, const MlecCode& code,
                                                MlecScheme scheme, RepairMethod method) {
  dc.validate();
  code.validate();
  const PoolLayout layout(dc, code, scheme);
  const std::size_t pool_disks = layout.local_pool_disks();
  const std::size_t width = code.local_width();
  const std::size_t pl = code.local.p;
  const double kn = static_cast<double>(code.network.k);
  const double kl = static_cast<double>(code.local.k);
  const std::size_t failed = pl + 1;

  const double pool_tb = layout.local_pool_capacity_tb();
  const double failed_tb = static_cast<double>(failed) * dc.disk_capacity_tb;
  const double lost_tb = failed_tb * lost_chunk_fraction(pool_disks, width, pl, failed);

  InjectionTraffic t;
  auto network = [&](double rebuilt_tb) {
    t.network_rebuilt_tb += rebuilt_tb;
    t.network_read_tb += kn * rebuilt_tb;
    t.network_write_tb += rebuilt_tb;
  };
  auto local = [&](double rebuilt_tb) {
    t.local_rebuilt_tb += rebuilt_tb;
    t.local_read_tb += kl * rebuilt_tb;  // k_l reads per stripe ~= per chunk set
    t.local_write_tb += rebuilt_tb;
  };

  switch (method) {
    case RepairMethod::kRepairAll:
      network(pool_tb);
      break;
    case RepairMethod::kRepairFailedOnly:
      network(failed_tb);
      break;
    case RepairMethod::kRepairHybrid:
      network(lost_tb);
      local(failed_tb - lost_tb);
      break;
    case RepairMethod::kRepairMinimum: {
      // Stage 1: one chunk of each lost stripe over the network
      // ((failed - p_l) of its `failed` lost chunks)...
      const double stage1 = lost_tb * static_cast<double>(failed - pl) /
                            static_cast<double>(failed);
      network(stage1);
      // ...stage 2: everything else locally.
      local(failed_tb - stage1);
      break;
    }
  }
  return t;
}

AnnualTraffic slec_network_annual_traffic(const DataCenterConfig& dc, const SlecCode& code,
                                          double afr) {
  dc.validate();
  code.validate();
  AnnualTraffic t;
  t.failures_per_year = static_cast<double>(dc.total_disks()) * afr;
  const double per_failure_tb = dc.disk_capacity_tb * (static_cast<double>(code.k) + 1.0);
  t.cross_rack_tb_per_year = t.failures_per_year * per_failure_tb;
  return t;
}

AnnualTraffic lrc_annual_traffic(const DataCenterConfig& dc, const LrcCode& code, double afr) {
  dc.validate();
  code.validate();
  AnnualTraffic t;
  t.failures_per_year = static_cast<double>(dc.total_disks()) * afr;
  // Weighted mean reads per rebuilt chunk across roles.
  const double width = static_cast<double>(code.width());
  const double group_reads = static_cast<double>(code.group_data_chunks());
  const double reads = (static_cast<double>(code.k + code.l) * group_reads +
                        static_cast<double>(code.r) * static_cast<double>(code.k)) /
                       width;
  t.cross_rack_tb_per_year = t.failures_per_year * dc.disk_capacity_tb * (reads + 1.0);
  return t;
}

AnnualTraffic mlec_annual_traffic(const DataCenterConfig& dc, const MlecCode& code,
                                  MlecScheme scheme, RepairMethod method,
                                  double catastrophe_rate_per_year) {
  AnnualTraffic t;
  t.failures_per_year = catastrophe_rate_per_year;  // only catastrophes cross racks
  t.cross_rack_tb_per_year =
      catastrophe_rate_per_year *
      catastrophic_injection_traffic(dc, code, scheme, method).cross_rack_tb();
  return t;
}

}  // namespace mlec
