#include "analysis/burst_pdl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "math/allocation.hpp"
#include "math/combin.hpp"
#include "math/distribution.hpp"
#include "placement/lrc.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlec {

namespace {

/// Iterate (key, value) pairs as per-key groups in ascending-key order,
/// preserving insertion order within a key; `fn(values)` returning false
/// stops the sweep. Deterministic replacement for hash-map grouping inside
/// the trial loops: group iteration feeds floating-point log-survival sums,
/// so its order must be a pure function of the trial inputs, never of the
/// standard library's hash layout.
template <typename T, typename Fn>
void for_each_group(std::vector<std::pair<std::size_t, T>>& grouped, std::vector<T>& scratch,
                    Fn&& fn) {
  std::stable_sort(grouped.begin(), grouped.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t begin = 0;
  while (begin < grouped.size()) {
    scratch.clear();
    std::size_t end = begin;
    while (end < grouped.size() && grouped[end].first == grouped[begin].first)
      scratch.push_back(grouped[end++].second);
    if (!fn(scratch)) return;
    begin = end;
  }
}

}  // namespace

double saturating_loss(double per_stripe, double stripes) {
  if (per_stripe <= 0.0 || stripes <= 0.0) return 0.0;
  if (per_stripe >= 1.0) return 1.0;
  return -std::expm1(stripes * std::log1p(-per_stripe));
}

double prob_no_pool_reaches(std::size_t pools, std::size_t pool_size, std::size_t failures,
                            std::size_t threshold) {
  MLEC_REQUIRE(pools >= 1 && pool_size >= 1, "pool geometry must be non-empty");
  if (failures == 0) return 1.0;
  if (threshold == 0) return 0.0;
  MLEC_REQUIRE(failures <= pools * pool_size, "more failures than disks");
  // Exact fast paths keep provably-safe cells at literally 0/1 (no floating
  // dust): with fewer failures than the threshold no pool can reach it.
  if (failures < threshold) return 1.0;
  const std::size_t per_pool_max = std::min(pool_size, threshold - 1);
  if (failures > pools * per_pool_max) return 0.0;

  // Ways to place the failures with every pool below the threshold, divided
  // by all ways. Linear-domain DP is safe: values stay below C(n, f) which
  // fits a double for the topologies in scope.
  std::vector<double> ways(failures + 1, 0.0);
  ways[0] = 1.0;
  for (std::size_t pool = 0; pool < pools; ++pool) {
    for (std::size_t j = failures; j + 1 > 0; --j) {
      double acc = 0.0;
      for (std::size_t a = 0; a <= std::min(per_pool_max, j); ++a)
        acc += choose(static_cast<std::int64_t>(pool_size), static_cast<std::int64_t>(a)) *
               ways[j - a];
      ways[j] = acc;
      if (j == 0) break;
    }
  }
  const double total = choose(static_cast<std::int64_t>(pools * pool_size),
                              static_cast<std::int64_t>(failures));
  MLEC_ASSERT(total > 0.0);
  return std::min(1.0, ways[failures] / total);
}

double random_rack_choice_tail(const std::vector<double>& prob, std::size_t total,
                               std::size_t choose_racks, std::size_t threshold) {
  MLEC_REQUIRE(choose_racks <= total, "cannot choose more racks than exist");
  const std::size_t affected = prob.size();
  MLEC_REQUIRE(affected <= total, "more per-rack probabilities than racks");
  if (threshold == 0) return 1.0;
  if (threshold > choose_racks) return 0.0;

  // dp[t][l]: over processed affected racks, combinatorially-weighted
  // probability mass of choosing t of them with l losses (l saturating).
  const std::size_t tmax = std::min(choose_racks, affected);
  std::vector<std::vector<double>> dp(tmax + 1, std::vector<double>(threshold + 1, 0.0));
  dp[0][0] = 1.0;
  std::size_t processed = 0;
  for (double pr : prob) {
    ++processed;
    const std::size_t tcap = std::min(processed, tmax);
    for (std::size_t t = tcap; t + 1 > 0; --t) {
      for (std::size_t l = threshold; l + 1 > 0; --l) {
        double from_choose = 0.0;
        if (t > 0) {
          // Chosen: loss with pr, survive with 1-pr.
          const double stay = dp[t - 1][l] * (1.0 - pr);
          const double lose = l > 0 ? dp[t - 1][l - 1] * pr : 0.0;
          const double lose_sat = l == threshold ? dp[t - 1][l] * pr : 0.0;
          from_choose = stay + lose + lose_sat;
        }
        dp[t][l] = (t <= processed - 1 ? dp[t][l] : 0.0) + from_choose;
        if (l == 0) break;
      }
      if (t == 0) break;
    }
  }

  const std::size_t unaffected = total - affected;
  double numer = 0.0;
  for (std::size_t t = 0; t <= tmax; ++t) {
    if (choose_racks - t > unaffected) continue;
    numer += dp[t][threshold] * choose(static_cast<std::int64_t>(unaffected),
                                       static_cast<std::int64_t>(choose_racks - t));
  }
  const double denom =
      choose(static_cast<std::int64_t>(total), static_cast<std::int64_t>(choose_racks));
  return std::min(1.0, numer / denom);
}

namespace {

/// Per-failure-count lookup of hypergeom_tail_geq(population, f, draws, t).
std::vector<double> tail_table(std::size_t max_f, std::size_t population, std::size_t draws,
                               std::size_t threshold) {
  std::vector<double> tab(max_f + 1, 0.0);
  for (std::size_t f = 0; f <= max_f; ++f)
    tab[f] = hypergeom_tail_geq(static_cast<std::int64_t>(population),
                                static_cast<std::int64_t>(f), static_cast<std::int64_t>(draws),
                                static_cast<std::int64_t>(threshold));
  return tab;
}

std::uint64_t cell_seed(std::uint64_t base, std::size_t x, std::size_t y, std::uint64_t salt) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (x + 1)) ^ (0xc2b2ae3d27d4eb4fULL * (y + 1)) ^
                    salt;
  return splitmix64(s);
}

}  // namespace

BurstPdlEngine::BurstPdlEngine(BurstPdlConfig config) : config_(config) {
  config_.dc.validate();
  MLEC_REQUIRE(config_.trials_per_cell >= 1, "need at least one trial per cell");
}

double BurstPdlEngine::mlec_cell(const MlecCode& code, MlecScheme scheme, std::size_t racks,
                                 std::size_t failures) const {
  const auto& dc = config_.dc;
  MLEC_REQUIRE(racks >= 1 && racks <= dc.racks, "rack count out of range");
  if (failures < racks) return 0.0;  // infeasible burst: every rack needs a failure
  MLEC_REQUIRE(failures <= racks * dc.disks_per_rack(), "more failures than disks");

  const PoolLayout layout(dc, code, scheme);
  const std::size_t D = dc.disks_per_rack();
  const std::size_t width = code.local_width();
  const std::size_t pl1 = code.local.p + 1;
  const std::size_t pn1 = code.network.p + 1;
  const std::size_t net_width = code.network_width();
  const std::size_t pools_per_rack = layout.local_pools_per_rack();
  const bool local_clustered = local_placement(scheme) == Placement::kClustered;
  const bool network_clustered = network_placement(scheme) == Placement::kClustered;
  const std::size_t enclosures = dc.enclosures_per_rack;
  const std::size_t enc_disks = dc.disks_per_enclosure;

  const BurstAllocationSampler alloc(D, racks, failures);
  Rng rng(cell_seed(config_.seed, racks, failures, static_cast<std::uint64_t>(scheme)));

  // Per-failure-count lookups (f <= failures).
  std::vector<double> q_tab;    // specific Cp pool in rack catastrophic
  std::vector<double> rho_tab;  // rack has >= 1 catastrophic Cp pool
  std::vector<double> pi_tab;   // per-stripe loss in a Dp pool with f failures
  // Dp locals, marginalized over how a rack's f failures scatter across its
  // enclosures (hypergeometric): the alignment rarity is integrated
  // analytically instead of sampled, keeping the estimator low-variance.
  std::vector<double> enc_align_tab;  // P(one enclosure holds >= p_l+1 | f)
  std::vector<double> enc_pi_cond_tab;   // E[pi | enclosure >= p_l+1]
  std::vector<double> enc_pi_mean_tab;   // E[pi] over enclosure counts
  if (local_clustered) {
    q_tab = tail_table(failures, D, width, pl1);
    if (!network_clustered) {
      rho_tab.resize(failures + 1);
      for (std::size_t f = 0; f <= failures; ++f)
        rho_tab[f] = 1.0 - prob_no_pool_reaches(pools_per_rack, width, f, pl1);
    }
  } else {
    pi_tab = tail_table(std::min(failures, enc_disks), enc_disks, width, pl1);
    enc_align_tab.assign(failures + 1, 0.0);
    enc_pi_cond_tab.assign(failures + 1, 0.0);
    enc_pi_mean_tab.assign(failures + 1, 0.0);
    for (std::size_t f = 0; f <= failures; ++f) {
      double align = 0.0, mass = 0.0, mean = 0.0;
      for (std::size_t c = 1; c <= std::min(f, enc_disks); ++c) {
        const double pc = hypergeom_pmf(static_cast<std::int64_t>(D),
                                        static_cast<std::int64_t>(f),
                                        static_cast<std::int64_t>(enc_disks),
                                        static_cast<std::int64_t>(c));
        const double pi = pi_tab[std::min(c, pi_tab.size() - 1)];
        mean += pc * pi;
        if (c >= pl1) {
          align += pc;
          mass += pc * pi;
        }
      }
      enc_align_tab[f] = align;
      enc_pi_cond_tab[f] = align > 0.0 ? mass / align : 0.0;
      enc_pi_mean_tab[f] = mean;
    }
  }

  // Network-declustered: per-stripe loss probability when j racks carry one
  // catastrophic clustered pool each.
  std::vector<double> dc_ps_tab;
  if (!network_clustered && local_clustered) {
    dc_ps_tab.resize(racks + 1, 0.0);
    for (std::size_t j = pn1; j <= racks; ++j) {
      const std::vector<double> marked(j, 1.0 / static_cast<double>(pools_per_rack));
      dc_ps_tab[j] = random_rack_choice_tail(marked, dc.racks, net_width, pn1);
    }
  }

  const double stripes_total = layout.total_network_stripes();
  const double stripes_per_pool = layout.network_stripes_per_pool();

  double pdl_sum = 0.0;
  std::vector<double> group_probs;
  std::vector<std::pair<std::size_t, double>> grouped_probs;
  std::vector<std::pair<std::size_t, std::size_t>> grouped_counts;
  std::vector<std::size_t> group_counts_scratch;
  for (std::size_t trial = 0; trial < config_.trials_per_cell; ++trial) {
    const auto counts = alloc.sample(racks, failures, rng);
    const auto rack_ids = rng.sample_without_replacement(dc.racks, racks);

    double pdl_trial = 0.0;
    if (network_clustered && local_clustered) {
      // C/C: per group, each of the pools_per_rack positions loses iff >=
      // p_n+1 of its member pools (one per rack, slot probability q) are
      // catastrophic.
      grouped_probs.clear();
      for (std::size_t i = 0; i < racks; ++i)
        grouped_probs.emplace_back(rack_ids[i] / net_width, q_tab[counts[i]]);
      double log_survival = 0.0;
      for_each_group(grouped_probs, group_probs, [&](const std::vector<double>& probs) {
        const double s = poisson_binomial_tail_geq(probs, static_cast<std::int64_t>(pn1));
        if (s >= 1.0) {
          log_survival = -std::numeric_limits<double>::infinity();
          return false;
        }
        log_survival += static_cast<double>(pools_per_rack) * std::log1p(-s);
        return true;
      });
      pdl_trial = -std::expm1(log_survival);
    } else if (network_clustered && !local_clustered) {
      // C/D: one Dp pool per enclosure; a network pool is (group, enclosure
      // position). Data loss at one position needs >= p_n+1 member racks
      // with a heavy enclosure (>= p_l+1 failures) at that position AND a
      // network stripe whose local stripes are among the lost ones. Both
      // the alignment probability and the conditional stripe loss are
      // computed analytically from the per-rack failure counts.
      grouped_counts.clear();
      for (std::size_t i = 0; i < racks; ++i)
        grouped_counts.emplace_back(rack_ids[i] / net_width, counts[i]);
      double log_survival = 0.0;
      for_each_group(grouped_counts, group_counts_scratch,
                     [&](const std::vector<std::size_t>& group_counts) {
        group_probs.clear();
        double pi_weighted = 0.0, weight = 0.0;
        for (std::size_t f : group_counts) {
          const double a = enc_align_tab[f];
          if (a <= 0.0) continue;
          group_probs.push_back(a);
          pi_weighted += a * enc_pi_cond_tab[f];
          weight += a;
        }
        if (group_probs.size() < pn1) return true;
        const double q = poisson_binomial_tail_geq(group_probs, static_cast<std::int64_t>(pn1));
        if (q <= 0.0) return true;
        const double pi_typ = pi_weighted / weight;
        const double cond_loss =
            saturating_loss(std::pow(pi_typ, static_cast<double>(pn1)), stripes_per_pool);
        const double position_loss = q * cond_loss;
        if (position_loss >= 1.0) {
          log_survival = -std::numeric_limits<double>::infinity();
          return false;
        }
        log_survival += static_cast<double>(enclosures) * std::log1p(-position_loss);
        return true;
      });
      pdl_trial = -std::expm1(log_survival);
    } else if (!network_clustered && local_clustered) {
      // D/C: data loss needs >= p_n+1 racks with a catastrophic pool plus a
      // network stripe covering them; the coverage factor saturates with the
      // realistic stripe count but is kept for small systems.
      std::vector<double> rhos(racks);
      for (std::size_t i = 0; i < racks; ++i) rhos[i] = rho_tab[counts[i]];
      const auto pmf = poisson_binomial_pmf(rhos);
      for (std::size_t j = pn1; j < pmf.size(); ++j)
        pdl_trial += pmf[j] * saturating_loss(dc_ps_tab[j], stripes_total);
    } else {
      // D/D: per-stripe loss probability via the random-rack-choice DP. The
      // DP is multilinear in the per-rack loss probabilities, so the
      // enclosure-count randomness integrates exactly into the marginal
      // E[pi | f_r].
      std::vector<double> mean_pi(racks);
      for (std::size_t i = 0; i < racks; ++i) mean_pi[i] = enc_pi_mean_tab[counts[i]];
      const double ps = random_rack_choice_tail(mean_pi, dc.racks, net_width, pn1);
      pdl_trial = saturating_loss(ps, stripes_total);
    }
    pdl_sum += pdl_trial;
  }
  return pdl_sum / static_cast<double>(config_.trials_per_cell);
}

double BurstPdlEngine::slec_cell(const SlecCode& code, SlecScheme scheme, std::size_t racks,
                                 std::size_t failures) const {
  const auto& dc = config_.dc;
  MLEC_REQUIRE(racks >= 1 && racks <= dc.racks, "rack count out of range");
  if (failures < racks) return 0.0;
  MLEC_REQUIRE(failures <= racks * dc.disks_per_rack(), "more failures than disks");

  const SlecLayout layout(dc, code, scheme);
  const std::size_t D = dc.disks_per_rack();
  const std::size_t width = code.width();
  const std::size_t p1 = code.p + 1;
  const std::size_t enclosures = dc.enclosures_per_rack;
  const std::size_t enc_disks = dc.disks_per_enclosure;

  const BurstAllocationSampler alloc(D, racks, failures);
  Rng rng(cell_seed(config_.seed, racks, failures,
                    0x51ec0000ULL + (static_cast<std::uint64_t>(scheme.domain) << 1) +
                        static_cast<std::uint64_t>(scheme.placement)));

  const double stripes_total = layout.total_stripes();
  const double stripes_per_enclosure =
      stripes_total / static_cast<double>(dc.total_enclosures());

  std::vector<double> rho_tab;       // Loc-Cp: rack has a pool over threshold
  std::vector<double> enc_loss_tab;  // Loc-Dp: E[enclosure data-loss prob | f]
  if (scheme.domain == SlecDomain::kLocal) {
    if (scheme.placement == Placement::kClustered) {
      rho_tab.resize(failures + 1);
      for (std::size_t f = 0; f <= failures; ++f)
        rho_tab[f] = 1.0 - prob_no_pool_reaches(D / width, width, f, p1);
    } else {
      // Marginalize the enclosure count analytically: E over the
      // hypergeometric count c of P(some stripe in the enclosure is lost).
      const auto pi_tab = tail_table(std::min(failures, enc_disks), enc_disks, width, p1);
      enc_loss_tab.assign(failures + 1, 0.0);
      for (std::size_t f = 0; f <= failures; ++f) {
        double loss = 0.0;
        for (std::size_t c = p1; c <= std::min(f, enc_disks); ++c) {
          const double pc = hypergeom_pmf(static_cast<std::int64_t>(D),
                                          static_cast<std::int64_t>(f),
                                          static_cast<std::int64_t>(enc_disks),
                                          static_cast<std::int64_t>(c));
          loss += pc * saturating_loss(pi_tab[std::min(c, pi_tab.size() - 1)],
                                       stripes_per_enclosure);
        }
        enc_loss_tab[f] = std::min(1.0, loss);
      }
    }
  }

  double pdl_sum = 0.0;
  std::vector<double> group_probs;
  std::vector<std::pair<std::size_t, double>> grouped_probs;
  for (std::size_t trial = 0; trial < config_.trials_per_cell; ++trial) {
    const auto counts = alloc.sample(racks, failures, rng);
    const auto rack_ids = rng.sample_without_replacement(dc.racks, racks);

    double pdl_trial = 0.0;
    if (scheme.domain == SlecDomain::kLocal) {
      if (scheme.placement == Placement::kClustered) {
        double log_survival = 0.0;
        for (std::size_t i = 0; i < racks; ++i) log_survival += std::log1p(-rho_tab[counts[i]]);
        pdl_trial = -std::expm1(log_survival);
      } else {
        double log_survival = 0.0;
        for (std::size_t i = 0; i < racks; ++i) {
          const double loss = enc_loss_tab[counts[i]];
          if (loss >= 1.0) {
            log_survival = -std::numeric_limits<double>::infinity();
            break;
          }
          log_survival += static_cast<double>(enclosures) * std::log1p(-loss);
        }
        pdl_trial = -std::expm1(log_survival);
      }
    } else if (scheme.placement == Placement::kClustered) {
      // Net-Cp: pools are disk positions repeated across each group's racks.
      grouped_probs.clear();
      for (std::size_t i = 0; i < racks; ++i)
        grouped_probs.emplace_back(rack_ids[i] / width, static_cast<double>(counts[i]) /
                                                            static_cast<double>(D));
      double log_survival = 0.0;
      for_each_group(grouped_probs, group_probs, [&](const std::vector<double>& probs) {
        const double ppos = poisson_binomial_tail_geq(probs, static_cast<std::int64_t>(p1));
        if (ppos >= 1.0) {
          log_survival = -std::numeric_limits<double>::infinity();
          return false;
        }
        log_survival += static_cast<double>(D) * std::log1p(-ppos);
        return true;
      });
      pdl_trial = -std::expm1(log_survival);
    } else {
      // Net-Dp: each chunk in a random rack; per-rack chunk-loss f/D.
      std::vector<double> probs(racks);
      for (std::size_t i = 0; i < racks; ++i)
        probs[i] = static_cast<double>(counts[i]) / static_cast<double>(D);
      const double ps = random_rack_choice_tail(probs, dc.racks, width, p1);
      pdl_trial = saturating_loss(ps, stripes_total);
    }
    pdl_sum += pdl_trial;
  }
  return pdl_sum / static_cast<double>(config_.trials_per_cell);
}

double BurstPdlEngine::lrc_cell(const LrcCode& code, std::size_t racks,
                                std::size_t failures) const {
  const auto& dc = config_.dc;
  MLEC_REQUIRE(racks >= 1 && racks <= dc.racks, "rack count out of range");
  if (failures < racks) return 0.0;
  MLEC_REQUIRE(failures <= racks * dc.disks_per_rack(), "more failures than disks");
  code.validate();
  const std::size_t width = code.width();
  MLEC_REQUIRE(width <= dc.racks, "LRC-Dp needs a rack per chunk");

  const std::size_t D = dc.disks_per_rack();
  const LrcStripeShape shape(code);
  const BurstAllocationSampler alloc(D, racks, failures);
  Rng rng(cell_seed(config_.seed, racks, failures, 0x19c00000ULL));

  const double total_chunks = static_cast<double>(dc.total_disks()) * dc.chunks_per_disk();
  const double stripes_total = total_chunks / static_cast<double>(width);
  // Inner placements averaged per trial; the unrecoverability evaluation
  // itself is analytic, so a modest count suffices.
  const std::size_t placements = 32;

  double pdl_sum = 0.0;
  std::vector<double> u_all(dc.racks, 0.0);
  for (std::size_t trial = 0; trial < config_.trials_per_cell; ++trial) {
    const auto counts = alloc.sample(racks, failures, rng);
    const auto rack_ids = rng.sample_without_replacement(dc.racks, racks);
    std::fill(u_all.begin(), u_all.end(), 0.0);
    for (std::size_t i = 0; i < racks; ++i)
      u_all[rack_ids[i]] = static_cast<double>(counts[i]) / static_cast<double>(D);

    double ps_sum = 0.0;
    for (std::size_t a = 0; a < placements; ++a) {
      const auto chunk_racks = rng.sample_without_replacement(dc.racks, width);
      // Residual erasures after local-group absorption must exceed r.
      DiscreteDist residual = DiscreteDist::delta(0);
      for (std::size_t g = 0; g < code.l; ++g) {
        std::vector<double> probs;
        for (std::size_t c = 0; c < width; ++c)
          if (shape.group(c) == g) probs.push_back(u_all[chunk_racks[c]]);
        auto pmf = poisson_binomial_pmf(probs);
        // Deficiency max(f-1, 0): fold one failure into the local parity.
        std::vector<double> def(pmf.size() > 1 ? pmf.size() - 1 : 1, 0.0);
        def[0] = pmf[0] + (pmf.size() > 1 ? pmf[1] : 0.0);
        for (std::size_t f = 2; f < pmf.size(); ++f) def[f - 1] = pmf[f];
        residual = residual.convolve(DiscreteDist(std::move(def)), code.r + 1);
      }
      std::vector<double> gprobs;
      for (std::size_t c = 0; c < width; ++c)
        if (shape.role(c) == LrcChunkRole::kGlobalParity) gprobs.push_back(u_all[chunk_racks[c]]);
      residual = residual.convolve(
          DiscreteDist(poisson_binomial_pmf(gprobs, static_cast<std::int64_t>(code.r + 1))),
          code.r + 1);
      ps_sum += residual.tail_geq(code.r + 1);
    }
    pdl_sum += saturating_loss(ps_sum / static_cast<double>(placements), stripes_total);
  }
  return pdl_sum / static_cast<double>(config_.trials_per_cell);
}

template <typename CellFn>
BurstHeatmap BurstPdlEngine::sweep(std::size_t step, std::size_t max_racks,
                                   std::size_t max_failures, ThreadPool* pool,
                                   StopToken stop, CellFn&& cell) const {
  MLEC_REQUIRE(step >= 1, "step must be positive");
  BurstHeatmap map;
  // Always include the smallest rack counts: the paper's hottest column sits
  // at x = p_n+1, which a coarse stride would miss.
  for (std::size_t x = 1; x <= std::min<std::size_t>(max_racks, 5); ++x)
    if (x % step != 0) map.x_labels.push_back(static_cast<int>(x));
  for (std::size_t x = step; x <= max_racks; x += step) map.x_labels.push_back(static_cast<int>(x));
  std::sort(map.x_labels.begin(), map.x_labels.end());
  for (std::size_t y = max_failures; y >= step; y -= step)
    map.y_labels.push_back(static_cast<int>(y));
  map.values.assign(map.y_labels.size(), std::vector<double>(map.x_labels.size(), 0.0));

  const std::size_t cells = map.x_labels.size() * map.y_labels.size();
  auto run_cell = [&](std::size_t i) {
    if (stop.stop_requested()) {
      map.truncated = true;  // benign write race: only ever set to true
      return;
    }
    const std::size_t yi = i / map.x_labels.size();
    const std::size_t xi = i % map.x_labels.size();
    map.values[yi][xi] = cell(static_cast<std::size_t>(map.x_labels[xi]),
                              static_cast<std::size_t>(map.y_labels[yi]));
  };
  if (pool != nullptr) {
    pool->parallel_for(0, cells, run_cell, stop);
  } else {
    for (std::size_t i = 0; i < cells; ++i) run_cell(i);
  }
  return map;
}

BurstHeatmap BurstPdlEngine::mlec_heatmap(const MlecCode& code, MlecScheme scheme,
                                          std::size_t step, std::size_t max_racks,
                                          std::size_t max_failures, ThreadPool* pool,
                                          StopToken stop) const {
  return sweep(step, max_racks, max_failures, pool, std::move(stop),
               [&](std::size_t x, std::size_t y) { return mlec_cell(code, scheme, x, y); });
}

BurstHeatmap BurstPdlEngine::slec_heatmap(const SlecCode& code, SlecScheme scheme,
                                          std::size_t step, std::size_t max_racks,
                                          std::size_t max_failures, ThreadPool* pool,
                                          StopToken stop) const {
  return sweep(step, max_racks, max_failures, pool, std::move(stop),
               [&](std::size_t x, std::size_t y) { return slec_cell(code, scheme, x, y); });
}

BurstHeatmap BurstPdlEngine::lrc_heatmap(const LrcCode& code, std::size_t step,
                                         std::size_t max_racks, std::size_t max_failures,
                                         ThreadPool* pool, StopToken stop) const {
  return sweep(step, max_racks, max_failures, pool, std::move(stop),
               [&](std::size_t x, std::size_t y) { return lrc_cell(code, x, y); });
}

}  // namespace mlec
