// Durable server state: the submission log and the result memo cache.
//
// The store is a plain value object — the EstimationService's mutex is the
// concurrency story — persisted as one JSON document rewritten atomically
// through the journal layer's save_bytes_durable (tmp + fsync + rename +
// fsync parent), so a crash at any instant leaves either the old state or
// the new state on disk, never a torn file. Per-job campaign checkpoints
// live beside it as journal files (journal_base() + ".<method>"), giving a
// restarted daemon both the job ledger and the shard-level resume points:
// load() re-queues anything that was queued or running when the process
// died, and the campaign runner resumes those bit-identically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "server/protocol.hpp"

namespace mlec::server {

/// One submission, live or terminal. `state` is one of "queued",
/// "running", "done", "cancelled".
struct StoredJob {
  std::string id;
  std::string client;
  std::string method;
  Priority priority = Priority::kNormal;
  std::uint64_t seed = 0;
  double rse_target = 0.0;
  std::uint64_t fingerprint = 0;
  std::string scenario_ini;  ///< canonical normal form (format_scenario)
  std::string state = "queued";
  std::optional<Estimate> estimate;  ///< set once state == "done"
};

/// Memo-cache key: isomorphic scenarios share a fingerprint, so two
/// submissions collide here exactly when they must return the same bits.
std::string memo_key(std::uint64_t fingerprint, const std::string& method, std::uint64_t seed,
                     double rse_target);

class Store {
 public:
  /// Empty `state_dir` runs in-memory: save() is a no-op and campaigns get
  /// no checkpoint journals (jobs restart from scratch after preemption).
  explicit Store(std::string state_dir);

  bool persistent() const { return !dir_.empty(); }
  const std::string& state_dir() const { return dir_; }

  /// Read state from <dir>/state.json. Absent file is a fresh store;
  /// malformed content throws (save() is atomic, so damage is real).
  void load();
  /// Atomically rewrite <dir>/state.json. Fault point
  /// `server.store.save.post` fires after the durable write so chaos can
  /// kill the daemon at the instant the new state just landed.
  void save();

  /// Campaign checkpoint base path for a job; the campaign-backed
  /// estimators append ".<method>". Empty when in-memory.
  std::string journal_base(const std::string& job_id) const;
  /// Remove any checkpoint journals a finished job left behind.
  void discard_journals(const std::string& job_id) const;

  StoredJob* find(const std::string& job_id);
  const StoredJob* find(const std::string& job_id) const;

  std::uint64_t next_job = 1;
  std::vector<StoredJob> jobs;
  std::map<std::string, Estimate> memo;
  std::map<std::string, std::uint64_t> counters;

 private:
  std::string state_path() const;

  std::string dir_;
};

}  // namespace mlec::server
