// Fair-share job scheduling for the estimation service.
//
// The policy, in priority order:
//
//  1. class — interactive beats normal beats batch, always.
//  2. fairness within a class — among queued jobs of the best waiting
//     class, pick the one whose client has consumed the fewest tokens
//     (1 token = 1 campaign unit committed on that client's behalf), so a
//     client that queued fifty campaigns cannot starve one that queued
//     two: each completed batch shifts the lighter spender to the front.
//  3. FIFO — within one client, submissions run in arrival order.
//
// Preemption is decided by the service, not here: best_waiting() exposes
// the strongest queued class so the service can stop a running lower-class
// campaign at its next shard checkpoint (StopToken; progress is journaled)
// and re-queue it. The scheduler itself is a plain value object guarded by
// the service's mutex.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace mlec::server {

struct QueuedJob {
  std::string id;
  std::string client;
  Priority priority = Priority::kNormal;
  std::uint64_t arrival = 0;  ///< assigned by enqueue(); FIFO tiebreak
};

class FairShareScheduler {
 public:
  void enqueue(QueuedJob job);
  /// Next job under the class -> least-spent-client -> FIFO policy.
  std::optional<QueuedJob> pop();
  /// Remove a queued job (cancellation); false when not queued.
  bool remove(const std::string& job_id);

  /// Record `tokens` units of work done on behalf of `client`.
  void charge(const std::string& client, std::uint64_t tokens);
  std::uint64_t spent(const std::string& client) const;
  const std::map<std::string, std::uint64_t>& spent_by_client() const { return spent_; }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  /// Strongest class currently waiting (preemption input); nullopt when
  /// the queue is empty.
  std::optional<Priority> best_waiting() const;

 private:
  std::vector<QueuedJob> queue_;
  std::map<std::string, std::uint64_t> spent_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace mlec::server
