#include "server/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mlec::json {

namespace {

[[noreturn]] void fail(const std::string& what) { throw Error("json: " + what); }

const char* kind_name(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_mismatch(Value::Kind want, Value::Kind got) {
  fail(std::string("expected ") + kind_name(want) + ", got " + kind_name(got));
}

class Parser {
 public:
  Parser(std::string_view text, const ParseLimits& limits) : text_(text), limits_(limits) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after value");
    return v;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  void count_node() {
    if (++nodes_ > limits_.max_nodes) fail("node limit exceeded");
  }

  Value parse_value(std::size_t depth) {
    if (depth > limits_.max_depth) fail("nesting too deep");
    skip_ws();
    count_node();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't': return parse_literal("true", Value(true));
      case 'f': return parse_literal("false", Value(false));
      case 'n': return parse_literal("null", Value());
      default: return parse_number();
    }
  }

  Value parse_literal(std::string_view word, Value value) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
    return value;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                               c == '+' || c == '-';
      if (!number_char) break;
      ++pos_;
    }
    const std::size_t len = pos_ - start;
    if (len == 0 || len > 64) fail("malformed number");
    char buf[80];
    text_.copy(buf, len, start);
    buf[len] = '\0';
    // strtod is laxer than the JSON grammar ("+1", "01", ".5", "1.", hex);
    // walk the token against the grammar before trusting its value.
    const char* g = buf;
    if (*g == '-') ++g;
    if (*g == '0') ++g;
    else if (*g >= '1' && *g <= '9')
      while (*g >= '0' && *g <= '9') ++g;
    else
      fail("malformed number");
    if (*g == '.') {
      ++g;
      if (*g < '0' || *g > '9') fail("malformed number");
      while (*g >= '0' && *g <= '9') ++g;
    }
    if (*g == 'e' || *g == 'E') {
      ++g;
      if (*g == '+' || *g == '-') ++g;
      if (*g < '0' || *g > '9') fail("malformed number");
      while (*g >= '0' && *g <= '9') ++g;
    }
    if (g != buf + len) fail("malformed number");
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + len) fail("malformed number");
    if (!std::isfinite(v)) fail("number out of range");
    return Value(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (out.size() > limits_.max_string_bytes) fail("string too long");
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': append_codepoint(out); break;
          default: fail("bad escape");
        }
        continue;
      }
      // Raw bytes >= 0x20 pass through verbatim — non-UTF8 payloads are
      // carried, not validated; control bytes must be escaped per JSON.
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte in string");
      out += c;
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  void append_codepoint(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a low one
      if (!eat('\\') || !eat('u')) fail("unpaired surrogate");
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (eat(']')) return arr;
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (eat(']')) return arr;
      expect(',');
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (eat('}')) return obj;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eat('}')) return obj;
      expect(',');
    }
  }

  std::string_view text_;
  const ParseLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t nodes_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void dump_value(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out += "null";
      return;
    case Value::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Value::Kind::kNumber: {
      const double d = v.as_number();
      if (!std::isfinite(d)) fail("cannot serialize non-finite number");
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
      return;
    }
    case Value::Kind::kString:
      dump_string(v.as_string(), out);
      return;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, item] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(item, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_mismatch(Kind::kBool, kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_mismatch(Kind::kNumber, kind_);
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_mismatch(Kind::kString, kind_);
  return string_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_mismatch(Kind::kArray, kind_);
  return array_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_mismatch(Kind::kObject, kind_);
  return object_;
}

const Value* Value::get(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Value& Value::set(const std::string& key, Value value) {
  if (kind_ != Kind::kObject) kind_mismatch(Kind::kObject, kind_);
  return object_[key] = std::move(value);
}

std::string Value::str_or(const std::string& key, const std::string& fallback) const {
  const Value* v = get(key);
  return v == nullptr ? fallback : v->as_string();
}

double Value::num_or(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return v == nullptr ? fallback : v->as_number();
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = get(key);
  return v == nullptr ? fallback : v->as_bool();
}

void Value::push_back(Value value) {
  if (kind_ != Kind::kArray) kind_mismatch(Kind::kArray, kind_);
  array_.push_back(std::move(value));
}

Value parse(std::string_view text, const ParseLimits& limits) {
  if (text.size() > limits.max_bytes) fail("input too large");
  return Parser(text, limits).run();
}

std::string dump(const Value& value) {
  std::string out;
  dump_value(value, out);
  return out;
}

std::string u64_to_string(std::uint64_t v) { return std::to_string(v); }

std::uint64_t u64_from_string(const std::string& text) {
  if (text.empty() || text.size() > 20) fail("malformed u64");
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') fail("malformed u64");
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) fail("u64 out of range");
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace mlec::json
