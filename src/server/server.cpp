#include "server/server.hpp"

#include <cstdio>
#include <utility>

#include "util/error.hpp"
#include "util/fault.hpp"

#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <memory>

namespace mlec::server {

namespace {

json::Value job_terminal_event(const StoredJob& job) {
  json::Value v = json::Value::object();
  if (job.state == "done") v.set("event", "done");
  else if (job.state == "cancelled") v.set("event", "cancelled");
  else if (job.state == "failed") v.set("event", "failed");
  else v.set("event", "interrupted");  // daemon shut down mid-watch
  v.set("job", job.id);
  if (job.estimate) v.set("estimate", estimate_to_json(*job.estimate));
  return v;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; the read side will notice
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

Server::Server(EstimationService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MLEC_REQUIRE(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  MLEC_REQUIRE(::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) == 1,
               "bad listen address '" + config_.host + "'");
  MLEC_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
               "cannot bind " + config_.host + ":" + std::to_string(config_.port));
  MLEC_REQUIRE(::listen(listen_fd_, 16) == 0, "listen() failed");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  // Process-wide disposition set once at server start, before connection
  // threads exist; never changed again.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  ::signal(SIGPIPE, SIG_IGN);  // dropped clients must not kill the daemon
  stopping_.store(false);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    try {
      MLEC_FAULT_POINT("server.accept.pre");
    } catch (const std::exception& e) {
      // Survival contract: a transient accept-path failure is logged and
      // the daemon keeps listening.
      std::fprintf(stderr, "mlecd: accept error (continuing): %s\n", e.what());
      continue;
    }
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      continue;
    }
    MutexLock lock(mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool keep = true;
  while (keep && !stopping_.load()) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      keep = handle_request(fd, line);
      continue;
    }
    if (buffer.size() > kMaxRequestBytes) {
      send_line(fd, error_response("request line exceeds " +
                                   std::to_string(kMaxRequestBytes) + " bytes"));
      break;
    }
    const auto n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::shutdown(fd, SHUT_RDWR);
}

void Server::send_line(int fd, const json::Value& value) {
  write_all(fd, json::dump(value) + "\n");
}

bool Server::handle_request(int fd, const std::string& line) {
  json::Value request = json::Value::object();
  try {
    MLEC_FAULT_POINT("server.request.parse");
    json::ParseLimits limits;
    limits.max_bytes = kMaxRequestBytes;
    request = json::parse(line, limits);
    MLEC_REQUIRE(request.is_object(), "request must be a JSON object");
  } catch (const std::exception& e) {
    send_line(fd, error_response(e.what()));
    return true;
  }

  try {
    const std::string op = request.str_or("op", "");
    if (op == "ping") {
      send_line(fd, ok_response());
      return true;
    }
    if (op == "submit") {
      SubmitRequest req;
      req.scenario_ini = request.str_or("scenario_ini", "");
      req.method = request.str_or("method", "dp");
      req.client = request.str_or("client", "anonymous");
      req.priority = parse_priority(request.str_or("priority", "normal"));
      req.rse_target = request.num_or("rse_target", 0.0);
      if (const json::Value* seed = request.get("seed"))
        req.seed = json::u64_from_string(seed->as_string());
      const SubmitOutcome outcome = service_.submit(req);

      json::Value resp = ok_response();
      resp.set("job", outcome.job_id);
      resp.set("fingerprint", json::u64_to_string(outcome.fingerprint));
      resp.set("cached", outcome.cached);
      resp.set("joined", outcome.joined);
      if (outcome.estimate) resp.set("estimate", estimate_to_json(*outcome.estimate));
      if (!outcome.cached && request.bool_or("wait", false)) {
        const StoredJob job = service_.wait(outcome.job_id);
        resp.set("state", job.state);
        if (job.estimate) resp.set("estimate", estimate_to_json(*job.estimate));
      }
      send_line(fd, resp);
      return true;
    }
    if (op == "status") {
      const ServiceStatus status = service_.status();
      json::Value resp = ok_response();
      json::Value jobs = json::Value::array();
      for (const ServiceStatus::Job& job : status.jobs) {
        json::Value j = json::Value::object();
        j.set("id", job.id);
        j.set("client", job.client);
        j.set("method", job.method);
        j.set("priority", job.priority);
        j.set("state", job.state);
        j.set("units_done", json::u64_to_string(job.units_done));
        j.set("units_total", json::u64_to_string(job.units_total));
        j.set("rse", job.rse);
        jobs.push_back(std::move(j));
      }
      resp.set("jobs", std::move(jobs));
      json::Value counters = json::Value::object();
      for (const auto& [key, count] : status.counters)
        counters.set(key, json::u64_to_string(count));
      resp.set("counters", std::move(counters));
      json::Value spent = json::Value::object();
      for (const auto& [client, tokens] : status.spent_by_client)
        spent.set(client, json::u64_to_string(tokens));
      resp.set("spent_by_client", std::move(spent));
      send_line(fd, resp);
      return true;
    }
    if (op == "watch") {
      const std::string job_id = request.str_or("job", "");
      // Progress events arrive from shard threads while this thread blocks
      // in wait(); the write mutex keeps frames whole. Terminal events are
      // sent from the ledger after wait() (not via the sink) so the stream
      // always ends with exactly one terminal line.
      auto write_mutex = std::make_shared<Mutex>();
      const std::uint64_t token = service_.subscribe(
          job_id, [this, fd, write_mutex](const json::Value& event) {
            const std::string kind = event.str_or("event", "");
            if (kind != "progress" && kind != "requeued") return;
            MutexLock guard(*write_mutex);
            send_line(fd, event);
          });
      const StoredJob job = service_.wait(job_id);
      if (token != 0) service_.unsubscribe(token);
      MutexLock guard(*write_mutex);
      send_line(fd, job_terminal_event(job));
      return true;
    }
    if (op == "cancel") {
      const bool cancelled = service_.cancel(request.str_or("job", ""));
      json::Value resp = ok_response();
      resp.set("cancelled", cancelled);
      send_line(fd, resp);
      return true;
    }
    if (op == "shutdown") {
      send_line(fd, ok_response());
      {
        MutexLock lock(mutex_);
        shutdown_requested_ = true;
      }
      cv_.notify_all();
      return false;
    }
    send_line(fd, error_response("unknown op '" + op + "'"));
    return true;
  } catch (const std::exception& e) {
    send_line(fd, error_response(e.what()));
    return true;
  }
}

void Server::wait_shutdown() {
  MutexLock lock(mutex_);
  // Explicit wait loop so the analysis sees the guarded read under the lock.
  while (!shutdown_requested_ && !stopping_.load()) cv_.wait(mutex_);
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // Second call (destructor after explicit stop): threads already joined.
  }
  // exchange() both invalidates the fd the acceptor reads and makes a
  // second stop() (destructor after explicit stop) a no-op close.
  const int listener = listen_fd_.exchange(-1);
  if (listener >= 0) {
    ::shutdown(listener, SHUT_RDWR);
    ::close(listener);
  }
  {
    MutexLock lock(mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    shutdown_requested_ = true;
  }
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  std::vector<int> fds;
  {
    MutexLock lock(mutex_);
    connections.swap(connections_);
    fds.swap(connection_fds_);
  }
  for (std::thread& conn : connections)
    if (conn.joinable()) conn.join();
  for (const int fd : fds) ::close(fd);
}

}  // namespace mlec::server

#else  // _WIN32

namespace mlec::server {

Server::Server(EstimationService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}
Server::~Server() = default;
void Server::start() { throw PreconditionError("mlecd requires POSIX sockets"); }
void Server::wait_shutdown() {}
void Server::stop() {}

}  // namespace mlec::server

#endif
