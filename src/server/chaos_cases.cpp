#include "server/chaos_cases.hpp"

#include <algorithm>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/spec_io.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace mlec::server {

namespace {

struct ScopedFaults {
  explicit ScopedFaults(const std::string& spec) { fault::configure(spec); }
  ~ScopedFaults() { fault::clear(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

ChaosCaseResult make_result(const std::string& name, const std::string& faults) {
  ChaosCaseResult r;
  r.name = name;
  r.faults = faults;
  return r;
}

/// Thread-free service configuration shared by baseline, crash, and resume
/// runs — identical knobs are what make the estimates comparable bit for
/// bit (shards and checkpoint cadence are part of the campaign identity).
ServiceConfig chaos_service_config(const Scenario& scenario, const ChaosOptions& options,
                                   const std::string& state_dir) {
  ServiceConfig config;
  config.state_dir = state_dir;
  config.pool = nullptr;
  config.shards = std::max<std::size_t>(1, options.shards);
  config.checkpoint_every = std::max<std::uint64_t>(1, scenario.missions / 8);
  return config;
}

SubmitRequest chaos_submit(const Scenario& scenario) {
  SubmitRequest request;
  request.scenario_ini = format_scenario(scenario);
  request.method = "sim";
  request.client = "chaos";
  return request;
}

/// Submit + drain + fetch the finished estimate on a fresh service.
Estimate run_service_once(const Scenario& scenario, const ChaosOptions& options,
                          const std::string& state_dir) {
  EstimationService service(chaos_service_config(scenario, options, state_dir));
  const SubmitOutcome outcome = service.submit(chaos_submit(scenario));
  service.drain();
  const StoredJob job = service.wait(outcome.job_id);
  MLEC_REQUIRE(job.state == "done" && job.estimate.has_value(),
               "chaos: baseline service run did not finish (state " + job.state + ")");
  return *job.estimate;
}

#ifndef _WIN32
/// Fork a child that runs the service under `schedule` and must die at the
/// injected crash (exit 42); then restart the service on the same state
/// dir in the parent, drain the recovered queue, and require the resumed
/// estimate bit-identical to the uninterrupted baseline.
ChaosCaseResult run_server_crash_case(const Scenario& scenario, const ChaosOptions& options,
                                      const std::string& workdir, const std::string& name,
                                      const std::string& schedule) {
  ChaosCaseResult result = make_result(name, schedule);
  Estimate baseline;
  try {
    baseline = run_service_once(scenario, options, workdir + "/" + name + "-baseline");
  } catch (const std::exception& e) {
    result.detail = std::string("baseline run failed: ") + e.what();
    return result;
  }

  const std::string crash_dir = workdir + "/" + name + "-crash";
  const pid_t pid = ::fork();
  if (pid == 0) {
    try {
      fault::configure(schedule);
      EstimationService service(chaos_service_config(scenario, options, crash_dir));
      service.submit(chaos_submit(scenario));
      service.drain();
      std::_Exit(64);  // survived: the fault never fired
    } catch (...) {
      std::_Exit(65);  // the crash action must not surface as an exception
    }
  }
  MLEC_REQUIRE(pid > 0, "chaos: fork failed");
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 42) {
    result.detail =
        "child did not die at the fault point (status " + std::to_string(status) + ")";
    return result;
  }

  try {
    // Restart: recovery re-queues the in-flight submission; the campaign
    // journal carries the shard checkpoints.
    EstimationService service(chaos_service_config(scenario, options, crash_dir));
    service.drain();
    const Estimate* resumed = nullptr;
    for (const StoredJob& job : service.store().jobs)
      if (job.state == "done" && job.estimate) resumed = &*job.estimate;
    if (resumed == nullptr) {
      result.detail = "restarted service did not finish the recovered job";
      return result;
    }
    const std::string diff = diff_estimates(*resumed, baseline);
    if (!diff.empty()) {
      result.detail = "resumed estimate not bit-identical: " + diff;
      return result;
    }
    result.passed = true;
    result.detail = "daemon killed, restart resumed bit-identical";
  } catch (const std::exception& e) {
    result.detail = std::string("restart threw: ") + e.what();
  }
  return result;
}
#endif

/// Shared fixture for the TCP survival cases: in-memory service + real
/// listener on an ephemeral port.
struct DaemonFixture {
  EstimationService service;
  Server server;

  DaemonFixture()
      : service([] {
          ServiceConfig config;
          config.pool = nullptr;
          config.runners = 1;
          config.shards = 1;
          return config;
        }()),
        server(service, ServerConfig{}) {
    service.start();
    server.start();
  }
  ~DaemonFixture() {
    server.stop();
    service.stop();
  }
};

ChaosCaseResult run_request_parse_case(const Scenario&, const ChaosOptions&,
                                       const std::string&) {
  const std::string schedule = "server.request.parse=throw@hit=1";
  ChaosCaseResult result = make_result("server-request-parse-survives", schedule);
  try {
    DaemonFixture daemon;
    Client client("127.0.0.1", daemon.server.port());
    json::Value ping = json::Value::object();
    ping.set("op", "ping");
    json::Value faulted = json::Value::object();
    {
      ScopedFaults faults(schedule);
      faulted = client.request(ping);
    }
    const json::Value healthy = client.request(ping);
    if (faulted.bool_or("ok", true)) {
      result.detail = "injected parse failure did not produce an error response";
    } else if (!healthy.bool_or("ok", false)) {
      result.detail = "connection did not survive the injected parse failure";
    } else {
      result.passed = true;
      result.detail = "parse fault answered with an error; next request served";
    }
  } catch (const std::exception& e) {
    result.detail = std::string("threw: ") + e.what();
  }
  return result;
}

ChaosCaseResult run_accept_fault_case(const Scenario&, const ChaosOptions&,
                                      const std::string&) {
  const std::string schedule = "server.accept.pre=throw@hit=1";
  ChaosCaseResult result = make_result("server-accept-survives", schedule);
  try {
    DaemonFixture daemon;
    json::Value ping = json::Value::object();
    ping.set("op", "ping");
    ScopedFaults faults(schedule);
    // First connection arms the loop past its blocking accept; the fault
    // fires on the following iteration and must only be logged.
    Client first("127.0.0.1", daemon.server.port());
    const json::Value a = first.request(ping);
    Client second("127.0.0.1", daemon.server.port());
    const json::Value b = second.request(ping);
    if (!a.bool_or("ok", false) || !b.bool_or("ok", false)) {
      result.detail = "a connection failed around the injected accept fault";
    } else if (fault::hit_count("server.accept.pre") == 0) {
      result.detail = "accept fault point never hit";
    } else {
      result.passed = true;
      result.detail = "accept fault logged; later connections served";
    }
  } catch (const std::exception& e) {
    result.detail = std::string("threw: ") + e.what();
  }
  return result;
}

}  // namespace

std::vector<ChaosExtraCase> fork_chaos_cases() {
  std::vector<ChaosExtraCase> cases;
#ifndef _WIN32
  cases.push_back({"crash-server-mid-campaign",
                   [](const Scenario& sc, const ChaosOptions& opt, const std::string& dir) {
                     return run_server_crash_case(sc, opt, dir, "crash-server-mid-campaign",
                                                  "campaign.checkpoint.post=crash@hit=2");
                   }});
  cases.push_back({"crash-server-store-save",
                   [](const Scenario& sc, const ChaosOptions& opt, const std::string& dir) {
                     return run_server_crash_case(sc, opt, dir, "crash-server-store-save",
                                                  "server.store.save.post=crash@hit=2");
                   }});
#endif
  return cases;
}

std::vector<ChaosExtraCase> late_chaos_cases() {
  return {{"server-request-parse-survives", run_request_parse_case},
          {"server-accept-survives", run_accept_fault_case}};
}

}  // namespace mlec::server
