#include "server/client.hpp"

#include "server/protocol.hpp"
#include "util/error.hpp"

#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mlec::server {

Client::Client(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MLEC_REQUIRE(fd_ >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  MLEC_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "bad daemon address '" + host + "'");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw PreconditionError("cannot connect to mlecd at " + host + ":" +
                            std::to_string(port) + " (is the daemon running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const json::Value& value) {
  const std::string line = json::dump(value) + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const auto n = ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    MLEC_REQUIRE(n > 0, "connection to mlecd lost while sending");
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_line() {
  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    MLEC_REQUIRE(buffer_.size() <= kMaxRequestBytes, "oversized frame from mlecd");
    const auto n = ::recv(fd_, chunk, sizeof chunk, 0);
    MLEC_REQUIRE(n > 0, "connection to mlecd closed");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

json::Value Client::request(const json::Value& req) {
  send_line(req);
  return json::parse(read_line());
}

void Client::stream(const json::Value& req,
                    const std::function<bool(const json::Value&)>& on_event) {
  send_line(req);
  for (;;) {
    std::string line;
    try {
      line = read_line();
    } catch (const std::exception&) {
      return;  // server closed the stream
    }
    if (!on_event(json::parse(line))) return;
  }
}

}  // namespace mlec::server

#else  // _WIN32

namespace mlec::server {

Client::Client(const std::string&, int) {
  throw PreconditionError("mlecd client requires POSIX sockets");
}
Client::~Client() = default;
void Client::send_line(const json::Value&) {}
std::string Client::read_line() { return {}; }
json::Value Client::request(const json::Value&) { return {}; }
void Client::stream(const json::Value&, const std::function<bool(const json::Value&)>&) {}

}  // namespace mlec::server

#endif
