#include "server/service.hpp"

#include <algorithm>
#include <utility>

#include "core/spec_io.hpp"
#include "util/error.hpp"
#include "util/ini.hpp"

namespace mlec::server {

namespace {

bool terminal_state(const std::string& state) {
  return state == "done" || state == "cancelled" || state == "failed";
}

json::Value job_event(const char* event, const std::string& job_id) {
  json::Value v = json::Value::object();
  v.set("event", event);
  v.set("job", job_id);
  return v;
}

/// Terminal event for a ledger entry (replayed to late subscribers).
json::Value terminal_event(const StoredJob& job) {
  json::Value v = job_event(job.state == "done"       ? "done"
                            : job.state == "cancelled" ? "cancelled"
                                                       : "failed",
                            job.id);
  if (job.estimate) v.set("estimate", estimate_to_json(*job.estimate));
  return v;
}

}  // namespace

EstimationService::EstimationService(ServiceConfig config)
    : config_(std::move(config)), store_(config_.state_dir) {
  MLEC_REQUIRE(config_.shards > 0, "service shard count must be positive");
  MutexLock lock(mutex_);
  store_.load();
  recover_locked();
}

EstimationService::~EstimationService() { stop(); }

void EstimationService::recover_locked() {
  bool changed = false;
  for (StoredJob& job : store_.jobs) {
    if (terminal_state(job.state)) continue;
    // Queued or running when the previous process died: back to the queue.
    // The campaign journal (if any) carries the shard checkpoints, so the
    // resumed run completes bit-identical to an uninterrupted one.
    job.state = "queued";
    LiveJob& live = live_[job.id];
    live.priority = job.priority;
    live.client = job.client;
    scheduler_.enqueue({job.id, job.client, job.priority, 0});
    bump_locked("recovered");
    changed = true;
  }
  if (changed) store_.save();
}

void EstimationService::bump_locked(const std::string& counter) { ++store_.counters[counter]; }

SubmitOutcome EstimationService::submit(const SubmitRequest& request) {
  // Canonicalize outside the lock: parse strictly, load, re-serialize.
  const IniFile ini = IniFile::parse_string(request.scenario_ini);
  SpecParsePolicy policy;
  policy.strict = true;
  Scenario scenario = load_scenario(ini, policy);
  if (request.seed) scenario.seed = *request.seed;
  scenario.validate();

  const Estimator* estimator = find_estimator(request.method);
  MLEC_REQUIRE(estimator != nullptr, "unknown method '" + request.method + "'");
  const std::string why_not = estimator->applicability(scenario);
  MLEC_REQUIRE(why_not.empty(), "method " + request.method + " not applicable: " + why_not);

  const std::uint64_t fingerprint = scenario_fingerprint(scenario);
  const std::string canonical = format_scenario(scenario);
  const std::string key = memo_key(fingerprint, request.method, scenario.seed,
                                   request.rse_target);

  SubmitOutcome outcome;
  outcome.fingerprint = fingerprint;

  MutexLock lock(mutex_);
  bump_locked("submissions");

  if (const auto hit = store_.memo.find(key); hit != store_.memo.end()) {
    bump_locked("cache_hits");
    outcome.cached = true;
    outcome.estimate = hit->second;
    for (const StoredJob& job : store_.jobs) {
      if (job.state == "done" && job.fingerprint == fingerprint &&
          job.method == request.method && job.seed == scenario.seed &&
          job.rse_target == request.rse_target) {
        outcome.job_id = job.id;
        break;
      }
    }
    store_.save();
    return outcome;
  }

  for (const StoredJob& job : store_.jobs) {
    if (terminal_state(job.state)) continue;
    if (job.fingerprint == fingerprint && job.method == request.method &&
        job.seed == scenario.seed && job.rse_target == request.rse_target) {
      bump_locked("joined");
      outcome.job_id = job.id;
      outcome.joined = true;
      store_.save();
      return outcome;
    }
  }

  StoredJob job;
  job.id = "j-" + json::u64_to_string(store_.next_job++);
  job.client = request.client;
  job.method = request.method;
  job.priority = request.priority;
  job.seed = scenario.seed;
  job.rse_target = request.rse_target;
  job.fingerprint = fingerprint;
  job.scenario_ini = canonical;
  job.state = "queued";
  outcome.job_id = job.id;
  store_.jobs.push_back(std::move(job));

  LiveJob& live = live_[outcome.job_id];
  live.priority = request.priority;
  live.client = request.client;
  scheduler_.enqueue({outcome.job_id, request.client, request.priority, 0});
  store_.save();
  maybe_preempt_locked(request.priority);
  cv_.notify_all();
  return outcome;
}

void EstimationService::maybe_preempt_locked(Priority incoming) {
  // Only worth it when no runner is free to pick the arrival up directly.
  if (!runners_.empty() && busy_ < runners_.size()) return;
  std::string victim;
  Priority worst = incoming;
  for (auto& [id, live] : live_) {
    if (!live.running || live.cancel_requested || live.preempt_requested) continue;
    if (live.priority > worst) {
      worst = live.priority;
      victim = id;
    }
  }
  if (victim.empty()) return;
  LiveJob& live = live_.at(victim);
  live.preempt_requested = true;
  live.stop.request_stop();
  bump_locked("preemptions");
}

bool EstimationService::cancel(const std::string& job_id) {
  std::vector<EventSink> sinks;
  json::Value event = json::Value::object();
  {
    MutexLock lock(mutex_);
    StoredJob* job = store_.find(job_id);
    if (job == nullptr || terminal_state(job->state)) return false;
    auto live = live_.find(job_id);
    if (live != live_.end() && live->second.running) {
      // The campaign observes the token at its next batch boundary; the
      // runner finishes the transition (state, events, store) itself.
      live->second.cancel_requested = true;
      live->second.stop.request_stop();
      return true;
    }
    scheduler_.remove(job_id);
    job->state = "cancelled";
    bump_locked("cancelled");
    store_.discard_journals(job_id);
    store_.save();
    live_.erase(job_id);
    event = job_event("cancelled", job_id);
    sinks = sinks_for_locked(job_id);
    cv_.notify_all();
  }
  for (const EventSink& sink : sinks) sink(event);
  return true;
}

StoredJob EstimationService::wait(const std::string& job_id) {
  MutexLock lock(mutex_);
  MLEC_REQUIRE(store_.find(job_id) != nullptr, "unknown job '" + job_id + "'");
  // Explicit wait loop (not a predicate lambda): the analysis checks the
  // predicate's guarded reads in this scope, where the lock is visibly held.
  for (;;) {
    if (stopping_) break;  // shutdown: waiters get the current state
    const StoredJob* job = store_.find(job_id);
    if (job == nullptr || terminal_state(job->state)) break;
    cv_.wait(mutex_);
  }
  const StoredJob* job = store_.find(job_id);
  MLEC_REQUIRE(job != nullptr, "job '" + job_id + "' disappeared");
  return *job;
}

ServiceStatus EstimationService::status() const {
  MutexLock lock(mutex_);
  ServiceStatus out;
  out.counters = store_.counters;
  out.spent_by_client = scheduler_.spent_by_client();
  for (const StoredJob& job : store_.jobs) {
    ServiceStatus::Job j;
    j.id = job.id;
    j.client = job.client;
    j.method = job.method;
    j.priority = to_string(job.priority);
    j.state = job.state;
    if (const auto live = live_.find(job.id); live != live_.end()) {
      j.units_done = live->second.units_done;
      j.units_total = live->second.units_total;
      j.rse = live->second.rse;
    }
    out.jobs.push_back(std::move(j));
  }
  return out;
}

std::uint64_t EstimationService::subscribe(const std::string& job_id, EventSink sink) {
  json::Value replay = json::Value::object();
  bool replay_now = false;
  std::uint64_t token = 0;
  {
    MutexLock lock(mutex_);
    const StoredJob* job = store_.find(job_id);
    MLEC_REQUIRE(job != nullptr, "unknown job '" + job_id + "'");
    if (terminal_state(job->state)) {
      replay = terminal_event(*job);
      replay_now = true;
    } else {
      token = next_sink_++;
      sinks_.emplace(token, std::make_pair(job_id, std::move(sink)));
    }
  }
  if (replay_now) sink(replay);
  return token;
}

void EstimationService::unsubscribe(std::uint64_t token) {
  MutexLock lock(mutex_);
  sinks_.erase(token);
}

std::vector<EstimationService::EventSink> EstimationService::sinks_for_locked(
    const std::string& job_id) {
  std::vector<EventSink> out;
  for (const auto& [token, entry] : sinks_)
    if (entry.first == job_id) out.push_back(entry.second);
  return out;
}

void EstimationService::on_progress(const std::string& job_id, const CampaignProgress& progress) {
  std::vector<EventSink> sinks;
  json::Value event = json::Value::object();
  {
    MutexLock lock(mutex_);
    const auto it = live_.find(job_id);
    if (it == live_.end()) return;
    LiveJob& live = it->second;
    live.units_done = progress.units_done;
    live.units_total = progress.units_total;
    live.rse = progress.achieved_rse;
    if (progress.units_done > live.charged) {
      scheduler_.charge(live.client, progress.units_done - live.charged);
      live.charged = progress.units_done;
    }
    event = job_event("progress", job_id);
    event.set("shard", static_cast<double>(progress.shard));
    event.set("units_done", json::u64_to_string(progress.units_done));
    event.set("units_total", json::u64_to_string(progress.units_total));
    event.set("rse", progress.achieved_rse);
    sinks = sinks_for_locked(job_id);
  }
  for (const EventSink& sink : sinks) sink(event);
}

void EstimationService::run_job(const std::string& job_id) {
  std::string canonical;
  std::string method;
  double rse_target = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t fingerprint = 0;
  Priority priority = Priority::kNormal;
  StopToken stop;
  {
    MutexLock lock(mutex_);
    StoredJob* job = store_.find(job_id);
    if (job == nullptr || terminal_state(job->state)) return;
    LiveJob& live = live_[job_id];
    live.stop = StopSource{};  // fresh flag for this attempt
    live.running = true;
    live.preempt_requested = false;
    stop = live.stop.token();
    priority = live.priority;
    job->state = "running";
    canonical = job->scenario_ini;
    method = job->method;
    rse_target = job->rse_target;
    seed = job->seed;
    fingerprint = job->fingerprint;
    store_.save();
  }

  std::optional<Estimate> estimate;
  std::string error;
  try {
    Scenario scenario = load_scenario(IniFile::parse_string(canonical));
    scenario.seed = seed;
    const Estimator* estimator = find_estimator(method);
    MLEC_REQUIRE(estimator != nullptr, "unknown method '" + method + "'");
    EstimateOptions options;
    options.pool = config_.pool;
    options.stop = stop;
    options.checkpoint_path = store_.journal_base(job_id);
    options.resume = true;  // journal absent = fresh start
    options.shards = config_.shards;
    options.target_rse = rse_target;
    options.checkpoint_every = config_.checkpoint_every;
    options.pool_lane = lane_for(priority);
    options.progress = [this, job_id](const CampaignProgress& p) { on_progress(job_id, p); };
    estimate = estimator->estimate(scenario, options);
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::vector<EventSink> sinks;
  json::Value event = json::Value::object();
  {
    MutexLock lock(mutex_);
    StoredJob* job = store_.find(job_id);
    if (job == nullptr) return;
    LiveJob& live = live_[job_id];
    live.running = false;
    if (estimate && live.charged < estimate->samples) {
      // Bill the tail the last progress commit missed (or the whole run
      // for the instant analytic methods).
      scheduler_.charge(live.client, estimate->samples - live.charged);
      live.charged = estimate->samples;
    }

    if (live.cancel_requested || (!estimate.has_value() && live.preempt_requested)) {
      job->state = "cancelled";
      bump_locked("cancelled");
      store_.discard_journals(job_id);
      event = job_event("cancelled", job_id);
      live_.erase(job_id);
    } else if (estimate && estimate->truncated && live.preempt_requested) {
      // Preempted: progress is journaled; back to the queue to resume.
      job->state = "queued";
      live.preempt_requested = false;
      scheduler_.enqueue({job_id, live.client, live.priority, 0});
      event = job_event("requeued", job_id);
    } else if (estimate && estimate->truncated && stop.stop_requested()) {
      // Service shutdown mid-campaign: leave it queued for the next life.
      job->state = "queued";
      event = job_event("requeued", job_id);
    } else if (estimate) {
      job->state = "done";
      job->estimate = estimate;
      store_.memo[memo_key(fingerprint, method, seed, rse_target)] = *estimate;
      bump_locked("completed");
      store_.discard_journals(job_id);
      event = terminal_event(*job);
      live_.erase(job_id);
    } else {
      job->state = "failed";
      bump_locked("failed");
      event = job_event("failed", job_id);
      event.set("error", error);
      live_.erase(job_id);
    }
    store_.save();
    sinks = sinks_for_locked(job_id);
    cv_.notify_all();
  }
  for (const EventSink& sink : sinks) sink(event);
}

void EstimationService::drain() {
  for (;;) {
    std::optional<QueuedJob> next;
    {
      MutexLock lock(mutex_);
      next = scheduler_.pop();
    }
    if (!next) return;
    run_job(next->id);
  }
}

void EstimationService::start() {
  MutexLock lock(mutex_);
  MLEC_REQUIRE(runners_.empty(), "service already started");
  stopping_ = false;
  const std::size_t n = std::max<std::size_t>(1, config_.runners);
  runners_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    runners_.emplace_back([this] {
      // Scoped lock sections instead of a mid-loop unlock()/lock() pair:
      // run_job manages its own locking and must be entered lock-free.
      for (;;) {
        std::optional<QueuedJob> next;
        {
          MutexLock lock(mutex_);
          while (!stopping_ && scheduler_.empty()) cv_.wait(mutex_);
          if (stopping_) return;
          next = scheduler_.pop();
          if (!next) continue;
          ++busy_;
        }
        run_job(next->id);
        MutexLock lock(mutex_);
        --busy_;
      }
    });
  }
}

void EstimationService::stop() {
  {
    MutexLock lock(mutex_);
    if (stopping_ && runners_.empty()) return;
    stopping_ = true;
    for (auto& [id, live] : live_) {
      if (!live.running || live.cancel_requested) continue;
      live.preempt_requested = true;  // checkpoint, truncate, re-queue
      live.stop.request_stop();
    }
    cv_.notify_all();
  }
  for (std::thread& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
  runners_.clear();
}

}  // namespace mlec::server
