// Minimal JSON value / parser / writer for the mlecd wire protocol.
//
// The daemon speaks newline-delimited JSON over plain TCP with no external
// dependencies, so this module hand-rolls the codec. Design constraints:
//
//  * hostile input — the parser enforces hard limits (total bytes, nesting
//    depth, node count, string bytes) and throws json::Error instead of
//    crashing or over-allocating, whatever the bytes are (fuzzed by
//    tests/fuzz/fuzz_request). Raw bytes >= 0x20 inside strings are copied
//    verbatim, so malformed UTF-8 is carried, not choked on.
//  * bit-exact doubles — dump() prints numbers with enough digits (%.17g)
//    that parse(dump(x)) == x bit-for-bit, which the memo cache's
//    "resumed estimate is bit-identical" contract depends on.
//  * newline framing — dump() never emits a raw newline (strings escape
//    control characters), so one value per line is a safe frame.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mlec::json {

/// Any malformed input, limit violation, or kind-mismatched access.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() = default;  ///< null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), number_(d) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Kind-checked accessors; throw Error on mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // --- object helpers ---
  /// Member pointer, or nullptr when absent (throws when not an object).
  const Value* get(const std::string& key) const;
  Value& set(const std::string& key, Value value);
  /// Typed member lookups with fallbacks; a present-but-wrong-kind member
  /// throws (a typo'd request should be diagnosed, not silently defaulted).
  std::string str_or(const std::string& key, const std::string& fallback) const;
  double num_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  // --- array helpers ---
  void push_back(Value value);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Hard ceilings the parser enforces before and during the parse; inputs
/// beyond them throw Error without large allocations.
struct ParseLimits {
  std::size_t max_bytes = 1 << 20;         ///< whole input
  std::size_t max_depth = 64;              ///< array/object nesting
  std::size_t max_nodes = 1 << 16;         ///< total values
  std::size_t max_string_bytes = 1 << 20;  ///< one decoded string
};

/// Parse exactly one JSON value spanning the whole input (trailing
/// whitespace allowed). Throws Error on anything else.
Value parse(std::string_view text, const ParseLimits& limits = {});

/// Compact single-line serialization; doubles print with %.17g so they
/// round-trip bit-exactly. Non-finite numbers throw Error (JSON cannot
/// carry them; the protocol layer avoids them).
std::string dump(const Value& value);

/// Decimal-string codec for u64 fields (seeds, fingerprints, counters):
/// JSON numbers are doubles and silently lose integer precision past 2^53,
/// so the protocol carries u64s as strings.
std::string u64_to_string(std::uint64_t v);
std::uint64_t u64_from_string(const std::string& text);  ///< throws Error

}  // namespace mlec::json
