#include "server/scheduler.hpp"

#include <algorithm>

namespace mlec::server {

void FairShareScheduler::enqueue(QueuedJob job) {
  job.arrival = arrivals_++;
  queue_.push_back(std::move(job));
}

std::optional<QueuedJob> FairShareScheduler::pop() {
  if (queue_.empty()) return std::nullopt;
  const auto better = [this](const QueuedJob& a, const QueuedJob& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    const std::uint64_t sa = spent(a.client);
    const std::uint64_t sb = spent(b.client);
    if (sa != sb) return sa < sb;
    return a.arrival < b.arrival;
  };
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it)
    if (better(*it, *best)) best = it;
  QueuedJob job = std::move(*best);
  queue_.erase(best);
  return job;
}

bool FairShareScheduler::remove(const std::string& job_id) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const QueuedJob& job) { return job.id == job_id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void FairShareScheduler::charge(const std::string& client, std::uint64_t tokens) {
  spent_[client] += tokens;
}

std::uint64_t FairShareScheduler::spent(const std::string& client) const {
  const auto it = spent_.find(client);
  return it == spent_.end() ? 0 : it->second;
}

std::optional<Priority> FairShareScheduler::best_waiting() const {
  std::optional<Priority> best;
  for (const QueuedJob& job : queue_)
    if (!best || job.priority < *best) best = job.priority;
  return best;
}

}  // namespace mlec::server
