#include "server/store.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#ifdef _WIN32
#include <direct.h>
#else
#include <sys/stat.h>
#include <sys/types.h>
#endif

#include "runtime/journal.hpp"
#include "server/json.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace mlec::server {

namespace {

void make_dir(const std::string& dir) {
#ifdef _WIN32
  _mkdir(dir.c_str());
#else
  ::mkdir(dir.c_str(), 0755);
#endif
}

/// The estimator registry's campaign-backed methods append these to the
/// journal base; discard_journals sweeps every spelling.
constexpr const char* kJournalSuffixes[] = {".sim", ".split", ".dp", ".markov", ""};

json::Value job_to_json(const StoredJob& job) {
  json::Value v = json::Value::object();
  v.set("id", job.id);
  v.set("client", job.client);
  v.set("method", job.method);
  v.set("priority", to_string(job.priority));
  v.set("seed", json::u64_to_string(job.seed));
  v.set("rse_target", job.rse_target);
  v.set("fingerprint", json::u64_to_string(job.fingerprint));
  v.set("scenario_ini", job.scenario_ini);
  v.set("state", job.state);
  if (job.estimate) v.set("estimate", estimate_to_json(*job.estimate));
  return v;
}

StoredJob job_from_json(const json::Value& v) {
  StoredJob job;
  job.id = v.str_or("id", "");
  job.client = v.str_or("client", "");
  job.method = v.str_or("method", "");
  job.priority = parse_priority(v.str_or("priority", "normal"));
  job.seed = json::u64_from_string(v.str_or("seed", "0"));
  job.rse_target = v.num_or("rse_target", 0.0);
  job.fingerprint = json::u64_from_string(v.str_or("fingerprint", "0"));
  job.scenario_ini = v.str_or("scenario_ini", "");
  job.state = v.str_or("state", "queued");
  if (const json::Value* e = v.get("estimate")) job.estimate = estimate_from_json(*e);
  return job;
}

}  // namespace

std::string memo_key(std::uint64_t fingerprint, const std::string& method, std::uint64_t seed,
                     double rse_target) {
  char rse[40];
  std::snprintf(rse, sizeof rse, "%.17g", rse_target);
  return json::u64_to_string(fingerprint) + "|" + method + "|" + json::u64_to_string(seed) +
         "|" + rse;
}

Store::Store(std::string state_dir) : dir_(std::move(state_dir)) {
  if (!dir_.empty()) make_dir(dir_);
}

std::string Store::state_path() const { return dir_ + "/state.json"; }

std::string Store::journal_base(const std::string& job_id) const {
  if (dir_.empty()) return {};
  return dir_ + "/" + job_id + ".journal";
}

void Store::discard_journals(const std::string& job_id) const {
  if (dir_.empty()) return;
  const std::string base = journal_base(job_id);
  for (const char* suffix : kJournalSuffixes) std::remove((base + suffix).c_str());
}

StoredJob* Store::find(const std::string& job_id) {
  for (StoredJob& job : jobs)
    if (job.id == job_id) return &job;
  return nullptr;
}

const StoredJob* Store::find(const std::string& job_id) const {
  return const_cast<Store*>(this)->find(job_id);
}

void Store::load() {
  if (dir_.empty()) return;
  std::ifstream in(state_path(), std::ios::binary);
  if (!in.good()) return;  // fresh store
  std::ostringstream buffer;
  buffer << in.rdbuf();
  json::ParseLimits limits;
  limits.max_bytes = 64u << 20;  // the whole ledger, not one request line
  limits.max_nodes = 1u << 22;
  const json::Value root = json::parse(buffer.str(), limits);
  MLEC_REQUIRE(root.num_or("version", 0.0) == 1.0,
               "unsupported server state version in " + state_path());

  next_job = json::u64_from_string(root.str_or("next_job", "1"));
  jobs.clear();
  if (const json::Value* list = root.get("jobs"))
    for (const json::Value& item : list->as_array()) jobs.push_back(job_from_json(item));
  memo.clear();
  if (const json::Value* entries = root.get("memo"))
    for (const auto& [key, item] : entries->as_object())
      memo.emplace(key, estimate_from_json(item));
  counters.clear();
  if (const json::Value* stats = root.get("counters"))
    for (const auto& [key, item] : stats->as_object())
      counters.emplace(key, json::u64_from_string(item.as_string()));
}

void Store::save() {
  if (dir_.empty()) return;
  json::Value root = json::Value::object();
  root.set("version", 1.0);
  root.set("next_job", json::u64_to_string(next_job));
  json::Value list = json::Value::array();
  for (const StoredJob& job : jobs) list.push_back(job_to_json(job));
  root.set("jobs", std::move(list));
  json::Value entries = json::Value::object();
  for (const auto& [key, estimate] : memo) entries.set(key, estimate_to_json(estimate));
  root.set("memo", std::move(entries));
  json::Value stats = json::Value::object();
  for (const auto& [key, count] : counters) stats.set(key, json::u64_to_string(count));
  root.set("counters", std::move(stats));

  save_bytes_durable(state_path(), json::dump(root));
  MLEC_FAULT_POINT("server.store.save.post");
}

}  // namespace mlec::server
