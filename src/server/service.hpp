// EstimationService: the daemon's brain, independent of any socket.
//
// Responsibilities, in the order a submission meets them:
//
//  1. canonicalize — parse the submitted INI strictly, load the Scenario,
//     and re-serialize it to the sorted-key normal form; compute the
//     structural fingerprint (core/spec_io.hpp) so isomorphic submissions
//     (reordered keys, comments, `18TB` vs `18000GB`) collapse to one
//     identity.
//  2. memoize — finished Estimates are cached under
//     (fingerprint, method, seed, rse_target); a hit returns the stored
//     bits immediately (no campaign) and bumps the cache-hit counter.
//  3. deduplicate — a submission identical to a queued/running job joins
//     that job instead of spawning a second campaign; both waiters receive
//     the same Estimate when it lands.
//  4. schedule — new jobs enter the fair-share queue
//     (server/scheduler.hpp); campaigns run on the shared ThreadPool in
//     the lane matching their priority class. An interactive arrival
//     preempts a running lower-class campaign: its StopToken fires, the
//     campaign checkpoints and truncates at the next shard batch
//     boundary, and the job is re-queued to resume later.
//  5. persist — every state transition rewrites the durable store
//     (server/store.hpp). A killed daemon reloads the ledger, re-queues
//     whatever was in flight, and the campaign journals resume those jobs
//     bit-identically.
//
// Two execution modes share all of that: start() spawns background runner
// threads (the daemon), while drain() runs queued jobs on the caller's
// thread until the queue empties — deterministic and thread-free, which is
// what the chaos harness's fork-based crash cases require.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.hpp"
#include "server/json.hpp"
#include "server/scheduler.hpp"
#include "server/store.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"
#include "util/thread_safety.hpp"

namespace mlec::server {

struct ServiceConfig {
  /// Durable state directory; empty runs in-memory (no resume, no memo
  /// persistence — tests only).
  std::string state_dir;
  /// Shard parallelism for campaigns; nullptr runs shards sequentially on
  /// the job's runner thread (required by fork-based chaos cases).
  ThreadPool* pool = nullptr;
  /// Background runner threads started by start(); also the number of
  /// campaigns that can run concurrently.
  std::size_t runners = 2;
  /// Fixed campaign shard count. Part of the journal identity — keeping it
  /// explicit (instead of deriving from the pool) is what lets a restarted
  /// daemon with a different worker count still resume old journals.
  std::size_t shards = 4;
  std::uint64_t checkpoint_every = 64;
};

struct SubmitRequest {
  std::string scenario_ini;
  std::string method = "dp";
  std::string client = "anonymous";
  Priority priority = Priority::kNormal;
  /// Adaptive-stopping target forwarded to the campaign (0 disables);
  /// part of the memo key.
  double rse_target = 0.0;
  /// Overrides the scenario's [sim] seed when set.
  std::optional<std::uint64_t> seed;
};

struct SubmitOutcome {
  std::string job_id;  ///< empty only for a memo hit whose job was pruned
  std::uint64_t fingerprint = 0;
  bool cached = false;  ///< served from the memo cache, no campaign
  bool joined = false;  ///< attached to an identical in-flight job
  std::optional<Estimate> estimate;  ///< set when cached
};

struct ServiceStatus {
  struct Job {
    std::string id;
    std::string client;
    std::string method;
    std::string priority;
    std::string state;
    std::uint64_t units_done = 0;
    std::uint64_t units_total = 0;
    double rse = 0.0;
  };
  std::vector<Job> jobs;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> spent_by_client;
};

class EstimationService {
 public:
  /// Called with one JSON event object per job transition / progress
  /// commit. Invoked outside the service mutex; must be thread-safe.
  using EventSink = std::function<void(const json::Value&)>;

  explicit EstimationService(ServiceConfig config);
  ~EstimationService();

  /// Canonicalize, memo-check, dedup, or enqueue. Throws
  /// PreconditionError on malformed scenarios, unknown methods, or
  /// scenarios outside the method's domain.
  SubmitOutcome submit(const SubmitRequest& request) MLEC_EXCLUDES(mutex_);

  /// Cancel a queued or running job; false when already terminal/unknown.
  bool cancel(const std::string& job_id) MLEC_EXCLUDES(mutex_);

  /// Block until the job reaches a terminal state ("done", "cancelled",
  /// "failed") and return its ledger entry. Throws on unknown id. A
  /// service shutdown releases waiters with the job's current
  /// (possibly non-terminal) state.
  StoredJob wait(const std::string& job_id) MLEC_EXCLUDES(mutex_);

  ServiceStatus status() const MLEC_EXCLUDES(mutex_);

  /// Stream the job's events to `sink`. A job already terminal gets its
  /// terminal event replayed immediately. Returns a token for
  /// unsubscribe(); 0 when the terminal replay made registration moot.
  std::uint64_t subscribe(const std::string& job_id, EventSink sink) MLEC_EXCLUDES(mutex_);
  void unsubscribe(std::uint64_t token) MLEC_EXCLUDES(mutex_);

  /// Foreground mode: run queued jobs to completion on this thread, one at
  /// a time, until the queue is empty. Deterministic; no threads beyond
  /// the configured pool (none when pool == nullptr).
  void drain() MLEC_EXCLUDES(mutex_);

  /// Background mode: spawn the runner threads. stop() preempts running
  /// campaigns (they checkpoint and re-queue) and joins the runners.
  void start() MLEC_EXCLUDES(mutex_);
  void stop() MLEC_EXCLUDES(mutex_);

  /// Quiescent-state inspection for tests and the chaos harness: valid only
  /// once no runner is active (after drain()/stop()), when the store can no
  /// longer change underneath the caller.
  // lint:allow(tsa-escape): quiescent/drain-mode inspection only — chaos cases read the ledger after drain(), with no concurrent mutators left
  const Store& store() const MLEC_NO_THREAD_SAFETY_ANALYSIS { return store_; }

 private:
  struct LiveJob {
    StopSource stop;
    Priority priority = Priority::kNormal;
    std::string client;
    bool running = false;
    bool cancel_requested = false;
    bool preempt_requested = false;
    std::uint64_t units_done = 0;
    std::uint64_t units_total = 0;
    std::uint64_t charged = 0;  ///< tokens already billed to the client
    double rse = 0.0;
  };

  void recover_locked() MLEC_REQUIRES(mutex_);
  void run_job(const std::string& job_id) MLEC_EXCLUDES(mutex_);
  void maybe_preempt_locked(Priority incoming) MLEC_REQUIRES(mutex_);
  /// Excluded: the campaign calls this from shard threads outside every
  /// lock; the sink fan-out at the end must likewise run unlocked.
  void on_progress(const std::string& job_id, const CampaignProgress& progress)
      MLEC_EXCLUDES(mutex_);
  /// Collect the job's sinks under the lock; call them after releasing it.
  std::vector<EventSink> sinks_for_locked(const std::string& job_id) MLEC_REQUIRES(mutex_);
  void bump_locked(const std::string& counter) MLEC_REQUIRES(mutex_);

  ServiceConfig config_;
  mutable Mutex mutex_;
  CondVar cv_;
  Store store_ MLEC_GUARDED_BY(mutex_);
  FairShareScheduler scheduler_ MLEC_GUARDED_BY(mutex_);
  std::map<std::string, LiveJob> live_ MLEC_GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::pair<std::string, EventSink>> sinks_ MLEC_GUARDED_BY(mutex_);
  std::uint64_t next_sink_ MLEC_GUARDED_BY(mutex_) = 1;
  /// Mutated only by start()/stop(), which external callers already
  /// serialize (the daemon calls them once each); runner threads never
  /// touch the vector itself.
  std::vector<std::thread> runners_;
  std::size_t busy_ MLEC_GUARDED_BY(mutex_) = 0;
  bool stopping_ MLEC_GUARDED_BY(mutex_) = false;
};

}  // namespace mlec::server
