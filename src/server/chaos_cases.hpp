// The daemon's chaos cases, registered into the analysis-layer sweep
// through ChaosOptions::fork_phase / late_phase (analysis cannot link the
// server, so the harness takes these as plug-ins):
//
//   crash-server-mid-campaign   fork a child running the full service
//                               stack, kill it at a campaign checkpoint,
//                               restart the service on the same state dir,
//                               and require the journal-backed resume to
//                               return the bit-identical Estimate.
//   crash-server-store-save     kill at server.store.save.post (the
//                               durable ledger rewrite just landed) and
//                               require recovery to re-queue and finish
//                               bit-identically.
//   server-request-parse-survives  a throw injected into request parsing
//                               becomes an error response; the daemon
//                               keeps serving.
//   server-accept-survives      a throw injected into the accept path is
//                               logged; later connections still work.
//
// The crash cases fork and are thread-free (pool = nullptr, drain());
// the survival cases start real TCP listeners and belong in late_phase.
#pragma once

#include <vector>

#include "analysis/chaos.hpp"

namespace mlec::server {

std::vector<ChaosExtraCase> fork_chaos_cases();
std::vector<ChaosExtraCase> late_chaos_cases();

}  // namespace mlec::server
