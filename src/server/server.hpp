// mlecd's TCP front end: plain POSIX sockets, newline-delimited JSON.
//
// One accept thread plus one thread per connection — the daemon serves a
// handful of analysts, not the internet; simplicity and debuggability win
// over scalability here. All estimation work stays inside
// EstimationService; this layer only frames lines, parses requests
// (server/protocol.hpp), and dispatches ops.
//
// Fault points for the chaos harness:
//   server.accept.pre     before each accept(); an injected throw is
//                         logged and the loop continues (the daemon must
//                         survive transient accept failures).
//   server.request.parse  before parsing each request line; an injected
//                         throw becomes an error response on that
//                         connection, nothing more.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"

namespace mlec::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port; see Server::port()
};

class Server {
 public:
  Server(EstimationService& service, ServerConfig config);
  ~Server();

  /// Bind, listen, and spawn the accept thread. Throws PreconditionError
  /// when the address cannot be bound.
  void start();
  /// The bound port (after start()); useful with an ephemeral config.
  int port() const { return port_; }

  /// Block until a client sends {"op":"shutdown"} or stop() is called.
  void wait_shutdown();
  /// Close the listener, disconnect clients, join all threads.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Handle one request; returns false when the connection should close.
  bool handle_request(int fd, const std::string& line);
  void send_line(int fd, const json::Value& value);

  EstimationService& service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool shutdown_requested_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread acceptor_;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
};

}  // namespace mlec::server
