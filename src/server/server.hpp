// mlecd's TCP front end: plain POSIX sockets, newline-delimited JSON.
//
// One accept thread plus one thread per connection — the daemon serves a
// handful of analysts, not the internet; simplicity and debuggability win
// over scalability here. All estimation work stays inside
// EstimationService; this layer only frames lines, parses requests
// (server/protocol.hpp), and dispatches ops.
//
// Fault points for the chaos harness:
//   server.accept.pre     before each accept(); an injected throw is
//                         logged and the loop continues (the daemon must
//                         survive transient accept failures).
//   server.request.parse  before parsing each request line; an injected
//                         throw becomes an error response on that
//                         connection, nothing more.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"
#include "util/thread_safety.hpp"

namespace mlec::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port; see Server::port()
};

class Server {
 public:
  Server(EstimationService& service, ServerConfig config);
  ~Server();

  /// Bind, listen, and spawn the accept thread. Throws PreconditionError
  /// when the address cannot be bound.
  void start();
  /// The bound port (after start()); useful with an ephemeral config.
  int port() const { return port_; }

  /// Block until a client sends {"op":"shutdown"} or stop() is called.
  void wait_shutdown() MLEC_EXCLUDES(mutex_);
  /// Close the listener, disconnect clients, join all threads.
  void stop() MLEC_EXCLUDES(mutex_);

 private:
  void accept_loop() MLEC_EXCLUDES(mutex_);
  void serve_connection(int fd);
  /// Handle one request; returns false when the connection should close.
  bool handle_request(int fd, const std::string& line) MLEC_EXCLUDES(mutex_);
  void send_line(int fd, const json::Value& value);

  EstimationService& service_;
  ServerConfig config_;
  /// Written by start() and invalidated by stop() while the acceptor thread
  /// re-reads it around ::accept(); atomic (not mutex_-guarded) because the
  /// acceptor must keep blocking in accept() without holding any lock.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  Mutex mutex_;
  CondVar cv_;
  bool shutdown_requested_ MLEC_GUARDED_BY(mutex_) = false;
  std::thread acceptor_;
  std::vector<std::thread> connections_ MLEC_GUARDED_BY(mutex_);
  std::vector<int> connection_fds_ MLEC_GUARDED_BY(mutex_);
};

}  // namespace mlec::server
