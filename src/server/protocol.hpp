// mlecd wire protocol: newline-delimited JSON objects over plain TCP.
//
// One request per line, one response per line, except `watch`, which
// streams one event object per line until the job reaches a terminal
// state. Requests carry an "op" member:
//
//   {"op":"ping"}
//   {"op":"submit","scenario_ini":"...","method":"dp","client":"alice",
//    "priority":"interactive","rse_target":0.05,"wait":true}
//   {"op":"status"}
//   {"op":"watch","job":"j-3"}
//   {"op":"cancel","job":"j-3"}
//   {"op":"shutdown"}
//
// Responses are {"ok":true,...} or {"ok":false,"error":"..."}. Watch
// events are {"event":"progress"|"requeued"|"done"|"cancelled",...}.
//
// u64 fields (seeds, fingerprints, sample counts) travel as decimal
// strings — JSON numbers are doubles and corrupt integers past 2^53.
// Doubles travel as %.17g numbers and round-trip bit-exactly, which is
// what lets a memoized Estimate compare bit-identical to a fresh one
// (analysis/chaos.hpp diff_estimates).
#pragma once

#include <cstddef>
#include <string>

#include "core/estimator.hpp"
#include "server/json.hpp"
#include "util/thread_pool.hpp"

namespace mlec::server {

/// One framed request line, terminator included. Longer lines are an
/// error; the connection handler discards without buffering past this.
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

/// Fair-share priority classes, best first. Maps onto the ThreadPool
/// dispatch lanes so an interactive campaign's shard chunks overtake
/// queued batch work inside the shared pool as well.
enum class Priority { kInteractive = 0, kNormal = 1, kBatch = 2 };

Priority parse_priority(const std::string& text);  ///< throws json::Error
const char* to_string(Priority priority);
std::size_t lane_for(Priority priority);

/// Estimate <-> JSON. Round-trips every scalar field bit-exactly; the
/// per-shard campaign report is deliberately not carried (it is a run
/// artifact, not part of the answer). `nines` is recomputed from pdl on
/// the way in because +inf (pdl == 0) has no JSON encoding.
json::Value estimate_to_json(const Estimate& estimate);
Estimate estimate_from_json(const json::Value& value);

json::Value ok_response();
json::Value error_response(const std::string& what);

}  // namespace mlec::server
