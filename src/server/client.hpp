// Blocking TCP client for the mlecd wire protocol (one request line in,
// one response line out; `watch` streams). Used by mlecctl's submit /
// status / watch / cancel subcommands and the server tests.
#pragma once

#include <functional>
#include <string>

#include "server/json.hpp"

namespace mlec::server {

class Client {
 public:
  /// Connect; throws PreconditionError when the daemon is unreachable.
  Client(const std::string& host, int port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request object, return the one response object.
  json::Value request(const json::Value& req);

  /// Send one request and deliver every response line to `on_event` until
  /// it returns false or the server closes the stream. Used for `watch`;
  /// the final line is the terminal event.
  void stream(const json::Value& req, const std::function<bool(const json::Value&)>& on_event);

 private:
  void send_line(const json::Value& value);
  /// Next newline-framed line; throws on EOF or oversized frames.
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mlec::server
