#include "server/protocol.hpp"

#include <cmath>
#include <limits>

namespace mlec::server {

Priority parse_priority(const std::string& text) {
  if (text == "interactive") return Priority::kInteractive;
  if (text == "normal") return Priority::kNormal;
  if (text == "batch") return Priority::kBatch;
  throw json::Error("unknown priority '" + text +
                    "' (expected interactive, normal, or batch)");
}

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

std::size_t lane_for(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return kLaneInteractive;
    case Priority::kNormal: return kLaneNormal;
    case Priority::kBatch: return kLaneBatch;
  }
  return kLaneNormal;
}

json::Value estimate_to_json(const Estimate& e) {
  json::Value v = json::Value::object();
  v.set("method", e.method);
  v.set("provenance", e.provenance);
  v.set("pdl", e.pdl);
  v.set("pdl_lo", e.pdl_lo);
  v.set("pdl_hi", e.pdl_hi);
  v.set("stochastic", e.stochastic);
  v.set("samples", json::u64_to_string(e.samples));
  v.set("exposure_hours", e.exposure_hours);
  v.set("cat_rate_per_year", e.cat_rate_per_year);
  v.set("cross_rack_tb", e.cross_rack_tb);
  v.set("coverage", e.coverage);
  v.set("truncated", e.truncated);
  v.set("converged", e.converged);
  v.set("resumed", e.resumed);
  v.set("degraded", e.degraded);
  v.set("degrade_note", e.degrade_note);
  v.set("events_processed", json::u64_to_string(e.events_processed));
  v.set("rng_draws", json::u64_to_string(e.rng_draws));
  v.set("arena_allocations", json::u64_to_string(e.arena_allocations));
  v.set("elapsed_s", e.elapsed_s);
  return v;
}

Estimate estimate_from_json(const json::Value& v) {
  Estimate e;
  e.method = v.str_or("method", "");
  e.provenance = v.str_or("provenance", "");
  e.pdl = v.num_or("pdl", 0.0);
  e.nines = e.pdl > 0.0 ? -std::log10(e.pdl) : std::numeric_limits<double>::infinity();
  e.pdl_lo = v.num_or("pdl_lo", 0.0);
  e.pdl_hi = v.num_or("pdl_hi", 0.0);
  e.stochastic = v.bool_or("stochastic", false);
  e.samples = json::u64_from_string(v.str_or("samples", "0"));
  e.exposure_hours = v.num_or("exposure_hours", 0.0);
  e.cat_rate_per_year = v.num_or("cat_rate_per_year", 0.0);
  e.cross_rack_tb = v.num_or("cross_rack_tb", 0.0);
  e.coverage = v.num_or("coverage", 1.0);
  e.truncated = v.bool_or("truncated", false);
  e.converged = v.bool_or("converged", false);
  e.resumed = v.bool_or("resumed", false);
  e.degraded = v.bool_or("degraded", false);
  e.degrade_note = v.str_or("degrade_note", "");
  e.events_processed = json::u64_from_string(v.str_or("events_processed", "0"));
  e.rng_draws = json::u64_from_string(v.str_or("rng_draws", "0"));
  e.arena_allocations = json::u64_from_string(v.str_or("arena_allocations", "0"));
  e.elapsed_s = v.num_or("elapsed_s", 0.0);
  return e;
}

json::Value ok_response() {
  json::Value v = json::Value::object();
  v.set("ok", true);
  return v;
}

json::Value error_response(const std::string& what) {
  json::Value v = json::Value::object();
  v.set("ok", false);
  v.set("error", what);
  return v;
}

}  // namespace mlec::server
