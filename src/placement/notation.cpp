#include "placement/notation.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace mlec {

namespace {

std::string strip(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text)
    if (!std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')') out.push_back(c);
  return out;
}

std::size_t parse_count(const std::string& text, const std::string& context) {
  MLEC_REQUIRE(!text.empty() &&
                   std::all_of(text.begin(), text.end(),
                               [](unsigned char c) { return std::isdigit(c); }),
               "cannot parse '" + text + "' in " + context);
  return static_cast<std::size_t>(std::stoul(text));
}

std::string lower(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

SlecCode parse_slec_code(const std::string& text) {
  const std::string body = strip(text);
  const auto plus = body.find('+');
  MLEC_REQUIRE(plus != std::string::npos, "expected 'k+p' in '" + text + "'");
  SlecCode code{parse_count(body.substr(0, plus), text),
                parse_count(body.substr(plus + 1), text)};
  code.validate();
  return code;
}

MlecCode parse_mlec_code(const std::string& text) {
  const std::string body = strip(text);
  const auto slash = body.find('/');
  MLEC_REQUIRE(slash != std::string::npos,
               "expected '(kn+pn)/(kl+pl)' in '" + text + "'");
  MlecCode code{parse_slec_code(body.substr(0, slash)),
                parse_slec_code(body.substr(slash + 1))};
  code.validate();
  return code;
}

LrcCode parse_lrc_code(const std::string& text) {
  const std::string body = strip(text);
  const auto c1 = body.find(',');
  const auto c2 = body.find(',', c1 == std::string::npos ? c1 : c1 + 1);
  MLEC_REQUIRE(c1 != std::string::npos && c2 != std::string::npos,
               "expected '(k,l,r)' in '" + text + "'");
  LrcCode code{parse_count(body.substr(0, c1), text),
               parse_count(body.substr(c1 + 1, c2 - c1 - 1), text),
               parse_count(body.substr(c2 + 1), text)};
  code.validate();
  return code;
}

MlecScheme parse_mlec_scheme(const std::string& text) {
  const std::string t = lower(strip(text));
  if (t == "c/c" || t == "cc") return MlecScheme::kCC;
  if (t == "c/d" || t == "cd") return MlecScheme::kCD;
  if (t == "d/c" || t == "dc") return MlecScheme::kDC;
  if (t == "d/d" || t == "dd") return MlecScheme::kDD;
  throw PreconditionError("unknown MLEC scheme '" + text + "' (want C/C, C/D, D/C, or D/D)");
}

RepairMethod parse_repair_method(const std::string& text) {
  std::string t = lower(text);
  std::erase(t, '_');
  if (t == "rall" || t == "repairall" || t == "all") return RepairMethod::kRepairAll;
  if (t == "rfco" || t == "repairfailedonly" || t == "fco")
    return RepairMethod::kRepairFailedOnly;
  if (t == "rhyb" || t == "repairhybrid" || t == "hyb") return RepairMethod::kRepairHybrid;
  if (t == "rmin" || t == "repairminimum" || t == "min") return RepairMethod::kRepairMinimum;
  throw PreconditionError("unknown repair method '" + text +
                          "' (want R_ALL, R_FCO, R_HYB, or R_MIN)");
}

}  // namespace mlec
