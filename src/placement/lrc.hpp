// Azure-style locally repairable codes (paper §5.2, Figure 14).
//
// A (k,l,r) LRC splits k data chunks into l local groups with one local
// parity each and adds r global parities. We treat the code as maximally
// recoverable (Azure's LRC is): a failure pattern is decodable iff, after
// letting each local group absorb one of its failures with its local parity,
// at most r failures remain for the global parities.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "placement/codes.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace mlec {

/// Role of one chunk position inside an LRC stripe.
enum class LrcChunkRole {
  kData,
  kLocalParity,
  kGlobalParity,
};

/// Static description of a (k,l,r) stripe: chunk index -> (role, group).
/// Layout order: group 0 data, ..., group l-1 data, local parities 0..l-1,
/// global parities 0..r-1 (group of a global parity is l, a sentinel).
class LrcStripeShape {
 public:
  explicit LrcStripeShape(const LrcCode& code);

  const LrcCode& code() const { return code_; }
  std::size_t width() const { return code_.width(); }
  LrcChunkRole role(std::size_t chunk) const;
  /// Local group of the chunk; code().l for global parities.
  std::size_t group(std::size_t chunk) const;

  /// Maximally-recoverable decodability: given which chunk indices failed,
  /// can the stripe be decoded?
  bool recoverable(const std::vector<std::size_t>& failed_chunks) const;

  /// Same criterion from aggregate counts: failures per local group
  /// (including that group's local parity) and failed global parities.
  static bool recoverable_counts(const LrcCode& code,
                                 const std::vector<std::size_t>& failures_per_group,
                                 std::size_t failed_globals);

  /// Chunks that must be read to repair a single failed chunk: the rest of
  /// its local group for data/local-parity chunks (the LRC selling point),
  /// or k data chunks for a global parity.
  std::size_t single_repair_reads(std::size_t chunk) const;

 private:
  LrcCode code_;
};

/// Declustered LRC placement ("LRC-Dp", the only deployment the paper
/// found in practice): every chunk of a stripe on a separate rack.
struct LrcStripePlacement {
  std::vector<RackId> racks;  ///< racks[chunk index]
};

/// Place `stripes` LRC stripes over the topology, each chunk in a distinct
/// pseudorandom rack. Requires topo.racks >= code width.
std::vector<LrcStripePlacement> place_lrc_declustered(const Topology& topo, const LrcCode& code,
                                                      std::size_t stripes, std::uint64_t seed = 42);

}  // namespace mlec
