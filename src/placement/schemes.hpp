// Placement scheme taxonomy (paper §2.2): clustered vs declustered parity at
// each of the two MLEC levels, the four resulting MLEC schemes, and the four
// SLEC placements used in the §5.1 comparison.
#pragma once

#include <array>
#include <string>

namespace mlec {

/// Parity placement within one level.
enum class Placement {
  kClustered,    ///< "Cp": every k+p devices form a dedicated pool
  kDeclustered,  ///< "Dp": stripes pseudorandomly spread over a larger pool
};

/// The four MLEC schemes: network placement / local placement.
enum class MlecScheme {
  kCC,  ///< clustered/clustered
  kCD,  ///< clustered/declustered
  kDC,  ///< declustered/clustered
  kDD,  ///< declustered/declustered
};

inline constexpr std::array<MlecScheme, 4> kAllMlecSchemes = {
    MlecScheme::kCC, MlecScheme::kCD, MlecScheme::kDC, MlecScheme::kDD};

Placement network_placement(MlecScheme scheme);
Placement local_placement(MlecScheme scheme);
MlecScheme make_scheme(Placement network, Placement local);

/// "C/C", "C/D", "D/C", "D/D".
std::string to_string(MlecScheme scheme);
std::string to_string(Placement placement);

/// SLEC deployments (paper §2.1/§5.1): EC performed at one level only.
enum class SlecDomain {
  kLocal,    ///< stripes confined to one enclosure
  kNetwork,  ///< each chunk of a stripe in a separate rack
};

struct SlecScheme {
  SlecDomain domain;
  Placement placement;
};

inline constexpr std::array<SlecScheme, 4> kAllSlecSchemes = {
    SlecScheme{SlecDomain::kLocal, Placement::kClustered},
    SlecScheme{SlecDomain::kLocal, Placement::kDeclustered},
    SlecScheme{SlecDomain::kNetwork, Placement::kClustered},
    SlecScheme{SlecDomain::kNetwork, Placement::kDeclustered}};

/// "Loc-Cp", "Net-Dp", ...
std::string to_string(const SlecScheme& scheme);

/// Repair methods for a catastrophic (locally-unrecoverable) local pool
/// (paper §2.4), ordered simplest to most network-frugal.
enum class RepairMethod {
  kRepairAll,        ///< R_ALL: rebuild the entire local pool over the network
  kRepairFailedOnly, ///< R_FCO: rebuild only the failed chunks over the network
  kRepairHybrid,     ///< R_HYB: network repair for lost stripes, local otherwise
  kRepairMinimum,    ///< R_MIN: network-repair just enough, then finish locally
};

inline constexpr std::array<RepairMethod, 4> kAllRepairMethods = {
    RepairMethod::kRepairAll, RepairMethod::kRepairFailedOnly, RepairMethod::kRepairHybrid,
    RepairMethod::kRepairMinimum};

std::string to_string(RepairMethod method);

}  // namespace mlec
