// Parsing of the paper's code and scheme notations — the inverse of the
// notation() methods, for CLI/config use.
//
//   "(10+2)"            -> SlecCode{10, 2}
//   "(10+2)/(17+3)"     -> MlecCode{{10, 2}, {17, 3}}
//   "(14,2,4)"          -> LrcCode{14, 2, 4}
//   "C/D", "c/d"        -> MlecScheme::kCD
//   "R_MIN", "rmin"     -> RepairMethod::kRepairMinimum
//
// Parsers throw PreconditionError with the offending text on malformed
// input; parentheses are optional.
#pragma once

#include <string>

#include "placement/codes.hpp"
#include "placement/schemes.hpp"

namespace mlec {

SlecCode parse_slec_code(const std::string& text);
MlecCode parse_mlec_code(const std::string& text);
LrcCode parse_lrc_code(const std::string& text);
MlecScheme parse_mlec_scheme(const std::string& text);
RepairMethod parse_repair_method(const std::string& text);

}  // namespace mlec
