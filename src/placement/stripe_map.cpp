#include "placement/stripe_map.hpp"

#include <algorithm>
#include <unordered_set>

namespace mlec {

StripeMap::StripeMap(const Topology& topo, const MlecCode& code, MlecScheme scheme,
                     std::size_t stripes_per_network_pool, std::uint64_t seed)
    : topo_(topo), layout_(topo.config(), code, scheme) {
  MLEC_REQUIRE(stripes_per_network_pool >= 1, "need at least one stripe per network pool");
  Rng rng(seed);
  const std::size_t net_width = code.network_width();
  const std::size_t loc_width = code.local_width();
  const std::size_t pools_per_rack = layout_.local_pools_per_rack();

  auto make_local = [&](LocalPoolId pool, std::size_t rotation) {
    LocalStripePlacement local;
    local.pool = pool;
    local.disks.reserve(loc_width);
    const auto disks = pool_disks(pool);
    if (local_placement(scheme) == Placement::kClustered) {
      // Chunk j -> pool disk (j + rotation) % width; rotation balances parity.
      for (std::size_t j = 0; j < loc_width; ++j)
        local.disks.push_back(disks[(j + rotation) % loc_width]);
    } else {
      auto picks = rng.sample_without_replacement(disks.size(), loc_width);
      for (auto idx : picks) local.disks.push_back(disks[idx]);
    }
    return local;
  };

  if (network_placement(scheme) == Placement::kClustered) {
    // Enumerate network pools as (group, enclosure position, pool position).
    for (std::size_t g = 0; g < layout_.rack_groups(); ++g) {
      for (std::size_t pos = 0; pos < pools_per_rack; ++pos) {
        for (std::size_t s = 0; s < stripes_per_network_pool; ++s) {
          NetworkStripePlacement stripe;
          stripe.locals.reserve(net_width);
          for (std::size_t i = 0; i < net_width; ++i) {
            // Rotate the member order so network parity does not pin to the
            // same racks for every stripe.
            const std::size_t member = (i + s) % net_width;
            const RackId rack = static_cast<RackId>(g * net_width + member);
            const LocalPoolId pool = static_cast<LocalPoolId>(rack * pools_per_rack + pos);
            stripe.locals.push_back(make_local(pool, s));
          }
          stripes_.push_back(std::move(stripe));
        }
      }
    }
  } else {
    for (std::size_t s = 0; s < stripes_per_network_pool; ++s) {
      NetworkStripePlacement stripe;
      stripe.locals.reserve(net_width);
      auto racks = rng.sample_without_replacement(topo_.config().racks, net_width);
      for (std::size_t i = 0; i < net_width; ++i) {
        const auto rack = static_cast<RackId>(racks[i]);
        const auto pool_in_rack = static_cast<std::size_t>(rng.uniform_below(pools_per_rack));
        const LocalPoolId pool = static_cast<LocalPoolId>(rack * pools_per_rack + pool_in_rack);
        stripe.locals.push_back(make_local(pool, s));
      }
      stripes_.push_back(std::move(stripe));
    }
  }
}

std::vector<DiskId> StripeMap::pool_disks(LocalPoolId pool) const {
  MLEC_REQUIRE(pool < total_pools(), "pool out of range");
  const std::size_t pools_per_enc = layout_.local_pools_per_enclosure();
  const auto enc = static_cast<EnclosureId>(pool / pools_per_enc);
  const std::size_t pos = pool % pools_per_enc;
  const std::size_t pool_size = layout_.local_pool_disks();
  const DiskId base = static_cast<DiskId>(enc * topo_.config().disks_per_enclosure +
                                          pos * pool_size);
  std::vector<DiskId> disks(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) disks[i] = base + static_cast<DiskId>(i);
  return disks;
}

RackId StripeMap::pool_rack(LocalPoolId pool) const {
  MLEC_REQUIRE(pool < total_pools(), "pool out of range");
  return static_cast<RackId>(pool / layout_.local_pools_per_rack());
}

LocalPoolId StripeMap::pool_of_disk(DiskId disk) const {
  const EnclosureId enc = topo_.enclosure_of(disk);
  const std::size_t pools_per_enc = layout_.local_pools_per_enclosure();
  const std::size_t within = topo_.disk_position(disk) / layout_.local_pool_disks();
  return static_cast<LocalPoolId>(enc * pools_per_enc + std::min(within, pools_per_enc - 1));
}

FailureAssessment assess_failures(const StripeMap& map, const std::vector<DiskId>& failed_disks) {
  std::vector<bool> failed(map.topology().config().total_disks(), false);
  for (DiskId d : failed_disks) {
    MLEC_REQUIRE(d < failed.size(), "failed disk out of range");
    failed[d] = true;
  }
  const std::size_t pl = map.layout().code().local.p;
  const std::size_t pn = map.layout().code().network.p;

  FailureAssessment out;
  std::unordered_set<LocalPoolId> catastrophic;
  for (const auto& stripe : map.stripes()) {
    std::size_t lost_locals = 0;
    bool any_affected = false;
    for (const auto& local : stripe.locals) {
      std::size_t failures = 0;
      for (DiskId d : local.disks) failures += failed[d] ? 1 : 0;
      out.failed_chunks += failures;
      if (failures == 0) continue;
      any_affected = true;
      ++out.affected_local_stripes;
      if (failures <= pl) {
        ++out.locally_recoverable_local_stripes;
      } else {
        ++out.lost_local_stripes;
        ++lost_locals;
        catastrophic.insert(local.pool);
      }
    }
    if (!any_affected && lost_locals == 0) continue;
    if (any_affected) ++out.affected_network_stripes;
    if (lost_locals >= 1 && lost_locals <= pn) ++out.recoverable_network_stripes;
    if (lost_locals > pn) ++out.lost_network_stripes;
  }
  out.catastrophic_local_pools = catastrophic.size();
  return out;
}

}  // namespace mlec
