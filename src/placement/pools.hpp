// Derived pool geometry for every placement scheme (paper §2.2, §3 setup).
//
// PoolLayout turns (topology, code, scheme) into the counts the analysis and
// simulation layers consume: local pool size, pools per enclosure/rack,
// network pool membership, and stripe counts at realistic chunk density.
#pragma once

#include <cstddef>

#include "placement/codes.hpp"
#include "placement/schemes.hpp"
#include "topology/topology.hpp"

namespace mlec {

/// Geometry of an MLEC deployment.
class PoolLayout {
 public:
  /// Validates the divisibility rules from §2.2: local clustered pools need
  /// disks_per_enclosure % (k_l+p_l) == 0; network clustered pools need
  /// racks % (k_n+p_n) == 0.
  PoolLayout(const DataCenterConfig& dc, const MlecCode& code, MlecScheme scheme);

  const DataCenterConfig& dc() const { return dc_; }
  const MlecCode& code() const { return code_; }
  MlecScheme scheme() const { return scheme_; }

  // --- local level ---
  /// Disks in one local pool: k_l+p_l (Cp) or a whole enclosure (Dp).
  std::size_t local_pool_disks() const { return local_pool_disks_; }
  std::size_t local_pools_per_enclosure() const { return local_pools_per_enclosure_; }
  std::size_t local_pools_per_rack() const {
    return local_pools_per_enclosure_ * dc_.enclosures_per_rack;
  }
  std::size_t total_local_pools() const { return local_pools_per_rack() * dc_.racks; }
  double local_pool_capacity_tb() const {
    return static_cast<double>(local_pool_disks_) * dc_.disk_capacity_tb;
  }
  /// Local stripes resident in one local pool at full chunk density.
  double local_stripes_per_pool() const;

  // --- network level ---
  /// Racks whose pools form one network pool: k_n+p_n (Cp) or all racks (Dp).
  std::size_t network_pool_racks() const { return network_pool_racks_; }
  /// Local pools per network pool.
  std::size_t network_pool_members() const { return network_pool_members_; }
  /// Independent network pools in the system (1 for network-Dp).
  std::size_t network_pools() const { return network_pools_; }
  /// Rack groups for network-Cp schemes (racks / (k_n+p_n)); 1 for Dp.
  std::size_t rack_groups() const { return rack_groups_; }

  /// Network stripes per network pool at full chunk density.
  double network_stripes_per_pool() const;
  /// Network stripes in the whole system.
  double total_network_stripes() const;

 private:
  DataCenterConfig dc_;
  MlecCode code_;
  MlecScheme scheme_;
  std::size_t local_pool_disks_;
  std::size_t local_pools_per_enclosure_;
  std::size_t network_pool_racks_;
  std::size_t network_pool_members_;
  std::size_t network_pools_;
  std::size_t rack_groups_;
};

/// Geometry of a single-level (SLEC) deployment, needed by the §5.1
/// comparison: pool size and count for each of the four SLEC placements.
class SlecLayout {
 public:
  SlecLayout(const DataCenterConfig& dc, const SlecCode& code, SlecScheme scheme);

  const DataCenterConfig& dc() const { return dc_; }
  const SlecCode& code() const { return code_; }
  SlecScheme scheme() const { return scheme_; }

  /// Disks in one pool. Local: k+p (Cp) or an enclosure (Dp).
  /// Network: k+p disks across k+p racks (Cp) or the whole system (Dp).
  std::size_t pool_disks() const { return pool_disks_; }
  std::size_t total_pools() const { return total_pools_; }
  double stripes_per_pool() const;
  double total_stripes() const;

 private:
  DataCenterConfig dc_;
  SlecCode code_;
  SlecScheme scheme_;
  std::size_t pool_disks_;
  std::size_t total_pools_;
};

}  // namespace mlec
