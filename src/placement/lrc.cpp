#include "placement/lrc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mlec {

LrcStripeShape::LrcStripeShape(const LrcCode& code) : code_(code) { code_.validate(); }

LrcChunkRole LrcStripeShape::role(std::size_t chunk) const {
  MLEC_REQUIRE(chunk < width(), "chunk index out of range");
  if (chunk < code_.k) return LrcChunkRole::kData;
  if (chunk < code_.k + code_.l) return LrcChunkRole::kLocalParity;
  return LrcChunkRole::kGlobalParity;
}

std::size_t LrcStripeShape::group(std::size_t chunk) const {
  MLEC_REQUIRE(chunk < width(), "chunk index out of range");
  if (chunk < code_.k) return chunk / code_.group_data_chunks();
  if (chunk < code_.k + code_.l) return chunk - code_.k;
  return code_.l;  // global parities sit outside all local groups
}

bool LrcStripeShape::recoverable(const std::vector<std::size_t>& failed_chunks) const {
  std::vector<std::size_t> per_group(code_.l, 0);
  std::size_t globals = 0;
  for (std::size_t chunk : failed_chunks) {
    const std::size_t g = group(chunk);
    if (g == code_.l)
      ++globals;
    else
      ++per_group[g];
  }
  return recoverable_counts(code_, per_group, globals);
}

bool LrcStripeShape::recoverable_counts(const LrcCode& code,
                                        const std::vector<std::size_t>& failures_per_group,
                                        std::size_t failed_globals) {
  MLEC_REQUIRE(failures_per_group.size() == code.l, "one count per local group");
  // Each group's local parity can regenerate one erasure in that group; the
  // remaining erasures must be covered by the r global parities.
  std::size_t residual = failed_globals;
  for (std::size_t f : failures_per_group) residual += f > 0 ? f - 1 : 0;
  return residual <= code.r;
}

std::size_t LrcStripeShape::single_repair_reads(std::size_t chunk) const {
  switch (role(chunk)) {
    case LrcChunkRole::kData:
    case LrcChunkRole::kLocalParity:
      return code_.group_data_chunks();  // rest of the local group
    case LrcChunkRole::kGlobalParity:
      return code_.k;
  }
  throw InternalError("unknown chunk role");
}

std::vector<LrcStripePlacement> place_lrc_declustered(const Topology& topo, const LrcCode& code,
                                                      std::size_t stripes, std::uint64_t seed) {
  code.validate();
  const std::size_t width = code.width();
  MLEC_REQUIRE(topo.config().racks >= width, "LRC-Dp needs at least one rack per chunk");
  Rng rng(seed);
  std::vector<LrcStripePlacement> out;
  out.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    LrcStripePlacement placement;
    auto racks = rng.sample_without_replacement(topo.config().racks, width);
    placement.racks.reserve(width);
    for (auto r : racks) placement.racks.push_back(static_cast<RackId>(r));
    out.push_back(std::move(placement));
  }
  return out;
}

}  // namespace mlec
