#include "placement/declustered.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace mlec {

DeclusteredLayout make_declustered_layout(std::size_t pool_disks, std::size_t width,
                                          std::size_t stripes, DeclusterStrategy strategy,
                                          std::uint64_t seed) {
  MLEC_REQUIRE(width >= 1 && width <= pool_disks, "stripe width must fit the pool");
  MLEC_REQUIRE(stripes >= 1, "need at least one stripe");
  DeclusteredLayout layout;
  layout.pool_disks = pool_disks;
  layout.stripe_width = width;
  layout.stripes.reserve(stripes);
  Rng rng(seed);

  switch (strategy) {
    case DeclusterStrategy::kRoundRobin: {
      // Contiguous groups, diagonally shifted one disk per row — the
      // classic rotated-parity generalization.
      const std::size_t groups = std::max<std::size_t>(1, pool_disks / width);
      for (std::size_t s = 0; s < stripes; ++s) {
        const std::size_t row = s / groups;
        const std::size_t group = s % groups;
        std::vector<std::uint32_t> disks(width);
        for (std::size_t j = 0; j < width; ++j)
          disks[j] = static_cast<std::uint32_t>((group * width + j + row) % pool_disks);
        layout.stripes.push_back(std::move(disks));
      }
      break;
    }
    case DeclusterStrategy::kPseudorandom: {
      for (std::size_t s = 0; s < stripes; ++s) {
        auto sample = rng.sample_without_replacement(pool_disks, width);
        layout.stripes.emplace_back(sample.begin(), sample.end());
      }
      break;
    }
    case DeclusterStrategy::kLowOverlap: {
      // Greedy: grow each stripe by the disk that adds the smallest
      // worst-case pair overlap, breaking ties by the lightest load —
      // the single-overlap-declustered-parity idea.
      std::vector<std::vector<std::uint32_t>> overlap(pool_disks,
                                                      std::vector<std::uint32_t>(pool_disks, 0));
      std::vector<std::uint32_t> load(pool_disks, 0);
      for (std::size_t s = 0; s < stripes; ++s) {
        std::vector<std::uint32_t> disks;
        disks.reserve(width);
        std::vector<bool> used(pool_disks, false);
        // Seed with the least-loaded disk (random ties).
        std::uint32_t first = 0;
        std::uint32_t best_load = std::numeric_limits<std::uint32_t>::max();
        const std::size_t rotate = static_cast<std::size_t>(rng.uniform_below(pool_disks));
        for (std::size_t i = 0; i < pool_disks; ++i) {
          const auto d = static_cast<std::uint32_t>((i + rotate) % pool_disks);
          if (load[d] < best_load) {
            best_load = load[d];
            first = d;
          }
        }
        disks.push_back(first);
        used[first] = true;
        while (disks.size() < width) {
          std::uint32_t best = 0;
          std::uint64_t best_key = std::numeric_limits<std::uint64_t>::max();
          for (std::size_t i = 0; i < pool_disks; ++i) {
            const auto d = static_cast<std::uint32_t>((i + rotate) % pool_disks);
            if (used[d]) continue;
            std::uint32_t worst = 0;
            for (auto member : disks) worst = std::max(worst, overlap[d][member]);
            const std::uint64_t key = (static_cast<std::uint64_t>(worst) << 32) | load[d];
            if (key < best_key) {
              best_key = key;
              best = d;
            }
          }
          disks.push_back(best);
          used[best] = true;
        }
        for (auto a : disks) {
          ++load[a];
          for (auto b : disks)
            if (a != b) ++overlap[a][b];
        }
        layout.stripes.push_back(std::move(disks));
      }
      break;
    }
  }
  return layout;
}

LayoutQuality analyze_layout(const DeclusteredLayout& layout) {
  const std::size_t n = layout.pool_disks;
  MLEC_REQUIRE(n >= 2, "analysis needs at least two disks");
  std::vector<std::size_t> load(n, 0);
  std::vector<std::vector<std::size_t>> overlap(n, std::vector<std::size_t>(n, 0));
  for (const auto& stripe : layout.stripes) {
    for (auto a : stripe) {
      ++load[a];
      for (auto b : stripe)
        if (a != b) ++overlap[a][b];
    }
  }

  LayoutQuality q;
  double load_sum = 0;
  for (std::size_t d = 0; d < n; ++d) {
    load_sum += static_cast<double>(load[d]);
    q.max_stripes_per_disk = std::max(q.max_stripes_per_disk, static_cast<double>(load[d]));
  }
  q.mean_stripes_per_disk = load_sum / static_cast<double>(n);

  double fanout_sum = 0;
  q.min_rebuild_fanout = static_cast<double>(n);
  double imbalance_sum = 0;
  std::size_t counted = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (load[d] == 0) continue;
    std::size_t fanout = 0;
    std::size_t max_reads = 0;
    std::size_t total_reads = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (s == d) continue;
      if (overlap[d][s] > 0) ++fanout;
      max_reads = std::max(max_reads, overlap[d][s]);
      total_reads += overlap[d][s];
      q.max_pair_overlap = std::max(q.max_pair_overlap, overlap[d][s]);
    }
    fanout_sum += static_cast<double>(fanout);
    q.min_rebuild_fanout = std::min(q.min_rebuild_fanout, static_cast<double>(fanout));
    const double even = static_cast<double>(total_reads) / static_cast<double>(fanout);
    imbalance_sum += static_cast<double>(max_reads) / even;
    ++counted;
  }
  q.mean_rebuild_fanout = counted ? fanout_sum / static_cast<double>(counted) : 0;
  q.read_imbalance = counted ? imbalance_sum / static_cast<double>(counted) : 0;
  return q;
}

double layout_rebuild_mbps(const DeclusteredLayout& layout, std::size_t k, double disk_mbps) {
  const std::size_t n = layout.pool_disks;
  const std::size_t w = layout.stripe_width;
  MLEC_REQUIRE(k >= 1 && k < w, "need 1 <= k < stripe width");
  MLEC_REQUIRE(disk_mbps > 0.0, "disk bandwidth must be positive");

  std::vector<std::size_t> load(n, 0);
  std::vector<std::vector<std::size_t>> overlap(n, std::vector<std::size_t>(n, 0));
  for (const auto& stripe : layout.stripes)
    for (auto a : stripe) {
      ++load[a];
      for (auto b : stripe)
        if (a != b) ++overlap[a][b];
    }

  // Rebuilding disk d reads k of its stripes' w-1 surviving chunks,
  // proportionally to co-membership, and writes its chunks to spare space
  // spread over all survivors. The slowest survivor bounds the rebuild.
  double rate_sum = 0;
  std::size_t counted = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (load[d] == 0) continue;
    const double rebuilt = static_cast<double>(load[d]);
    double worst_io = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (s == d) continue;
      const double reads = static_cast<double>(overlap[d][s]) * static_cast<double>(k) /
                           static_cast<double>(w - 1);
      const double writes = rebuilt / static_cast<double>(n - 1);
      worst_io = std::max(worst_io, reads + writes);
    }
    rate_sum += rebuilt / worst_io * disk_mbps;
    ++counted;
  }
  return counted ? rate_sum / static_cast<double>(counted) : 0.0;
}

}  // namespace mlec
