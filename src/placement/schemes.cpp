#include "placement/schemes.hpp"

#include "util/error.hpp"

namespace mlec {

Placement network_placement(MlecScheme scheme) {
  switch (scheme) {
    case MlecScheme::kCC:
    case MlecScheme::kCD:
      return Placement::kClustered;
    case MlecScheme::kDC:
    case MlecScheme::kDD:
      return Placement::kDeclustered;
  }
  throw InternalError("unknown scheme");
}

Placement local_placement(MlecScheme scheme) {
  switch (scheme) {
    case MlecScheme::kCC:
    case MlecScheme::kDC:
      return Placement::kClustered;
    case MlecScheme::kCD:
    case MlecScheme::kDD:
      return Placement::kDeclustered;
  }
  throw InternalError("unknown scheme");
}

MlecScheme make_scheme(Placement network, Placement local) {
  if (network == Placement::kClustered)
    return local == Placement::kClustered ? MlecScheme::kCC : MlecScheme::kCD;
  return local == Placement::kClustered ? MlecScheme::kDC : MlecScheme::kDD;
}

std::string to_string(Placement placement) {
  return placement == Placement::kClustered ? "C" : "D";
}

std::string to_string(MlecScheme scheme) {
  return to_string(network_placement(scheme)) + "/" + to_string(local_placement(scheme));
}

std::string to_string(const SlecScheme& scheme) {
  const std::string domain = scheme.domain == SlecDomain::kLocal ? "Loc" : "Net";
  const std::string placement = scheme.placement == Placement::kClustered ? "Cp" : "Dp";
  return domain + "-" + placement;
}

std::string to_string(RepairMethod method) {
  switch (method) {
    case RepairMethod::kRepairAll:
      return "R_ALL";
    case RepairMethod::kRepairFailedOnly:
      return "R_FCO";
    case RepairMethod::kRepairHybrid:
      return "R_HYB";
    case RepairMethod::kRepairMinimum:
      return "R_MIN";
  }
  throw InternalError("unknown repair method");
}

}  // namespace mlec
