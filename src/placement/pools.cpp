#include "placement/pools.hpp"

namespace mlec {

PoolLayout::PoolLayout(const DataCenterConfig& dc, const MlecCode& code, MlecScheme scheme)
    : dc_(dc), code_(code), scheme_(scheme) {
  dc_.validate();
  code_.validate();

  if (local_placement(scheme) == Placement::kClustered) {
    local_pool_disks_ = code.local_width();
    MLEC_REQUIRE(dc.disks_per_enclosure % local_pool_disks_ == 0,
                 "local clustered placement needs disks/enclosure to be a multiple of k_l+p_l");
    local_pools_per_enclosure_ = dc.disks_per_enclosure / local_pool_disks_;
  } else {
    local_pool_disks_ = dc.disks_per_enclosure;
    MLEC_REQUIRE(dc.disks_per_enclosure >= code.local_width(),
                 "declustered local pool must hold at least one stripe width of disks");
    local_pools_per_enclosure_ = 1;
  }

  if (network_placement(scheme) == Placement::kClustered) {
    network_pool_racks_ = code.network_width();
    MLEC_REQUIRE(dc.racks % network_pool_racks_ == 0,
                 "network clustered placement needs racks to be a multiple of k_n+p_n");
    rack_groups_ = dc.racks / network_pool_racks_;
    network_pool_members_ = network_pool_racks_;
    // One network pool per (rack group, enclosure position, pool position):
    // pools at the same position across the group's racks share a network
    // pool, so each group contributes pools-per-rack network pools.
    network_pools_ = rack_groups_ * local_pools_per_rack();
  } else {
    network_pool_racks_ = dc.racks;
    MLEC_REQUIRE(dc.racks >= code.network_width(),
                 "declustered network pool needs at least k_n+p_n racks");
    rack_groups_ = 1;
    network_pool_members_ = total_local_pools();
    network_pools_ = 1;
  }
}

double PoolLayout::local_stripes_per_pool() const {
  const double chunks = static_cast<double>(local_pool_disks_) * dc_.chunks_per_disk();
  return chunks / static_cast<double>(code_.local_width());
}

double PoolLayout::network_stripes_per_pool() const {
  return total_network_stripes() / static_cast<double>(network_pools_);
}

double PoolLayout::total_network_stripes() const {
  const double chunks = static_cast<double>(dc_.total_disks()) * dc_.chunks_per_disk();
  return chunks / static_cast<double>(code_.stripe_chunks());
}

SlecLayout::SlecLayout(const DataCenterConfig& dc, const SlecCode& code, SlecScheme scheme)
    : dc_(dc), code_(code), scheme_(scheme) {
  dc_.validate();
  code_.validate();
  const std::size_t width = code.width();
  if (scheme.domain == SlecDomain::kLocal) {
    if (scheme.placement == Placement::kClustered) {
      MLEC_REQUIRE(dc.disks_per_enclosure % width == 0,
                   "local clustered SLEC needs disks/enclosure to be a multiple of k+p");
      pool_disks_ = width;
      total_pools_ = dc.total_disks() / width;
    } else {
      MLEC_REQUIRE(dc.disks_per_enclosure >= width,
                   "declustered local pool must hold at least one stripe width");
      pool_disks_ = dc.disks_per_enclosure;
      total_pools_ = dc.total_enclosures();
    }
  } else {
    if (scheme.placement == Placement::kClustered) {
      MLEC_REQUIRE(dc.racks % width == 0,
                   "network clustered SLEC needs racks to be a multiple of k+p");
      // A pool is k+p disks, one per rack of a rack group, same position.
      pool_disks_ = width;
      total_pools_ = dc.total_disks() / width;
    } else {
      MLEC_REQUIRE(dc.racks >= width, "network declustered SLEC needs at least k+p racks");
      pool_disks_ = dc.total_disks();
      total_pools_ = 1;
    }
  }
}

double SlecLayout::stripes_per_pool() const {
  return total_stripes() / static_cast<double>(total_pools_);
}

double SlecLayout::total_stripes() const {
  const double chunks = static_cast<double>(dc_.total_disks()) * dc_.chunks_per_disk();
  return chunks / static_cast<double>(code_.width());
}

}  // namespace mlec
