// Parity-declustered layout generation and quality analysis.
//
// The paper's local-Dp pools rely on the parity-declustering literature it
// cites (Holland & Gibson; Alvarez et al.; PDDL; single-overlap declustered
// parity): stripes of width w spread over a pool of n >> w disks so every
// surviving disk contributes to a failed disk's rebuild. This module
// generates concrete layouts under three strategies and quantifies the
// properties the paper's bandwidth model assumes: rebuild fan-out (how many
// survivors participate) and read balance (how evenly they contribute).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mlec {

/// One declustered layout: stripe -> the w disk slots it occupies (disk
/// indices are pool-relative, 0..n-1; slot j holds chunk j, parities last).
struct DeclusteredLayout {
  std::size_t pool_disks = 0;
  std::size_t stripe_width = 0;
  std::vector<std::vector<std::uint32_t>> stripes;
};

enum class DeclusterStrategy {
  kRoundRobin,     ///< rotated contiguous groups (RAID-5-style diagonal shift)
  kPseudorandom,   ///< uniformly random w-subsets (what large systems deploy)
  kLowOverlap,     ///< greedy pair-overlap minimization (single-overlap-style)
};

/// Generate `stripes` stripes of width `width` over `pool_disks` disks.
/// Every stripe uses distinct disks; strategies differ in how evenly the
/// stripes overlap. Requires width <= pool_disks.
DeclusteredLayout make_declustered_layout(std::size_t pool_disks, std::size_t width,
                                          std::size_t stripes, DeclusterStrategy strategy,
                                          std::uint64_t seed = 1);

/// Quality metrics of a layout, from the perspective of rebuilding one
/// failed disk (averaged over all disks).
struct LayoutQuality {
  double mean_stripes_per_disk = 0;   ///< capacity balance
  double max_stripes_per_disk = 0;
  /// Mean/min number of distinct surviving disks that hold data needed to
  /// rebuild a failed disk (the paper's "all the surviving disks
  /// participate" when fan-out ~= n-1).
  double mean_rebuild_fanout = 0;
  double min_rebuild_fanout = 0;
  /// Max over survivors of chunks read from that survivor, divided by the
  /// even share — 1.0 is a perfectly balanced rebuild.
  double read_imbalance = 0;
  /// Largest number of stripes shared by any disk pair (single-overlap
  /// layouts push this to 1, shrinking the blast radius of double failures).
  std::size_t max_pair_overlap = 0;
};

LayoutQuality analyze_layout(const DeclusteredLayout& layout);

/// Effective rebuild bandwidth (MB/s) of one failed disk under this layout:
/// survivors serve reads of k chunks per rebuilt chunk, writes spread over
/// the pool's spare space, each disk capped at `disk_mbps`. This is the
/// layout-aware refinement of Table 2's declustered row: it degrades toward
/// the clustered 40 MB/s as fan-out shrinks and imbalance grows.
double layout_rebuild_mbps(const DeclusteredLayout& layout, std::size_t k, double disk_mbps);

}  // namespace mlec
