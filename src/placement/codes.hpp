// Erasure-code parameter sets and the paper's (k+p) / (kn+pn)/(kl+pl) /
// (k,l,r) notations.
#pragma once

#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace mlec {

/// Single-level erasure code with k data and p parity chunks.
struct SlecCode {
  std::size_t k = 0;
  std::size_t p = 0;

  std::size_t width() const { return k + p; }
  /// Fraction of raw capacity spent on parity.
  double overhead() const { return static_cast<double>(p) / static_cast<double>(width()); }

  std::string notation() const {
    return "(" + std::to_string(k) + "+" + std::to_string(p) + ")";
  }
  void validate() const {
    MLEC_REQUIRE(k >= 1, "SLEC needs at least one data chunk");
  }
  bool operator==(const SlecCode&) const = default;
};

/// Two-level MLEC code: network (k_n+p_n) over local (k_l+p_l).
struct MlecCode {
  SlecCode network;
  SlecCode local;

  /// The paper's default (10+2)/(17+3).
  static MlecCode paper_default() { return {{10, 2}, {17, 3}}; }

  std::size_t network_width() const { return network.width(); }
  std::size_t local_width() const { return local.width(); }
  /// Chunks of one network stripe = (k_n+p_n)(k_l+p_l).
  std::size_t stripe_chunks() const { return network_width() * local_width(); }
  /// Total parity overhead: 1 - (k_n k_l) / ((k_n+p_n)(k_l+p_l)).
  double overhead() const {
    return 1.0 - static_cast<double>(network.k * local.k) /
                     static_cast<double>(stripe_chunks());
  }
  std::string notation() const { return network.notation() + "/" + local.notation(); }
  void validate() const {
    network.validate();
    local.validate();
  }
  bool operator==(const MlecCode&) const = default;
};

/// Azure-style locally repairable code: k data chunks in l local groups (one
/// local parity per group) plus r global parities.
struct LrcCode {
  std::size_t k = 0;
  std::size_t l = 0;
  std::size_t r = 0;

  std::size_t width() const { return k + l + r; }
  double overhead() const {
    return static_cast<double>(l + r) / static_cast<double>(width());
  }
  std::size_t group_data_chunks() const { return k / l; }
  /// Chunks per local group including the group's local parity.
  std::size_t group_width() const { return group_data_chunks() + 1; }
  std::string notation() const {
    return "(" + std::to_string(k) + "," + std::to_string(l) + "," + std::to_string(r) + ")";
  }
  void validate() const {
    MLEC_REQUIRE(k >= 1 && l >= 1, "LRC needs data chunks and at least one group");
    MLEC_REQUIRE(k % l == 0, "LRC data chunks must divide evenly into groups");
  }
  bool operator==(const LrcCode&) const = default;
};

}  // namespace mlec
