// Explicit chunk-level stripe placement (the paper's Figures 2-3 made
// executable).
//
// At 57.6k-disk scale the analysis layers work with counts, but examples,
// tests, and the chunk-level repair planner need real chunk -> disk maps.
// StripeMap materializes them for any topology small enough to enumerate,
// honoring each scheme's placement constraints:
//   * local-Cp: a stripe's chunks occupy its pool's k_l+p_l disks;
//   * local-Dp: chunks pseudorandomly spread over the pool, distinct disks;
//   * network-Cp: a network stripe's local stripes sit at the same pool
//     position across its rack group;
//   * network-Dp: local stripes pseudorandomly spread, distinct racks.
#pragma once

#include <cstddef>
#include <vector>

#include "placement/codes.hpp"
#include "placement/pools.hpp"
#include "placement/schemes.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace mlec {

/// Identifier of a local pool, global across the data center.
using LocalPoolId = std::uint32_t;

/// One local stripe: chunk j lives on disks[j]; the last p_l entries are the
/// local parity chunks.
struct LocalStripePlacement {
  LocalPoolId pool;
  std::vector<DiskId> disks;
};

/// One network stripe: local stripe i (the last p_n are network parities)
/// with its chunk placement.
struct NetworkStripePlacement {
  std::vector<LocalStripePlacement> locals;
};

class StripeMap {
 public:
  /// Materialize `stripes_per_network_pool` network stripes in every network
  /// pool (for network-Dp there is a single pool; pass the total you want).
  StripeMap(const Topology& topo, const MlecCode& code, MlecScheme scheme,
            std::size_t stripes_per_network_pool, std::uint64_t seed = 42);

  const PoolLayout& layout() const { return layout_; }
  const Topology& topology() const { return topo_; }
  const std::vector<NetworkStripePlacement>& stripes() const { return stripes_; }

  /// Disks of a local pool.
  std::vector<DiskId> pool_disks(LocalPoolId pool) const;
  /// Rack that hosts a local pool.
  RackId pool_rack(LocalPoolId pool) const;
  LocalPoolId pool_of_disk(DiskId disk) const;
  std::size_t total_pools() const { return layout_.total_local_pools(); }

 private:
  Topology topo_;
  PoolLayout layout_;
  std::vector<NetworkStripePlacement> stripes_;
};

/// Table 1 failure-mode classification of one materialized system state.
struct FailureAssessment {
  std::size_t failed_chunks = 0;            ///< chunks on failed disks
  std::size_t affected_local_stripes = 0;   ///< >= 1 failed chunk
  std::size_t locally_recoverable_local_stripes = 0;  ///< 1..p_l failures
  std::size_t lost_local_stripes = 0;       ///< >= p_l+1 failures
  std::size_t catastrophic_local_pools = 0; ///< pools with >= 1 lost stripe
  std::size_t affected_network_stripes = 0;
  std::size_t recoverable_network_stripes = 0;  ///< 1..p_n lost locals
  std::size_t lost_network_stripes = 0;     ///< >= p_n+1 lost locals (data loss)

  bool data_loss() const { return lost_network_stripes > 0; }
};

/// Classify every stripe of `map` against the failed-disk set (paper Table 1).
FailureAssessment assess_failures(const StripeMap& map, const std::vector<DiskId>& failed_disks);

}  // namespace mlec
