// SystemSpec / Scenario <-> INI deployment files.
//
// A deployment file captures everything MlecAnalyzer needs; a scenario file
// is its superset, adding the failure model, repair policy, and estimation
// knobs consumed by the estimator stack (core/estimator.hpp). Absent keys
// keep the paper's §3 defaults. See example_spec() / example_scenario() for
// the annotated templates.
//
// Unknown keys are diagnosed instead of silently ignored (a typo'd
// `detectoin_hours` used to reproduce the wrong paper setup with no
// warning): by default they are reported to stderr; SpecParsePolicy can
// collect them or turn them into a PreconditionError.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/scenario.hpp"
#include "util/ini.hpp"

namespace mlec {

/// How load_spec / load_scenario treat keys they do not consume.
struct SpecParsePolicy {
  /// Throw PreconditionError naming the offending keys instead of warning.
  bool strict = false;
  /// When non-null, unknown "section.key" names are appended here and
  /// nothing is printed — the caller owns the reporting. Ignored when
  /// `strict` is set.
  std::vector<std::string>* unknown_keys = nullptr;
};

/// Build a spec from an INI file (sections [datacenter], [bandwidth],
/// [code], [failures]). Malformed values throw; unknown keys follow
/// `policy` (default: warn on stderr).
SystemSpec load_spec(const IniFile& ini, const SpecParsePolicy& policy = {});

/// Build a scenario: the spec sections plus [scenario], the extended
/// [failures] keys (kind, weibull_*, ure_per_bit), [sim], and [bursts].
Scenario load_scenario(const IniFile& ini, const SpecParsePolicy& policy = {});

/// Serialize back to INI text (parse(load) round-trips).
std::string format_spec(const SystemSpec& spec);
std::string format_scenario(const Scenario& scenario);

/// Annotated templates documenting every key with the paper defaults.
std::string example_spec();
std::string example_scenario();

/// Bit-exact structural identity of a scenario with the label (`name`)
/// cleared and the seed excluded: every physics field and estimation knob,
/// doubles rendered as hexfloat so distinct values never collide through
/// rounded printing. Two submissions that differ only cosmetically (key
/// order, comments, unit spellings like `18TB` vs `18000GB`) produce the
/// same identity; any parameter change produces a different one.
std::string scenario_identity(const Scenario& scenario);

/// FNV-1a hash of scenario_identity() — the dedup key for the server's
/// memo cache. The seed is excluded here because the cache key pairs the
/// fingerprint with the explicit (method, seed, rse_target) tuple.
std::uint64_t scenario_fingerprint(const Scenario& scenario);

}  // namespace mlec
