// SystemSpec <-> INI deployment files.
//
// A deployment file captures everything MlecAnalyzer needs; absent keys
// keep the paper's §3 defaults. See example_spec() for the full annotated
// template.
#pragma once

#include <string>

#include "core/analyzer.hpp"
#include "util/ini.hpp"

namespace mlec {

/// Build a spec from an INI file (sections [datacenter], [bandwidth],
/// [code], [failures]). Unknown keys are ignored; malformed values throw.
SystemSpec load_spec(const IniFile& ini);

/// Serialize a spec back to INI text (parse(load) round-trips).
std::string format_spec(const SystemSpec& spec);

/// An annotated template documenting every key with the paper defaults.
std::string example_spec();

}  // namespace mlec
