#include "core/advisor.hpp"

#include <sstream>

namespace mlec {

std::string Recommendation::summary() const {
  std::ostringstream os;
  if (!use_mlec) {
    os << "SLEC (single-level erasure coding)";
  } else {
    os << "MLEC " << to_string(scheme) << " with " << to_string(repair);
  }
  return os.str();
}

Recommendation advise(const DeploymentProfile& profile) {
  Recommendation rec;

  // Takeaway 5: modest durability targets are met by SLEC with better
  // performance; roughly, two-level protection starts paying off beyond
  // what a single wide stripe sustains comfortably (~15 nines at 30%
  // overhead in the paper's Figure 12).
  if (profile.required_nines <= 15.0 && profile.throughput_critical) {
    rec.use_mlec = false;
    rec.rationale.push_back(
        "takeaway 5: lower durability requirements are met by SLEC with better performance");
    return rec;
  }
  rec.rationale.push_back(
      "takeaway 6: high durability targets favor MLEC's two-level protection with "
      "minimal repair overhead");

  // Takeaways 3-4: scheme choice follows the failure environment.
  if (profile.frequent_failure_bursts) {
    rec.scheme = MlecScheme::kCC;
    rec.rationale.push_back(
        "takeaway 3: frequent correlated bursts favor C/C, the most burst-tolerant scheme "
        "(Figure 5)");
  } else {
    rec.scheme = MlecScheme::kCD;
    rec.rationale.push_back(
        "takeaway 4: with rare bursts, C/D (or D/D) gives the best durability under "
        "independent failures (Figure 10)");
  }

  // Takeaways 1-2: repair method follows operational capability.
  if (profile.has_devops_team) {
    rec.repair = RepairMethod::kRepairMinimum;
    rec.rationale.push_back(
        "takeaway 2: with cross-level transparency, R_MIN minimizes network repair traffic "
        "by orders of magnitude (Figure 8)");
  } else {
    rec.repair = RepairMethod::kRepairAll;
    rec.rationale.push_back(
        "takeaway 1: off-the-shelf RBODs without cross-level APIs support only R_ALL, "
        "trading performance and durability for simplicity");
  }
  return rec;
}

}  // namespace mlec
