// The paper's four estimation strategies behind one interface.
//
// Every strategy consumes the same Scenario (core/scenario.hpp) and produces
// the same Estimate — PDL, nines, a 95% interval, repair metadata, and a
// provenance note — so callers (the crosscheck harness, `mlecctl estimate`,
// the benches) can swap methods or run them all and compare:
//
//   sim     full-fleet Monte Carlo (analysis/fleet_sim.hpp) run through the
//           campaign runner: checkpoint/resume, cancellation, shard retry,
//           adaptive stopping on the PDL estimate.
//   split   the paper's splitting methodology: Monte-Carlo stage 1 on one
//           local pool (runtime/pool_campaign.hpp) feeding the closed-form
//           stage 2 (analysis/durability.hpp).
//   dp      the fully closed-form splitting pipeline, plus the
//           burst-allocation DP when the scenario carries a burst climate.
//   markov  two-level birth-death chains — "treat a local pool like a
//           disk" — sharing stage-2 exposure/coverage closed forms with dp.
//
// Not every method covers every scenario: Weibull lifetimes, latent-error
// (URE) rates, burst climates, and priority repair each narrow the set.
// applicability() returns a human-readable reason instead of guessing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "runtime/campaign.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"

namespace mlec {

/// What a campaign-backed estimator does when shards exhaust their retry
/// attempts and are quarantined.
enum class DegradePolicy {
  /// Return a partial Estimate built from the surviving shards, flagged
  /// `degraded` with its 95% interval widened by 1/(1 - missing fraction).
  kDegrade,
  /// Throw DegradedError instead of returning a partial answer.
  kFailFast,
};

/// Thrown under DegradePolicy::kFailFast when quarantined shards left part
/// of the sweep uncomputed.
class DegradedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One method's answer for one scenario.
struct Estimate {
  std::string method;      ///< registry name (sim, split, dp, markov)
  std::string provenance;  ///< which engines ran, including any fallbacks
  double pdl = 0.0;
  double nines = 0.0;  ///< -log10(pdl); +inf when pdl == 0
  /// 95% interval on pdl. Monte-Carlo methods report a sampling interval
  /// (Wilson for sim, first-order Poisson propagation for split); the
  /// analytic methods report lo == hi == pdl.
  double pdl_lo = 0.0;
  double pdl_hi = 0.0;
  bool stochastic = false;    ///< interval derives from sampling
  std::uint64_t samples = 0;  ///< missions consumed (0 = pure closed form)

  // Repair metadata, where the method knows it.
  double exposure_hours = 0.0;     ///< time a catastrophic pool stays exposed
  double cat_rate_per_year = 0.0;  ///< catastrophic pools per system-year
  double cross_rack_tb = 0.0;      ///< observed cross-rack repair traffic (sim)
  double coverage = 1.0;           ///< stage-2 stripe coverage (analytic)

  // Campaign outcome (campaign-backed methods only).
  bool truncated = false;
  bool converged = false;
  bool resumed = false;
  /// Quarantined shards left part of the sweep uncomputed: pdl/nines come
  /// from the surviving units and [pdl_lo, pdl_hi] has been widened by
  /// 1/(1 - missing fraction) to price in the lost coverage.
  bool degraded = false;
  std::string degrade_note;  ///< human-readable account of what was lost

  // Perf counters (campaign-backed methods; zero for the closed forms).
  std::uint64_t events_processed = 0;  ///< discrete sim events handled
  std::uint64_t rng_draws = 0;         ///< RNG variates consumed
  std::uint64_t arena_allocations = 0; ///< arena growths after warm-up (sim)
  double elapsed_s = 0.0;              ///< campaign wall-clock seconds
  /// Full campaign report — per-shard done/elapsed drives the `--perf`
  /// trials-per-second table. Empty shards for the analytic methods.
  CampaignReport campaign;
};

/// Execution knobs shared by all estimators; only the campaign-backed
/// methods (sim, split) consume the checkpoint/convergence fields.
struct EstimateOptions {
  ThreadPool* pool = nullptr;
  StopToken stop{};
  /// Base journal path; empty runs in-memory. Campaign-backed estimators
  /// append ".<method>" so one base path serves --method=all without
  /// journal collisions.
  std::string checkpoint_path;
  bool resume = false;
  std::size_t shards = 0;
  /// Adaptive stopping target (0 disables): PDL RSE for sim, catastrophe-
  /// count RSE for split's stage 1.
  double target_rse = 0.0;
  /// Max missions this invocation (0 = unlimited).
  std::uint64_t unit_budget = 0;
  /// Missions a shard runs between journal commits.
  std::uint64_t checkpoint_every = 256;
  /// Shard watchdog deadline in seconds; 0 disables (see
  /// CampaignConfig::shard_timeout_s).
  double shard_timeout_s = 0.0;
  /// Quarantined-shard policy: partial degraded Estimate vs DegradedError.
  DegradePolicy degrade = DegradePolicy::kDegrade;
  /// Per-commit progress feed from the underlying campaign (units done,
  /// current RSE); the server streams these to `watch` subscribers. Must be
  /// thread-safe — shards invoke it concurrently.
  std::function<void(const CampaignProgress&)> progress;
  /// ThreadPool dispatch lane for the campaign's shard chunks (see
  /// CampaignConfig::pool_lane).
  std::size_t pool_lane = kLaneNormal;
};

class Estimator {
 public:
  virtual ~Estimator() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view describe() const = 0;
  /// Empty when the scenario is inside this method's domain; otherwise the
  /// reason it cannot run (shown verbatim in reports).
  virtual std::string applicability(const Scenario& scenario) const = 0;
  /// Estimate the scenario. Throws PreconditionError when applicability()
  /// is non-empty or the scenario fails validate().
  virtual Estimate estimate(const Scenario& scenario,
                            const EstimateOptions& options = {}) const = 0;
};

/// The four strategies in the paper's presentation order:
/// sim, split, dp, markov. Entries are process-lifetime singletons.
const std::vector<const Estimator*>& estimator_registry();

/// Look up a registered estimator by name; nullptr when unknown.
const Estimator* find_estimator(std::string_view name);

}  // namespace mlec
