#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "analysis/burst_pdl.hpp"
#include "analysis/durability.hpp"
#include "analysis/repair_time.hpp"
#include "math/combin.hpp"
#include "math/markov.hpp"
#include "placement/pools.hpp"
#include "runtime/fleet_campaign.hpp"
#include "runtime/pool_campaign.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/units.hpp"

namespace mlec {

namespace {

/// Journal path for one method under a shared base path (--method=all runs
/// several campaigns; each needs its own journal identity).
std::string method_checkpoint(const EstimateOptions& options, std::string_view method) {
  if (options.checkpoint_path.empty()) return {};
  return options.checkpoint_path + "." + std::string(method);
}

void require_applicable(const Estimator& estimator, const Scenario& scenario) {
  scenario.validate();
  const std::string why = estimator.applicability(scenario);
  if (!why.empty())
    throw PreconditionError(std::string(estimator.name()) +
                            " estimator cannot run this scenario: " + why);
}

/// Apply the quarantined-shard policy to a campaign-backed estimate.
/// kFailFast throws; kDegrade marks the estimate and widens its interval by
/// 1/(1 - missing fraction) — the surviving units are an unbiased sample
/// (shard partitions are exchangeable under the substream scheme), but the
/// lost coverage is priced into the uncertainty instead of hidden.
void apply_degrade_policy(Estimate& e, const CampaignReport& report, DegradePolicy policy) {
  if (!report.degraded()) return;
  const std::string account =
      std::to_string(report.quarantined()) + " of " + std::to_string(report.shards.size()) +
      " shards quarantined; " + std::to_string(report.units_done) + " of " +
      std::to_string(report.units_requested) + " units computed";
  if (policy == DegradePolicy::kFailFast)
    throw DegradedError(e.method + " estimate degraded: " + account);
  e.degraded = true;
  if (report.units_done == 0) {
    // Nothing survived: no point estimate is defensible, so report the
    // vacuous interval rather than a silently wrong number.
    e.pdl_lo = 0.0;
    e.pdl_hi = 1.0;
    e.degrade_note = account + "; no usable interval";
    return;
  }
  const double widen = static_cast<double>(report.units_requested) /
                       static_cast<double>(report.units_done);
  e.pdl_lo = std::max(0.0, e.pdl - (e.pdl - e.pdl_lo) * widen);
  e.pdl_hi = std::min(1.0, e.pdl + (e.pdl_hi - e.pdl) * widen);
  std::ostringstream note;
  note.precision(3);
  note << account << "; 95% interval widened x" << widen;
  e.degrade_note = note.str();
}

/// Shared applicability limits of the exponential-only analytic pipelines.
std::string analytic_failure_limits(const Scenario& scenario) {
  if (scenario.failure_kind == FailureDistribution::Kind::kWeibull)
    return "closed forms assume exponential lifetimes (kind=weibull)";
  return {};
}

/// The network-level code model when the scenario departs from classic RS,
/// nullptr otherwise (so the MDS closed forms keep their exact legacy
/// arithmetic and outputs).
std::shared_ptr<const CodeModel> non_mds_network_model(const Scenario& scenario) {
  if (scenario.system.network_family == CodeFamily::kRs) return nullptr;
  return make_code_model(scenario.system.network_level());
}

// ---------------------------------------------------------------------------
// sim: full-fleet Monte Carlo through the campaign runner.

class SimEstimator final : public Estimator {
 public:
  std::string_view name() const override { return "sim"; }
  std::string_view describe() const override {
    return "full-fleet Monte Carlo via the campaign runner";
  }

  std::string applicability(const Scenario& scenario) const override {
    if (scenario.failure_kind == FailureDistribution::Kind::kWeibull)
      return "the fleet simulator draws exponential inter-failure times from AFR "
             "(kind=weibull unsupported)";
    if (scenario.ure_per_bit > 0.0)
      return "latent-error (URE) rates are modeled by the dp estimator only";
    if (scenario.has_bursts())
      return "stochastic burst climates are folded in by the dp estimator only";
    return {};
  }

  Estimate estimate(const Scenario& scenario, const EstimateOptions& options) const override {
    require_applicable(*this, scenario);
    MLEC_FAULT_POINT("estimator.sim.pre");

    FleetCampaignOptions campaign;
    campaign.checkpoint_path = method_checkpoint(options, name());
    campaign.resume = options.resume;
    campaign.shards = options.shards;
    campaign.checkpoint_every = options.checkpoint_every;
    campaign.shard_timeout_s = options.shard_timeout_s;
    campaign.target_rse = options.target_rse;
    campaign.unit_budget = options.unit_budget;
    campaign.stop = options.stop;
    campaign.progress = options.progress;
    campaign.pool_lane = options.pool_lane;
    const FleetCampaignResult run = run_fleet_campaign(scenario.fleet_config(), scenario.missions,
                                                       scenario.seed, campaign, options.pool);

    Estimate e;
    e.method = std::string(name());
    e.provenance = "count-level fleet Monte Carlo (FleetMissionEngine) via the campaign runner";
    e.pdl = run.result.pdl();
    e.nines = durability_nines(e.pdl);
    const auto ci = run.result.pdl_interval();
    // The Wilson lower bound is exactly 0 at zero observed losses; clear
    // the floating-point residue so the nines interval's upper edge is the
    // +inf it should be (zero losses are consistent with any tiny PDL).
    e.pdl_lo = run.result.data_loss_missions == 0 ? 0.0 : ci.lo;
    e.pdl_hi = ci.hi;
    e.stochastic = true;
    e.samples = run.result.missions;
    e.exposure_hours = run.result.catastrophe_exposure_hours.mean();
    e.cat_rate_per_year = run.result.catastrophes_per_system_year(scenario.system.mission_hours);
    e.cross_rack_tb = run.result.cross_rack_tb;
    e.truncated = run.report.truncated;
    e.converged = run.report.converged;
    e.resumed = run.report.resumed;
    e.events_processed = run.result.events_processed;
    e.rng_draws = run.result.rng_draws;
    e.arena_allocations = run.result.arena_allocations;
    e.elapsed_s = run.report.elapsed_s;
    e.campaign = run.report;
    apply_degrade_policy(e, run.report, options.degrade);
    return e;
  }
};

// ---------------------------------------------------------------------------
// split: Monte-Carlo stage 1 on one local pool, closed-form stage 2.

class SplitEstimator final : public Estimator {
 public:
  std::string_view name() const override { return "split"; }
  std::string_view describe() const override {
    return "Monte-Carlo stage-1 pool simulation feeding the closed-form stage 2";
  }

  std::string applicability(const Scenario& scenario) const override {
    if (scenario.failure_kind == FailureDistribution::Kind::kWeibull)
      return "the stage-1 pool simulator draws exponential lifetimes (kind=weibull unsupported)";
    if (scenario.ure_per_bit > 0.0)
      return "the stage-1 pool simulator does not model latent errors (use dp)";
    if (scenario.has_bursts())
      return "stochastic burst climates are folded in by the dp estimator only";
    return {};
  }

  Estimate estimate(const Scenario& scenario, const EstimateOptions& options) const override {
    require_applicable(*this, scenario);
    MLEC_FAULT_POINT("estimator.split.pre");

    LocalPoolCampaignOptions campaign;
    campaign.checkpoint_path = method_checkpoint(options, name());
    campaign.resume = options.resume;
    campaign.shards = options.shards;
    campaign.checkpoint_every = options.checkpoint_every;
    campaign.shard_timeout_s = options.shard_timeout_s;
    campaign.target_rse = options.target_rse;
    campaign.unit_budget = options.unit_budget;
    campaign.stop = options.stop;
    campaign.progress = options.progress;
    campaign.pool_lane = options.pool_lane;
    const LocalPoolCampaignResult stage1_run = run_local_pool_campaign(
        scenario.local_pool_config(), scenario.split_missions, scenario.seed, campaign,
        options.pool);

    Estimate e;
    e.method = std::string(name());
    e.samples = stage1_run.missions;
    std::optional<LocalPoolStats> stage1;
    if (stage1_run.catastrophes > 0) {
      stage1 = stage1_run.stats();
      e.stochastic = true;
      e.provenance = "campaign-run stage-1 pool simulation feeding the closed-form stage 2";
    } else {
      // Statistically valid but uninformative stage 1: fall back to the
      // closed forms so the caller still gets a point estimate, and say so.
      e.provenance = "stage-1 simulation observed 0 catastrophes; closed-form stage 1 substituted";
    }

    const DurabilityEnv env = scenario.durability_env();
    const auto network = non_mds_network_model(scenario);
    const MlecDurabilityResult dur =
        mlec_durability(env, scenario.system.code, scenario.system.scheme,
                        scenario.system.repair, stage1, network.get());
    e.pdl = dur.pdl;
    e.nines = dur.nines;
    e.exposure_hours = dur.exposure_hours;
    e.cat_rate_per_year = dur.system_cat_rate_per_year;
    e.coverage = dur.coverage;
    if (e.stochastic) {
      // First-order propagation of the stage-1 Poisson error: the stage-2
      // loss rate scales like the catastrophe rate to the (t+1)-th power
      // (t+1 overlapping pools, t = the network level's min tolerance =
      // p_n for MDS), so the relative error amplifies by that exponent.
      const std::size_t tol =
          network ? network->min_tolerance() : scenario.system.code.network.p;
      const double rel = 1.959964 / std::sqrt(static_cast<double>(stage1_run.catastrophes));
      const double amp = static_cast<double>(tol + 1) * rel;
      e.pdl_lo = std::max(0.0, e.pdl * (1.0 - amp));
      e.pdl_hi = std::min(1.0, e.pdl * (1.0 + amp));
    } else {
      e.pdl_lo = e.pdl_hi = e.pdl;
    }
    e.truncated = stage1_run.report.truncated;
    e.converged = stage1_run.report.converged;
    e.resumed = stage1_run.report.resumed;
    e.events_processed = stage1_run.events_processed;
    e.rng_draws = stage1_run.rng_draws;
    e.elapsed_s = stage1_run.report.elapsed_s;
    e.campaign = stage1_run.report;
    apply_degrade_policy(e, stage1_run.report, options.degrade);
    return e;
  }
};

// ---------------------------------------------------------------------------
// dp: fully closed-form splitting pipeline (+ burst-allocation DP).

class DpEstimator final : public Estimator {
 public:
  std::string_view name() const override { return "dp"; }
  std::string_view describe() const override {
    return "closed-form splitting pipeline, plus the burst-allocation DP for burst climates";
  }

  std::string applicability(const Scenario& scenario) const override {
    if (auto why = analytic_failure_limits(scenario); !why.empty()) return why;
    if (local_placement(scenario.system.scheme) == Placement::kDeclustered &&
        !scenario.priority_repair)
      return "the declustered closed form models priority reconstruction "
             "(priority_repair=false unsupported)";
    if (scenario.system.network_family == CodeFamily::kLrc && scenario.has_bursts())
      return "the burst-allocation DP prices loss cells with MDS counting "
             "(LRC network level with a burst climate unsupported)";
    return {};
  }

  Estimate estimate(const Scenario& scenario, const EstimateOptions& options) const override {
    (void)options;  // pure closed form: nothing to checkpoint or parallelize
    require_applicable(*this, scenario);
    MLEC_FAULT_POINT("estimator.dp.pre");

    const DurabilityEnv env = scenario.durability_env();
    const auto network = non_mds_network_model(scenario);
    const MlecDurabilityResult indep =
        mlec_durability(env, scenario.system.code, scenario.system.scheme,
                        scenario.system.repair, std::nullopt, network.get());

    Estimate e;
    e.method = std::string(name());
    e.pdl = indep.pdl;
    e.nines = indep.nines;
    e.exposure_hours = indep.exposure_hours;
    e.cat_rate_per_year = indep.system_cat_rate_per_year;
    e.coverage = indep.coverage;
    e.provenance = "closed-form splitting pipeline (Markov stage 1, overlap stage 2)";
    if (scenario.has_bursts()) {
      const BurstPdlEngine engine(scenario.burst_config());
      const SimpleDurability with =
          mlec_durability_with_bursts(env, scenario.system.code, scenario.system.scheme,
                                      scenario.system.repair, scenario.bursts, engine);
      e.pdl = with.pdl;
      e.nines = with.nines;
      e.samples = scenario.burst_trials;
      e.provenance += " + burst-allocation engine (" + std::to_string(scenario.burst_trials) +
                      " trials per burst cell)";
    }
    e.pdl_lo = e.pdl_hi = e.pdl;
    return e;
  }
};

// ---------------------------------------------------------------------------
// markov: two-level birth-death chains, "treat a local pool like a disk".

class MarkovEstimator final : public Estimator {
 public:
  std::string_view name() const override { return "markov"; }
  std::string_view describe() const override {
    return "two-level birth-death chains (pool-as-a-disk)";
  }

  std::string applicability(const Scenario& scenario) const override {
    if (auto why = analytic_failure_limits(scenario); !why.empty()) return why;
    if (scenario.ure_per_bit > 0.0)
      return "the birth-death chains do not model latent errors (use dp)";
    if (scenario.has_bursts())
      return "stochastic burst climates are folded in by the dp estimator only";
    if (network_placement(scenario.system.scheme) == Placement::kDeclustered)
      return "pool-as-a-disk needs clustered network placement (independent network pools)";
    if (local_placement(scenario.system.scheme) == Placement::kDeclustered &&
        scenario.priority_repair)
      return "the local birth-death chain has no priority-reconstruction state "
             "(declustered pools with priority repair diverge)";
    if (scenario.system.network_family == CodeFamily::kLrc)
      return "pool-as-a-disk chains count failed pools, which assumes an MDS "
             "network level (LRC loses data at pattern-dependent counts; use dp or sim)";
    return {};
  }

  Estimate estimate(const Scenario& scenario, const EstimateOptions& options) const override {
    (void)options;  // pure closed form
    require_applicable(*this, scenario);
    MLEC_FAULT_POINT("estimator.markov.pre");

    const DurabilityEnv env = scenario.durability_env();
    const MlecCode& code = scenario.system.code;
    const MlecScheme scheme = scenario.system.scheme;
    const PoolLayout layout(env.dc, code, scheme);
    const RepairTimeModel rtm(env.dc, env.bw, code);

    // Lost-stripe fraction at catastrophe, needed by the shared stage-2
    // closed forms: the analytic midpoint for clustered pools, the
    // hypergeometric tail for declustered.
    const bool local_clustered = local_placement(scheme) == Placement::kClustered;
    const double frac =
        local_clustered
            ? 0.5
            : hypergeom_tail_geq(static_cast<std::int64_t>(layout.local_pool_disks()),
                                 static_cast<std::int64_t>(code.local.p + 1),
                                 static_cast<std::int64_t>(code.local_width()),
                                 static_cast<std::int64_t>(code.local.p + 1));

    MlecMarkovParams params;
    params.kn = code.network.k;
    params.pn = code.network.p;
    params.kl = code.local.k;
    params.pl = code.local.p;
    params.local_pool_disks = layout.local_pool_disks();
    params.disk_fail_rate = env.afr / units::kHoursPerYear;
    params.disk_repair_rate =
        1.0 / (env.detection_hours + rtm.single_disk_repair_hours(scheme));
    // Clustered pools rebuild each failed disk onto its own spare; the
    // declustered (non-priority) idealization also repairs in parallel.
    params.local_parallel_repair = true;
    params.pool_repair_rate =
        1.0 / stage2_exposure_hours(env, code, scheme, scenario.system.repair, frac);
    params.network_pools = layout.network_pools();

    const MlecMarkovResult chains = mlec_markov_mttdl(params);
    const double coverage = stage2_coverage(env, code, scheme, scenario.system.repair, frac);

    Estimate e;
    e.method = std::string(name());
    e.provenance =
        "two-level birth-death chains (pool-as-a-disk) with shared stage-2 closed forms";
    e.pdl = -std::expm1(-coverage * env.mission_hours / chains.system_mttdl_hours);
    e.nines = durability_nines(e.pdl);
    e.pdl_lo = e.pdl_hi = e.pdl;
    e.exposure_hours = 1.0 / params.pool_repair_rate;
    e.cat_rate_per_year = units::kHoursPerYear / chains.local_pool_mttf_hours *
                          static_cast<double>(layout.total_local_pools());
    e.coverage = coverage;
    return e;
  }
};

}  // namespace

const std::vector<const Estimator*>& estimator_registry() {
  static const SimEstimator sim;
  static const SplitEstimator split;
  static const DpEstimator dp;
  static const MarkovEstimator markov;
  static const std::vector<const Estimator*> registry{&sim, &split, &dp, &markov};
  return registry;
}

const Estimator* find_estimator(std::string_view name) {
  for (const Estimator* estimator : estimator_registry())
    if (estimator->name() == name) return estimator;
  return nullptr;
}

}  // namespace mlec
