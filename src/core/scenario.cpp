#include "core/scenario.hpp"

#include "placement/pools.hpp"
#include "util/error.hpp"

namespace mlec {

void Scenario::validate() const {
  system.dc.validate();
  system.code.validate();
  system.bandwidth.validate();
  const LevelCode net = system.network_level();
  net.validate();
  if (system.network_family == CodeFamily::kLrc) {
    MLEC_REQUIRE(system.network_lrc.k == system.code.network.k &&
                     net.width() == system.code.network_width(),
                 "[code] mlec network part must equal the LRC shape: k_n = k and "
                 "p_n = l + r (pool layout arithmetic depends on it)");
  }
  // Surfaces family-specific limits (wide-RS k floor, LRC table width)
  // here rather than mid-estimate; the factory caches the result.
  (void)make_code_model(net);
  MLEC_REQUIRE(system.afr > 0.0 && system.afr < 1.0, "AFR must be in (0,1)");
  MLEC_REQUIRE(system.detection_hours >= 0.0, "detection time must be non-negative");
  MLEC_REQUIRE(system.mission_hours > 0.0, "mission must be positive");
  if (failure_kind == FailureDistribution::Kind::kWeibull) {
    MLEC_REQUIRE(weibull_shape > 0.0, "Weibull shape must be positive");
    MLEC_REQUIRE(weibull_scale_hours > 0.0, "Weibull scale must be positive");
  }
  MLEC_REQUIRE(ure_per_bit >= 0.0, "URE rate must be non-negative");
  MLEC_REQUIRE(bursts.bursts_per_year >= 0.0, "burst rate must be non-negative");
  MLEC_REQUIRE(missions > 0, "sim missions must be positive");
  MLEC_REQUIRE(split_missions > 0, "split missions must be positive");
  MLEC_REQUIRE(burst_trials > 0, "burst trials must be positive");
  // Construction checks the code fits the topology under this scheme.
  const PoolLayout layout(system.dc, system.code, system.scheme);
  (void)layout;
}

FailureDistribution Scenario::failure_distribution() const {
  FailureDistribution dist;
  dist.kind = failure_kind;
  dist.afr = system.afr;
  dist.weibull_shape = weibull_shape;
  dist.weibull_scale_hours = weibull_scale_hours;
  return dist;
}

DurabilityEnv Scenario::durability_env() const {
  DurabilityEnv env = system.durability_env();
  env.ure_per_bit = ure_per_bit;
  return env;
}

FleetSimConfig Scenario::fleet_config() const {
  FleetSimConfig cfg;
  cfg.dc = system.dc;
  cfg.code = system.code;
  cfg.scheme = system.scheme;
  cfg.method = system.repair;
  cfg.bandwidth = system.bandwidth;
  cfg.failures = failure_distribution();
  cfg.detection_hours = system.detection_hours;
  cfg.mission_hours = system.mission_hours;
  cfg.priority_repair = priority_repair;
  cfg.network_level = system.network_level();
  return cfg;
}

LocalPoolSimConfig Scenario::local_pool_config() const {
  const PoolLayout layout(system.dc, system.code, system.scheme);
  LocalPoolSimConfig cfg;
  cfg.code = system.code.local;
  cfg.placement = local_placement(system.scheme);
  cfg.pool_disks = layout.local_pool_disks();
  cfg.disk_capacity_tb = system.dc.disk_capacity_tb;
  cfg.chunk_kb = system.dc.chunk_kb;
  cfg.afr = system.afr;
  cfg.detection_hours = system.detection_hours;
  cfg.bandwidth = system.bandwidth;
  cfg.mission_hours = system.mission_hours;
  cfg.priority_repair = priority_repair;
  return cfg;
}

BurstPdlConfig Scenario::burst_config() const {
  BurstPdlConfig cfg;
  cfg.dc = system.dc;
  cfg.trials_per_cell = burst_trials;
  cfg.seed = seed;
  return cfg;
}

Scenario Scenario::paper_default() { return Scenario{}; }

}  // namespace mlec
