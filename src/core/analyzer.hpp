// Public one-stop API for MLEC deployment analysis.
//
// MlecAnalyzer bundles one deployment specification (topology, bandwidth
// policy, code, scheme, repair method, failure environment) and exposes
// every analysis from the paper through a single object. Quickstart:
//
//   mlec::SystemSpec spec;                         // the paper's §3 setup
//   mlec::MlecAnalyzer analyzer(spec);
//   auto durability = analyzer.durability();       // splitting + Markov
//   std::cout << analyzer.report();                // formatted summary
#pragma once

#include <string>

#include "analysis/durability.hpp"
#include "analysis/repair_time.hpp"
#include "analysis/traffic.hpp"
#include "gf/code_model.hpp"
#include "placement/codes.hpp"
#include "placement/pools.hpp"
#include "placement/schemes.hpp"
#include "topology/bandwidth.hpp"
#include "topology/topology.hpp"

namespace mlec {

/// One MLEC deployment. Defaults reproduce the paper's §3 setup:
/// (10+2)/(17+3) over 57,600 disks, 1% AFR, 30-minute detection.
struct SystemSpec {
  DataCenterConfig dc = DataCenterConfig::paper_default();
  BandwidthConfig bandwidth{};
  MlecCode code = MlecCode::paper_default();
  MlecScheme scheme = MlecScheme::kCC;
  RepairMethod repair = RepairMethod::kRepairMinimum;
  double afr = 0.01;
  double detection_hours = 0.5;
  double mission_hours = 8766.0;
  /// Network-level code family. kRs keeps the paper's MDS analysis; kLrc
  /// interprets `network_lrc` as the network level (its width must match
  /// code.network_width() so pool layout arithmetic is unchanged); kRsWide
  /// tags wide stripes (k >= 50). The local level stays Reed-Solomon.
  CodeFamily network_family = CodeFamily::kRs;
  LrcCode network_lrc{};

  /// The network level as a pluggable LevelCode for make_code_model().
  LevelCode network_level() const {
    switch (network_family) {
      case CodeFamily::kRs: return LevelCode::make_rs(code.network);
      case CodeFamily::kRsWide: return LevelCode::make_wide(code.network);
      case CodeFamily::kLrc: return LevelCode::make_lrc(network_lrc);
    }
    return LevelCode::make_rs(code.network);
  }

  DurabilityEnv durability_env() const {
    return {dc, bandwidth, afr, detection_hours, mission_hours};
  }
};

class MlecAnalyzer {
 public:
  explicit MlecAnalyzer(SystemSpec spec);

  const SystemSpec& spec() const { return spec_; }
  const PoolLayout& layout() const { return layout_; }

  /// Table 2: repair sizes and available repair bandwidth.
  Table2Row repair_bandwidth() const;
  /// Figure 6a/6b repair times (hours), R_ALL for the pool.
  double single_disk_repair_hours() const;
  double catastrophic_repair_hours() const;
  /// Figure 8: traffic of repairing one catastrophic local pool.
  InjectionTraffic injection_traffic() const;
  /// Figure 9: network/local time split under the spec's repair method.
  RepairTimeModel::MethodTime method_repair_time() const;
  /// Figures 7/10: two-stage durability. Pass simulation-derived stage-1
  /// stats to run the splitting workflow.
  MlecDurabilityResult durability(
      const std::optional<LocalPoolStats>& stage1 = std::nullopt) const;
  /// Figure 5: PDL of one burst cell (y failures over x racks).
  double burst_pdl(std::size_t racks, std::size_t failures,
                   std::size_t trials = 2000) const;
  /// Figure 11/12 axis: measured single-core encoding throughput (GB/s).
  double encoding_gbps() const;
  /// §5.1.4: expected cross-rack repair traffic per year.
  AnnualTraffic annual_traffic() const;

  /// Human-readable summary covering all of the above (minus the burst
  /// heatmap, which is a sweep).
  std::string report() const;

 private:
  SystemSpec spec_;
  PoolLayout layout_;
};

}  // namespace mlec
