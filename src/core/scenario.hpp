// One scenario, every engine.
//
// A Scenario is the single description of an evaluation run that all four
// estimation strategies (core/estimator.hpp) consume: the deployment
// (SystemSpec), the failure model (exponential or Weibull, optional burst
// climate, optional latent-error rate), the repair policy (priority
// reconstruction), and the method-specific estimation knobs (mission
// counts, trial counts, seed). It is INI round-trippable through spec_io
// (load_scenario / format_scenario), so the same file drives `mlecctl
// estimate`, the benches, and the tests.
//
// The conversion methods are the *only* place the legacy per-engine config
// structs (FleetSimConfig, LocalPoolSimConfig, BurstPdlConfig,
// DurabilityEnv) are populated from a spec — engines keep their own structs
// but no caller hand-rolls them anymore.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/burst_pdl.hpp"
#include "analysis/durability.hpp"
#include "analysis/fleet_sim.hpp"
#include "core/analyzer.hpp"
#include "sim/failure_gen.hpp"
#include "sim/local_pool_sim.hpp"

namespace mlec {

struct Scenario {
  /// Optional label carried into reports ([scenario] name).
  std::string name;

  /// Deployment: topology, bandwidth, code, scheme, repair method, AFR,
  /// detection and mission times.
  SystemSpec system;

  /// Failure-source kind. The analytic estimators and the fleet simulator
  /// draw exponential lifetimes from system.afr; kWeibull narrows which
  /// estimators apply.
  FailureDistribution::Kind failure_kind = FailureDistribution::Kind::kExponential;
  double weibull_shape = 1.2;
  double weibull_scale_hours = 8.766e5;

  /// Declustered priority reconstruction (the paper's default).
  bool priority_repair = true;

  /// Unrecoverable-read-error probability per bit read during rebuilds;
  /// 0 disables the latent-error extension (analytic estimators only).
  double ure_per_bit = 0.0;

  /// Correlated-burst climate overlaid on independent failures;
  /// bursts_per_year == 0 means none.
  BurstClimate bursts{};

  // --- estimation knobs ---
  std::uint64_t missions = 1000;        ///< fleet-sim missions (method=sim)
  std::uint64_t split_missions = 20000; ///< stage-1 pool missions (method=split)
  std::size_t burst_trials = 1500;      ///< burst-engine trials per cell (method=dp)
  std::uint64_t seed = 1;

  void validate() const;

  bool has_bursts() const { return bursts.bursts_per_year > 0.0; }

  FailureDistribution failure_distribution() const;
  /// Environment for the analytic durability pipeline (includes ure_per_bit).
  DurabilityEnv durability_env() const;
  /// Full-fleet Monte-Carlo configuration (method=sim).
  FleetSimConfig fleet_config() const;
  /// Stage-1 single-pool simulation configuration (method=split).
  LocalPoolSimConfig local_pool_config() const;
  /// Burst-allocation DP engine configuration (method=dp with bursts).
  BurstPdlConfig burst_config() const;

  /// The paper's §3 default setup.
  static Scenario paper_default();
};

}  // namespace mlec
