// The paper's §6.1 takeaways as an executable configuration advisor.
//
// Given a coarse description of the deployment's constraints and failure
// environment, recommends a redundancy architecture (SLEC or MLEC), an MLEC
// scheme and a repair method, with the paper's rationale attached.
#pragma once

#include <string>
#include <vector>

#include "placement/schemes.hpp"

namespace mlec {

struct DeploymentProfile {
  /// Large storage devops team able to manage cross-level repair APIs
  /// (takeaways 1-2).
  bool has_devops_team = false;
  /// Correlated failure bursts observed frequently (takeaways 3-4).
  bool frequent_failure_bursts = false;
  /// Required durability in nines over one year (takeaways 5-6).
  double required_nines = 10.0;
  /// Encoding throughput matters more than maximum durability (takeaway 5).
  bool throughput_critical = false;
};

struct Recommendation {
  /// False: a single-level EC suffices (takeaway 5).
  bool use_mlec = true;
  MlecScheme scheme = MlecScheme::kCC;
  RepairMethod repair = RepairMethod::kRepairAll;
  std::vector<std::string> rationale;

  std::string summary() const;
};

/// Apply the paper's takeaways to a profile.
Recommendation advise(const DeploymentProfile& profile);

}  // namespace mlec
