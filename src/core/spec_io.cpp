#include "core/spec_io.hpp"

#include <sstream>

#include "placement/notation.hpp"

namespace mlec {

SystemSpec load_spec(const IniFile& ini) {
  SystemSpec spec;

  spec.dc.racks = ini.get_size("datacenter", "racks", spec.dc.racks);
  spec.dc.enclosures_per_rack =
      ini.get_size("datacenter", "enclosures_per_rack", spec.dc.enclosures_per_rack);
  spec.dc.disks_per_enclosure =
      ini.get_size("datacenter", "disks_per_enclosure", spec.dc.disks_per_enclosure);
  spec.dc.disk_capacity_tb =
      ini.get_double("datacenter", "disk_capacity_tb", spec.dc.disk_capacity_tb);
  spec.dc.chunk_kb = ini.get_double("datacenter", "chunk_kb", spec.dc.chunk_kb);

  spec.bandwidth.disk_mbps = ini.get_double("bandwidth", "disk_mbps", spec.bandwidth.disk_mbps);
  spec.bandwidth.rack_gbps = ini.get_double("bandwidth", "rack_gbps", spec.bandwidth.rack_gbps);
  spec.bandwidth.repair_fraction =
      ini.get_double("bandwidth", "repair_fraction", spec.bandwidth.repair_fraction);

  if (const auto code = ini.get("code", "mlec")) spec.code = parse_mlec_code(*code);
  if (const auto scheme = ini.get("code", "scheme")) spec.scheme = parse_mlec_scheme(*scheme);
  if (const auto repair = ini.get("code", "repair")) spec.repair = parse_repair_method(*repair);

  spec.afr = ini.get_double("failures", "afr", spec.afr);
  spec.detection_hours = ini.get_double("failures", "detection_hours", spec.detection_hours);
  spec.mission_hours = ini.get_double("failures", "mission_hours", spec.mission_hours);
  return spec;
}

std::string format_spec(const SystemSpec& spec) {
  std::ostringstream os;
  os << "[datacenter]\n"
     << "racks = " << spec.dc.racks << '\n'
     << "enclosures_per_rack = " << spec.dc.enclosures_per_rack << '\n'
     << "disks_per_enclosure = " << spec.dc.disks_per_enclosure << '\n'
     << "disk_capacity_tb = " << spec.dc.disk_capacity_tb << '\n'
     << "chunk_kb = " << spec.dc.chunk_kb << "\n\n";
  os << "[bandwidth]\n"
     << "disk_mbps = " << spec.bandwidth.disk_mbps << '\n'
     << "rack_gbps = " << spec.bandwidth.rack_gbps << '\n'
     << "repair_fraction = " << spec.bandwidth.repair_fraction << "\n\n";
  os << "[code]\n"
     << "mlec = " << spec.code.notation() << '\n'
     << "scheme = " << to_string(spec.scheme) << '\n'
     << "repair = " << to_string(spec.repair) << "\n\n";
  os << "[failures]\n"
     << "afr = " << spec.afr << '\n'
     << "detection_hours = " << spec.detection_hours << '\n'
     << "mission_hours = " << spec.mission_hours << '\n';
  return os.str();
}

std::string example_spec() {
  return R"(# mlec++ deployment file — every key optional; defaults are the paper's §3
# setup (57,600 disks, (10+2)/(17+3), 1% AFR, 30-minute detection).

[datacenter]
racks = 60
enclosures_per_rack = 8
disks_per_enclosure = 120
disk_capacity_tb = 20
chunk_kb = 128

[bandwidth]
disk_mbps = 200          # raw sequential bandwidth per disk
rack_gbps = 10           # raw cross-rack link per rack
repair_fraction = 0.2    # share of raw bandwidth repairs may use

[code]
mlec = (10+2)/(17+3)     # (kn+pn)/(kl+pl)
scheme = C/D             # C/C, C/D, D/C, D/D
repair = R_MIN           # R_ALL, R_FCO, R_HYB, R_MIN

[failures]
afr = 0.01               # annual failure rate
detection_hours = 0.5
mission_hours = 8766     # one year
)";
}

}  // namespace mlec
