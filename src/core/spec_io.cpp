#include "core/spec_io.hpp"

#include <cctype>
#include <iostream>
#include <sstream>
#include <utility>

#include "placement/notation.hpp"
#include "runtime/journal.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

namespace {

/// Keys consumed by load_spec.
constexpr std::pair<const char*, const char*> kSpecKeys[] = {
    {"datacenter", "racks"},
    {"datacenter", "enclosures_per_rack"},
    {"datacenter", "disks_per_enclosure"},
    {"datacenter", "disk_capacity_tb"},
    {"datacenter", "chunk_kb"},
    {"bandwidth", "disk_mbps"},
    {"bandwidth", "rack_gbps"},
    {"bandwidth", "repair_fraction"},
    {"code", "mlec"},
    {"code", "family"},
    {"code", "lrc"},
    {"code", "scheme"},
    {"code", "repair"},
    {"failures", "afr"},
    {"failures", "detection_hours"},
    {"failures", "mission_hours"},
};

/// Additional keys consumed by load_scenario.
constexpr std::pair<const char*, const char*> kScenarioKeys[] = {
    {"scenario", "name"},
    {"failures", "kind"},
    {"failures", "weibull_shape"},
    {"failures", "weibull_scale_hours"},
    {"failures", "ure_per_bit"},
    {"sim", "priority_repair"},
    {"sim", "missions"},
    {"sim", "split_missions"},
    {"sim", "burst_trials"},
    {"sim", "seed"},
    {"bursts", "per_year"},
    {"bursts", "racks"},
    {"bursts", "failures"},
};

void check_unknown_keys(const IniFile& ini, bool scenario, const SpecParsePolicy& policy) {
  std::string joined;
  std::size_t count = 0;
  for (const auto& [section, key] : ini.keys()) {
    bool known = false;
    for (const auto& [s, k] : kSpecKeys) known = known || (section == s && key == k);
    if (scenario)
      for (const auto& [s, k] : kScenarioKeys) known = known || (section == s && key == k);
    if (known) continue;
    const std::string qualified = section.empty() ? key : section + "." + key;
    if (policy.unknown_keys != nullptr && !policy.strict)
      policy.unknown_keys->push_back(qualified);
    if (!joined.empty()) joined += ", ";
    joined += qualified;
    ++count;
  }
  if (count == 0) return;
  const std::string what = (scenario ? std::string("scenario") : std::string("spec")) +
                           " file has " + std::to_string(count) + " unknown key(s): " + joined;
  if (policy.strict) throw PreconditionError(what);
  if (policy.unknown_keys == nullptr) std::cerr << "warning: " << what << " (ignored)\n";
}

/// Read a size-like key that may carry a decimal storage-unit suffix
/// (KB/MB/GB/TB/PB, case-insensitive), scaled to the key's native unit:
/// with native = units::kTB, "18", "18TB", and "18000GB" all mean 18.
/// Multiply-then-divide keeps round decimal spellings bit-exact
/// (18000 * 1e9 / 1e12 == 18.0 exactly), which the scenario fingerprint
/// relies on to treat equivalent spellings as one cache entry.
double get_sized(const IniFile& ini, const std::string& section, const std::string& key,
                 double fallback, double native_unit_bytes) {
  const auto raw = ini.get(section, key);
  if (!raw) return fallback;
  std::string text = *raw;
  const auto fail = [&] {
    throw PreconditionError("malformed value for " + section + "." + key + ": '" + *raw + "'");
  };

  std::size_t digits_end = text.size();
  while (digits_end > 0 &&
         std::isalpha(static_cast<unsigned char>(text[digits_end - 1])) != 0) {
    --digits_end;
  }
  std::string suffix = text.substr(digits_end);
  for (char& c : suffix) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  while (digits_end > 0 && std::isspace(static_cast<unsigned char>(text[digits_end - 1])) != 0)
    --digits_end;
  text.resize(digits_end);

  double unit_bytes = native_unit_bytes;
  if (!suffix.empty()) {
    constexpr std::pair<const char*, double> kSuffixes[] = {{"KB", units::kKB},
                                                            {"MB", units::kMB},
                                                            {"GB", units::kGB},
                                                            {"TB", units::kTB},
                                                            {"PB", units::kPB}};
    bool known = false;
    for (const auto& [name, bytes] : kSuffixes) {
      if (suffix == name) {
        unit_bytes = bytes;
        known = true;
        break;
      }
    }
    if (!known) fail();
  }

  double value = 0.0;
  try {
    std::size_t consumed = 0;
    value = std::stod(text, &consumed);
    if (consumed != text.size() || text.empty()) fail();
  } catch (const PreconditionError&) {
    throw;
  } catch (const std::exception&) {
    fail();
  }
  return value * unit_bytes / native_unit_bytes;
}

/// The [datacenter]/[bandwidth]/[code]/[failures] fields shared by specs
/// and scenarios (no unknown-key pass — callers run it for their key set).
SystemSpec load_spec_fields(const IniFile& ini) {
  SystemSpec spec;

  spec.dc.racks = ini.get_size("datacenter", "racks", spec.dc.racks);
  spec.dc.enclosures_per_rack =
      ini.get_size("datacenter", "enclosures_per_rack", spec.dc.enclosures_per_rack);
  spec.dc.disks_per_enclosure =
      ini.get_size("datacenter", "disks_per_enclosure", spec.dc.disks_per_enclosure);
  spec.dc.disk_capacity_tb =
      get_sized(ini, "datacenter", "disk_capacity_tb", spec.dc.disk_capacity_tb, units::kTB);
  spec.dc.chunk_kb = get_sized(ini, "datacenter", "chunk_kb", spec.dc.chunk_kb, units::kKB);

  spec.bandwidth.disk_mbps = ini.get_double("bandwidth", "disk_mbps", spec.bandwidth.disk_mbps);
  spec.bandwidth.rack_gbps = ini.get_double("bandwidth", "rack_gbps", spec.bandwidth.rack_gbps);
  spec.bandwidth.repair_fraction =
      ini.get_double("bandwidth", "repair_fraction", spec.bandwidth.repair_fraction);

  if (const auto code = ini.get("code", "mlec")) spec.code = parse_mlec_code(*code);
  if (const auto family = ini.get("code", "family"))
    spec.network_family = parse_code_family(*family);
  if (const auto lrc = ini.get("code", "lrc")) spec.network_lrc = parse_lrc_code(*lrc);
  if (const auto scheme = ini.get("code", "scheme")) spec.scheme = parse_mlec_scheme(*scheme);
  if (const auto repair = ini.get("code", "repair")) spec.repair = parse_repair_method(*repair);

  spec.afr = ini.get_double("failures", "afr", spec.afr);
  spec.detection_hours = ini.get_double("failures", "detection_hours", spec.detection_hours);
  spec.mission_hours = ini.get_double("failures", "mission_hours", spec.mission_hours);
  return spec;
}

FailureDistribution::Kind parse_failure_kind(const std::string& text) {
  if (text == "exponential") return FailureDistribution::Kind::kExponential;
  if (text == "weibull") return FailureDistribution::Kind::kWeibull;
  throw PreconditionError("unknown failure kind '" + text +
                          "' (expected exponential or weibull)");
}

const char* to_string(FailureDistribution::Kind kind) {
  return kind == FailureDistribution::Kind::kWeibull ? "weibull" : "exponential";
}

}  // namespace

SystemSpec load_spec(const IniFile& ini, const SpecParsePolicy& policy) {
  check_unknown_keys(ini, /*scenario=*/false, policy);
  return load_spec_fields(ini);
}

Scenario load_scenario(const IniFile& ini, const SpecParsePolicy& policy) {
  check_unknown_keys(ini, /*scenario=*/true, policy);
  Scenario sc;
  sc.system = load_spec_fields(ini);

  sc.name = ini.get_string("scenario", "name", sc.name);

  if (const auto kind = ini.get("failures", "kind")) sc.failure_kind = parse_failure_kind(*kind);
  sc.weibull_shape = ini.get_double("failures", "weibull_shape", sc.weibull_shape);
  sc.weibull_scale_hours =
      ini.get_double("failures", "weibull_scale_hours", sc.weibull_scale_hours);
  sc.ure_per_bit = ini.get_double("failures", "ure_per_bit", sc.ure_per_bit);

  sc.priority_repair = ini.get_bool("sim", "priority_repair", sc.priority_repair);
  sc.missions = ini.get_size("sim", "missions", sc.missions);
  sc.split_missions = ini.get_size("sim", "split_missions", sc.split_missions);
  sc.burst_trials = ini.get_size("sim", "burst_trials", sc.burst_trials);
  sc.seed = ini.get_size("sim", "seed", sc.seed);

  sc.bursts.bursts_per_year = ini.get_double("bursts", "per_year", sc.bursts.bursts_per_year);
  sc.bursts.racks = ini.get_size("bursts", "racks", sc.bursts.racks);
  sc.bursts.failures = ini.get_size("bursts", "failures", sc.bursts.failures);
  return sc;
}

std::string format_spec(const SystemSpec& spec) {
  std::ostringstream os;
  os << "[datacenter]\n"
     << "racks = " << spec.dc.racks << '\n'
     << "enclosures_per_rack = " << spec.dc.enclosures_per_rack << '\n'
     << "disks_per_enclosure = " << spec.dc.disks_per_enclosure << '\n'
     << "disk_capacity_tb = " << spec.dc.disk_capacity_tb << '\n'
     << "chunk_kb = " << spec.dc.chunk_kb << "\n\n";
  os << "[bandwidth]\n"
     << "disk_mbps = " << spec.bandwidth.disk_mbps << '\n'
     << "rack_gbps = " << spec.bandwidth.rack_gbps << '\n'
     << "repair_fraction = " << spec.bandwidth.repair_fraction << "\n\n";
  os << "[code]\n"
     << "mlec = " << spec.code.notation() << '\n'
     << "family = " << to_string(spec.network_family) << '\n';
  if (spec.network_family == CodeFamily::kLrc)
    os << "lrc = " << spec.network_lrc.notation() << '\n';
  os << "scheme = " << to_string(spec.scheme) << '\n'
     << "repair = " << to_string(spec.repair) << "\n\n";
  os << "[failures]\n"
     << "afr = " << spec.afr << '\n'
     << "detection_hours = " << spec.detection_hours << '\n'
     << "mission_hours = " << spec.mission_hours << '\n';
  return os.str();
}

std::string format_scenario(const Scenario& sc) {
  std::ostringstream os;
  if (!sc.name.empty()) os << "[scenario]\nname = " << sc.name << "\n\n";
  // format_spec ends inside [failures]; the extended failure keys continue
  // that section.
  os << format_spec(sc.system);
  os << "kind = " << to_string(sc.failure_kind) << '\n'
     << "weibull_shape = " << sc.weibull_shape << '\n'
     << "weibull_scale_hours = " << sc.weibull_scale_hours << '\n'
     << "ure_per_bit = " << sc.ure_per_bit << "\n\n";
  os << "[sim]\n"
     << "priority_repair = " << (sc.priority_repair ? "true" : "false") << '\n'
     << "missions = " << sc.missions << '\n'
     << "split_missions = " << sc.split_missions << '\n'
     << "burst_trials = " << sc.burst_trials << '\n'
     << "seed = " << sc.seed << "\n\n";
  os << "[bursts]\n"
     << "per_year = " << sc.bursts.bursts_per_year << '\n'
     << "racks = " << sc.bursts.racks << '\n'
     << "failures = " << sc.bursts.failures << '\n';
  return os.str();
}

std::string scenario_identity(const Scenario& sc) {
  const SystemSpec& s = sc.system;
  std::ostringstream os;
  os << std::hexfloat;
  // v2: the network code-family axis joined the identity. The family-
  // qualified LevelCode notation canonicalizes spellings (an explicit
  // `family = rs` and the default collapse to the same string; any LRC
  // parameter change yields a different one).
  os << "mlec-scenario-identity-v2"
     << "|racks=" << s.dc.racks
     << "|enclosures_per_rack=" << s.dc.enclosures_per_rack
     << "|disks_per_enclosure=" << s.dc.disks_per_enclosure
     << "|disk_capacity_tb=" << s.dc.disk_capacity_tb
     << "|chunk_kb=" << s.dc.chunk_kb
     << "|disk_mbps=" << s.bandwidth.disk_mbps
     << "|rack_gbps=" << s.bandwidth.rack_gbps
     << "|repair_fraction=" << s.bandwidth.repair_fraction
     << "|code=" << s.code.notation()
     << "|network_level=" << s.network_level().notation()
     << "|scheme=" << to_string(s.scheme)
     << "|repair=" << to_string(s.repair)
     << "|afr=" << s.afr
     << "|detection_hours=" << s.detection_hours
     << "|mission_hours=" << s.mission_hours
     << "|kind=" << to_string(sc.failure_kind)
     << "|weibull_shape=" << sc.weibull_shape
     << "|weibull_scale_hours=" << sc.weibull_scale_hours
     << "|priority_repair=" << (sc.priority_repair ? 1 : 0)
     << "|ure_per_bit=" << sc.ure_per_bit
     << "|bursts_per_year=" << sc.bursts.bursts_per_year
     << "|burst_racks=" << sc.bursts.racks
     << "|burst_failures=" << sc.bursts.failures
     << "|missions=" << sc.missions
     << "|split_missions=" << sc.split_missions
     << "|burst_trials=" << sc.burst_trials;
  return os.str();
}

std::uint64_t scenario_fingerprint(const Scenario& scenario) {
  return fingerprint_of(scenario_identity(scenario));
}

std::string example_spec() {
  return R"(# mlec++ deployment file — every key optional; defaults are the paper's §3
# setup (57,600 disks, (10+2)/(17+3), 1% AFR, 30-minute detection).

[datacenter]
racks = 60
enclosures_per_rack = 8
disks_per_enclosure = 120
disk_capacity_tb = 20
chunk_kb = 128

[bandwidth]
disk_mbps = 200          # raw sequential bandwidth per disk
rack_gbps = 10           # raw cross-rack link per rack
repair_fraction = 0.2    # share of raw bandwidth repairs may use

[code]
mlec = (10+2)/(17+3)     # (kn+pn)/(kl+pl)
family = rs              # network level: rs, rs_wide (kn >= 50), lrc
#lrc = (10,1,1)          # LRC shape when family = lrc; needs k = kn, l+r = pn
scheme = C/D             # C/C, C/D, D/C, D/D
repair = R_MIN           # R_ALL, R_FCO, R_HYB, R_MIN

[failures]
afr = 0.01               # annual failure rate
detection_hours = 0.5
mission_hours = 8766     # one year
)";
}

std::string example_scenario() {
  return example_spec() + R"(kind = exponential       # or weibull (narrows applicable estimators)
weibull_shape = 1.2      # used only when kind = weibull
weibull_scale_hours = 876600
ure_per_bit = 0          # latent-error rate; 0 disables (analytic only)

[scenario]
name = paper-default

[sim]
priority_repair = true   # declustered priority reconstruction
missions = 1000          # method=sim fleet missions
split_missions = 20000   # method=split stage-1 pool missions
burst_trials = 1500      # method=dp burst-engine trials per cell
seed = 1

[bursts]
per_year = 0             # correlated-burst climate; 0 = none
racks = 3
failures = 30
)";
}

}  // namespace mlec
