#include "core/analyzer.hpp"

#include <sstream>

#include "analysis/burst_pdl.hpp"
#include "analysis/encoding.hpp"
#include "util/table.hpp"

namespace mlec {

MlecAnalyzer::MlecAnalyzer(SystemSpec spec)
    : spec_(std::move(spec)), layout_(spec_.dc, spec_.code, spec_.scheme) {
  spec_.bandwidth.validate();
  MLEC_REQUIRE(spec_.afr > 0.0 && spec_.afr < 1.0, "AFR must be in (0,1)");
}

Table2Row MlecAnalyzer::repair_bandwidth() const {
  return RepairTimeModel(spec_.dc, spec_.bandwidth, spec_.code).table2_row(spec_.scheme);
}

double MlecAnalyzer::single_disk_repair_hours() const {
  return RepairTimeModel(spec_.dc, spec_.bandwidth, spec_.code)
      .single_disk_repair_hours(spec_.scheme);
}

double MlecAnalyzer::catastrophic_repair_hours() const {
  return RepairTimeModel(spec_.dc, spec_.bandwidth, spec_.code)
      .catastrophic_repair_hours(spec_.scheme);
}

InjectionTraffic MlecAnalyzer::injection_traffic() const {
  return catastrophic_injection_traffic(spec_.dc, spec_.code, spec_.scheme, spec_.repair);
}

RepairTimeModel::MethodTime MlecAnalyzer::method_repair_time() const {
  return RepairTimeModel(spec_.dc, spec_.bandwidth, spec_.code)
      .method_repair_time(spec_.scheme, spec_.repair);
}

MlecDurabilityResult MlecAnalyzer::durability(
    const std::optional<LocalPoolStats>& stage1) const {
  return mlec_durability(spec_.durability_env(), spec_.code, spec_.scheme, spec_.repair, stage1);
}

double MlecAnalyzer::burst_pdl(std::size_t racks, std::size_t failures,
                               std::size_t trials) const {
  BurstPdlConfig cfg;
  cfg.dc = spec_.dc;
  cfg.trials_per_cell = trials;
  return BurstPdlEngine(cfg).mlec_cell(spec_.code, spec_.scheme, racks, failures);
}

double MlecAnalyzer::encoding_gbps() const {
  return mlec_encoding_mbps(spec_.code, spec_.dc.chunk_kb) / 1e3;
}

AnnualTraffic MlecAnalyzer::annual_traffic() const {
  const auto d = durability();
  return mlec_annual_traffic(spec_.dc, spec_.code, spec_.scheme, spec_.repair,
                             d.system_cat_rate_per_year);
}

std::string MlecAnalyzer::report() const {
  std::ostringstream os;
  os << "MLEC deployment " << spec_.code.notation() << " " << to_string(spec_.scheme)
     << ", repair " << to_string(spec_.repair) << '\n';
  os << "  topology: " << spec_.dc.racks << " racks x " << spec_.dc.enclosures_per_rack
     << " enclosures x " << spec_.dc.disks_per_enclosure << " disks ("
     << spec_.dc.total_disks() << " disks, " << Table::num(spec_.dc.total_capacity_tb() / 1e3)
     << " PB)\n";
  os << "  local pools: " << layout_.total_local_pools() << " x " << layout_.local_pool_disks()
     << " disks; network pools: " << layout_.network_pools() << '\n';
  os << "  parity overhead: " << Table::num(100.0 * spec_.code.overhead()) << "%\n";

  const auto row = repair_bandwidth();
  os << "  repair bandwidth: single disk " << Table::num(row.single_disk_mbps)
     << " MB/s, pool (R_ALL) " << Table::num(row.pool_mbps) << " MB/s\n";
  os << "  repair time: single disk " << Table::num(single_disk_repair_hours())
     << " h; catastrophic pool (R_ALL) " << Table::num(catastrophic_repair_hours()) << " h\n";

  const auto traffic = injection_traffic();
  os << "  catastrophic repair traffic (" << to_string(spec_.repair)
     << "): " << Table::num(traffic.cross_rack_tb()) << " TB cross-rack, "
     << Table::num(traffic.local_tb()) << " TB local\n";

  const auto dur = durability();
  os << "  durability: " << Table::num(dur.nines, 3) << " nines (PDL "
     << Table::num(dur.pdl, 3) << "/mission); catastrophic pools "
     << Table::num(dur.system_cat_rate_per_year, 3) << "/yr; exposure "
     << Table::num(dur.exposure_hours, 3) << " h; coverage " << Table::num(dur.coverage, 3)
     << '\n';
  return os.str();
}

}  // namespace mlec
