#include "math/allocation.hpp"

#include <cmath>
#include <limits>

#include "math/combin.hpp"
#include "util/error.hpp"

namespace mlec {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

BurstAllocationSampler::BurstAllocationSampler(std::size_t disks_per_rack, std::size_t max_racks,
                                               std::size_t max_failures)
    : disks_per_rack_(disks_per_rack), max_racks_(max_racks), max_failures_(max_failures) {
  MLEC_REQUIRE(disks_per_rack >= 1, "need at least one disk per rack");
  log_w_.assign((max_racks + 1) * (max_failures + 1), kNegInf);
  const auto d = static_cast<std::int64_t>(disks_per_rack);
  for (std::size_t m = 0; m <= max_racks; ++m) {
    for (std::size_t s = 0; s <= max_failures; ++s) {
      if (m == 0) {
        if (s == 0) log_w_[s] = 0.0;  // one way: the empty allocation
        continue;
      }
      if (s < m || s > m * disks_per_rack) continue;
      // Inclusion-exclusion over the racks that receive no failure;
      // accumulate positive and negative terms separately in log space.
      double pos = kNegInf, neg = kNegInf;
      for (std::size_t j = 0; j < m; ++j) {
        const double term = log_choose(static_cast<std::int64_t>(m), static_cast<std::int64_t>(j)) +
                            log_choose(d * static_cast<std::int64_t>(m - j),
                                       static_cast<std::int64_t>(s));
        if (term == kNegInf) continue;
        if (j % 2 == 0)
          pos = log_add(pos, term);
        else
          neg = log_add(neg, term);
      }
      if (pos == kNegInf) continue;
      // W = exp(pos) - exp(neg); compute log(W) stably.
      if (neg == kNegInf) {
        log_w_[m * (max_failures + 1) + s] = pos;
      } else {
        const double diff = 1.0 - std::exp(neg - pos);
        MLEC_ASSERT(diff > -1e-9);
        log_w_[m * (max_failures + 1) + s] = diff <= 0.0 ? kNegInf : pos + std::log(diff);
      }
    }
  }
}

double BurstAllocationSampler::log_ways(std::size_t racks, std::size_t failures) const {
  MLEC_REQUIRE(racks <= max_racks_ && failures <= max_failures_,
               "query exceeds precomputed table");
  return log_w_[racks * (max_failures_ + 1) + failures];
}

std::vector<std::size_t> BurstAllocationSampler::sample(std::size_t racks, std::size_t failures,
                                                        Rng& rng) const {
  MLEC_REQUIRE(racks >= 1 && racks <= max_racks_, "rack count out of range");
  MLEC_REQUIRE(failures >= racks && failures <= racks * disks_per_rack_ &&
                   failures <= max_failures_,
               "failure count infeasible for this rack count");
  std::vector<std::size_t> counts(racks);
  std::size_t remaining = failures;
  const auto d = static_cast<std::int64_t>(disks_per_rack_);
  for (std::size_t i = 0; i < racks; ++i) {
    const std::size_t left = racks - i - 1;  // racks after this one
    if (left == 0) {
      counts[i] = remaining;
      break;
    }
    // P(f_i = a) = C(D, a) W(left, remaining-a) / W(left+1, remaining).
    const double log_denom = log_ways(left + 1, remaining);
    MLEC_ASSERT(log_denom != kNegInf);
    double u = rng.uniform();
    std::size_t chosen = 0;
    double cum = 0.0;
    const std::size_t a_max = std::min<std::size_t>(disks_per_rack_, remaining - left);
    for (std::size_t a = 1; a <= a_max; ++a) {
      const double lw = log_ways(left, remaining - a);
      if (lw == kNegInf) continue;
      const double p = std::exp(log_choose(d, static_cast<std::int64_t>(a)) + lw - log_denom);
      cum += p;
      chosen = a;
      if (u < cum) break;
    }
    MLEC_ASSERT(chosen >= 1);
    counts[i] = chosen;
    remaining -= chosen;
  }
  return counts;
}

}  // namespace mlec
