// Small dense distributions over non-negative integer counts.
//
// The burst-PDL engine composes per-pool and per-rack count distributions;
// this type keeps those compositions readable (convolve, tail, sample).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace mlec {

/// Probability mass function over {0, 1, ..., size()-1}. Not required to be
/// normalized during construction; call normalize() before sampling.
class DiscreteDist {
 public:
  DiscreteDist() = default;
  explicit DiscreteDist(std::vector<double> pmf);

  /// Point mass at value v.
  static DiscreteDist delta(std::size_t v);

  std::size_t size() const { return pmf_.size(); }
  double pmf(std::size_t k) const { return k < pmf_.size() ? pmf_[k] : 0.0; }
  const std::vector<double>& values() const { return pmf_; }

  double total_mass() const;
  void normalize();

  /// P[X >= k].
  double tail_geq(std::size_t k) const;
  double mean() const;

  /// Distribution of X + Y for independent X, Y; optional cap lumps all mass
  /// at >= cap into the final bucket (saturating convolution).
  DiscreteDist convolve(const DiscreteDist& other, std::size_t cap = 0) const;

  /// Sample a value; requires a normalized distribution. O(size) — fine for
  /// the short supports used here; build_sampler() provides O(1) when hot.
  std::size_t sample(Rng& rng) const;

  /// Precomputed inverse-CDF table for repeated sampling.
  class Sampler {
   public:
    explicit Sampler(const DiscreteDist& dist);
    std::size_t operator()(Rng& rng) const;

   private:
    std::vector<double> cdf_;
  };

 private:
  std::vector<double> pmf_;
};

}  // namespace mlec
