// Exact sampling of burst-failure allocations (paper §4.1.1 setup).
//
// The burst model scatters y simultaneous disk failures uniformly over the
// disks of x chosen racks, conditioned on every rack receiving at least one
// failure. The per-rack counts (f_1..f_x) then follow
//   P(f) ∝ prod_i C(D, f_i)   over compositions with f_i >= 1, sum = y,
// where D is disks per rack. Rejection sampling is hopeless (the all-racks-
// hit event is exponentially rare for y ≈ x), so we sample sequentially with
// inclusion-exclusion partition weights:
//   W(m, s) = #ways to pick s disks from m racks with every rack hit
//           = sum_j (-1)^j C(m, j) C(D(m-j), s).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace mlec {

class BurstAllocationSampler {
 public:
  /// Prepare tables for bursts of up to `max_failures` failures over up to
  /// `max_racks` racks with `disks_per_rack` disks each.
  BurstAllocationSampler(std::size_t disks_per_rack, std::size_t max_racks,
                         std::size_t max_failures);

  /// log W(m, s); -inf when no valid allocation exists (s < m or s > m*D).
  double log_ways(std::size_t racks, std::size_t failures) const;

  /// Sample per-rack failure counts for `failures` failures over `racks`
  /// racks (all >= 1). Requires racks <= max_racks, failures in
  /// [racks, racks*disks_per_rack] and failures <= max_failures.
  std::vector<std::size_t> sample(std::size_t racks, std::size_t failures, Rng& rng) const;

  std::size_t disks_per_rack() const { return disks_per_rack_; }

 private:
  std::size_t disks_per_rack_;
  std::size_t max_racks_;
  std::size_t max_failures_;
  // log_w_[m * (max_failures_+1) + s]
  std::vector<double> log_w_;
};

}  // namespace mlec
