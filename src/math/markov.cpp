#include "math/markov.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mlec {

double BirthDeathChain::mean_time_to_absorption() const {
  const std::size_t m = birth.size();
  MLEC_REQUIRE(m >= 1, "need at least one transient state");
  MLEC_REQUIRE(death.size() == m, "death rates must match birth rates in size");
  for (std::size_t i = 0; i < m; ++i)
    MLEC_REQUIRE(birth[i] > 0.0, "birth rates must be positive (chain must reach absorption)");

  // E[T_0->m] = sum_{j=0}^{m-1} sum_{i=0}^{j} (1/birth_i) prod_{l=i+1}^{j} death_l/birth_l.
  // Evaluate with a running inner sum: S_j = (1/birth_j) + S_{j-1} * death_j/birth_j.
  double total = 0.0;
  double inner = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double ratio = j == 0 ? 0.0 : death[j] / birth[j];
    inner = 1.0 / birth[j] + inner * ratio;
    total += inner;
  }
  return total;
}

double erasure_set_mttdl(std::size_t k, std::size_t p, double unit_fail_rate, double repair_rate,
                         bool parallel_repair) {
  MLEC_REQUIRE(k >= 1, "need at least one data unit");
  MLEC_REQUIRE(unit_fail_rate > 0.0, "failure rate must be positive");
  MLEC_REQUIRE(repair_rate >= 0.0, "repair rate must be non-negative");
  const std::size_t n = k + p;
  const std::size_t m = p + 1;  // absorbing state: p+1 concurrent failures
  BirthDeathChain chain;
  chain.birth.resize(m);
  chain.death.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    chain.birth[i] = static_cast<double>(n - i) * unit_fail_rate;
    chain.death[i] =
        i == 0 ? 0.0 : (parallel_repair ? static_cast<double>(i) * repair_rate : repair_rate);
  }
  return chain.mean_time_to_absorption();
}

MlecMarkovResult mlec_markov_mttdl(const MlecMarkovParams& params) {
  MLEC_REQUIRE(params.local_pool_disks >= params.kl + params.pl,
               "local pool must hold at least one stripe width of disks");
  MLEC_REQUIRE(params.network_pools >= 1, "need at least one network pool");

  MlecMarkovResult r{};
  // Local level: a pool of D disks tolerating p_l concurrent failures.
  // For a clustered pool D == k_l+p_l and this is the exact stripe condition;
  // for a declustered pool, >= p_l+1 arbitrary concurrent failures is the
  // conservative catastrophe condition (§2.3), with parallel repair.
  {
    const std::size_t n = params.local_pool_disks;
    const std::size_t m = params.pl + 1;
    BirthDeathChain chain;
    chain.birth.resize(m);
    chain.death.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      chain.birth[i] = static_cast<double>(n - i) * params.disk_fail_rate;
      chain.death[i] = i == 0 ? 0.0
                              : (params.local_parallel_repair
                                     ? static_cast<double>(i) * params.disk_repair_rate
                                     : params.disk_repair_rate);
    }
    r.local_pool_mttf_hours = chain.mean_time_to_absorption();
  }

  // Network level: treat a local pool like a disk (paper §3). A network pool
  // has k_n+p_n member pools, each "failing" (going catastrophic) at rate
  // 1/local_mttf and being rebuilt at pool_repair_rate.
  r.network_pool_mttdl_hours =
      erasure_set_mttdl(params.kn, params.pn, 1.0 / r.local_pool_mttf_hours,
                        params.pool_repair_rate, /*parallel_repair=*/false);

  // Independent network pools race to the first loss.
  r.system_mttdl_hours = r.network_pool_mttdl_hours / static_cast<double>(params.network_pools);
  return r;
}

double pdl_over_mission(double mttdl_hours, double mission_hours) {
  MLEC_REQUIRE(mttdl_hours > 0.0 && mission_hours >= 0.0, "times must be positive");
  return -std::expm1(-mission_hours / mttdl_hours);
}

double durability_nines(double pdl) {
  MLEC_REQUIRE(pdl >= 0.0 && pdl <= 1.0, "PDL must be a probability");
  if (pdl == 0.0) return std::numeric_limits<double>::infinity();
  return -std::log10(pdl);
}

double pdl_from_nines(double nines) { return std::pow(10.0, -nines); }

}  // namespace mlec
