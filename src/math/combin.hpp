// Log-domain combinatorics: factorials, binomials, hypergeometric and
// Poisson-binomial distributions.
//
// The burst-PDL analysis (paper §4.1.1, §5.1.3, §5.2.3) composes these
// primitives millions of times, so everything works in log space to survive
// C(57600, 60)-scale magnitudes, with thin linear-domain wrappers.
#pragma once

#include <cstdint>
#include <vector>

namespace mlec {

/// log(n!) with an exact cached table for small n and lgamma beyond.
double log_factorial(std::int64_t n);

/// log C(n, k); returns -inf for k < 0 or k > n.
double log_choose(std::int64_t n, std::int64_t k);

/// C(n, k) in double precision (may overflow to inf for huge arguments —
/// callers needing big values stay in log space).
double choose(std::int64_t n, std::int64_t k);

/// Hypergeometric PMF: drawing `draws` without replacement from a population
/// of size `population` containing `successes` marked items, probability of
/// exactly `k` marked draws.
double hypergeom_pmf(std::int64_t population, std::int64_t successes, std::int64_t draws,
                     std::int64_t k);

/// Upper tail P[X >= k] of the hypergeometric above.
double hypergeom_tail_geq(std::int64_t population, std::int64_t successes, std::int64_t draws,
                          std::int64_t k);

/// Binomial PMF / upper tail.
double binomial_pmf(std::int64_t n, double p, std::int64_t k);
double binomial_tail_geq(std::int64_t n, double p, std::int64_t k);

/// Poisson-binomial: X = sum of independent Bernoulli(p_i).
/// Full PMF by DP in O(n^2); `cap` truncates the state space — probabilities
/// of all values >= cap are lumped into the last entry, which is what the
/// ">= p+1 failures" tolerance checks need.
std::vector<double> poisson_binomial_pmf(const std::vector<double>& probs,
                                         std::int64_t cap = -1);

/// P[X >= k] for the Poisson-binomial.
double poisson_binomial_tail_geq(const std::vector<double>& probs, std::int64_t k);

/// log(sum(exp(a)) + exp(b)) without leaving log space.
double log_add(double log_a, double log_b);

}  // namespace mlec
