#include "math/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace mlec {

DiscreteDist::DiscreteDist(std::vector<double> pmf) : pmf_(std::move(pmf)) {
  for (double p : pmf_) MLEC_REQUIRE(p >= 0.0, "pmf entries must be non-negative");
}

DiscreteDist DiscreteDist::delta(std::size_t v) {
  std::vector<double> pmf(v + 1, 0.0);
  pmf[v] = 1.0;
  return DiscreteDist(std::move(pmf));
}

double DiscreteDist::total_mass() const {
  return std::accumulate(pmf_.begin(), pmf_.end(), 0.0);
}

void DiscreteDist::normalize() {
  const double total = total_mass();
  MLEC_REQUIRE(total > 0.0, "cannot normalize a zero distribution");
  for (double& p : pmf_) p /= total;
}

double DiscreteDist::tail_geq(std::size_t k) const {
  double tail = 0.0;
  for (std::size_t i = k; i < pmf_.size(); ++i) tail += pmf_[i];
  return std::min(1.0, tail);
}

double DiscreteDist::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) m += static_cast<double>(i) * pmf_[i];
  return m;
}

DiscreteDist DiscreteDist::convolve(const DiscreteDist& other, std::size_t cap) const {
  if (pmf_.empty()) return other;
  if (other.pmf_.empty()) return *this;
  const std::size_t full = pmf_.size() + other.pmf_.size() - 1;
  const std::size_t states = cap == 0 ? full : std::min(full, cap + 1);
  std::vector<double> out(states, 0.0);
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    if (pmf_[i] == 0.0) continue;
    for (std::size_t j = 0; j < other.pmf_.size(); ++j) {
      const std::size_t k = std::min(i + j, states - 1);
      out[k] += pmf_[i] * other.pmf_[j];
    }
  }
  return DiscreteDist(std::move(out));
}

std::size_t DiscreteDist::sample(Rng& rng) const {
  MLEC_REQUIRE(!pmf_.empty(), "cannot sample empty distribution");
  double u = rng.uniform();
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    u -= pmf_[i];
    if (u < 0.0) return i;
  }
  return pmf_.size() - 1;  // numeric slack lands on the last bucket
}

DiscreteDist::Sampler::Sampler(const DiscreteDist& dist) : cdf_(dist.values()) {
  MLEC_REQUIRE(!cdf_.empty(), "cannot build sampler for empty distribution");
  std::partial_sum(cdf_.begin(), cdf_.end(), cdf_.begin());
  MLEC_REQUIRE(std::abs(cdf_.back() - 1.0) < 1e-9, "sampler requires a normalized distribution");
  cdf_.back() = 1.0;
}

std::size_t DiscreteDist::Sampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace mlec
