#include "math/combin.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mlec {

namespace {
constexpr std::size_t kTableSize = 4096;
const std::array<double, kTableSize>& log_factorial_table() {
  static const auto table = [] {
    std::array<double, kTableSize> t{};
    t[0] = 0.0;
    for (std::size_t i = 1; i < kTableSize; ++i) t[i] = t[i - 1] + std::log(static_cast<double>(i));
    return t;
  }();
  return table;
}
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double log_factorial(std::int64_t n) {
  MLEC_REQUIRE(n >= 0, "factorial of negative number");
  if (static_cast<std::size_t>(n) < kTableSize) return log_factorial_table()[static_cast<std::size_t>(n)];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double choose(std::int64_t n, std::int64_t k) {
  const double lc = log_choose(n, k);
  return lc == kNegInf ? 0.0 : std::exp(lc);
}

double hypergeom_pmf(std::int64_t population, std::int64_t successes, std::int64_t draws,
                     std::int64_t k) {
  MLEC_REQUIRE(population >= 0 && successes >= 0 && draws >= 0,
               "hypergeometric parameters must be non-negative");
  MLEC_REQUIRE(successes <= population && draws <= population,
               "successes/draws cannot exceed population");
  if (k < 0 || k > draws || k > successes || draws - k > population - successes) return 0.0;
  const double lp = log_choose(successes, k) + log_choose(population - successes, draws - k) -
                    log_choose(population, draws);
  return std::exp(lp);
}

double hypergeom_tail_geq(std::int64_t population, std::int64_t successes, std::int64_t draws,
                          std::int64_t k) {
  const std::int64_t hi = std::min(successes, draws);
  if (k <= 0) return 1.0;
  if (k > hi) return 0.0;
  // Sum the shorter side for accuracy: tail directly when it is short.
  double tail = 0.0;
  for (std::int64_t j = k; j <= hi; ++j) tail += hypergeom_pmf(population, successes, draws, j);
  return std::min(1.0, tail);
}

double binomial_pmf(std::int64_t n, double p, std::int64_t k) {
  MLEC_REQUIRE(n >= 0, "binomial n must be non-negative");
  if (k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double lp = log_choose(n, k) + static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lp);
}

double binomial_tail_geq(std::int64_t n, double p, std::int64_t k) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  double tail = 0.0;
  for (std::int64_t j = k; j <= n; ++j) tail += binomial_pmf(n, p, j);
  return std::min(1.0, tail);
}

std::vector<double> poisson_binomial_pmf(const std::vector<double>& probs, std::int64_t cap) {
  const std::size_t n = probs.size();
  const std::size_t states = cap < 0 ? n + 1 : std::min<std::size_t>(n + 1, static_cast<std::size_t>(cap) + 1);
  std::vector<double> pmf(states, 0.0);
  pmf[0] = 1.0;
  std::size_t reach = 0;  // highest index with mass so far (before saturation)
  for (double p : probs) {
    MLEC_ASSERT(p >= 0.0 && p <= 1.0);
    const std::size_t top = std::min(reach + 1, states - 1);
    for (std::size_t j = top; j >= 1; --j) {
      if (j == states - 1) {
        // Saturating bucket: mass stays once it arrives.
        pmf[j] = pmf[j] + pmf[j - 1] * p;
      } else {
        pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
      }
    }
    pmf[0] *= (1.0 - p);
    reach = std::min(reach + 1, states - 1);
  }
  return pmf;
}

double poisson_binomial_tail_geq(const std::vector<double>& probs, std::int64_t k) {
  if (k <= 0) return 1.0;
  if (static_cast<std::size_t>(k) > probs.size()) return 0.0;
  const auto pmf = poisson_binomial_pmf(probs, k);
  return std::min(1.0, pmf.back());
}

double log_add(double log_a, double log_b) {
  if (log_a == kNegInf) return log_b;
  if (log_b == kNegInf) return log_a;
  if (log_a < log_b) std::swap(log_a, log_b);
  return log_a + std::log1p(std::exp(log_b - log_a));
}

}  // namespace mlec
