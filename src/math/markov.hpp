// Continuous-time Markov-chain durability models (paper §3 "Mathematical
// model", used for R_ALL verification and the splitting stage-2 closed forms).
//
// The classic SLEC durability model is a birth-death chain over the number of
// concurrently failed units; MLEC is modeled by iterating it two-level,
// "treating a local pool like a disk" exactly as the paper describes.
#pragma once

#include <cstddef>
#include <vector>

namespace mlec {

/// Birth-death chain on states 0..m where state m is absorbing.
/// birth[i] is the rate i -> i+1 for i in [0, m-1];
/// death[i] is the rate i -> i-1 for i in [1, m-1] (death[0] ignored).
struct BirthDeathChain {
  std::vector<double> birth;
  std::vector<double> death;

  /// Expected first-passage time from state 0 into the absorbing state m,
  /// via the standard nested-product closed form. Units follow the rates.
  double mean_time_to_absorption() const;
};

/// Mean time to data loss of a (k+p) erasure set of `n = k+p` units, where
/// each unit fails at rate `unit_fail_rate`, at most one unit rebuilds at a
/// time at rate `repair_rate`, and p+1 concurrent failures lose data.
/// Set parallel_repair=true to rebuild all failed units concurrently
/// (rate i * repair_rate in state i), the declustered-pool idealization.
double erasure_set_mttdl(std::size_t k, std::size_t p, double unit_fail_rate,
                         double repair_rate, bool parallel_repair = false);

/// Two-level MLEC MTTDL (rates per hour): the local level produces a
/// catastrophic-pool rate and the network level treats pools as units.
struct MlecMarkovParams {
  std::size_t kn, pn;        ///< network code
  std::size_t kl, pl;        ///< local code
  std::size_t local_pool_disks;  ///< units in one local pool (k_l+p_l for Cp)
  double disk_fail_rate;     ///< per-disk failure rate (per hour)
  double disk_repair_rate;   ///< local rebuild rate for one disk (per hour)
  bool local_parallel_repair = false;  ///< declustered local pool
  double pool_repair_rate;   ///< network-level rebuild rate of a whole pool
  std::size_t network_pools; ///< number of independent network pools
};

struct MlecMarkovResult {
  double local_pool_mttf_hours;   ///< mean time to catastrophic local failure
  double network_pool_mttdl_hours;
  double system_mttdl_hours;      ///< across all independent network pools
};

MlecMarkovResult mlec_markov_mttdl(const MlecMarkovParams& params);

/// Probability of at least one data loss within `mission_hours` for a system
/// whose losses arrive at rate 1/mttdl_hours (exponential approximation).
double pdl_over_mission(double mttdl_hours, double mission_hours);

/// Durability "number of nines" = -log10(PDL); the paper's Figure 10/12/15
/// y-axis. PDL of 0 maps to +inf.
double durability_nines(double pdl);

/// Inverse of durability_nines.
double pdl_from_nines(double nines);

}  // namespace mlec
