// Error-handling helpers shared across the library.
//
// The library reports precondition violations with exceptions carrying the
// failing expression and location; hot inner loops use MLEC_ASSERT which
// compiles out in release builds.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mlec {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is broken (library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": precondition failed: " << expr;
  if (!msg.empty()) os << " (" << msg << ')';
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace mlec

/// Validate a documented precondition; throws mlec::PreconditionError.
#define MLEC_REQUIRE(expr, msg)                                                     \
  do {                                                                              \
    if (!(expr))                                                                    \
      ::mlec::detail::throw_precondition(#expr, (msg), std::source_location::current()); \
  } while (0)

/// Internal invariant check; active only in debug builds.
#ifndef NDEBUG
#define MLEC_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr)) throw ::mlec::InternalError("assertion failed: " #expr);   \
  } while (0)
#else
#define MLEC_ASSERT(expr) ((void)0)
#endif
