// Error-handling and contract macros shared across the library.
//
// Two macro families report broken contracts, both capturing the failing
// expression, an optional message, and the source location:
//
//  * MLEC_REQUIRE(expr, msg) — documented preconditions on public entry
//    points. Always compiled, in every build type.
//  * MLEC_ASSERT(expr[, msg]) — internal invariants (library bugs). Active
//    in Debug/sanitizer builds, compiled out under NDEBUG so the simulation
//    hot loops (event heap, trial arena, pool state machine) pay nothing in
//    Release.
//
// Violations are reported through one process-wide handler with two modes:
// throw (default: PreconditionError / InternalError carrying the formatted
// capture) or abort (print the capture to stderr, then std::abort() so a
// debugger/sanitizer sees the exact frame). The mode is resolved once from
// the MLEC_CONTRACTS environment variable ("throw" or "abort") and can be
// overridden programmatically with set_contract_mode(). See DESIGN.md §11
// for the policy on which checks belong to which family.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mlec {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is broken (library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// How a violated contract is reported (see file comment).
enum class ContractMode {
  kThrow,  ///< throw PreconditionError / InternalError (default)
  kAbort,  ///< print the capture to stderr and std::abort()
};

/// Current process-wide mode. First call resolves MLEC_CONTRACTS from the
/// environment ("abort" selects kAbort; anything else keeps kThrow).
ContractMode contract_mode() noexcept;

/// Override the mode (tests, embedders). Thread-safe.
void set_contract_mode(ContractMode mode) noexcept;

namespace detail {

/// Kind of contract that failed; selects the exception type in throw mode
/// and the stderr label in abort mode.
enum class ContractKind { kPrecondition, kInvariant };

/// Format "<file>:<line>: <kind> failed: <expr> (<msg>)" and report it per
/// contract_mode(). Never returns.
[[noreturn]] void contract_failed(ContractKind kind, const char* expr, const std::string& msg,
                                  std::source_location loc);

}  // namespace detail

}  // namespace mlec

/// Validate a documented precondition; reports via the contract handler
/// (throws mlec::PreconditionError in the default mode). Always active.
#define MLEC_REQUIRE(expr, msg)                                                       \
  do {                                                                                \
    if (!(expr))                                                                      \
      ::mlec::detail::contract_failed(::mlec::detail::ContractKind::kPrecondition,    \
                                      #expr, (msg), std::source_location::current()); \
  } while (0)

/// Internal invariant check with an optional message:
/// MLEC_ASSERT(expr) or MLEC_ASSERT(expr, "context"). Active only in
/// builds without NDEBUG; reports via the contract handler (throws
/// mlec::InternalError in the default mode).
#ifndef NDEBUG
#define MLEC_DETAIL_ASSERT2(expr, msg)                                              \
  do {                                                                              \
    if (!(expr))                                                                    \
      ::mlec::detail::contract_failed(::mlec::detail::ContractKind::kInvariant,     \
                                      #expr, (msg),                                 \
                                      std::source_location::current());             \
  } while (0)
#define MLEC_DETAIL_ASSERT1(expr) MLEC_DETAIL_ASSERT2(expr, "")
#else
#define MLEC_DETAIL_ASSERT2(expr, msg) ((void)0)
#define MLEC_DETAIL_ASSERT1(expr) ((void)0)
#endif
#define MLEC_DETAIL_ASSERT_PICK(a, b, macro, ...) macro
#define MLEC_ASSERT(...) \
  MLEC_DETAIL_ASSERT_PICK(__VA_ARGS__, MLEC_DETAIL_ASSERT2, MLEC_DETAIL_ASSERT1)(__VA_ARGS__)
