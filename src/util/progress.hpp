// Lightweight stderr progress reporting for long-running sweeps.
#pragma once

#include <cstddef>
#include <string>

namespace mlec {

/// Prints "label: k/n" lines to stderr at most every ~2 seconds. Disabled
/// entirely when MLEC_QUIET is set. Thread-safe via atomic counters; the
/// printing itself tolerates interleaving (informational only).
class Progress {
 public:
  Progress(std::string label, std::size_t total);

  /// Record `n` completed units and maybe emit a line.
  void tick(std::size_t n = 1);
  /// Emit the final line (idempotent).
  void done();

 private:
  struct Impl;
  std::string label_;
  std::size_t total_;
};

}  // namespace mlec
