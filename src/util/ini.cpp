#include "util/ini.hpp"

#include <algorithm>
#include <cmath>
#include <cctype>
#include <istream>
#include <sstream>

#include "util/error.hpp"

namespace mlec {

namespace {
std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}
}  // namespace

IniFile IniFile::parse(std::istream& in) {
  IniFile ini;
  std::string line;
  std::string section;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#' || text[0] == ';') continue;
    if (text.front() == '[') {
      MLEC_REQUIRE(text.back() == ']' && text.size() > 2,
                   "ini line " + std::to_string(lineno) + ": malformed section header");
      section = trim(text.substr(1, text.size() - 2));
      MLEC_REQUIRE(!section.empty(),
                   "ini line " + std::to_string(lineno) + ": empty section name");
      continue;
    }
    const auto eq = text.find('=');
    MLEC_REQUIRE(eq != std::string::npos,
                 "ini line " + std::to_string(lineno) + ": expected 'key = value'");
    const std::string key = trim(text.substr(0, eq));
    std::string raw = text.substr(eq + 1);
    // Trailing comments: a '#' or ';' preceded by whitespace ends the value.
    for (std::size_t i = 1; i < raw.size(); ++i) {
      if ((raw[i] == '#' || raw[i] == ';') &&
          (raw[i - 1] == ' ' || raw[i - 1] == '\t')) {
        raw.resize(i);
        break;
      }
    }
    const std::string value = trim(raw);
    MLEC_REQUIRE(!key.empty(), "ini line " + std::to_string(lineno) + ": empty key");
    ini.values_[{section, key}] = value;
  }
  return ini;
}

IniFile IniFile::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

bool IniFile::has(const std::string& section, const std::string& key) const {
  return values_.count({section, key}) > 0;
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const auto it = values_.find({section, key});
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string IniFile::get_string(const std::string& section, const std::string& key,
                                const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

double IniFile::get_double(const std::string& section, const std::string& key,
                           double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    MLEC_REQUIRE(pos == v->size(), "trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw PreconditionError("ini [" + section + "] " + key + ": expected a number, got '" +
                            *v + "'");
  }
}

std::size_t IniFile::get_size(const std::string& section, const std::string& key,
                              std::size_t fallback) const {
  const double v = get_double(section, key, static_cast<double>(fallback));
  MLEC_REQUIRE(v >= 0.0 && v == std::floor(v),
               "ini [" + section + "] " + key + ": expected a non-negative integer");
  return static_cast<std::size_t>(v);
}

bool IniFile::get_bool(const std::string& section, const std::string& key,
                       bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  throw PreconditionError("ini [" + section + "] " + key + ": expected a boolean, got '" + *v +
                          "'");
}

}  // namespace mlec
