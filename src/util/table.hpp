// Text output helpers: aligned ASCII tables, CSV, and log-scale heatmaps.
//
// Every bench harness in this repository prints its paper counterpart through
// these helpers so the output format stays uniform and machine-scrapable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlec {

/// Column-aligned text table with an optional title, printable as ASCII or
/// CSV. Cells are strings; numeric convenience setters format compactly.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Render with padded columns, a header separator, and `title` on top.
  std::string to_ascii(const std::string& title = {}) const;
  /// Render as RFC-4180-ish CSV (no quoting of embedded commas: callers keep
  /// cell text comma-free by construction).
  std::string to_csv() const;

  /// Compact numeric formatting used across the library: fixed for moderate
  /// magnitudes, scientific for extremes, trailing zeros trimmed.
  static std::string num(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renderer for the paper's PDL heatmaps (Figures 5, 13, 16): a y-by-x grid
/// of probabilities shown as log10 buckets, matching the paper's -6..0 color
/// scale with one character per cell.
class HeatmapRenderer {
 public:
  /// values[yi][xi] with y_labels descending rows. Values <= 0 render as '.';
  /// otherwise the digit d = min(6, floor(-log10(v))) so '0' = PDL near 1 and
  /// '6' = PDL <= 1e-6.
  static std::string render(const std::vector<std::vector<double>>& values,
                            const std::vector<int>& y_labels, const std::vector<int>& x_labels,
                            const std::string& title);
};

/// Returns true when the environment requests reduced trial counts
/// (MLEC_FAST=1); figure harnesses use it to stay fast in CI loops.
bool fast_mode();

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace mlec
