#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

namespace mlec {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

Rng Rng::for_substream(std::uint64_t seed, std::uint64_t stream) {
  // Matches the historical fleet-shard derivation (splitmix of the seed,
  // golden-ratio stream offset, one split) so existing seeds keep their
  // trajectories.
  std::uint64_t s = seed;
  return Rng(splitmix64(s) ^ (0x9e3779b97f4a7c15ULL * (stream + 1))).split();
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  MLEC_REQUIRE(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
               "all-zero xoshiro state is invalid");
  state_ = state;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  MLEC_REQUIRE(n > 0, "uniform_below needs n > 0");
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MLEC_REQUIRE(lo <= hi, "uniform_int needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::exponential(double rate) {
  MLEC_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // -log(1-U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform()) / rate;
}

void Rng::uniform_fill(std::span<double> out) {
  // Same per-element transform as uniform(): the fill must stay
  // bit-identical to repeated single draws on the same stream.
  for (double& v : out) v = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

void Rng::exponential_fill(std::span<double> out, double rate) {
  MLEC_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // Same expression as exponential(): dividing (not multiplying by a
  // precomputed reciprocal) keeps the fill bit-identical to single draws.
  for (double& v : out) {
    const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    v = -std::log1p(-u) / rate;
  }
}

double Rng::weibull(double shape, double scale) {
  MLEC_REQUIRE(shape > 0.0 && scale > 0.0, "weibull parameters must be positive");
  return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  // Waiting-time method: count geometric skips. O(np) expected, fine for the
  // small np regimes in this library; falls back to per-trial Bernoulli when
  // p is large so the geometric trick stays efficient.
  if (p > 0.5) return n - binomial(n, 1.0 - p);
  const double log_q = std::log1p(-p);
  std::uint64_t hits = 0;
  double skipped = 0;
  while (true) {
    skipped += std::floor(std::log1p(-uniform()) / log_q) + 1;
    if (skipped > static_cast<double>(n)) return hits;
    ++hits;
  }
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n, std::uint64_t k) {
  MLEC_REQUIRE(k <= n, "cannot sample more values than the population size");
  std::vector<std::uint64_t> out;
  out.reserve(k);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  // Floyd's algorithm: for j in [n-k, n), draw t in [0, j]; take t unless
  // already taken, in which case take j.
  for (std::uint64_t j = n - k; j < n; ++j) {
    std::uint64_t t = uniform_below(j + 1);
    if (!seen.insert(t).second) {
      seen.insert(j);
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace mlec
