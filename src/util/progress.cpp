#include "util/progress.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>

namespace mlec {

namespace {
std::atomic<std::size_t> g_count{0};
std::atomic<std::int64_t> g_last_print_ms{0};

bool quiet() {
  static const bool q = [] {
    const char* v = std::getenv("MLEC_QUIET");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return q;
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Progress::Progress(std::string label, std::size_t total)
    : label_(std::move(label)), total_(total) {
  g_count.store(0);
  g_last_print_ms.store(now_ms());
}

void Progress::tick(std::size_t n) {
  if (quiet()) return;
  const std::size_t c = g_count.fetch_add(n) + n;
  const std::int64_t t = now_ms();
  std::int64_t last = g_last_print_ms.load();
  if (t - last >= 2000 && g_last_print_ms.compare_exchange_strong(last, t)) {
    std::cerr << label_ << ": " << c << '/' << total_ << '\n';
  }
}

void Progress::done() {
  if (quiet()) return;
  std::cerr << label_ << ": " << total_ << '/' << total_ << " done\n";
}

}  // namespace mlec
