#include "util/progress.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace mlec {

namespace {
std::atomic<std::size_t> g_count{0};
std::atomic<std::int64_t> g_last_print_ms{0};

bool quiet() {
  static const bool q = [] {
    // Read-only getenv, evaluated once under the static-init guard.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* v = std::getenv("MLEC_QUIET");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return q;
}

/// Carriage-return in-place updates are only legible on an interactive
/// terminal; a daemon log or CI capture would accumulate one giant line of
/// \r-garbage. Non-TTY stderr therefore gets plain newline-terminated lines
/// (each flushed immediately, so `tail -f` and CI streaming stay live).
/// MLEC_PROGRESS=plain|tty overrides the detection for tests.
bool tty_output() {
  static const bool tty = [] {
    // Read-only getenv, evaluated once under the static-init guard.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* v = std::getenv("MLEC_PROGRESS")) {
      if (v[0] == 'p') return false;
      if (v[0] == 't') return true;
    }
#ifndef _WIN32
    return ::isatty(STDERR_FILENO) == 1;
#else
    return false;
#endif
  }();
  return tty;
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void emit(const std::string& label, std::size_t count, std::size_t total, bool final) {
  if (tty_output()) {
    // Rewrite one status line in place; trailing spaces wipe a previously
    // longer render. The final line gets a newline so the prompt is clean.
    std::cerr << '\r' << label << ": " << count << '/' << total;
    if (total > 0) std::cerr << " (" << (100 * count / total) << "%)";
    std::cerr << "   " << (final ? "done\n" : "") << std::flush;
  } else {
    std::cerr << label << ": " << count << '/' << total << (final ? " done" : "") << '\n'
              << std::flush;
  }
}

}  // namespace

Progress::Progress(std::string label, std::size_t total)
    : label_(std::move(label)), total_(total) {
  g_count.store(0);
  g_last_print_ms.store(now_ms());
}

void Progress::tick(std::size_t n) {
  if (quiet()) return;
  const std::size_t c = g_count.fetch_add(n) + n;
  const std::int64_t t = now_ms();
  std::int64_t last = g_last_print_ms.load();
  if (t - last >= 2000 && g_last_print_ms.compare_exchange_strong(last, t))
    emit(label_, c, total_, /*final=*/false);
}

void Progress::done() {
  if (quiet()) return;
  emit(label_, total_, total_, /*final=*/true);
}

}  // namespace mlec
