// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for on-disk record
// integrity — the checksum behind the campaign journal's framed records.
// Table-driven, one byte per step: journal records are hundreds of bytes,
// so a slice-by-8 variant would be complexity without a measurable win.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mlec {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c >> 1) ^ ((c & 1u) != 0 ? 0xEDB88320u : 0u);
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental updates:
/// crc32(b, crc32(a)) == crc32(a ++ b).
inline std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    c = detail::kCrc32Table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace mlec
