// Deterministic fault injection for robustness testing.
//
// The estimator service must survive its own failures — a crash mid-
// checkpoint, a hung shard, a throwing task — and the only way to *prove*
// that is to inject those failures on demand, deterministically, in real
// builds. This registry provides named fault points compiled into every
// build (Release included) that cost one relaxed atomic load when no
// schedule is armed:
//
//   MLEC_FAULT_POINT("journal.rename.pre");
//
// Schedules are configured through the MLEC_FAULTS environment variable,
// the `--faults=` CLI flag, or fault::configure() directly:
//
//   MLEC_FAULTS="<point>=<action>[@<trigger>][;<point>=<action>...]"
//
//   action   throw        throw fault::FaultInjectedError at the point
//            crash        std::_Exit(42) — a hard kill with no flushing or
//                         cleanup, simulating SIGKILL / power loss
//            delay:<ms>   sleep <ms> milliseconds, cooperatively: the sleep
//                         polls the thread's registered cancellation token
//                         (fault::ScopedCancellation) so a watchdog can cut
//                         it short
//   trigger  hit=<n>      fire on the n-th hit of this point only (1-based)
//            first=<n>    fire on hits 1..n
//            every=<n>    fire on every n-th hit
//            p=<prob>[,seed=<s>]
//                         seeded Bernoulli per hit — deterministic for a
//                         given (point, seed, hit index)
//            (none)       fire on every hit
//
// Examples:
//   MLEC_FAULTS="journal.rename.pre=crash@hit=2"
//   MLEC_FAULTS="pool.task.throw=throw@first=3;shard.slow=delay:2000@first=3"
//   MLEC_FAULTS="campaign.checkpoint.post=throw@p=0.01,seed=7"
//
// Hit counters are global (process-wide) and per-point; with a single-
// threaded campaign the hit order — and therefore which shard/attempt a
// trigger lands on — is fully deterministic. known_points() enumerates
// every point wired into the library so the chaos harness can sweep them
// all (see analysis/chaos.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/stop_token.hpp"

namespace mlec::fault {

/// Thrown by the `throw` action (and by nothing else): chaos assertions can
/// distinguish an injected failure from a real one.
class FaultInjectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Action {
  kThrow,  ///< throw FaultInjectedError
  kCrash,  ///< std::_Exit(42): no flushing, no atexit — a simulated SIGKILL
  kDelay,  ///< sleep delay_ms (cooperatively cancellable)
};

enum class Trigger {
  kAlways,  ///< every hit
  kHit,     ///< the n-th hit only
  kFirst,   ///< hits 1..n
  kEvery,   ///< every n-th hit
  kProb,    ///< seeded Bernoulli(probability) per hit
};

/// One armed schedule entry (point -> action + trigger).
struct FaultSpec {
  std::string point;
  Action action = Action::kThrow;
  double delay_ms = 0.0;     ///< kDelay only
  Trigger trigger = Trigger::kAlways;
  std::uint64_t n = 1;       ///< hit= / first= / every= operand
  double probability = 0.0;  ///< p= operand
  std::uint64_t seed = 0;    ///< seed= operand (kProb)

  /// Round-trip back to the MLEC_FAULTS syntax (for reports and logs).
  std::string to_string() const;
};

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while any schedule is armed. One relaxed load: the entire cost of a
/// fault point in a production run.
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Record a hit on `point` and execute any armed action. Called by
/// MLEC_FAULT_POINT only when enabled(). Thread-safe.
void hit(const char* point);

/// Parse and arm a schedule (see file comment for the syntax). Replaces any
/// previous schedule and resets hit counters. An empty spec disarms.
/// Throws PreconditionError on malformed syntax.
void configure(const std::string& spec);

/// Disarm every fault and reset hit counters.
void clear() noexcept;

/// Total hits recorded on `point` since the last configure()/clear().
/// Counts hits only while a schedule is armed (the disabled fast path does
/// not count).
std::uint64_t hit_count(const std::string& point);

/// The armed schedule, in configuration order.
std::vector<FaultSpec> active();

/// One fault point the library wires in, with the layer it lives in.
struct PointInfo {
  const char* name;
  const char* where;
};

/// Every fault point compiled into the library. The chaos harness asserts
/// it sweeps each of these; keep this list in sync with MLEC_FAULT_POINT
/// call sites.
const std::vector<PointInfo>& known_points();

/// Register this thread's cancellation token for the scope: an armed
/// `delay` action on this thread sleeps in slices, polling the token, and
/// returns early once it fires — the hook that lets the shard watchdog cut
/// a hung (delay-injected) shard loose. Nests; restores the previous token
/// on destruction.
class ScopedCancellation {
 public:
  explicit ScopedCancellation(StopToken token);
  ~ScopedCancellation();
  ScopedCancellation(const ScopedCancellation&) = delete;
  ScopedCancellation& operator=(const ScopedCancellation&) = delete;

 private:
  StopToken previous_;
};

}  // namespace mlec::fault

/// A named fault point. Zero-cost when no schedule is armed (one relaxed
/// atomic load); under an armed schedule, evaluates the point's trigger and
/// may throw, crash, or delay. Compiled into all builds.
#define MLEC_FAULT_POINT(name)                              \
  do {                                                      \
    if (::mlec::fault::enabled()) ::mlec::fault::hit(name); \
  } while (0)
