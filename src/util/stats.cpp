#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mlec {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats::Raw RunningStats::raw() const {
  return {static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
}

RunningStats RunningStats::from_raw(const Raw& raw) {
  RunningStats s;
  s.n_ = static_cast<std::size_t>(raw.n);
  s.mean_ = raw.mean;
  s.m2_ = raw.m2;
  s.min_ = raw.min;
  s.max_ = raw.max;
  return s;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

ProportionEstimate::Interval ProportionEstimate::wilson(double z) const {
  if (trials_ == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials_);
  const double p = estimate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  MLEC_REQUIRE(hi > lo, "histogram range must be non-empty");
  MLEC_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  MLEC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

}  // namespace mlec
