// Minimal work-stealing-free thread pool for embarrassingly parallel
// Monte-Carlo sweeps.
//
// The library's heavy paths are independent trials/cells, so a static-chunked
// parallel_for over an index range covers every need without task graphs.
//
// Tasks are queued into one of three priority lanes (interactive, normal,
// batch). Workers always drain lower-numbered lanes first, so an interactive
// campaign's chunks overtake queued batch chunks at every dispatch point.
// Lanes are a dispatch-order policy only — a running task is never
// interrupted; preemption of long campaigns happens cooperatively at shard
// batch boundaries via StopToken (see the server's fair-share scheduler).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/stop_token.hpp"
#include "util/thread_safety.hpp"

namespace mlec {

/// Dispatch lanes, highest priority first. kLaneNormal is the default for
/// every pre-existing caller; the estimation service maps client priority
/// classes onto lanes.
inline constexpr std::size_t kLaneInteractive = 0;
inline constexpr std::size_t kLaneNormal = 1;
inline constexpr std::size_t kLaneBatch = 2;
inline constexpr std::size_t kLaneCount = 3;

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means the MLEC_THREADS environment
  /// variable when set, else std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks, and
  /// block until all complete. fn must be safe to call concurrently for
  /// distinct i.
  ///
  /// Fault policy: the first exception a chunk throws abandons the batch's
  /// not-yet-started chunks (they are drained without running fn), the batch
  /// is still joined, and the first exception is rethrown — the pool itself
  /// stays fully usable for subsequent calls. When `stop` fires, remaining
  /// chunks are likewise skipped and the call returns normally (cooperative
  /// truncation; callers consult the token for partial-result handling).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn, StopToken stop = {},
                    std::size_t lane = kLaneNormal);

  /// Run fn(chunk_index, begin, end) over `chunks` contiguous ranges; useful
  /// when each worker wants private state (e.g. an Rng) per chunk. Same
  /// fault/cancellation policy as parallel_for.
  void parallel_chunks(std::size_t begin, std::size_t end, std::size_t chunks,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
                       StopToken stop = {}, std::size_t lane = kLaneNormal);

 private:
  void submit(std::size_t lane, std::function<void()> task) MLEC_EXCLUDES(mutex_);
  void worker_loop() MLEC_EXCLUDES(mutex_);
  /// Any lane non-empty? The dispatch predicate for the worker wait loop.
  bool any_task_locked() const MLEC_REQUIRES(mutex_);

  /// Immutable after construction (joined by the destructor); size() reads
  /// it lock-free from any thread.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::array<std::queue<std::function<void()>>, kLaneCount> lanes_ MLEC_GUARDED_BY(mutex_);
  bool stop_ MLEC_GUARDED_BY(mutex_) = false;
};

/// Process-wide default pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace mlec
