#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/error.hpp"

namespace mlec {

namespace {

/// MLEC_THREADS overrides the default worker count (0/unset/garbage =
/// hardware concurrency). Lets sanitizer CI force real parallelism on
/// small runners and benchmarks pin reproducible pool sizes.
std::size_t default_threads() {
  // Read-only getenv during pool construction; nothing in the process
  // writes the environment concurrently (tests that do use their own pool).
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("MLEC_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// Join/fault state of one parallel_chunks batch. Lives on the submitting
/// thread's stack for the whole batch (every chunk decrements `remaining`
/// before that frame can return). A named struct rather than loose locals
/// because MLEC_GUARDED_BY can only annotate members.
struct BatchState {
  Mutex mutex;
  CondVar done_cv;
  std::exception_ptr first_error MLEC_GUARDED_BY(mutex);
  std::atomic<std::size_t> remaining;
  std::atomic<bool> abandoned{false};

  explicit BatchState(std::size_t chunks) : remaining(chunks) {}
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::size_t lane, std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    lanes_[std::min(lane, kLaneCount - 1)].push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::any_task_locked() const {
  for (const auto& lane : lanes_)
    if (!lane.empty()) return true;
  return false;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && !any_task_locked()) cv_.wait(mutex_);
      if (stop_ && !any_task_locked()) return;
      // Lower-numbered lanes always win: interactive chunks overtake any
      // queued batch work at every dispatch point.
      for (auto& lane : lanes_) {
        if (lane.empty()) continue;
        task = std::move(lane.front());
        lane.pop();
        break;
      }
    }
    task();
  }
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn, StopToken stop,
    std::size_t lane) {
  MLEC_REQUIRE(begin <= end, "empty-forward range required");
  if (begin == end) return;
  chunks = std::clamp<std::size_t>(chunks, 1, end - begin);

  BatchState state(chunks);

  const std::size_t total = end - begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + total * c / chunks;
    const std::size_t hi = begin + total * (c + 1) / chunks;
    submit(lane, [&, c, lo, hi] {
      // A thrown chunk (or a fired stop token) abandons the chunks that have
      // not started yet; they still drain through the queue so the batch
      // joins cleanly and the pool stays usable.
      if (!state.abandoned.load(std::memory_order_acquire) && !stop.stop_requested()) {
        try {
          fn(c, lo, hi);
        } catch (...) {
          MutexLock lock(state.mutex);
          if (!state.first_error) state.first_error = std::current_exception();
          state.abandoned.store(true, std::memory_order_release);
        }
      }
      if (state.remaining.fetch_sub(1) == 1) {
        // Notify with the mutex held: the waiter checks `remaining` only
        // while holding it, so the final wakeup cannot be lost.
        MutexLock lock(state.mutex);
        state.done_cv.notify_all();
      }
    });
  }
  std::exception_ptr first_error;
  {
    MutexLock lock(state.mutex);
    while (state.remaining.load() != 0) state.done_cv.wait(state.mutex);
    first_error = state.first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn, StopToken stop,
                              std::size_t lane) {
  parallel_chunks(
      begin, end, size() * 4,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      std::move(stop), lane);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mlec
