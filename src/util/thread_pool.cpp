#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/error.hpp"

namespace mlec {

namespace {

/// MLEC_THREADS overrides the default worker count (0/unset/garbage =
/// hardware concurrency). Lets sanitizer CI force real parallelism on
/// small runners and benchmarks pin reproducible pool sizes.
std::size_t default_threads() {
  if (const char* env = std::getenv("MLEC_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::size_t lane, std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    lanes_[std::min(lane, kLaneCount - 1)].push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  const auto any_task = [this] {
    for (const auto& lane : lanes_)
      if (!lane.empty()) return true;
    return false;
  };
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || any_task(); });
      if (stop_ && !any_task()) return;
      // Lower-numbered lanes always win: interactive chunks overtake any
      // queued batch work at every dispatch point.
      for (auto& lane : lanes_) {
        if (lane.empty()) continue;
        task = std::move(lane.front());
        lane.pop();
        break;
      }
    }
    task();
  }
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn, StopToken stop,
    std::size_t lane) {
  MLEC_REQUIRE(begin <= end, "empty-forward range required");
  if (begin == end) return;
  chunks = std::clamp<std::size_t>(chunks, 1, end - begin);

  std::atomic<std::size_t> remaining{chunks};
  std::atomic<bool> abandoned{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t total = end - begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + total * c / chunks;
    const std::size_t hi = begin + total * (c + 1) / chunks;
    submit(lane, [&, c, lo, hi] {
      // A thrown chunk (or a fired stop token) abandons the chunks that have
      // not started yet; they still drain through the queue so the batch
      // joins cleanly and the pool stays usable.
      if (!abandoned.load(std::memory_order_acquire) && !stop.stop_requested()) {
        try {
          fn(c, lo, hi);
        } catch (...) {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          abandoned.store(true, std::memory_order_release);
        }
      }
      if (remaining.fetch_sub(1) == 1) {
        std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn, StopToken stop,
                              std::size_t lane) {
  parallel_chunks(
      begin, end, size() * 4,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      std::move(stop), lane);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mlec
