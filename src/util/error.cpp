#include "util/error.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace mlec {

namespace {

ContractMode mode_from_env() {
  // Read-only getenv, called once from mode_slot()'s static initializer.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("MLEC_CONTRACTS");
  if (v != nullptr && std::strcmp(v, "abort") == 0) return ContractMode::kAbort;
  return ContractMode::kThrow;
}

std::atomic<ContractMode>& mode_slot() {
  static std::atomic<ContractMode> mode{mode_from_env()};
  return mode;
}

}  // namespace

ContractMode contract_mode() noexcept { return mode_slot().load(std::memory_order_relaxed); }

void set_contract_mode(ContractMode mode) noexcept {
  mode_slot().store(mode, std::memory_order_relaxed);
}

namespace detail {

[[noreturn]] void contract_failed(ContractKind kind, const char* expr, const std::string& msg,
                                  std::source_location loc) {
  const char* label =
      kind == ContractKind::kPrecondition ? "precondition failed" : "invariant violated";
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": " << label << ": " << expr;
  if (!msg.empty()) os << " (" << msg << ')';
  const std::string text = os.str();
  if (contract_mode() == ContractMode::kAbort) {
    std::fprintf(stderr, "mlec: %s\n", text.c_str());
    std::fflush(stderr);
    std::abort();
  }
  if (kind == ContractKind::kPrecondition) throw PreconditionError(text);
  throw InternalError(text);
}

}  // namespace detail

}  // namespace mlec
