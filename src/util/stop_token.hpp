// Cooperative cancellation for long-running sweeps.
//
// A StopSource owns a stop flag; StopTokens are cheap shared views of it
// that hot loops poll between units of work (missions, cells, batches).
// Three triggers can fire a source: an explicit request_stop(), a steady-
// clock deadline (--time-budget), and — when watch_signals() has been
// called — SIGINT/SIGTERM. Tokens never interrupt work mid-unit; callers
// that observe a stop return partial results flagged as truncated.
#pragma once

#include <memory>

namespace mlec {

namespace detail {
struct StopState;
}  // namespace detail

/// Read-only view of a StopSource. Default-constructed tokens never stop.
class StopToken {
 public:
  StopToken() = default;

  /// True once the owning source stopped (explicitly, by deadline, or by a
  /// watched signal). Safe to call from any thread; never throws.
  bool stop_requested() const noexcept;

  /// True when this token is connected to a source (i.e. can ever stop).
  bool stop_possible() const noexcept { return state_ != nullptr; }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const detail::StopState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const detail::StopState> state_;
};

/// Owner of a stop flag; hand out token() to the work being supervised.
class StopSource {
 public:
  StopSource();

  StopToken token() const { return StopToken(state_); }

  void request_stop() noexcept;
  bool stop_requested() const noexcept;

  /// Arrange for stop_requested() to flip true `seconds` from now
  /// (steady clock). Replaces any previous deadline.
  void set_deadline_after(double seconds);

  /// Route SIGINT/SIGTERM into this source: the process-wide handlers set a
  /// flag this source's tokens consult. Handlers stay installed for the
  /// process lifetime (CLI usage); tests can clear the flag with
  /// clear_pending_signal_stop().
  void watch_signals();

 private:
  std::shared_ptr<detail::StopState> state_;
};

/// True when a watched SIGINT/SIGTERM has been delivered to the process.
bool signal_stop_pending() noexcept;

/// Reset the process-wide signal flag (test support / multi-campaign CLIs).
void clear_pending_signal_stop() noexcept;

}  // namespace mlec
