// Minimal INI configuration parsing for deployment spec files.
//
// Grammar: `[section]` headers, `key = value` pairs, `#`/`;` comments,
// blank lines. Keys are case-sensitive and scoped by their section ("" for
// the preamble). Later duplicates overwrite earlier ones. Values keep
// internal whitespace; surrounding whitespace is trimmed.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mlec {

class IniFile {
 public:
  /// Parse from a stream; throws PreconditionError with the line number on
  /// malformed input.
  static IniFile parse(std::istream& in);
  static IniFile parse_string(const std::string& text);

  bool has(const std::string& section, const std::string& key) const;
  std::optional<std::string> get(const std::string& section, const std::string& key) const;

  /// Typed accessors: return `fallback` when absent, throw PreconditionError
  /// when present but malformed.
  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& section, const std::string& key, double fallback) const;
  std::size_t get_size(const std::string& section, const std::string& key,
                       std::size_t fallback) const;
  bool get_bool(const std::string& section, const std::string& key, bool fallback) const;

  std::size_t entries() const { return values_.size(); }

  /// Every (section, key) pair present, in section-then-key order — lets
  /// consumers diff the file against their known-key table (spec_io's
  /// unknown-key diagnostics).
  std::vector<std::pair<std::string, std::string>> keys() const {
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(values_.size());
    for (const auto& [section_key, value] : values_) out.push_back(section_key);
    return out;
  }

 private:
  std::map<std::pair<std::string, std::string>, std::string> values_;
};

}  // namespace mlec
