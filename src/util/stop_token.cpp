#include "util/stop_token.hpp"

#include <atomic>
#include <chrono>
#include <csignal>

#include "util/error.hpp"

namespace mlec {

namespace {

std::atomic<bool> g_signal_stop{false};

extern "C" void mlec_stop_signal_handler(int) { g_signal_stop.store(true); }

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace detail {
struct StopState {
  std::atomic<bool> stopped{false};
  /// Steady-clock deadline in ns since the clock epoch; 0 = no deadline.
  std::atomic<std::int64_t> deadline_ns{0};
  std::atomic<bool> watch_signals{false};

  // Ordering contract: request_stop() publishes with release and this
  // polling path observes with acquire, so anything the canceller wrote
  // before requesting the stop (a reason string, flushed partial state) is
  // visible to a worker that sees stopped == true and winds down. The
  // signal path stays relaxed on purpose: an async signal handler performs
  // no prior writes worth publishing, and the flag itself is the entire
  // message.
  bool stop_requested() const noexcept {
    if (stopped.load(std::memory_order_acquire)) return true;
    if (watch_signals.load(std::memory_order_relaxed) &&
        g_signal_stop.load(std::memory_order_relaxed))
      return true;
    const auto deadline = deadline_ns.load(std::memory_order_relaxed);
    return deadline != 0 && steady_now_ns() >= deadline;
  }
};
}  // namespace detail

bool StopToken::stop_requested() const noexcept {
  return state_ != nullptr && state_->stop_requested();
}

StopSource::StopSource() : state_(std::make_shared<detail::StopState>()) {}

void StopSource::request_stop() noexcept {
  // Release pairs with the acquire load in StopState::stop_requested(); see
  // the ordering contract there.
  state_->stopped.store(true, std::memory_order_release);
}

bool StopSource::stop_requested() const noexcept { return state_->stop_requested(); }

void StopSource::set_deadline_after(double seconds) {
  MLEC_REQUIRE(seconds >= 0.0, "time budget must be non-negative");
  state_->deadline_ns.store(steady_now_ns() +
                            static_cast<std::int64_t>(seconds * 1e9));
}

void StopSource::watch_signals() {
  // Handler installation happens once during CLI startup, before worker
  // threads exist; the handler itself only touches lock-free atomics.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::signal(SIGINT, mlec_stop_signal_handler);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::signal(SIGTERM, mlec_stop_signal_handler);
  state_->watch_signals.store(true);
}

bool signal_stop_pending() noexcept { return g_signal_stop.load(); }

void clear_pending_signal_stop() noexcept { g_signal_stop.store(false); }

}  // namespace mlec
