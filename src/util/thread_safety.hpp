// Compile-time concurrency contracts: Clang Thread Safety Analysis wrappers.
//
// Every mutex in the library is an mlec::Mutex and every piece of shared
// state carries an MLEC_GUARDED_BY annotation, so lock discipline is checked
// at build time (-Wthread-safety -Werror=thread-safety-analysis, the CI
// thread-safety job) instead of only dynamically by TSan — TSan catches the
// interleavings that happen to execute; the analysis rejects the ones that
// *could*. Under any compiler other than Clang the macros expand to nothing
// and the wrappers are zero-overhead shims over the std primitives.
//
// Contract vocabulary (see DESIGN.md §16 for the per-subsystem capability
// map and the escape-hatch policy):
//
//   MLEC_GUARDED_BY(mu)   field access requires holding mu
//   MLEC_REQUIRES(mu)     caller must hold mu (the *_locked() convention)
//   MLEC_EXCLUDES(mu)     caller must NOT hold mu — documents functions that
//                         take the lock themselves or sleep/call out, where
//                         entering with the lock held would self-deadlock or
//                         stall every other thread
//   MLEC_ACQUIRE/RELEASE  lock-transfer functions (Mutex, MutexLock)
//   MLEC_NO_THREAD_SAFETY_ANALYSIS
//                         last-resort escape hatch. Every use must carry a
//                         `// lint:allow(tsa-escape): <why>` justification;
//                         the determinism linter rejects bare escapes.
//
// The raw std::mutex/std::condition_variable types are banned outside this
// header (determinism linter rule `raw-sync`), so new concurrent code cannot
// bypass the annotated layer.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define MLEC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MLEC_THREAD_ANNOTATION_(x)  // no-op: GCC/MSVC have no TSA
#endif

#define MLEC_CAPABILITY(x) MLEC_THREAD_ANNOTATION_(capability(x))
#define MLEC_SCOPED_CAPABILITY MLEC_THREAD_ANNOTATION_(scoped_lockable)
#define MLEC_GUARDED_BY(x) MLEC_THREAD_ANNOTATION_(guarded_by(x))
#define MLEC_PT_GUARDED_BY(x) MLEC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define MLEC_ACQUIRE(...) MLEC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MLEC_RELEASE(...) MLEC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MLEC_TRY_ACQUIRE(...) MLEC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define MLEC_REQUIRES(...) MLEC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MLEC_EXCLUDES(...) MLEC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define MLEC_ASSERT_CAPABILITY(x) MLEC_THREAD_ANNOTATION_(assert_capability(x))
#define MLEC_RETURN_CAPABILITY(x) MLEC_THREAD_ANNOTATION_(lock_returned(x))
#define MLEC_NO_THREAD_SAFETY_ANALYSIS MLEC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace mlec {

class CondVar;

/// A std::mutex carrying the TSA "mutex" capability. Prefer MutexLock for
/// scoped acquisition; the raw lock()/unlock() pair exists for the rare
/// callers that need manual control across non-lexical extents.
class MLEC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MLEC_ACQUIRE() { raw_.lock(); }
  void unlock() MLEC_RELEASE() { raw_.unlock(); }
  bool try_lock() MLEC_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;  // wait() re-wraps raw_ without releasing the capability
  std::mutex raw_;
};

/// RAII lock over a Mutex (the analysis-aware std::scoped_lock equivalent).
class MLEC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MLEC_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() MLEC_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex. wait() takes the Mutex directly and
/// REQUIRES the caller to hold it, so the guarded predicate is re-checked
/// in annotated code:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);   // ready_ is MLEC_GUARDED_BY(mutex_)
///
/// Predicate-lambda waits (cv.wait(lock, [&]{...})) are deliberately not
/// offered: Clang analyzes the lambda body as a separate unannotated
/// function, which would silently exempt exactly the guarded reads the
/// analysis exists to check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, sleep, and reacquire before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void wait(Mutex& mutex) MLEC_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim without unlocking: the capability never
    // leaves the caller from the analysis' point of view, matching the
    // runtime fact that wait() returns with the mutex re-held.
    std::unique_lock<std::mutex> native(mutex.raw_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mlec
