#include "util/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_safety.hpp"

namespace mlec::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Registry {
  Mutex mutex;
  std::vector<FaultSpec> specs MLEC_GUARDED_BY(mutex);
  // Per-point counters. The returned reference from counter() is only used
  // within the same critical section that obtained it.
  std::vector<std::pair<std::string, std::uint64_t>> hits MLEC_GUARDED_BY(mutex);

  std::uint64_t& counter(const std::string& point) MLEC_REQUIRES(mutex) {
    for (auto& [name, count] : hits)
      if (name == point) return count;
    return hits.emplace_back(point, 0).second;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local StopToken tls_cancel;

/// Deterministic per-hit Bernoulli draw: hashes (point seed, hit index)
/// through SplitMix64 so the decision depends only on the schedule and the
/// hit sequence, never on wall clock or thread identity.
bool prob_fires(const FaultSpec& spec, std::uint64_t hit_index) {
  std::uint64_t state = spec.seed ^ (hit_index * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t draw = splitmix64(state);
  // Map the top 53 bits to [0, 1), the same construction Rng::uniform uses.
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return u < spec.probability;
}

bool trigger_fires(const FaultSpec& spec, std::uint64_t hit_index) {
  switch (spec.trigger) {
    case Trigger::kAlways: return true;
    case Trigger::kHit: return hit_index == spec.n;
    case Trigger::kFirst: return hit_index <= spec.n;
    case Trigger::kEvery: return spec.n > 0 && hit_index % spec.n == 0;
    case Trigger::kProb: return prob_fires(spec, hit_index);
  }
  return false;
}

/// Sleep `ms`, polling the thread's registered cancellation token so a
/// watchdog can cut the delay short. Returns early once the token fires.
void cancellable_delay(double ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::duration_cast<clock::duration>(
                                           std::chrono::duration<double, std::milli>(ms));
  const StopToken cancel = tls_cancel;  // copy: stable for the whole sleep
  while (clock::now() < deadline) {
    if (cancel.stop_requested()) return;
    const clock::duration remaining = deadline - clock::now();
    const auto slice =
        std::min<clock::duration>(remaining, std::chrono::milliseconds(5));
    if (slice > clock::duration::zero()) std::this_thread::sleep_for(slice);
  }
}

[[noreturn]] void crash(const char* point) {
  // A deliberate hard kill: no stream flushing, no atexit handlers, no
  // stack unwinding — the closest portable stand-in for SIGKILL/power loss.
  // The message bypasses stdio buffering via stderr being unbuffered enough
  // for a single fprintf; losing it is acceptable (a real crash loses it too).
  std::fprintf(stderr, "mlec: injected crash at fault point '%s'\n", point);
  std::_Exit(42);
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  MLEC_REQUIRE(!text.empty() && text.find_first_not_of("0123456789") == std::string::npos,
               "MLEC_FAULTS: " + what + " needs a non-negative integer, got '" + text + "'");
  return std::stoull(text);
}

void parse_trigger(const std::string& text, FaultSpec& spec) {
  if (const auto eq = text.find('='); eq != std::string::npos) {
    const std::string key = text.substr(0, eq);
    const std::string value = text.substr(eq + 1);
    if (key == "hit") {
      spec.trigger = Trigger::kHit;
      spec.n = parse_u64(value, "hit");
      MLEC_REQUIRE(spec.n >= 1, "MLEC_FAULTS: hit= is 1-based");
      return;
    }
    if (key == "first") {
      spec.trigger = Trigger::kFirst;
      spec.n = parse_u64(value, "first");
      return;
    }
    if (key == "every") {
      spec.trigger = Trigger::kEvery;
      spec.n = parse_u64(value, "every");
      MLEC_REQUIRE(spec.n >= 1, "MLEC_FAULTS: every= must be >= 1");
      return;
    }
    if (key == "p") {
      // p=<prob>[,seed=<s>]
      spec.trigger = Trigger::kProb;
      std::string prob = value;
      if (const auto comma = value.find(','); comma != std::string::npos) {
        prob = value.substr(0, comma);
        const std::string rest = trim(value.substr(comma + 1));
        MLEC_REQUIRE(rest.rfind("seed=", 0) == 0,
                     "MLEC_FAULTS: expected seed=<n> after p=<prob>, got '" + rest + "'");
        spec.seed = parse_u64(rest.substr(5), "seed");
      }
      try {
        spec.probability = std::stod(prob);
      } catch (const std::exception&) {
        throw PreconditionError("MLEC_FAULTS: p= needs a probability, got '" + prob + "'");
      }
      MLEC_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                   "MLEC_FAULTS: p= must be in [0, 1]");
      return;
    }
  }
  throw PreconditionError("MLEC_FAULTS: unknown trigger '" + text +
                          "' (expected hit=N, first=N, every=N, or p=P[,seed=S])");
}

FaultSpec parse_entry(const std::string& entry) {
  const auto eq = entry.find('=');
  MLEC_REQUIRE(eq != std::string::npos && eq > 0,
               "MLEC_FAULTS: entry '" + entry + "' is not <point>=<action>[@<trigger>]");
  FaultSpec spec;
  spec.point = trim(entry.substr(0, eq));
  std::string rhs = trim(entry.substr(eq + 1));
  std::string trigger_text;
  if (const auto at = rhs.find('@'); at != std::string::npos) {
    trigger_text = trim(rhs.substr(at + 1));
    rhs = trim(rhs.substr(0, at));
  }
  if (rhs == "throw") {
    spec.action = Action::kThrow;
  } else if (rhs == "crash") {
    spec.action = Action::kCrash;
  } else if (rhs.rfind("delay:", 0) == 0) {
    spec.action = Action::kDelay;
    try {
      spec.delay_ms = std::stod(rhs.substr(6));
    } catch (const std::exception&) {
      throw PreconditionError("MLEC_FAULTS: delay needs milliseconds, got '" + rhs + "'");
    }
    MLEC_REQUIRE(spec.delay_ms >= 0.0, "MLEC_FAULTS: delay must be non-negative");
  } else {
    throw PreconditionError("MLEC_FAULTS: unknown action '" + rhs +
                            "' (expected throw, crash, or delay:<ms>)");
  }
  if (!trigger_text.empty()) parse_trigger(trigger_text, spec);
  return spec;
}

/// Arm the schedule parsed from MLEC_FAULTS at process start, so faults
/// reach code that runs before main() touches the registry explicitly.
const bool g_env_armed = [] {
  // Static-init getenv: runs before main() and before any thread exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("MLEC_FAULTS"); env != nullptr && *env != '\0')
    configure(env);
  return true;
}();

}  // namespace

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  os << point << '=';
  switch (action) {
    case Action::kThrow: os << "throw"; break;
    case Action::kCrash: os << "crash"; break;
    case Action::kDelay: os << "delay:" << delay_ms; break;
  }
  switch (trigger) {
    case Trigger::kAlways: break;
    case Trigger::kHit: os << "@hit=" << n; break;
    case Trigger::kFirst: os << "@first=" << n; break;
    case Trigger::kEvery: os << "@every=" << n; break;
    case Trigger::kProb: os << "@p=" << probability << ",seed=" << seed; break;
  }
  return os.str();
}

void hit(const char* point) {
  FaultSpec fired;
  bool fire = false;
  {
    auto& reg = registry();
    MutexLock lock(reg.mutex);
    if (reg.specs.empty()) return;  // disarmed between the fast check and here
    const std::uint64_t index = ++reg.counter(point);
    for (const auto& spec : reg.specs) {
      if (spec.point != point) continue;
      if (trigger_fires(spec, index)) {
        fired = spec;
        fire = true;
        break;
      }
    }
  }
  if (!fire) return;
  // Act outside the registry lock: delays must not serialize other points,
  // and throw/crash must not leave the mutex held.
  switch (fired.action) {
    case Action::kThrow:
      throw FaultInjectedError(std::string("injected fault at '") + point + "'");
    case Action::kCrash: crash(point);
    case Action::kDelay: cancellable_delay(fired.delay_ms); return;
  }
}

void configure(const std::string& spec) {
  std::vector<FaultSpec> parsed;
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    parsed.push_back(parse_entry(entry));
  }
  auto& reg = registry();
  MutexLock lock(reg.mutex);
  reg.specs = std::move(parsed);
  reg.hits.clear();
  detail::g_enabled.store(!reg.specs.empty(), std::memory_order_relaxed);
}

void clear() noexcept {
  auto& reg = registry();
  MutexLock lock(reg.mutex);
  reg.specs.clear();
  reg.hits.clear();
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t hit_count(const std::string& point) {
  auto& reg = registry();
  MutexLock lock(reg.mutex);
  for (const auto& [name, count] : reg.hits)
    if (name == point) return count;
  return 0;
}

std::vector<FaultSpec> active() {
  auto& reg = registry();
  MutexLock lock(reg.mutex);
  return reg.specs;
}

const std::vector<PointInfo>& known_points() {
  static const std::vector<PointInfo> points{
      {"journal.save.pre", "runtime/journal: before the tmp file is written"},
      {"journal.rename.pre", "runtime/journal: tmp written + fsynced, before rename"},
      {"journal.rename.post", "runtime/journal: after rename, before directory fsync"},
      {"campaign.checkpoint.pre", "runtime/campaign: batch done, before the commit lock"},
      {"campaign.checkpoint.post", "runtime/campaign: checkpoint committed and journaled"},
      {"pool.task.throw", "runtime/campaign: inside a shard's per-unit work loop"},
      {"shard.slow", "runtime/campaign: at a shard batch boundary (delay target)"},
      {"estimator.sim.pre", "core/estimators: sim method entry"},
      {"estimator.split.pre", "core/estimators: split method entry"},
      {"estimator.dp.pre", "core/estimators: dp method entry"},
      {"estimator.markov.pre", "core/estimators: markov method entry"},
      {"repair.execute.pre", "sim/repair_executor: before a byte-exact repair pass"},
      {"server.accept.pre", "server/server: before each accept() on the listener"},
      {"server.request.parse", "server/server: before parsing a request line"},
      {"server.store.save.post", "server/store: durable state rewrite just landed"},
  };
  return points;
}

ScopedCancellation::ScopedCancellation(StopToken token) : previous_(tls_cancel) {
  tls_cancel = std::move(token);
}

ScopedCancellation::~ScopedCancellation() { tls_cancel = previous_; }

}  // namespace mlec::fault
