#include "util/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace mlec {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MLEC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MLEC_REQUIRE(cells.size() == headers_.size(), "row arity must match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  const double a = std::abs(v);
  if (v != 0.0 && (a >= 1e7 || a < 1e-3)) {
    os << std::scientific << std::setprecision(precision - 1) << v;
    return os.str();
  }
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string Table::to_ascii(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "  " : "") << std::string(widths[c], '-');
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) os << (c ? "," : "") << cells[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string HeatmapRenderer::render(const std::vector<std::vector<double>>& values,
                                    const std::vector<int>& y_labels,
                                    const std::vector<int>& x_labels, const std::string& title) {
  MLEC_REQUIRE(values.size() == y_labels.size(), "one y label per row");
  std::ostringstream os;
  os << title << "\n";
  os << "cell digit d: PDL in (1e-(d+1), 1e-d]; '.' = PDL 0; scale matches the paper's -6..0\n";
  for (std::size_t yi = 0; yi < values.size(); ++yi) {
    MLEC_REQUIRE(values[yi].size() == x_labels.size(), "one x label per column");
    os << std::setw(4) << y_labels[yi] << " |";
    for (double v : values[yi]) {
      if (v <= 0.0) {
        os << " .";
      } else {
        int d = static_cast<int>(std::floor(-std::log10(std::min(1.0, v)) + 1e-12));
        d = std::min(d, 6);
        os << ' ' << static_cast<char>('0' + d);
      }
    }
    os << '\n';
  }
  os << "      ";
  for (int x : x_labels) os << ' ' << (x % 10);
  os << "\n      (x labels mod 10; first=" << x_labels.front() << " last=" << x_labels.back()
     << ")\n";
  return os.str();
}

bool fast_mode() {
  // Read-only getenv; nothing in the process writes the environment
  // concurrently (tests that set MLEC_FAST do so before spawning threads).
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("MLEC_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.to_ascii(); }

}  // namespace mlec
