// Streaming statistics and interval estimates for Monte-Carlo results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mlec {

/// Welford streaming accumulator: mean, variance, extrema in one pass.
class RunningStats {
 public:
  /// Exact internal state, exposed for checkpoint journaling. A restored
  /// accumulator continues bit-identically to the original.
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x);
  void merge(const RunningStats& other);

  Raw raw() const;
  static RunningStats from_raw(const Raw& raw);

  /// Exact (bitwise) state equality — used by checkpoint determinism tests.
  bool operator==(const RunningStats&) const = default;

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  double min() const { return n_ ? min_ : std::numeric_limits<double>::quiet_NaN(); }
  double max() const { return n_ ? max_ : std::numeric_limits<double>::quiet_NaN(); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counter for Bernoulli outcomes with interval estimation.
class ProportionEstimate {
 public:
  void add(bool success) { ++trials_; successes_ += success ? 1 : 0; }
  void add_many(std::uint64_t successes, std::uint64_t trials) {
    successes_ += successes;
    trials_ += trials;
  }

  std::uint64_t successes() const { return successes_; }
  std::uint64_t trials() const { return trials_; }
  double estimate() const { return trials_ ? static_cast<double>(successes_) / trials_ : 0.0; }

  struct Interval {
    double lo;
    double hi;
  };
  /// Wilson score interval at the given normal quantile (default 95%).
  Interval wilson(double z = 1.959964) const;

 private:
  std::uint64_t successes_ = 0;
  std::uint64_t trials_ = 0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
/// bins so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Empirical quantile (linear within bins). q in [0,1].
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mlec
