// Unit conventions and conversion helpers.
//
// The paper (and therefore this library) uses decimal storage units:
// 1 TB = 1e12 bytes, bandwidths in MB/s (1e6 bytes/s), network links in
// Gbps (1e9 bits/s), and times in hours unless stated otherwise.
// All quantities are plain doubles; these helpers keep conversions explicit
// at call sites instead of hiding them behind implicit factors.
#pragma once

namespace mlec::units {

inline constexpr double kKB = 1e3;   ///< bytes per KB
inline constexpr double kMB = 1e6;   ///< bytes per MB
inline constexpr double kGB = 1e9;   ///< bytes per GB
inline constexpr double kTB = 1e12;  ///< bytes per TB
inline constexpr double kPB = 1e15;  ///< bytes per PB

inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kHoursPerDay = 24.0;
inline constexpr double kHoursPerYear = 8766.0;  ///< 365.25 days

/// Convert a link rate in Gbps to MB/s (decimal, 8 bits per byte).
constexpr double gbps_to_mbps(double gbps) { return gbps * 1e9 / 8.0 / kMB; }

/// Convert TB to MB.
constexpr double tb_to_mb(double tb) { return tb * kTB / kMB; }

/// Time (hours) to move `tb` terabytes at `mbps` MB/s.
constexpr double hours_to_move(double tb, double mbps) {
  return tb_to_mb(tb) / mbps / kSecondsPerHour;
}

}  // namespace mlec::units
