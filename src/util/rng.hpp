// Deterministic, splittable random number generation.
//
// Monte-Carlo experiments in this library must be reproducible across runs
// and parallelizable across threads. We use xoshiro256** (Blackman & Vigna)
// seeded through SplitMix64; Rng::split() derives statistically independent
// child streams so each worker/trial can own a private generator.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mlec {

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies std::uniform_random_bit_generator so it can also feed <random>
/// distributions if ever needed; the built-in helpers below avoid libstdc++
/// distribution implementation differences for reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion of `seed` (any value is fine, including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Derive an independent child stream (uses jump-free reseeding through
  /// SplitMix64 of fresh output, adequate for embarrassingly parallel MC).
  Rng split();

  /// Deterministic substream derivation for sharded campaigns: every
  /// (seed, stream) pair maps to a statistically independent generator, and
  /// the mapping is stable across runs — the basis for checkpoint/resume
  /// reproducibility and retry-on-fresh-substream. Campaign shards use
  /// stream = shard | attempt << 32.
  static Rng for_substream(std::uint64_t seed, std::uint64_t stream);

  /// Exact generator state, exposed for checkpoint journaling.
  std::array<std::uint64_t, 4> state() const { return state_; }

  /// Restore a state captured with state(); the generator continues
  /// bit-identically from the capture point. Rejects the all-zero state
  /// (invalid for xoshiro).
  void set_state(const std::array<std::uint64_t, 4>& state);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given rate (events per unit
  /// time). Requires rate > 0.
  double exponential(double rate);

  /// Fill `out` with uniform [0, 1) doubles. Bit-identical to calling
  /// uniform() out.size() times on the same stream — the block form exists
  /// so hot loops amortize call overhead, not to change the variates.
  void uniform_fill(std::span<double> out);

  /// Fill `out` with Exp(rate) variates via the inverse CDF. Bit-identical
  /// to calling exponential(rate) out.size() times on the same stream.
  /// Requires rate > 0.
  void exponential_fill(std::span<double> out, double rate);

  /// Weibull(shape, scale) sample. Requires shape > 0 and scale > 0.
  double weibull(double shape, double scale);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Binomial(n, p) sample by inversion/waiting-time, suitable for the small
  /// n (< a few thousand) used in this library.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Sample `k` distinct values from [0, n) in O(k) expected time
  /// (Floyd's algorithm). Result is unsorted. Requires k <= n.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n, std::uint64_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// SplitMix64 step, exposed for seeding utilities and tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace mlec
