// Per-shard trial arena: dense slot storage with O(active) per-trial reset.
//
// Monte-Carlo trial loops (one mission of the fleet simulator, one run of a
// shard) touch a small, data-dependent subset of a large id universe (a few
// local pools out of thousands). A hash map models that sparsity but pays
// hashing on every lookup and node allocation on every insert — per-event
// heap traffic in the hottest loop of the library. TrialArena keeps one
// value slot per id, allocated once per shard, plus an explicit active list:
//
//  * find/activate/deactivate are array indexing, no hashing;
//  * begin_trial() is O(active ids), not O(universe) and not a deallocation
//    storm — slots are recycled, so any heap capacity a value accumulated
//    (e.g. a std::vector member) survives into the next trial;
//  * the active list doubles as the simulator's active-pool set: trials
//    where most of the fleet is idle never touch idle slots at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mlec {

template <typename T>
class TrialArena {
 public:
  /// Size the id universe to [0, universe). Existing slots are kept; growth
  /// allocates the new slots eagerly so the trial loop never does.
  void resize(std::size_t universe) {
    if (universe > slots_.size()) ++allocations_;
    slots_.resize(universe);
    pos_.resize(universe, 0);
  }

  std::size_t universe() const { return slots_.size(); }

  /// Deactivate every id. O(active); slot values are NOT cleared here —
  /// activate() resets them lazily, so untouched slots cost nothing.
  void begin_trial() {
    for (std::uint32_t id : active_) pos_[id] = 0;
    active_.clear();
  }

  bool active(std::uint32_t id) const { return pos_[id] != 0; }

  /// The value for `id`, or nullptr while it is inactive.
  T* find(std::uint32_t id) { return pos_[id] != 0 ? &slots_[id] : nullptr; }
  const T* find(std::uint32_t id) const {
    return pos_[id] != 0 ? &slots_[id] : nullptr;
  }

  /// The value for `id`, activating it first if needed; `reset(T&)` runs on
  /// the recycled slot only on that inactive->active edge.
  template <typename Reset>
  T& activate(std::uint32_t id, Reset&& reset) {
    MLEC_ASSERT(id < slots_.size(), "id outside the sized universe");
    if (pos_[id] == 0) {
      active_.push_back(id);
      pos_[id] = static_cast<std::uint32_t>(active_.size());
      reset(slots_[id]);
    }
    return slots_[id];
  }

  /// Remove `id` from the active set (swap-remove; order not preserved).
  void deactivate(std::uint32_t id) {
    const std::uint32_t p = pos_[id];
    if (p == 0) return;
    const std::uint32_t last = active_.back();
    active_[p - 1] = last;
    pos_[last] = p;
    active_.pop_back();
    pos_[id] = 0;
  }

  /// Currently active ids, in activation order except where deactivation
  /// swap-removed.
  std::span<const std::uint32_t> active_ids() const { return active_; }
  std::size_t active_count() const { return active_.size(); }

  /// Times the slot storage grew — 0 after warm-up is the zero-allocation
  /// steady-state invariant the perf counters report on.
  std::uint64_t allocations() const { return allocations_; }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> pos_;  ///< id -> active index + 1; 0 = inactive
  std::vector<std::uint32_t> active_;
  std::uint64_t allocations_ = 0;
};

}  // namespace mlec
