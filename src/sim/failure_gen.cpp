#include "sim/failure_gen.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <span>
#include <sstream>
#include <unordered_set>

#include "math/allocation.hpp"
#include "util/error.hpp"

namespace mlec {

namespace {
void sort_trace(FailureTrace& trace) {
  std::sort(trace.begin(), trace.end(), [](const FailureEvent& a, const FailureEvent& b) {
    // lint:allow(float-eq): strict-weak-order tie-break, not a tolerance check
    if (a.time_hours != b.time_hours) return a.time_hours < b.time_hours;
    return a.disk < b.disk;
  });
}
}  // namespace

FailureTrace generate_failures(const Topology& topo, const FailureDistribution& dist,
                               double mission_hours, Rng& rng) {
  MLEC_REQUIRE(mission_hours > 0.0, "mission must be positive");
  FailureTrace trace;
  const std::size_t disks = topo.config().total_disks();
  if (dist.kind == FailureDistribution::Kind::kExponential) {
    // Disk lifetimes are long against the mission, so the first lifetime of
    // each disk dominates the draw count: batch those through the block-fill
    // API (chunked so the scratch stays cache-sized), then walk the rare
    // renewal chains with single draws.
    const double rate = dist.hourly_rate();
    constexpr std::size_t kBlock = 1024;
    std::array<double, kBlock> first;
    for (std::size_t base = 0; base < disks; base += kBlock) {
      const std::size_t n = std::min(kBlock, disks - base);
      rng.exponential_fill(std::span<double>(first.data(), n), rate);
      for (std::size_t i = 0; i < n; ++i) {
        double t = first[i];
        while (t < mission_hours) {
          trace.push_back({t, static_cast<DiskId>(base + i)});
          t += rng.exponential(rate);
        }
      }
    }
  } else {
    for (std::size_t d = 0; d < disks; ++d) {
      double t = 0.0;
      while (true) {
        t += rng.weibull(dist.weibull_shape, dist.weibull_scale_hours);
        if (t >= mission_hours) break;
        trace.push_back({t, static_cast<DiskId>(d)});
      }
    }
  }
  sort_trace(trace);
  return trace;
}

FailureTrace generate_burst(const Topology& topo, std::size_t racks, std::size_t total_failures,
                            double time_hours, Rng& rng) {
  const auto& dc = topo.config();
  MLEC_REQUIRE(racks >= 1 && racks <= dc.racks, "rack count out of range");
  MLEC_REQUIRE(total_failures >= racks, "need at least one failure per affected rack");
  MLEC_REQUIRE(total_failures <= racks * dc.disks_per_rack(),
               "more failures than disks in the affected racks");

  // Exact conditional allocation of counts, then uniform distinct disks
  // within each chosen rack.
  const BurstAllocationSampler sampler(dc.disks_per_rack(), racks, total_failures);
  const auto counts = sampler.sample(racks, total_failures, rng);
  auto rack_ids = rng.sample_without_replacement(dc.racks, racks);

  FailureTrace trace;
  trace.reserve(total_failures);
  for (std::size_t i = 0; i < racks; ++i) {
    const auto base = static_cast<DiskId>(rack_ids[i] * dc.disks_per_rack());
    for (auto pos : rng.sample_without_replacement(dc.disks_per_rack(), counts[i]))
      trace.push_back({time_hours, base + static_cast<DiskId>(pos)});
  }
  sort_trace(trace);
  return trace;
}

FailureTrace parse_trace(std::istream& in, const Topology& topo, bool require_monotonic) {
  FailureTrace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    double time = 0.0;
    char comma = 0;
    std::uint64_t disk = 0;
    if (!(ls >> time >> comma >> disk) || comma != ',')
      throw PreconditionError("trace line " + std::to_string(lineno) +
                              ": expected 'time_hours,disk_id'");
    std::string rest;
    if (ls >> rest && !rest.empty() && rest[0] != '#')
      throw PreconditionError("trace line " + std::to_string(lineno) +
                              ": trailing garbage after disk id: '" + rest + "'");
    MLEC_REQUIRE(std::isfinite(time),
                 "trace line " + std::to_string(lineno) + ": non-finite time");
    MLEC_REQUIRE(time >= 0.0, "trace line " + std::to_string(lineno) + ": negative time");
    MLEC_REQUIRE(disk < topo.config().total_disks(),
                 "trace line " + std::to_string(lineno) + ": disk id out of range");
    if (require_monotonic && !trace.empty() && time < trace.back().time_hours)
      throw PreconditionError("trace line " + std::to_string(lineno) +
                              ": timestamp goes backwards (" + std::to_string(time) + " < " +
                              std::to_string(trace.back().time_hours) + ")");
    trace.push_back({time, static_cast<DiskId>(disk)});
  }
  sort_trace(trace);
  return trace;
}

std::string format_trace(const FailureTrace& trace) {
  std::ostringstream os;
  os << "# time_hours,disk_id\n";
  for (const auto& ev : trace) os << ev.time_hours << ',' << ev.disk << '\n';
  return os.str();
}

}  // namespace mlec
