#include "sim/local_pool_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/combin.hpp"
#include "sim/pool_state.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

void LocalPoolSimConfig::validate() const {
  code.validate();
  bandwidth.validate();
  MLEC_REQUIRE(pool_disks >= code.width(), "pool must hold at least one stripe width of disks");
  if (placement == Placement::kClustered)
    MLEC_REQUIRE(pool_disks == code.width(), "clustered pool is exactly k+p disks");
  MLEC_REQUIRE(afr > 0.0 && afr < 1.0, "AFR must be in (0,1)");
  MLEC_REQUIRE(detection_hours >= 0.0, "detection time must be non-negative");
  MLEC_REQUIRE(mission_hours > 0.0, "mission must be positive");
  MLEC_REQUIRE(disk_capacity_tb > 0.0 && chunk_kb > 0.0, "capacity/chunk must be positive");
}

double LocalPoolSimConfig::stripes_in_pool() const {
  const double chunks_per_disk = disk_capacity_tb * 1e12 / (chunk_kb * 1e3);
  return static_cast<double>(pool_disks) * chunks_per_disk / static_cast<double>(code.width());
}

double LocalPoolSimResult::catastrophe_probability_per_year() const {
  return -std::expm1(-catastrophe_rate_per_year());
}

PoolRepairModel LocalPoolSimConfig::repair_model() const {
  PoolRepairModel model;
  model.code = code;
  model.pool_disks = pool_disks;
  model.clustered = placement == Placement::kClustered;
  model.priority_repair = priority_repair;
  model.detection_hours = detection_hours;
  model.disk_capacity_tb = disk_capacity_tb;
  model.chunk_kb = chunk_kb;
  model.disk_eff_mbps = bandwidth.effective_disk_mbps();
  model.finalize();
  return model;
}

LocalPoolSimResult simulate_local_pool(const LocalPoolSimConfig& cfg, std::uint64_t missions,
                                       Rng& rng, std::size_t max_samples) {
  cfg.validate();
  LocalPoolSimResult result;
  result.missions = missions;
  result.pool_years = static_cast<double>(missions) * cfg.mission_hours / units::kHoursPerYear;

  const double lambda = cfg.afr / units::kHoursPerYear;  // per disk-hour
  const double pool_rate = lambda * static_cast<double>(cfg.pool_disks);
  const PoolRepairModel model = cfg.repair_model();
  auto record_repair = [&](double start, double finish) {
    result.single_disk_repair_hours.add(finish - start);
  };

  // One pool state reused across missions: reset() keeps the failure
  // vector's capacity, so the mission loop allocates nothing.
  LocalPoolState pool;
  for (std::uint64_t m = 0; m < missions; ++m) {
    double t = 0.0;
    double next_fail = rng.exponential(pool_rate);
    ++result.rng_draws;
    pool.reset();

    while (true) {
      // Earliest upcoming event: failure arrival, or the pool's own next
      // detection/completion (shared state machine).
      const double next_event = std::min(next_fail, pool.next_event_after(t, model));
      if (next_event >= cfg.mission_hours) break;
      pool.advance_to(next_event, model, record_repair);
      t = next_event;
      ++result.events_processed;
      if (next_event < next_fail) continue;  // detection/completion handled above

      next_fail = t + rng.exponential(pool_rate);
      ++result.rng_draws;
      pool.add_failure(t, model);

      if (pool.catastrophic(t, model)) {
        ++result.catastrophes;
        if (result.samples.size() < max_samples) {
          CatastropheSample sample{};
          sample.time_hours = t;
          sample.concurrent_failures = static_cast<std::uint32_t>(pool.failures.size());
          sample.unrebuilt_tb = pool.unrebuilt_tb();
          sample.lost_stripe_fraction = pool.lost_stripe_fraction(model);
          sample.lost_local_stripes = sample.lost_stripe_fraction * cfg.stripes_in_pool();
          result.samples.push_back(sample);
        }
        pool.reset();
      } else {
        pool.extend_critical_window(t, model);
      }
    }
  }
  return result;
}

LocalPoolSimResult merge_results(std::vector<LocalPoolSimResult> shards,
                                 std::size_t max_samples) {
  LocalPoolSimResult merged;
  for (auto& shard : shards) {
    merged.missions += shard.missions;
    merged.catastrophes += shard.catastrophes;
    merged.pool_years += shard.pool_years;
    merged.single_disk_repair_hours.merge(shard.single_disk_repair_hours);
    merged.events_processed += shard.events_processed;
    merged.rng_draws += shard.rng_draws;
    for (auto& sample : shard.samples) {
      if (merged.samples.size() >= max_samples) break;
      merged.samples.push_back(sample);
    }
  }
  return merged;
}

}  // namespace mlec
