#include "sim/local_pool_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/combin.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

void LocalPoolSimConfig::validate() const {
  code.validate();
  bandwidth.validate();
  MLEC_REQUIRE(pool_disks >= code.width(), "pool must hold at least one stripe width of disks");
  if (placement == Placement::kClustered)
    MLEC_REQUIRE(pool_disks == code.width(), "clustered pool is exactly k+p disks");
  MLEC_REQUIRE(afr > 0.0 && afr < 1.0, "AFR must be in (0,1)");
  MLEC_REQUIRE(detection_hours >= 0.0, "detection time must be non-negative");
  MLEC_REQUIRE(mission_hours > 0.0, "mission must be positive");
  MLEC_REQUIRE(disk_capacity_tb > 0.0 && chunk_kb > 0.0, "capacity/chunk must be positive");
}

double LocalPoolSimConfig::stripes_in_pool() const {
  const double chunks_per_disk = disk_capacity_tb * 1e12 / (chunk_kb * 1e3);
  return static_cast<double>(pool_disks) * chunks_per_disk / static_cast<double>(code.width());
}

double LocalPoolSimResult::catastrophe_probability_per_year() const {
  return -std::expm1(-catastrophe_rate_per_year());
}

namespace {

struct ActiveFailure {
  double start;
  double detect_at;
  double remaining_tb;
};

/// Aggregate declustered rebuild bandwidth with f concurrent failures
/// (Table 2's (n-f) * disk_eff / (k_l + 1) formulation).
double declustered_bw_mbps(const LocalPoolSimConfig& cfg, std::size_t f) {
  const double survivors = static_cast<double>(cfg.pool_disks - f);
  return survivors * cfg.bandwidth.effective_disk_mbps() /
         static_cast<double>(cfg.code.k + 1);
}

/// Expected volume (TB) of one-chunk demotions needed to clear the critical
/// class: stripes currently at exactly p_l failed chunks.
double critical_volume_tb(const LocalPoolSimConfig& cfg, std::size_t f) {
  const double p_crit = hypergeom_pmf(static_cast<std::int64_t>(cfg.pool_disks),
                                      static_cast<std::int64_t>(f),
                                      static_cast<std::int64_t>(cfg.code.width()),
                                      static_cast<std::int64_t>(cfg.code.p));
  const double chunk_tb = cfg.chunk_kb * 1e3 / 1e12;
  return cfg.stripes_in_pool() * p_crit * chunk_tb;
}

}  // namespace

LocalPoolSimResult simulate_local_pool(const LocalPoolSimConfig& cfg, std::uint64_t missions,
                                       Rng& rng, std::size_t max_samples) {
  cfg.validate();
  LocalPoolSimResult result;
  result.missions = missions;
  result.pool_years = static_cast<double>(missions) * cfg.mission_hours / units::kHoursPerYear;

  const double lambda = cfg.afr / units::kHoursPerYear;  // per disk-hour
  const double pool_rate = lambda * static_cast<double>(cfg.pool_disks);
  const double disk_eff = cfg.bandwidth.effective_disk_mbps();
  const bool clustered = cfg.placement == Placement::kClustered;
  const std::size_t tolerance = cfg.code.p;

  for (std::uint64_t m = 0; m < missions; ++m) {
    double t = 0.0;
    double next_fail = rng.exponential(pool_rate);
    std::vector<ActiveFailure> failures;
    double clear_at = -std::numeric_limits<double>::infinity();

    auto reset_pool = [&] {
      failures.clear();
      clear_at = -std::numeric_limits<double>::infinity();
    };

    while (t < cfg.mission_hours) {
      // Per-failure repair rates (TB/hour) at the current state.
      const std::size_t f = failures.size();
      std::size_t detected = 0;
      for (const auto& fail : failures) detected += fail.detect_at <= t ? 1 : 0;
      double per_disk_tb_per_hour = 0.0;
      if (detected > 0) {
        const double mbps = clustered
                                ? disk_eff
                                : declustered_bw_mbps(cfg, f) / static_cast<double>(detected);
        per_disk_tb_per_hour = mbps * units::kSecondsPerHour * 1e6 / 1e12;
      }

      // Earliest upcoming event: failure, detection, or repair completion.
      double next_event = next_fail;
      enum class Kind { kFailure, kDetection, kCompletion } kind = Kind::kFailure;
      std::size_t which = 0;
      for (std::size_t i = 0; i < failures.size(); ++i) {
        if (failures[i].detect_at > t && failures[i].detect_at < next_event) {
          next_event = failures[i].detect_at;
          kind = Kind::kDetection;
          which = i;
        }
        if (failures[i].detect_at <= t && per_disk_tb_per_hour > 0.0) {
          const double done_at = t + failures[i].remaining_tb / per_disk_tb_per_hour;
          if (done_at < next_event) {
            next_event = done_at;
            kind = Kind::kCompletion;
            which = i;
          }
        }
      }
      if (next_event >= cfg.mission_hours) break;

      // Advance rebuild progress on detected failures.
      const double dt = next_event - t;
      for (auto& fail : failures)
        if (fail.detect_at <= t)
          fail.remaining_tb = std::max(0.0, fail.remaining_tb - per_disk_tb_per_hour * dt);
      t = next_event;

      switch (kind) {
        case Kind::kDetection:
          break;  // rates recompute next iteration
        case Kind::kCompletion:
          result.single_disk_repair_hours.add(t - failures[which].start);
          failures.erase(failures.begin() + static_cast<std::ptrdiff_t>(which));
          break;
        case Kind::kFailure: {
          next_fail = t + rng.exponential(pool_rate);
          failures.push_back({t, t + cfg.detection_hours, cfg.disk_capacity_tb});
          const std::size_t f_after = failures.size();

          bool catastrophe = false;
          if (f_after >= tolerance + 1) {
            if (clustered || !cfg.priority_repair) {
              catastrophe = true;
            } else {
              catastrophe = t < clear_at;  // critical class not yet demoted
            }
          }

          if (catastrophe) {
            ++result.catastrophes;
            if (result.samples.size() < max_samples) {
              CatastropheSample sample{};
              sample.time_hours = t;
              sample.concurrent_failures = static_cast<std::uint32_t>(f_after);
              double unrebuilt = 0.0;
              for (const auto& fail : failures) unrebuilt += fail.remaining_tb;
              sample.unrebuilt_tb = unrebuilt;
              if (clustered) {
                double max_progress = 0.0;
                for (const auto& fail : failures)
                  max_progress =
                      std::max(max_progress, 1.0 - fail.remaining_tb / cfg.disk_capacity_tb);
                sample.lost_stripe_fraction = 1.0 - max_progress;
              } else {
                sample.lost_stripe_fraction = hypergeom_tail_geq(
                    static_cast<std::int64_t>(cfg.pool_disks),
                    static_cast<std::int64_t>(f_after),
                    static_cast<std::int64_t>(cfg.code.width()),
                    static_cast<std::int64_t>(tolerance + 1));
              }
              sample.lost_local_stripes = sample.lost_stripe_fraction * cfg.stripes_in_pool();
              result.samples.push_back(sample);
            }
            reset_pool();
            break;
          }

          // Declustered priority reconstruction: when stripes at p_l failed
          // chunks (the critical class) may now exist, extend the window
          // during which one more failure is fatal.
          if (!clustered && cfg.priority_repair && f_after >= tolerance) {
            const double bw = declustered_bw_mbps(cfg, f_after);
            const double hours =
                cfg.detection_hours +
                units::hours_to_move(critical_volume_tb(cfg, f_after), bw);
            clear_at = std::max(clear_at, t + hours);
          }
          break;
        }
      }
    }
  }
  return result;
}

LocalPoolSimResult merge_results(std::vector<LocalPoolSimResult> shards,
                                 std::size_t max_samples) {
  LocalPoolSimResult merged;
  for (auto& shard : shards) {
    merged.missions += shard.missions;
    merged.catastrophes += shard.catastrophes;
    merged.pool_years += shard.pool_years;
    merged.single_disk_repair_hours.merge(shard.single_disk_repair_hours);
    for (auto& sample : shard.samples) {
      if (merged.samples.size() >= max_samples) break;
      merged.samples.push_back(sample);
    }
  }
  return merged;
}

}  // namespace mlec
