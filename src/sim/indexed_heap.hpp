// Indexed d-ary min-heap with decrease-key / increase-key / remove.
//
// The fleet simulator queues at most one intrinsic event (detection or
// rebuild completion) per local pool, but that event moves every time the
// pool's state changes. A plain std::priority_queue forces lazy deletion:
// stale entries pile up and every reschedule pays a push plus later a pop.
// This heap keys entries by a dense id (the pool index) and keeps an
// id -> position table, so a reschedule is an in-place sift and a retired
// pool's event is removed outright — the queue never holds garbage.
//
// Ordering is strict-weak by (key, id), so the pop sequence is a pure
// function of the contained set — deterministic regardless of the
// push/update history, which the simulators rely on for reproducibility.
// 4-ary layout: shallower than binary for the same size, and the 4-child
// min scan is branch-friendly on the small heaps the simulator produces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace mlec {

class IndexedMinHeap {
 public:
  /// Size the id universe to [0, universe) and clear the heap.
  void resize(std::size_t universe) {
    heap_.clear();
    pos_.assign(universe, 0);
  }

  /// Remove all entries. O(size), not O(universe).
  void clear() {
    for (const Node& n : heap_) pos_[n.id] = 0;
    heap_.clear();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::size_t universe() const { return pos_.size(); }

  bool contains(std::uint32_t id) const { return pos_[id] != 0; }

  /// Key of a contained id.
  double key_of(std::uint32_t id) const {
    MLEC_ASSERT(contains(id), "key_of() requires a contained id");
    return heap_[pos_[id] - 1].key;
  }

  /// Insert `id` with `key`, or move it to `key` if already present
  /// (decrease and increase both supported).
  void push_or_update(std::uint32_t id, double key) {
    MLEC_ASSERT(id < pos_.size(), "id outside the sized universe");
    if (pos_[id] == 0) {
      heap_.push_back({key, id});
      pos_[id] = static_cast<std::uint32_t>(heap_.size());
      sift_up(heap_.size() - 1);
    } else {
      const std::size_t i = pos_[id] - 1;
      const double old = heap_[i].key;
      heap_[i].key = key;
      if (key < old) sift_up(i);
      else if (key > old) sift_down(i);
    }
  }

  /// Remove `id` if present; returns whether anything was removed.
  bool remove(std::uint32_t id) {
    if (pos_[id] == 0) return false;
    const std::size_t i = pos_[id] - 1;
    pos_[id] = 0;
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      const Node moved = heap_[last];
      heap_.pop_back();
      heap_[i] = moved;
      pos_[moved.id] = static_cast<std::uint32_t>(i + 1);
      // The replacement can be smaller or larger than the hole's parent.
      sift_up(i);
      sift_down(pos_[moved.id] - 1);
    } else {
      heap_.pop_back();
    }
    return true;
  }

  std::uint32_t top_id() const {
    MLEC_ASSERT(!heap_.empty(), "top_id() on an empty heap");
    return heap_.front().id;
  }
  double top_key() const {
    MLEC_ASSERT(!heap_.empty(), "top_key() on an empty heap");
    return heap_.front().key;
  }

  void pop() {
    MLEC_ASSERT(!heap_.empty(), "pop() on an empty heap");
    remove(heap_.front().id);
  }

 private:
  struct Node {
    double key;
    std::uint32_t id;
  };
  static constexpr std::size_t kArity = 4;

  static bool less(const Node& a, const Node& b) {
    // lint:allow(float-eq): strict-weak-order tie-break, not a tolerance check
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void sift_up(std::size_t i) {
    const Node node = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less(node, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i + 1);
      i = parent;
    }
    heap_[i] = node;
    pos_[node.id] = static_cast<std::uint32_t>(i + 1);
  }

  void sift_down(std::size_t i) {
    const Node node = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (less(heap_[c], heap_[best])) best = c;
      if (!less(heap_[best], node)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i + 1);
      i = best;
    }
    heap_[i] = node;
    pos_[node.id] = static_cast<std::uint32_t>(i + 1);
  }

  std::vector<Node> heap_;
  std::vector<std::uint32_t> pos_;  ///< id -> heap index + 1; 0 = absent
};

}  // namespace mlec
