// Single-local-pool Monte-Carlo simulator — stage 1 of the paper's
// "splitting" methodology (§3) and the engine behind Figure 7.
//
// Simulates one local pool (clustered: k_l+p_l disks; declustered: a whole
// enclosure) under independent disk failures with detection delay and
// bandwidth-limited rebuild, and records every catastrophic (locally-
// unrecoverable) event together with the state needed by stage 2: how many
// local stripes were lost, and how much data the failed disks held.
//
// Modeling notes (documented deviations are cross-checked against the
// Markov closed forms in tests):
//  * Failures arrive as a Poisson process at rate n*lambda; with <=1% AFR
//    and small concurrent-failure counts the thinning error is negligible.
//  * Clustered pools rebuild each failed disk onto a dedicated spare at the
//    spare's write bandwidth (Table 2's 40 MB/s); a catastrophe occurs when
//    p_l+1 rebuilds overlap, and the lost-stripe fraction is the span of
//    stripes not yet rebuilt on the most-rebuilt failed disk (in-order
//    rebuild).
//  * Declustered pools rebuild at the pool-wide declustered bandwidth
//    (Table 2's 264 MB/s) shared across concurrent failures. With priority
//    reconstruction (the default, as in the paper), stripes currently at
//    p_l failed chunks are rebuilt first; their volume is the hypergeometric
//    expectation, so the pool becomes immune to the next single failure
//    once that (small) volume has been rewritten, detection time included.
//    A catastrophe occurs when a failure arrives inside the critical window.
//    With priority_repair=false (ablation), any p_l+1 overlapping rebuilds
//    are catastrophic, as in a clustered pool.
#pragma once

#include <cstdint>
#include <vector>

#include "placement/codes.hpp"
#include "placement/schemes.hpp"
#include "sim/pool_state.hpp"
#include "topology/bandwidth.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mlec {

struct LocalPoolSimConfig {
  SlecCode code{17, 3};
  Placement placement = Placement::kClustered;
  std::size_t pool_disks = 20;  ///< k_l+p_l for Cp, enclosure size for Dp
  double disk_capacity_tb = 20.0;
  double chunk_kb = 128.0;
  double afr = 0.01;
  double detection_hours = 0.5;
  BandwidthConfig bandwidth{};
  double mission_hours = 8766.0;
  bool priority_repair = true;

  void validate() const;
  /// Local stripes resident in the pool at full chunk density.
  double stripes_in_pool() const;
  /// The shared pool-state physics (sim/pool_state.hpp) for this config.
  PoolRepairModel repair_model() const;
};

/// State captured at one catastrophic local-pool failure; consumed by the
/// splitting stage 2 (analysis/splitting.hpp).
struct CatastropheSample {
  double time_hours;                ///< when within the mission it happened
  std::uint32_t concurrent_failures;///< failed disks at that instant
  double lost_local_stripes;        ///< stripes with >= p_l+1 lost chunks
  double lost_stripe_fraction;      ///< lost stripes / stripes in pool
  double unrebuilt_tb;              ///< data still missing across failed disks
};

struct LocalPoolSimResult {
  std::uint64_t missions = 0;
  std::uint64_t catastrophes = 0;
  double pool_years = 0.0;  ///< total simulated pool-time in years
  std::vector<CatastropheSample> samples;
  RunningStats single_disk_repair_hours;  ///< observed per-disk rebuild times
  /// Perf counters: discrete events processed (failures plus pool
  /// detections/completions) and RNG variates drawn.
  std::uint64_t events_processed = 0;
  std::uint64_t rng_draws = 0;

  /// Catastrophes per pool-year (the splitting stage-1 rate).
  double catastrophe_rate_per_year() const {
    return pool_years > 0.0 ? static_cast<double>(catastrophes) / pool_years : 0.0;
  }
  /// Probability a single pool goes catastrophic within one year.
  double catastrophe_probability_per_year() const;
};

/// Run `missions` independent missions (sequentially; callers parallelize by
/// splitting rngs and merging results). After each catastrophe the pool is
/// reset (network-level repair is stage 2's concern) and the mission
/// continues, so the estimator is a rate, not a first-passage probability.
LocalPoolSimResult simulate_local_pool(const LocalPoolSimConfig& config, std::uint64_t missions,
                                       Rng& rng, std::size_t max_samples = 10000);

/// Merge partial results from parallel shards.
LocalPoolSimResult merge_results(std::vector<LocalPoolSimResult> shards,
                                 std::size_t max_samples = 10000);

}  // namespace mlec
