// Shared per-pool failure/rebuild/critical-window state machine.
//
// One local pool's life between catastrophes is the same whether it is
// simulated alone (sim/local_pool_sim.hpp, the splitting stage 1) or as one
// of thousands inside the fleet simulator (analysis/fleet_sim.cpp): disks
// fail, sit undetected for `detection_hours`, then rebuild at a placement-
// dependent bandwidth; declustered pools with priority reconstruction carry
// a critical window during which one more failure is fatal. Both simulators
// include this header so the physics exists exactly once.
//
//  * PoolRepairModel — immutable per-run rebuild physics (Table 2 rates,
//    hypergeometric lost-stripe fractions, critical-window lengths).
//  * LocalPoolState — one pool's mutable state: in-flight failures with
//    rebuild progress, the declustered critical-window end, and the
//    piecewise-constant advance between events.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "math/combin.hpp"
#include "placement/codes.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

/// Rebuilds whose remaining volume drops below this are complete (absorbs
/// the floating-point dust left by piecewise-constant advancement).
inline constexpr double kRebuildCompleteEpsilonTb = 1e-12;

/// Immutable rebuild physics of one local pool. Fill the fields, then call
/// finalize() once to build the derived lookup tables.
struct PoolRepairModel {
  /// Sentinel for `tolerance`: derive from the MDS code at finalize().
  static constexpr std::size_t kToleranceFromCode = static_cast<std::size_t>(-1);

  SlecCode code{17, 3};
  std::size_t pool_disks = 20;  ///< k_l+p_l for clustered, enclosure for declustered
  bool clustered = true;        ///< local placement
  bool priority_repair = true;  ///< declustered priority reconstruction
  double detection_hours = 0.5;
  double disk_capacity_tb = 20.0;
  double chunk_kb = 128.0;
  double disk_eff_mbps = 40.0;  ///< effective (capped) per-disk bandwidth
  /// Erasure tolerance that drives the catastrophe threshold and the
  /// critical-window classes. Defaults (at finalize()) to code.p — the MDS
  /// value; a non-MDS local code installs its CodeModel::min_tolerance()
  /// here instead of patching every `> p` comparison.
  std::size_t tolerance = kToleranceFromCode;
  /// Shards read per rebuilt chunk (the declustered rebuild fan-in of
  /// Table 2's k_l+1 denominator). Defaults to code.k; a repair-efficient
  /// code installs CodeModel::avg_single_repair_reads().
  double repair_read_shards = -1.0;

  void finalize() {
    MLEC_ASSERT(pool_disks >= code.width(), "pool narrower than its code");
    MLEC_ASSERT(disk_eff_mbps > 0.0, "finalize() needs a positive disk bandwidth");
    if (tolerance == kToleranceFromCode) tolerance = code.p;
    if (repair_read_shards < 0.0) repair_read_shards = static_cast<double>(code.k);
    const std::size_t max_f = std::min<std::size_t>(pool_disks, 64);
    frac_tab_.assign(max_f + 1, 0.0);
    decl_bw_tab_.assign(max_f + 1, 0.0);
    crit_win_tab_.assign(max_f + 1, 0.0);
    clustered_rate_ = disk_eff_mbps * units::kSecondsPerHour * 1e6 / 1e12;
    for (std::size_t f = 0; f <= max_f; ++f) {
      frac_tab_[f] = hypergeom_tail_geq(static_cast<std::int64_t>(pool_disks),
                                        static_cast<std::int64_t>(f),
                                        static_cast<std::int64_t>(code.width()),
                                        static_cast<std::int64_t>(tolerance + 1));
      decl_bw_tab_[f] = declustered_bw_raw(f);
      crit_win_tab_[f] = detection_hours + critical_volume_tb(f) / decl_bw_tab_[f];
    }
  }

  double chunks_per_disk() const { return disk_capacity_tb * 1e12 / (chunk_kb * 1e3); }
  /// Local stripes resident in the pool at full chunk density.
  double stripes_in_pool() const {
    return static_cast<double>(pool_disks) * chunks_per_disk() /
           static_cast<double>(code.width());
  }

  /// Clustered: each failed disk rebuilds onto its own spare at the spare's
  /// write bandwidth.
  double clustered_rate_tb_h() const {
    return crit_win_tab_.empty() ? disk_eff_mbps * units::kSecondsPerHour * 1e6 / 1e12
                                 : clustered_rate_;
  }
  /// Declustered: pool-wide aggregate bandwidth with f concurrent failures
  /// (Table 2's (n-f) * disk_eff / (k_l+1)). Table-backed after finalize().
  double declustered_bw_tb_h(std::size_t f) const {
    return f < decl_bw_tab_.size() ? decl_bw_tab_[f] : declustered_bw_raw(f);
  }
  /// Rebuild rate (TB/h) applied to EACH detected failure given the pool's
  /// concurrent-failure and detected counts. Zero while nothing is detected.
  double per_failure_rate_tb_h(std::size_t concurrent, std::size_t detected) const {
    if (detected == 0) return 0.0;
    return clustered ? clustered_rate_tb_h()
                     : declustered_bw_tb_h(concurrent) / static_cast<double>(detected);
  }

  /// Fraction of the pool's stripes with >= p_l+1 chunks on the f failed
  /// disks (hypergeometric tail; declustered placement).
  double declustered_lost_fraction(std::size_t f) const {
    return frac_tab_[std::min(f, frac_tab_.size() - 1)];
  }

  /// Expected volume (TB) of class-p_l demotions inside a pool with f
  /// concurrent failures (the priority-reconstruction critical class).
  double critical_volume_tb(std::size_t f) const {
    const double p_crit = hypergeom_pmf(static_cast<std::int64_t>(pool_disks),
                                        static_cast<std::int64_t>(f),
                                        static_cast<std::int64_t>(code.width()),
                                        static_cast<std::int64_t>(tolerance));
    return stripes_in_pool() * p_crit * chunk_kb * 1e3 / 1e12;
  }
  /// Length of the critical window opened by reaching f concurrent failures:
  /// detection plus demoting the critical class at declustered bandwidth.
  /// Table-backed after finalize() — the raw form recomputes a
  /// hypergeometric pmf, far too costly for the per-failure hot path.
  double critical_window_hours(std::size_t f) const {
    if (f < crit_win_tab_.size()) return crit_win_tab_[f];
    return detection_hours + critical_volume_tb(f) / declustered_bw_raw(f);
  }

 private:
  double declustered_bw_raw(std::size_t f) const {
    return static_cast<double>(pool_disks - f) * disk_eff_mbps /
           (repair_read_shards + 1.0) * units::kSecondsPerHour * 1e6 / 1e12;
  }

  std::vector<double> frac_tab_;      ///< declustered_lost_fraction by f
  std::vector<double> decl_bw_tab_;   ///< declustered_bw_tb_h by f
  std::vector<double> crit_win_tab_;  ///< critical_window_hours by f
  double clustered_rate_ = 0.0;       ///< clustered_rate_tb_h after finalize()
};

/// One in-flight disk failure: when it happened, when the repair system
/// notices it, and how much of the disk is still unrebuilt.
struct PoolFailure {
  double start;
  double detect_at;
  double remaining_tb;
};

/// Mutable state of one local pool.
struct LocalPoolState {
  std::vector<PoolFailure> failures;
  /// Declustered critical-window end: a failure arriving before this is
  /// catastrophic even with priority reconstruction.
  double clear_at = -std::numeric_limits<double>::infinity();
  double last_advance = 0.0;

  void reset() {
    failures.clear();
    clear_at = -std::numeric_limits<double>::infinity();
    last_advance = 0.0;
  }

  /// Record a disk failure at time t. Call advance_to(t, ...) first so
  /// rebuild progress is current.
  void add_failure(double t, const PoolRepairModel& m) {
    MLEC_ASSERT(failures.empty() || t <= last_advance,
                "advance_to(t) must run before add_failure(t)");
    if (failures.empty()) last_advance = t;  // fresh (or long-idle) pool
    failures.push_back({t, t + m.detection_hours, m.disk_capacity_tb});
  }

  /// After add_failure: did that failure exceed the pool's tolerance?
  /// Clustered pools (and declustered without priority repair) lose data at
  /// any tolerance+1 overlap (p_l+1 for the MDS default); declustered
  /// priority reconstruction only inside the critical window.
  bool catastrophic(double t, const PoolRepairModel& m) const {
    if (failures.size() < m.tolerance + 1) return false;
    if (m.clustered || !m.priority_repair) return true;
    return t < clear_at;
  }

  /// After a *tolerated* failure: extend the declustered critical window
  /// while stripes at exactly `tolerance` failed chunks may exist. No-op
  /// otherwise.
  void extend_critical_window(double t, const PoolRepairModel& m) {
    if (m.clustered || !m.priority_repair) return;
    if (failures.size() >= m.tolerance)
      clear_at = std::max(clear_at, t + m.critical_window_hours(failures.size()));
  }

  /// Nothing in flight and no live critical window: the pool can be
  /// forgotten by sparse containers.
  bool idle(double t) const { return failures.empty() && clear_at <= t; }

  double unrebuilt_tb() const {
    double total = 0.0;
    for (const auto& f : failures) total += f.remaining_tb;
    return total;
  }

  /// Fraction of local stripes lost if the pool went catastrophic *now*:
  /// clustered pools lose the span not yet rebuilt on the most-rebuilt
  /// failed disk (in-order rebuild); declustered pools the hypergeometric
  /// tail over the current failure count.
  double lost_stripe_fraction(const PoolRepairModel& m) const {
    if (!m.clustered) return m.declustered_lost_fraction(failures.size());
    double max_progress = 0.0;
    for (const auto& f : failures)
      max_progress = std::max(max_progress, 1.0 - f.remaining_tb / m.disk_capacity_tb);
    return 1.0 - max_progress;
  }

  /// Earliest intrinsic event (detection or rebuild completion) after t;
  /// +inf when nothing is pending. Rates are evaluated at t, matching the
  /// piecewise-constant advancement.
  double next_event_after(double t, const PoolRepairModel& m) const {
    if (failures.empty()) return std::numeric_limits<double>::infinity();
    std::size_t detected = 0;
    for (const auto& f : failures) detected += f.detect_at <= t ? 1 : 0;
    const double rate = m.per_failure_rate_tb_h(failures.size(), detected);
    double next = std::numeric_limits<double>::infinity();
    for (const auto& f : failures) {
      if (f.detect_at > t) next = std::min(next, f.detect_at);
      else if (rate > 0.0)
        next = std::min(next, t + f.remaining_tb / rate);
    }
    return next;
  }

  /// Progress rebuilds from last_advance to t with piecewise-constant rates
  /// (segments end at detections and completions), invoking
  /// on_complete(start_time, finish_time) for each rebuild that finishes.
  template <typename OnComplete>
  void advance_to(double t, const PoolRepairModel& m, OnComplete&& on_complete) {
    MLEC_ASSERT(failures.empty() || t >= last_advance, "pool time cannot flow backwards");
    double now = last_advance;
    while (now < t && !failures.empty()) {
      std::size_t detected = 0;
      for (const auto& f : failures) detected += f.detect_at <= now ? 1 : 0;
      const double rate = m.per_failure_rate_tb_h(failures.size(), detected);
      double boundary = t;
      for (const auto& f : failures) {
        if (f.detect_at > now) boundary = std::min(boundary, f.detect_at);
        else if (rate > 0.0)
          boundary = std::min(boundary, now + f.remaining_tb / rate);
      }
      const double dt = boundary - now;
      for (auto& f : failures)
        if (f.detect_at <= now) f.remaining_tb -= rate * dt;
      now = boundary;
      for (auto it = failures.begin(); it != failures.end();) {
        if (it->remaining_tb <= kRebuildCompleteEpsilonTb) {
          on_complete(it->start, now);
          it = failures.erase(it);
        } else {
          ++it;
        }
      }
    }
    last_advance = t;
  }
  void advance_to(double t, const PoolRepairModel& m) {
    advance_to(t, m, [](double, double) {});
  }
};

}  // namespace mlec
