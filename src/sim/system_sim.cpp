#include "sim/system_sim.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "topology/bandwidth.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlec {

double SystemSimConfig::single_disk_repair_hours() const {
  const BandwidthModel model(bandwidth);
  RepairFlow flow;
  flow.read_amp = static_cast<double>(code.local.k);
  flow.write_amp = 1.0;
  if (local_placement(scheme) == Placement::kClustered) {
    flow.read_only_disks = code.local_width() - 1;
    flow.write_only_disks = 1;
  } else {
    flow.shared_disks = dc.disks_per_enclosure - 1;
  }
  return detection_hours + model.repair_hours(dc.disk_capacity_tb, flow);
}

double SystemSimConfig::catastrophic_repair_hours(RepairMethod method) const {
  const BandwidthModel model(bandwidth);
  const std::size_t pool_disks = local_placement(scheme) == Placement::kClustered
                                     ? code.local_width()
                                     : dc.disks_per_enclosure;
  RepairFlow flow;
  flow.read_amp = static_cast<double>(code.network.k);
  flow.write_amp = 1.0;
  flow.cross_rack = true;
  if (network_placement(scheme) == Placement::kClustered) {
    flow.read_only_racks = code.network.k;
    flow.write_only_racks = 1;
  } else {
    flow.shared_racks = dc.racks;
  }
  // Disk-level participation is rarely the bottleneck but kept for small
  // systems: reads spread over k_n pools, writes into the rebuilt pool.
  flow.read_only_disks = code.network.k * pool_disks;
  flow.write_only_disks = pool_disks;

  const double pool_tb = static_cast<double>(pool_disks) * dc.disk_capacity_tb;
  // Fraction of the pool each method moves over the network. The exact
  // per-failure fractions live in analysis/traffic.hpp; here a fixed
  // per-method fraction keeps mission simulation cheap while preserving the
  // R_ALL > R_FCO > R_HYB >= R_MIN ordering.
  const double pl1 = static_cast<double>(code.local.p + 1);
  double fraction = 1.0;
  switch (method) {
    case RepairMethod::kRepairAll:
      fraction = 1.0;
      break;
    case RepairMethod::kRepairFailedOnly:
      fraction = pl1 / static_cast<double>(pool_disks);
      break;
    case RepairMethod::kRepairHybrid:
      fraction = pl1 / static_cast<double>(pool_disks) *
                 (local_placement(scheme) == Placement::kDeclustered ? 0.1 : 1.0);
      break;
    case RepairMethod::kRepairMinimum:
      fraction = pl1 / static_cast<double>(pool_disks) /
                 std::max(1.0, pl1) *
                 (local_placement(scheme) == Placement::kDeclustered ? 0.1 : 1.0);
      break;
  }
  return detection_hours + model.repair_hours(pool_tb * fraction, flow);
}

SystemSimResult simulate_system(const SystemSimConfig& cfg, std::uint64_t missions,
                                std::uint64_t seed, StopToken stop) {
  cfg.dc.validate();
  cfg.code.validate();
  cfg.bandwidth.validate();
  const Topology topo(cfg.dc);
  const StripeMap map(topo, cfg.code, cfg.scheme, cfg.stripes_per_network_pool, seed);
  const std::size_t pl = cfg.code.local.p;
  const std::size_t pn = cfg.code.network.p;

  // disk -> chunks it hosts, as (stripe, local) pairs.
  struct ChunkRef {
    std::uint32_t stripe;
    std::uint16_t local;
  };
  std::vector<std::vector<ChunkRef>> disk_chunks(cfg.dc.total_disks());
  for (std::size_t s = 0; s < map.stripes().size(); ++s)
    for (std::size_t i = 0; i < map.stripes()[s].locals.size(); ++i)
      for (DiskId d : map.stripes()[s].locals[i].disks)
        disk_chunks[d].push_back({static_cast<std::uint32_t>(s), static_cast<std::uint16_t>(i)});

  const double t_single = cfg.single_disk_repair_hours();
  const double t_cat = cfg.catastrophic_repair_hours(cfg.method);

  SystemSimResult result;
  Rng rng(seed ^ 0xabcdef1234567890ULL);

  std::vector<std::size_t> local_failures;   // per (stripe, local), flattened
  std::vector<std::size_t> stripe_lost;      // lost locals per network stripe
  std::vector<std::size_t> local_offsets(map.stripes().size() + 1, 0);
  for (std::size_t s = 0; s < map.stripes().size(); ++s)
    local_offsets[s + 1] = local_offsets[s] + map.stripes()[s].locals.size();

  for (std::uint64_t m = 0; m < missions; ++m) {
    if (stop.stop_requested()) {
      result.truncated = true;
      break;
    }
    ++result.missions;
    auto trace = generate_failures(topo, cfg.failures, cfg.mission_hours, rng);
    local_failures.assign(local_offsets.back(), 0);
    stripe_lost.assign(map.stripes().size(), 0);
    std::vector<double> repaired_at(cfg.dc.total_disks(), -1.0);  // <0: healthy
    // Completion-ordered queue of (time, disk) to un-fail disks lazily.
    using Completion = std::pair<double, DiskId>;
    std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;

    bool lost = false;
    for (const auto& ev : trace) {
      // Process repair completions up to this failure.
      while (!completions.empty() && completions.top().first <= ev.time_hours) {
        const auto [ct, d] = completions.top();
        completions.pop();
        if (repaired_at[d] < 0) continue;   // already healthy (stale entry)
        if (repaired_at[d] > ct) continue;  // rescheduled to a later time
        repaired_at[d] = -1.0;
        for (const auto& ref : disk_chunks[d]) {
          auto& fc = local_failures[local_offsets[ref.stripe] + ref.local];
          if (fc > pl) --stripe_lost[ref.stripe];  // leaving the lost class?
          --fc;
          if (fc > pl) ++stripe_lost[ref.stripe];
        }
      }
      if (repaired_at[ev.disk] >= 0) continue;  // already failed (renewal overlap)

      // Fail the disk.
      repaired_at[ev.disk] = ev.time_hours + t_single;
      bool pool_went_catastrophic = false;
      for (const auto& ref : disk_chunks[ev.disk]) {
        auto& fc = local_failures[local_offsets[ref.stripe] + ref.local];
        ++fc;
        if (fc == pl + 1) {
          ++stripe_lost[ref.stripe];
          pool_went_catastrophic = true;
          if (stripe_lost[ref.stripe] > pn) lost = true;
        }
      }
      if (lost) {
        ++result.data_loss_missions;
        result.loss_time_hours.add(ev.time_hours);
        break;
      }
      if (pool_went_catastrophic) {
        ++result.catastrophic_pool_events;
        // All failed disks of the affected pool now wait on the (slower)
        // network repair path.
        const LocalPoolId pool = map.pool_of_disk(ev.disk);
        for (DiskId d : map.pool_disks(pool)) {
          if (repaired_at[d] >= 0) {
            repaired_at[d] = ev.time_hours + t_cat;
            completions.push({repaired_at[d], d});
          }
        }
      } else {
        completions.push({repaired_at[ev.disk], ev.disk});
      }
    }
  }
  return result;
}

}  // namespace mlec
