// Disk-failure generation: distributions, burst rules, and trace replay
// (the paper's "simulating disk failures based on distributions, rules, or
// real traces").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace mlec {

/// One disk failure at an absolute simulation time (hours).
struct FailureEvent {
  double time_hours;
  DiskId disk;
};

/// A failure trace: time-ordered failure events over a mission.
using FailureTrace = std::vector<FailureEvent>;

/// Lifetime distribution for generated failures.
struct FailureDistribution {
  enum class Kind { kExponential, kWeibull } kind = Kind::kExponential;
  /// Annual failure rate for the exponential model (e.g. 0.01 for 1% AFR).
  double afr = 0.01;
  /// Weibull shape (<1 = infant mortality, >1 = wear-out) and scale (hours);
  /// used only when kind == kWeibull.
  double weibull_shape = 1.2;
  double weibull_scale_hours = 8.766e5;

  double hourly_rate() const { return afr / 8766.0; }
};

/// Generate independent failures for every disk over [0, mission_hours),
/// with failed disks treated as replaced-and-good after each failure (i.e. a
/// renewal process per disk). Result is time-sorted.
FailureTrace generate_failures(const Topology& topo, const FailureDistribution& dist,
                               double mission_hours, Rng& rng);

/// Burst rule (paper §4.1.1): `total_failures` simultaneous failures at
/// `time_hours`, scattered uniformly over `racks` distinct racks with every
/// chosen rack receiving at least one failure. Samples the exact conditional
/// uniform distribution over disk subsets.
FailureTrace generate_burst(const Topology& topo, std::size_t racks, std::size_t total_failures,
                            double time_hours, Rng& rng);

/// Parse a trace from CSV lines of "time_hours,disk_id" (with '#' comments
/// and blank lines ignored). Throws PreconditionError — with the offending
/// line number — on malformed lines, trailing garbage, negative or
/// non-finite timestamps, and out-of-range disk ids. By default events may
/// appear in any order and the result is sorted by time; with
/// `require_monotonic` set, a timestamp lower than its predecessor is an
/// error instead (for traces that are contractually time-ordered).
FailureTrace parse_trace(std::istream& in, const Topology& topo,
                         bool require_monotonic = false);

/// Serialize a trace to the same CSV format.
std::string format_trace(const FailureTrace& trace);

}  // namespace mlec
