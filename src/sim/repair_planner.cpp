#include "sim/repair_planner.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace mlec {

RepairPlan plan_repair(const StripeMap& map, const std::vector<DiskId>& failed_disks,
                       RepairMethod method) {
  const auto& code = map.layout().code();
  const double kn = static_cast<double>(code.network.k);
  const double kl = static_cast<double>(code.local.k);
  const std::size_t pl = code.local.p;
  const std::size_t pn = code.network.p;
  const double loc_width = static_cast<double>(code.local_width());

  std::vector<bool> failed(map.topology().config().total_disks(), false);
  for (DiskId d : failed_disks) {
    MLEC_REQUIRE(d < failed.size(), "failed disk out of range");
    failed[d] = true;
  }

  // Pass 1: failure count per local stripe, and the catastrophic-pool set.
  const auto& stripes = map.stripes();
  std::vector<std::vector<std::size_t>> fail_counts(stripes.size());
  std::unordered_set<LocalPoolId> catastrophic;
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    fail_counts[s].resize(stripes[s].locals.size());
    for (std::size_t i = 0; i < stripes[s].locals.size(); ++i) {
      std::size_t fc = 0;
      for (DiskId d : stripes[s].locals[i].disks) fc += failed[d] ? 1 : 0;
      fail_counts[s][i] = fc;
      if (fc > pl) catastrophic.insert(stripes[s].locals[i].pool);
    }
  }

  RepairPlan plan;
  plan.method = method;
  plan.catastrophic_pools = catastrophic.size();

  auto local_repair = [&](std::size_t fc) {
    plan.local_read_chunks += kl;
    plan.local_write_chunks += static_cast<double>(fc);
  };
  auto network_repair_chunks = [&](double chunks) {
    plan.network_read_chunks += kn * chunks;
    plan.network_write_chunks += chunks;
  };

  for (std::size_t s = 0; s < stripes.size(); ++s) {
    // Network stripes with more than p_n lost locals are unrecoverable.
    std::size_t lost_locals = 0;
    for (std::size_t fc : fail_counts[s]) lost_locals += fc > pl ? 1 : 0;
    plan.lost_local_stripes += lost_locals;
    if (lost_locals > pn) {
      ++plan.unrecoverable_network_stripes;
      continue;
    }

    for (std::size_t i = 0; i < stripes[s].locals.size(); ++i) {
      const std::size_t fc = fail_counts[s][i];
      const bool pool_cat = catastrophic.contains(stripes[s].locals[i].pool);

      switch (method) {
        case RepairMethod::kRepairAll:
          // Black-box: the entire pool's content is regenerated via the
          // network, healthy chunks included.
          if (pool_cat)
            network_repair_chunks(loc_width);
          else if (fc > 0)
            local_repair(fc);
          break;
        case RepairMethod::kRepairFailedOnly:
          if (fc == 0) break;
          if (pool_cat)
            network_repair_chunks(static_cast<double>(fc));
          else
            local_repair(fc);
          break;
        case RepairMethod::kRepairHybrid:
          if (fc == 0) break;
          if (fc > pl)
            network_repair_chunks(static_cast<double>(fc));
          else
            local_repair(fc);
          break;
        case RepairMethod::kRepairMinimum:
          if (fc == 0) break;
          if (fc > pl) {
            // Stage 1: network-repair until locally recoverable...
            network_repair_chunks(static_cast<double>(fc - pl));
            // ...stage 2: the remaining p_l failed chunks rebuild locally.
            local_repair(pl);
          } else {
            local_repair(fc);
          }
          break;
      }
    }
  }
  return plan;
}

}  // namespace mlec
