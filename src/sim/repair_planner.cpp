#include "sim/repair_planner.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace mlec {

RepairPlan plan_repair(const StripeMap& map, const std::vector<DiskId>& failed_disks,
                       RepairMethod method) {
  const auto& code = map.layout().code();
  return plan_repair(map, failed_disks, method, *make_code_model(LevelCode::make_rs(code.network)),
                     *make_code_model(LevelCode::make_rs(code.local)));
}

RepairPlan plan_repair(const StripeMap& map, const std::vector<DiskId>& failed_disks,
                       RepairMethod method, const CodeModel& network, const CodeModel& local) {
  const auto& code = map.layout().code();
  MLEC_REQUIRE(network.level().data_chunks() == code.network.k &&
                   network.level().width() == code.network_width(),
               "network model must match the map code's data count and width");
  MLEC_REQUIRE(local.level().data_chunks() == code.local.k &&
                   local.level().width() == code.local_width(),
               "local model must match the map code's data count and width");
  const double kn = static_cast<double>(network.level().data_chunks());
  const double kl = static_cast<double>(local.level().data_chunks());
  const std::size_t pl = local.min_tolerance();
  const std::size_t pn = network.min_tolerance();
  const double loc_width = static_cast<double>(local.level().width());
  // MDS levels keep pure count arithmetic (also dodges the 64-bit mask
  // limit for wide RS); LRC needs the positional erasure mask.
  const bool net_mds = network.family() != CodeFamily::kLrc;

  std::vector<bool> failed(map.topology().config().total_disks(), false);
  for (DiskId d : failed_disks) {
    MLEC_REQUIRE(d < failed.size(), "failed disk out of range");
    failed[d] = true;
  }

  // Pass 1: failure count per local stripe, and the catastrophic-pool set.
  const auto& stripes = map.stripes();
  std::vector<std::vector<std::size_t>> fail_counts(stripes.size());
  std::unordered_set<LocalPoolId> catastrophic;
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    fail_counts[s].resize(stripes[s].locals.size());
    for (std::size_t i = 0; i < stripes[s].locals.size(); ++i) {
      std::size_t fc = 0;
      for (DiskId d : stripes[s].locals[i].disks) fc += failed[d] ? 1 : 0;
      fail_counts[s][i] = fc;
      if (fc > pl) catastrophic.insert(stripes[s].locals[i].pool);
    }
  }

  RepairPlan plan;
  plan.method = method;
  plan.catastrophic_pools = catastrophic.size();

  auto local_repair = [&](std::size_t fc) {
    plan.local_read_chunks += kl;
    plan.local_write_chunks += static_cast<double>(fc);
  };
  // `pos` is the rebuilt chunk's position in the network stripe; `erased`
  // the positions of lost locals. MDS decodes always read k_n shards; LRC
  // reads what the realized pattern needs (the local group if `pos` is its
  // only loss, k otherwise).
  auto network_repair_chunks = [&](std::size_t pos, ErasureMask erased, double chunks) {
    const double reads =
        net_mds ? kn
                : static_cast<double>(
                      network.repair_reads(pos, erased | (ErasureMask{1} << pos)));
    plan.network_read_chunks += reads * chunks;
    plan.network_write_chunks += chunks;
  };

  for (std::size_t s = 0; s < stripes.size(); ++s) {
    // Lost locals of this network stripe: counted for the MDS `> p_n` test,
    // as a positional mask for the model's decodability table.
    std::size_t lost_locals = 0;
    ErasureMask lost_mask = 0;
    for (std::size_t i = 0; i < fail_counts[s].size(); ++i) {
      if (fail_counts[s][i] > pl) {
        ++lost_locals;
        if (!net_mds) lost_mask |= ErasureMask{1} << i;
      }
    }
    plan.lost_local_stripes += lost_locals;
    if (net_mds ? lost_locals > pn : network.is_data_loss(lost_mask)) {
      ++plan.unrecoverable_network_stripes;
      continue;
    }

    for (std::size_t i = 0; i < stripes[s].locals.size(); ++i) {
      const std::size_t fc = fail_counts[s][i];
      const bool pool_cat = catastrophic.contains(stripes[s].locals[i].pool);

      switch (method) {
        case RepairMethod::kRepairAll:
          // Black-box: the entire pool's content is regenerated via the
          // network, healthy chunks included.
          if (pool_cat)
            network_repair_chunks(i, lost_mask, loc_width);
          else if (fc > 0)
            local_repair(fc);
          break;
        case RepairMethod::kRepairFailedOnly:
          if (fc == 0) break;
          if (pool_cat)
            network_repair_chunks(i, lost_mask, static_cast<double>(fc));
          else
            local_repair(fc);
          break;
        case RepairMethod::kRepairHybrid:
          if (fc == 0) break;
          if (fc > pl)
            network_repair_chunks(i, lost_mask, static_cast<double>(fc));
          else
            local_repair(fc);
          break;
        case RepairMethod::kRepairMinimum:
          if (fc == 0) break;
          if (fc > pl) {
            // Stage 1: network-repair until locally recoverable...
            network_repair_chunks(i, lost_mask, static_cast<double>(fc - pl));
            // ...stage 2: the remaining p_l failed chunks rebuild locally.
            local_repair(pl);
          } else {
            local_repair(fc);
          }
          break;
      }
    }
  }
  return plan;
}

}  // namespace mlec
