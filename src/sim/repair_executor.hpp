// Data-level repair execution: the repair planner's decisions applied to
// real bytes with the GF(2^8) Reed-Solomon coder.
//
// This closes the loop between the placement/planning layers and the coding
// substrate: a MaterializedSystem holds actual chunk contents for every
// disk, encodes network and local parities exactly as §2.1 describes
// (network parities positionwise across local stripes, local parities within
// each local stripe), destroys disks, executes a repair method, and verifies
// the rebuilt bytes — proving the four repair methods are not just cheaper
// or dearer in traffic, but *correct*.
//
// Scale note: chunk contents for every materialized stripe live in memory,
// so this is for small topologies (tests, examples, demos); the count-level
// simulators cover the 57.6k-disk scale.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gf/code_model.hpp"
#include "gf/rs.hpp"
#include "placement/stripe_map.hpp"
#include "sim/repair_planner.hpp"

namespace mlec {

/// Outcome of executing one repair.
struct RepairExecution {
  RepairMethod method{};
  std::size_t chunks_rebuilt = 0;
  std::size_t network_decodes = 0;  ///< network-level decodes (RS or LRC)
  std::size_t local_decodes = 0;    ///< RS decodes at the local level
  bool verified = false;            ///< rebuilt bytes match the originals
  std::size_t unrecoverable_network_stripes = 0;
};

class MaterializedSystem {
 public:
  /// Build chunk contents over `map`: deterministic pseudo-data for the
  /// k_n*k_l data chunks of each network stripe, then network parities
  /// (positionwise over the k_n data local stripes, via the network-level
  /// CodeModel) and local parities (RS within each local stripe).
  /// chunk_bytes is small by design. `network_level` selects the network
  /// code family; the default zero-width sentinel derives classic RS from
  /// the map's code, and any other level must match that code's data count
  /// and width.
  MaterializedSystem(const StripeMap& map, std::size_t chunk_bytes = 64,
                     std::uint64_t seed = 1,
                     LevelCode network_level = LevelCode::make_rs({0, 0}));

  const StripeMap& map() const { return map_; }
  std::size_t chunk_bytes() const { return chunk_bytes_; }

  /// Mark disks failed: their chunk contents are zeroed (simulating loss).
  void fail_disks(const std::vector<DiskId>& disks);

  /// Execute `method` against the current failed set, rebuilding chunk
  /// contents with real decodes (RS both levels, or LRC at the network
  /// level — local-group XOR repairs and global Cauchy decodes included),
  /// then verify every chunk against the pristine copy. Unrecoverable
  /// network stripes are skipped and counted; for LRC that set comes from
  /// the model's decodability table, not a count threshold.
  RepairExecution execute(RepairMethod method);

  /// The network-level code model in force (RS unless constructed with an
  /// explicit level).
  const CodeModel& network_model() const { return *network_model_; }

  /// Direct read access for tests: chunk (stripe, local, position).
  const std::vector<gf::byte_t>& chunk(std::size_t stripe, std::size_t local,
                                       std::size_t position) const;

 private:
  const StripeMap& map_;
  std::size_t chunk_bytes_;
  std::shared_ptr<const CodeModel> network_model_;
  gf::RsCode local_code_;
  // contents_[stripe][local][position] and a pristine copy for verification.
  std::vector<std::vector<std::vector<std::vector<gf::byte_t>>>> contents_;
  std::vector<std::vector<std::vector<std::vector<gf::byte_t>>>> pristine_;
  std::vector<bool> disk_failed_;
};

}  // namespace mlec
