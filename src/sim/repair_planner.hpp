// Chunk-level repair planning for the four repair methods (paper §2.4,
// Figure 4), executed against a materialized StripeMap.
//
// Given a set of failed disks, the planner classifies every local stripe
// (Table 1) and produces the exact chunk reads/writes each repair method
// performs, split into cross-rack (network) and intra-rack (local) traffic.
// The analytic TrafficModel (analysis/traffic.hpp) reproduces these numbers
// in closed form at 57.6k-disk scale; tests cross-validate the two on small
// systems.
//
// Accounting (matches the paper's Figure 8 arithmetic):
//  * rebuilding a chunk over the network reads the chunk at the same stripe
//    position from k_n sibling local stripes and writes 1 chunk, i.e.
//    k_n + 1 cross-rack chunk transfers per rebuilt chunk;
//  * rebuilding locally reads k_l surviving chunks of the stripe once and
//    writes one chunk per failed chunk, all within the rack.
#pragma once

#include <vector>

#include "gf/code_model.hpp"
#include "placement/schemes.hpp"
#include "placement/stripe_map.hpp"

namespace mlec {

/// Chunk-granular traffic of one planned repair.
struct RepairPlan {
  RepairMethod method{};
  // Cross-rack (network-level) transfers, in chunks.
  double network_read_chunks = 0;
  double network_write_chunks = 0;
  // Intra-rack (local-level) transfers, in chunks.
  double local_read_chunks = 0;
  double local_write_chunks = 0;

  std::size_t catastrophic_pools = 0;
  std::size_t lost_local_stripes = 0;
  std::size_t unrecoverable_network_stripes = 0;  ///< data loss: cannot plan

  double network_chunks() const { return network_read_chunks + network_write_chunks; }
  double local_chunks() const { return local_read_chunks + local_write_chunks; }

  /// Cross-rack traffic in TB given the chunk size.
  double network_tb(double chunk_kb) const { return network_chunks() * chunk_kb * 1e3 / 1e12; }
};

/// Plan the repair of `failed_disks` under `method`. Local stripes in
/// non-catastrophic pools always repair locally; the method governs how
/// catastrophic pools are handled:
///  * R_ALL rebuilds every chunk of each catastrophic pool over the network;
///  * R_FCO rebuilds only the failed chunks of catastrophic pools, all over
///    the network;
///  * R_HYB network-repairs failed chunks of lost stripes, and locally
///    repairs the rest;
///  * R_MIN network-repairs just enough chunks of each lost stripe to make
///    it locally recoverable (failures - p_l chunks), then finishes locally.
RepairPlan plan_repair(const StripeMap& map, const std::vector<DiskId>& failed_disks,
                       RepairMethod method);

/// Model-priced variant: the network and local levels are CodeModels
/// (gf/code_model.hpp) instead of raw (k, p). MDS families reproduce the
/// count-based arithmetic above bit-exactly; an LRC network level prices
/// each rebuilt chunk by the shards its decode actually reads (a lone lost
/// local in a group costs the group's k/l + 1 members, not k_n) and
/// declares a network stripe unrecoverable from the model's decodability
/// table rather than the `> p_n` count threshold. Both models must match
/// the map code's per-level (data, width) arithmetic.
RepairPlan plan_repair(const StripeMap& map, const std::vector<DiskId>& failed_disks,
                       RepairMethod method, const CodeModel& network, const CodeModel& local);

}  // namespace mlec
