#include "sim/repair_executor.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mlec {

MaterializedSystem::MaterializedSystem(const StripeMap& map, std::size_t chunk_bytes,
                                       std::uint64_t seed, LevelCode network_level)
    : map_(map),
      chunk_bytes_(chunk_bytes),
      local_code_(map.layout().code().local.k, map.layout().code().local.p),
      disk_failed_(map.topology().config().total_disks(), false) {
  MLEC_REQUIRE(chunk_bytes >= 1, "chunks need at least one byte");
  const auto& code = map.layout().code();
  if (network_level.width() == 0) network_level = LevelCode::make_rs(code.network);
  MLEC_REQUIRE(network_level.data_chunks() == code.network.k &&
                   network_level.width() == code.network_width(),
               "network level must match the map code's data count and width");
  network_model_ = make_code_model(network_level);
  const std::size_t kn = code.network.k, pn = code.network.p;
  const std::size_t kl = code.local.k, pl = code.local.p;

  // Stripes are independent: materialize them across the pool, each from
  // its own RNG substream (deterministic for a given seed regardless of
  // worker count). The encodes inside run on the SIMD ec data plane via
  // RsCode.
  contents_.resize(map.stripes().size());
  global_pool().parallel_for(0, map.stripes().size(), [&](std::size_t s) {
    Rng rng = Rng::for_substream(seed, s);
    auto& stripe = contents_[s];
    stripe.assign(kn + pn, std::vector<std::vector<gf::byte_t>>(
                               kl + pl, std::vector<gf::byte_t>(chunk_bytes_, 0)));
    // User data in the k_n data locals' k_l data positions.
    for (std::size_t i = 0; i < kn; ++i)
      for (std::size_t j = 0; j < kl; ++j)
        for (auto& b : stripe[i][j]) b = static_cast<gf::byte_t>(rng());

    // Network parities, positionwise across the data locals (§2.1: a network
    // chunk is a whole local stripe; parity is computed column by column).
    // Under LRC the "parity locals" are the l + r local and global parities
    // in the model's layout order.
    for (std::size_t j = 0; j < kl; ++j) {
      std::vector<std::span<const gf::byte_t>> data;
      data.reserve(kn);
      for (std::size_t i = 0; i < kn; ++i) data.emplace_back(stripe[i][j]);
      std::vector<std::span<gf::byte_t>> parity;
      parity.reserve(pn);
      for (std::size_t m = 0; m < pn; ++m) parity.emplace_back(stripe[kn + m][j]);
      network_model_->encode(std::span<const std::span<const gf::byte_t>>(data),
                             std::span<const std::span<gf::byte_t>>(parity));
    }

    // Local parities within every local stripe (network-parity locals
    // included — the two encodings commute for linear codes).
    for (std::size_t i = 0; i < kn + pn; ++i) {
      std::vector<std::span<const gf::byte_t>> data;
      data.reserve(kl);
      for (std::size_t j = 0; j < kl; ++j) data.emplace_back(stripe[i][j]);
      std::vector<std::span<gf::byte_t>> parity;
      parity.reserve(pl);
      for (std::size_t q = 0; q < pl; ++q) parity.emplace_back(stripe[i][kl + q]);
      local_code_.encode(std::span<const std::span<const gf::byte_t>>(data),
                         std::span<const std::span<gf::byte_t>>(parity));
    }
  });
  pristine_ = contents_;
}

void MaterializedSystem::fail_disks(const std::vector<DiskId>& disks) {
  for (DiskId d : disks) {
    MLEC_REQUIRE(d < disk_failed_.size(), "disk out of range");
    disk_failed_[d] = true;
  }
  for (std::size_t s = 0; s < map_.stripes().size(); ++s)
    for (std::size_t i = 0; i < map_.stripes()[s].locals.size(); ++i)
      for (std::size_t j = 0; j < map_.stripes()[s].locals[i].disks.size(); ++j)
        if (disk_failed_[map_.stripes()[s].locals[i].disks[j]])
          std::fill(contents_[s][i][j].begin(), contents_[s][i][j].end(), 0);
}

const std::vector<gf::byte_t>& MaterializedSystem::chunk(std::size_t stripe, std::size_t local,
                                                         std::size_t position) const {
  return contents_.at(stripe).at(local).at(position);
}

RepairExecution MaterializedSystem::execute(RepairMethod method) {
  MLEC_FAULT_POINT("repair.execute.pre");
  const auto& code = map_.layout().code();
  const std::size_t kn = code.network.k, pn = code.network.p;
  const std::size_t kl = code.local.k, pl = code.local.p;
  const std::size_t locals_per_stripe = kn + pn;
  const std::size_t chunks_per_local = kl + pl;

  RepairExecution exec;
  exec.method = method;

  // Catastrophic pools (any lost local stripe).
  std::vector<bool> pool_catastrophic(map_.total_pools(), false);
  const auto& stripes = map_.stripes();
  std::vector<std::vector<std::vector<std::size_t>>> failed_positions(stripes.size());
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    failed_positions[s].resize(locals_per_stripe);
    for (std::size_t i = 0; i < locals_per_stripe; ++i) {
      for (std::size_t j = 0; j < chunks_per_local; ++j)
        if (disk_failed_[stripes[s].locals[i].disks[j]]) failed_positions[s][i].push_back(j);
      if (failed_positions[s][i].size() > pl)
        pool_catastrophic[stripes[s].locals[i].pool] = true;
    }
  }

  std::vector<bool> stripe_unrecoverable(stripes.size(), false);
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    // Choose, per (local, position), the repair path.
    std::vector<std::vector<bool>> via_network(locals_per_stripe,
                                               std::vector<bool>(chunks_per_local, false));
    // Lost locals as network-level erasure positions; the model's
    // decodability test replaces the MDS `> p_n` count (an LRC stripe can
    // be unrecoverable with as few as min_tolerance + 1 lost locals).
    std::vector<std::size_t> lost_local_positions;
    for (std::size_t i = 0; i < locals_per_stripe; ++i)
      if (failed_positions[s][i].size() > pl) lost_local_positions.push_back(i);
    if (!network_model_->can_repair(std::span<const std::size_t>(lost_local_positions))) {
      ++exec.unrecoverable_network_stripes;
      stripe_unrecoverable[s] = true;
      continue;
    }

    bool any_network = false;
    for (std::size_t i = 0; i < locals_per_stripe; ++i) {
      const auto& failed = failed_positions[s][i];
      const bool pool_cat = pool_catastrophic[stripes[s].locals[i].pool];
      switch (method) {
        case RepairMethod::kRepairAll:
          if (pool_cat)
            for (std::size_t j = 0; j < chunks_per_local; ++j) via_network[i][j] = true;
          break;
        case RepairMethod::kRepairFailedOnly:
          if (pool_cat)
            for (std::size_t j : failed) via_network[i][j] = true;
          break;
        case RepairMethod::kRepairHybrid:
          if (failed.size() > pl)
            for (std::size_t j : failed) via_network[i][j] = true;
          break;
        case RepairMethod::kRepairMinimum:
          if (failed.size() > pl)
            for (std::size_t n = 0; n < failed.size() - pl; ++n)
              via_network[i][failed[n]] = true;
          break;
      }
      for (std::size_t j = 0; j < chunks_per_local; ++j) any_network |= via_network[i][j];
    }

    // Stage 0: locals with no network involvement repair locally first, so
    // their columns are back before the network decodes (real repairers
    // drain the cheap local queue while the network path spins up).
    for (std::size_t i = 0; i < locals_per_stripe; ++i) {
      auto& fp = failed_positions[s][i];
      if (fp.empty()) continue;
      bool needs_network = false;
      for (std::size_t j = 0; j < chunks_per_local; ++j) needs_network |= via_network[i][j];
      if (needs_network || fp.size() > pl) continue;
      local_code_.decode(contents_[s][i], fp);
      ++exec.local_decodes;
      exec.chunks_rebuilt += fp.size();
      fp.clear();
    }

    // Stage 1: network decodes, one per column that has a network target.
    if (any_network) {
      for (std::size_t j = 0; j < chunks_per_local; ++j) {
        bool wanted = false;
        std::vector<std::size_t> lost;
        for (std::size_t i = 0; i < locals_per_stripe; ++i) {
          const bool unavailable =
              std::find(failed_positions[s][i].begin(), failed_positions[s][i].end(), j) !=
              failed_positions[s][i].end();
          if (unavailable) lost.push_back(i);
          wanted |= via_network[i][j];
        }
        if (!wanted) continue;
        MLEC_ASSERT(network_model_->can_repair(std::span<const std::size_t>(lost)),
                    "network repair given an undecodable erasure pattern");
        // Decode into scratch shards so chunks slated for local repair stay
        // missing until their own stage.
        std::vector<std::vector<gf::byte_t>> shards(locals_per_stripe);
        for (std::size_t i = 0; i < locals_per_stripe; ++i) shards[i] = contents_[s][i][j];
        network_model_->decode(shards, lost);
        ++exec.network_decodes;
        for (std::size_t i : lost) {
          if (!via_network[i][j]) continue;
          contents_[s][i][j] = shards[i];
          ++exec.chunks_rebuilt;
          // This chunk is now available for the local stage.
          auto& fp = failed_positions[s][i];
          fp.erase(std::find(fp.begin(), fp.end(), j));
        }
      }
    }

    // Stage 2: local decodes for whatever is still missing.
    for (std::size_t i = 0; i < locals_per_stripe; ++i) {
      auto& fp = failed_positions[s][i];
      if (fp.empty()) continue;
      MLEC_ASSERT(fp.size() <= pl, "local repair given more erasures than parities");
      local_code_.decode(contents_[s][i], fp);
      ++exec.local_decodes;
      exec.chunks_rebuilt += fp.size();
      fp.clear();
    }
  }

  // All repairs done: disks are healthy again.
  std::fill(disk_failed_.begin(), disk_failed_.end(), false);

  // Verify against the pristine copy (recoverable stripes only).
  exec.verified = true;
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    if (stripe_unrecoverable[s]) continue;
    if (contents_[s] != pristine_[s]) {
      exec.verified = false;
      break;
    }
  }
  // Unrecoverable stripes keep their zeroed chunks until (hypothetical)
  // higher-level recovery; reset them to pristine so later drills start
  // clean.
  for (std::size_t s = 0; s < stripes.size(); ++s)
    if (stripe_unrecoverable[s]) contents_[s] = pristine_[s];
  return exec;
}


}  // namespace mlec
