// Discrete-event scheduling core.
//
// A stable-ordered priority queue of timestamped callbacks; ties break by
// insertion order so simulations are deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace mlec {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `time` (hours). Must not be before the
  /// current simulation time.
  void schedule(double time, Callback fn) {
    MLEC_REQUIRE(time >= now_, "cannot schedule an event in the past");
    heap_.push(Event{time, seq_++, std::move(fn)});
  }

  bool empty() const { return heap_.empty(); }
  double now() const { return now_; }
  double next_time() const {
    MLEC_REQUIRE(!heap_.empty(), "no pending events");
    return heap_.top().time;
  }

  /// Pop and run the earliest event, advancing the clock.
  void run_next() {
    MLEC_REQUIRE(!heap_.empty(), "no pending events");
    // Move the event out before executing: the callback may schedule more.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
  }

  /// Run until the queue drains or the clock passes `horizon` (events beyond
  /// the horizon stay queued; the clock clamps to the horizon).
  void run_until(double horizon) {
    while (!heap_.empty() && heap_.top().time <= horizon) run_next();
    now_ = std::max(now_, horizon);
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& other) const {
      // lint:allow(float-eq): strict-weak-order tie-break, not a tolerance check
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

}  // namespace mlec
