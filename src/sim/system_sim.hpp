// Full-system chunk-level Monte-Carlo durability simulation.
//
// This is the paper's "Simulation" strategy (§3) in its most literal form:
// disks fail over a mission, every local stripe's failure count is tracked
// exactly against a materialized StripeMap, repairs (with detection delay
// and bandwidth-derived durations, method-dependent for catastrophic pools)
// restore disks, and a mission ends in data loss when any network stripe
// exceeds p_n lost local stripes.
//
// Exact stripe maps cap the practical scale (use shrunken data centers);
// the analysis layer's splitting/Markov pipelines extend the same physics to
// 57.6k disks. Tests cross-validate the two on configurations where both
// converge.
#pragma once

#include <cstdint>
#include <optional>

#include "placement/stripe_map.hpp"
#include "sim/failure_gen.hpp"
#include "topology/bandwidth.hpp"
#include "util/stats.hpp"
#include "util/stop_token.hpp"

namespace mlec {

struct SystemSimConfig {
  DataCenterConfig dc;
  MlecCode code;
  MlecScheme scheme = MlecScheme::kCC;
  RepairMethod method = RepairMethod::kRepairAll;
  FailureDistribution failures{};
  double detection_hours = 0.5;
  BandwidthConfig bandwidth{};
  double mission_hours = 8766.0;
  /// Stripes materialized per network pool; higher = denser chunk coverage.
  std::size_t stripes_per_network_pool = 8;

  /// Hours to rebuild one disk locally (non-catastrophic pool).
  double single_disk_repair_hours() const;
  /// Hours a catastrophic pool needs before its disks are restored, by
  /// repair method (network path; coarse but method-ordered).
  double catastrophic_repair_hours(RepairMethod method) const;
};

struct SystemSimResult {
  std::uint64_t missions = 0;  ///< missions actually completed
  std::uint64_t data_loss_missions = 0;
  std::uint64_t catastrophic_pool_events = 0;
  RunningStats loss_time_hours;  ///< time of first loss in lossy missions
  /// True when a stop token ended the run before all requested missions.
  bool truncated = false;

  double pdl() const {
    return missions ? static_cast<double>(data_loss_missions) / static_cast<double>(missions)
                    : 0.0;
  }
};

/// Run `missions` missions against a fresh StripeMap (one map per call; the
/// map is placement-seeded from `seed` as well). A fired `stop` token ends
/// the run at the next mission boundary with a `truncated` partial result.
SystemSimResult simulate_system(const SystemSimConfig& config, std::uint64_t missions,
                                std::uint64_t seed, StopToken stop = {});

}  // namespace mlec
