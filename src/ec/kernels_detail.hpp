// Internal plumbing between the per-backend kernel translation units and the
// dispatcher. Not part of the public ec API.
#pragma once

#include "ec/kernels.hpp"

namespace mlec::ec::detail {

/// Per-backend kernel tables. The SIMD tables are nullptr when the build
/// targets a non-x86 architecture (the dispatcher then reports those
/// backends unsupported regardless of cpuid).
const Kernels* scalar_kernel_table();
const Kernels* ssse3_kernel_table();
const Kernels* avx2_kernel_table();
const Kernels* avx512_kernel_table();
const Kernels* gfni_kernel_table();

/// Scalar loops, exposed so the vector kernels can delegate sub-strip tails
/// and so tests can reach the reference directly.
void mul_acc_scalar(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len);
void mul_assign_scalar(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len);
void dot_scalar(const MulTable* tables, std::size_t k, std::size_t p, const byte_t* const* src,
                byte_t* const* dst, std::size_t len, bool accumulate);

}  // namespace mlec::ec::detail
