#include "ec/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <string_view>

#include "ec/kernels_detail.hpp"
#include "util/error.hpp"

namespace mlec::ec {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
bool host_has_ssse3() { return __builtin_cpu_supports("ssse3") != 0; }
bool host_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool host_has_avx512() {
  return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512bw") != 0;
}
bool host_has_gfni() {
  return __builtin_cpu_supports("gfni") != 0 && host_has_avx512() &&
         __builtin_cpu_supports("avx512vl") != 0;
}
#else
bool host_has_ssse3() { return false; }
bool host_has_avx2() { return false; }
bool host_has_avx512() { return false; }
bool host_has_gfni() { return false; }
#endif

std::atomic<int> g_active{-1};  // -1: not yet resolved

Backend resolve_initial() {
  // Read-only getenv, called once to seed the g_active atomic.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("MLEC_EC_BACKEND");
  if (env != nullptr) {
    const auto forced = resolve_backend_override(env);
    if (forced) return *forced;
  }
  return detect_backend();
}

std::string lowercase(std::string_view name) {
  std::string out(name);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kSsse3: return "ssse3";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
    case Backend::kGfni: return "gfni";
  }
  return "?";
}

std::optional<Backend> parse_backend(std::string_view name) {
  const std::string lower = lowercase(name);
  if (lower == "scalar") return Backend::kScalar;
  if (lower == "ssse3") return Backend::kSsse3;
  if (lower == "avx2") return Backend::kAvx2;
  if (lower == "avx512") return Backend::kAvx512;
  if (lower == "gfni") return Backend::kGfni;
  return std::nullopt;
}

bool backend_built(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return true;
    case Backend::kSsse3: return detail::ssse3_kernel_table() != nullptr;
    case Backend::kAvx2: return detail::avx2_kernel_table() != nullptr;
    case Backend::kAvx512: return detail::avx512_kernel_table() != nullptr;
    case Backend::kGfni: return detail::gfni_kernel_table() != nullptr;
  }
  return false;
}

bool backend_host_supported(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return true;
    case Backend::kSsse3: return host_has_ssse3();
    case Backend::kAvx2: return host_has_avx2();
    case Backend::kAvx512: return host_has_avx512();
    case Backend::kGfni: return host_has_gfni();
  }
  return false;
}

bool backend_supported(Backend backend) {
  return backend_built(backend) && backend_host_supported(backend);
}

Backend detect_backend() {
  static const Backend best = [] {
    if (backend_supported(Backend::kGfni)) return Backend::kGfni;
    if (backend_supported(Backend::kAvx512)) return Backend::kAvx512;
    if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
    if (backend_supported(Backend::kSsse3)) return Backend::kSsse3;
    return Backend::kScalar;
  }();
  return best;
}

std::optional<Backend> resolve_backend_override(std::string_view value) {
  if (value.empty() || lowercase(value) == "auto") return std::nullopt;
  const auto parsed = parse_backend(value);
  MLEC_REQUIRE(parsed.has_value(),
               "unknown MLEC_EC_BACKEND '" + std::string(value) +
                   "' (valid: scalar, ssse3, avx2, avx512, gfni, auto)");
  MLEC_REQUIRE(backend_supported(*parsed),
               std::string("MLEC_EC_BACKEND=") + to_string(*parsed) +
                   " is not supported on this host/build (" +
                   (backend_built(*parsed) ? "host CPU lacks the ISA" : "kernels not compiled in") +
                   ")");
  return parsed;
}

Backend active_backend() {
  int cur = g_active.load(std::memory_order_acquire);
  if (cur < 0) {
    const Backend resolved = resolve_initial();
    // First resolver wins; a concurrent force_backend() is preserved.
    int expected = -1;
    g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                     std::memory_order_acq_rel);
    cur = g_active.load(std::memory_order_acquire);
  }
  return static_cast<Backend>(cur);
}

void force_backend(Backend backend) {
  MLEC_REQUIRE(backend_supported(backend), "EC backend not supported on this host/build");
  g_active.store(static_cast<int>(backend), std::memory_order_release);
}

ScopedBackend::ScopedBackend(Backend backend) : previous_(active_backend()) {
  force_backend(backend);
}

ScopedBackend::~ScopedBackend() { force_backend(previous_); }

const Kernels& kernels_for(Backend backend) {
  MLEC_REQUIRE(backend_supported(backend), "EC backend not supported on this host/build");
  switch (backend) {
    case Backend::kScalar: return *detail::scalar_kernel_table();
    case Backend::kSsse3: return *detail::ssse3_kernel_table();
    case Backend::kAvx2: return *detail::avx2_kernel_table();
    case Backend::kAvx512: return *detail::avx512_kernel_table();
    case Backend::kGfni: return *detail::gfni_kernel_table();
  }
  return *detail::scalar_kernel_table();
}

const Kernels& kernels() { return kernels_for(active_backend()); }

}  // namespace mlec::ec
