#include "ec/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "ec/kernels_detail.hpp"
#include "util/error.hpp"

namespace mlec::ec {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
bool host_has_ssse3() { return __builtin_cpu_supports("ssse3") != 0; }
bool host_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
bool host_has_ssse3() { return false; }
bool host_has_avx2() { return false; }
#endif

// Compile-time availability: the SIMD translation units compile their
// kernels only on x86; elsewhere they register a nullptr table.
bool build_has(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return true;
    case Backend::kSsse3: return detail::ssse3_kernel_table() != nullptr;
    case Backend::kAvx2: return detail::avx2_kernel_table() != nullptr;
  }
  return false;
}

std::atomic<int> g_active{-1};  // -1: not yet resolved

Backend resolve_initial() {
  const char* env = std::getenv("MLEC_EC_BACKEND");
  if (env != nullptr && std::string_view(env) != "auto" && *env != '\0') {
    const auto parsed = parse_backend(env);
    if (!parsed) {
      std::fprintf(stderr,
                   "mlec: unknown MLEC_EC_BACKEND '%s' (want scalar|ssse3|avx2|auto); "
                   "using auto-detection\n",
                   env);
      return detect_backend();
    }
    if (!backend_supported(*parsed)) {
      std::fprintf(stderr,
                   "mlec: MLEC_EC_BACKEND=%s not supported on this host/build; "
                   "falling back to scalar\n",
                   env);
      return Backend::kScalar;
    }
    return *parsed;
  }
  return detect_backend();
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kSsse3: return "ssse3";
    case Backend::kAvx2: return "avx2";
  }
  return "?";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "ssse3") return Backend::kSsse3;
  if (name == "avx2") return Backend::kAvx2;
  return std::nullopt;
}

bool backend_supported(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return true;
    case Backend::kSsse3: return build_has(Backend::kSsse3) && host_has_ssse3();
    case Backend::kAvx2: return build_has(Backend::kAvx2) && host_has_avx2();
  }
  return false;
}

Backend detect_backend() {
  static const Backend best = [] {
    if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
    if (backend_supported(Backend::kSsse3)) return Backend::kSsse3;
    return Backend::kScalar;
  }();
  return best;
}

Backend active_backend() {
  int cur = g_active.load(std::memory_order_acquire);
  if (cur < 0) {
    const Backend resolved = resolve_initial();
    // First resolver wins; a concurrent force_backend() is preserved.
    int expected = -1;
    g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                     std::memory_order_acq_rel);
    cur = g_active.load(std::memory_order_acquire);
  }
  return static_cast<Backend>(cur);
}

void force_backend(Backend backend) {
  MLEC_REQUIRE(backend_supported(backend), "EC backend not supported on this host/build");
  g_active.store(static_cast<int>(backend), std::memory_order_release);
}

ScopedBackend::ScopedBackend(Backend backend) : previous_(active_backend()) {
  force_backend(backend);
}

ScopedBackend::~ScopedBackend() { force_backend(previous_); }

const Kernels& kernels_for(Backend backend) {
  MLEC_REQUIRE(backend_supported(backend), "EC backend not supported on this host/build");
  switch (backend) {
    case Backend::kScalar: return *detail::scalar_kernel_table();
    case Backend::kSsse3: return *detail::ssse3_kernel_table();
    case Backend::kAvx2: return *detail::avx2_kernel_table();
  }
  return *detail::scalar_kernel_table();
}

const Kernels& kernels() { return kernels_for(active_backend()); }

}  // namespace mlec::ec
