// Runtime CPU-feature dispatch for the erasure-coding data plane.
//
// The EC kernels ship in three builds: a portable scalar reference, an SSSE3
// PSHUFB split-nibble build, and an AVX2 VPSHUFB build. The best backend the
// host supports is detected once (cpuid) and installed as the process-wide
// dispatch choice; `MLEC_EC_BACKEND=scalar|ssse3|avx2|auto` overrides the
// choice for testing and benchmarking, and tests can swap backends at
// runtime with force_backend()/ScopedBackend.
#pragma once

#include <optional>
#include <string_view>

namespace mlec::ec {

enum class Backend {
  kScalar = 0,  ///< portable split-nibble reference, always available
  kSsse3 = 1,   ///< 16-byte PSHUFB kernels
  kAvx2 = 2,    ///< 32-byte VPSHUFB kernels
};

inline constexpr int kBackendCount = 3;

const char* to_string(Backend backend);

/// Parse "scalar" / "ssse3" / "avx2" (case-sensitive, as documented for
/// MLEC_EC_BACKEND). "auto" and unknown strings return nullopt.
std::optional<Backend> parse_backend(std::string_view name);

/// True when this build and CPU can run `backend` (scalar always can).
bool backend_supported(Backend backend);

/// Best supported backend on this host (cpuid at first call, then cached).
Backend detect_backend();

/// Backend the dispatched kernels currently use. Resolved on first use:
/// MLEC_EC_BACKEND if set to a supported backend, else detect_backend().
/// An unsupported or unparsable override warns once on stderr and falls
/// back (unknown name -> auto, known-but-unsupported -> scalar, so a forced
/// run never silently tests the wrong vector unit).
Backend active_backend();

/// Install `backend` as the process-wide dispatch choice; requires
/// backend_supported(backend). Thread-safe (atomic swap); in-flight kernel
/// calls finish on the backend they started with.
void force_backend(Backend backend);

/// RAII backend override for tests: forces `backend` for the scope, then
/// restores the previous choice.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend previous_;
};

}  // namespace mlec::ec
