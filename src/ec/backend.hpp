// Runtime CPU-feature dispatch for the erasure-coding data plane.
//
// The EC kernels ship in five builds: a portable scalar reference, an SSSE3
// PSHUFB split-nibble build, an AVX2 VPSHUFB build, an AVX-512BW build
// (64-byte VPSHUFB strips), and a GFNI build that computes GF(2^8) products
// directly with GF2P8AFFINEQB from one 8x8 affine bit-matrix per
// coefficient — no split-nibble tables at all. The best backend the host
// supports is detected once (cpuid) and installed as the process-wide
// dispatch choice; `MLEC_EC_BACKEND=scalar|ssse3|avx2|avx512|gfni|auto`
// (case-insensitive) overrides the choice for testing and benchmarking, and
// tests can swap backends at runtime with force_backend()/ScopedBackend.
//
// Override failure policy: an unknown MLEC_EC_BACKEND value throws a
// PreconditionError listing the valid choices, and a known backend the
// host/build cannot run throws too — a forced run never silently falls back
// to a different vector unit than the one it claims to exercise.
#pragma once

#include <optional>
#include <string_view>

namespace mlec::ec {

enum class Backend {
  kScalar = 0,  ///< portable split-nibble reference, always available
  kSsse3 = 1,   ///< 16-byte PSHUFB kernels
  kAvx2 = 2,    ///< 32-byte VPSHUFB kernels
  kAvx512 = 3,  ///< 64-byte VPSHUFB kernels (AVX-512BW)
  kGfni = 4,    ///< 64-byte GF2P8AFFINEQB kernels (GFNI + AVX-512BW/VL)
};

inline constexpr int kBackendCount = 5;

const char* to_string(Backend backend);

/// Parse "scalar" / "ssse3" / "avx2" / "avx512" / "gfni" (case-insensitive,
/// as documented for MLEC_EC_BACKEND). "auto" and unknown strings return
/// nullopt.
std::optional<Backend> parse_backend(std::string_view name);

/// True when this binary carries compiled kernels for `backend` (the SIMD
/// translation units degrade to stubs off-x86 or without their ISA flags).
bool backend_built(Backend backend);

/// True when the host CPU advertises the ISA `backend` needs (cpuid),
/// regardless of whether this build compiled it.
bool backend_host_supported(Backend backend);

/// True when this build and CPU can run `backend` (scalar always can):
/// backend_built() && backend_host_supported().
bool backend_supported(Backend backend);

/// Best supported backend on this host (cpuid at first call, then cached).
/// Preference order: gfni > avx512 > avx2 > ssse3 > scalar.
Backend detect_backend();

/// Resolve an MLEC_EC_BACKEND-style override string. Empty or "auto"
/// (case-insensitive) return nullopt ("use detection"). A valid supported
/// backend name returns that backend. Throws PreconditionError for an
/// unknown name (message lists the valid choices) and for a known backend
/// this host/build cannot run.
std::optional<Backend> resolve_backend_override(std::string_view value);

/// Backend the dispatched kernels currently use. Resolved on first use:
/// MLEC_EC_BACKEND via resolve_backend_override() if set, else
/// detect_backend(). A bad override propagates that PreconditionError
/// instead of silently testing the wrong vector unit.
Backend active_backend();

/// Install `backend` as the process-wide dispatch choice; requires
/// backend_supported(backend). Thread-safe (atomic swap); in-flight kernel
/// calls finish on the backend they started with.
void force_backend(Backend backend);

/// RAII backend override for tests: forces `backend` for the scope, then
/// restores the previous choice.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend previous_;
};

}  // namespace mlec::ec
