// SSSE3 kernels: the classic ISA-L split-nibble PSHUFB formulation, 16
// bytes per strip. Compiled with -mssse3 on x86 (see src/ec/CMakeLists.txt);
// on other architectures this TU degrades to a "not built" stub.
#include "ec/kernels_detail.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSSE3__)

#include <tmmintrin.h>

#include <algorithm>

namespace mlec::ec {
namespace {

inline __m128i load_nibble_table(const std::array<byte_t, 16>& t) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.data()));
}

inline __m128i loadu(const byte_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void storeu(byte_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/// lo/hi-shuffled product of one 16-byte strip.
inline __m128i product(__m128i lo, __m128i hi, __m128i mask, __m128i v) {
  const __m128i l = _mm_and_si128(v, mask);
  const __m128i h = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo, l), _mm_shuffle_epi8(hi, h));
}

void mul_acc_ssse3(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m128i lo = load_nibble_table(table.lo);
  const __m128i hi = load_nibble_table(table.hi);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m128i p0 = product(lo, hi, mask, loadu(src + i));
    const __m128i p1 = product(lo, hi, mask, loadu(src + i + 16));
    storeu(dst + i, _mm_xor_si128(loadu(dst + i), p0));
    storeu(dst + i + 16, _mm_xor_si128(loadu(dst + i + 16), p1));
  }
  if (i + 16 <= len) {
    storeu(dst + i, _mm_xor_si128(loadu(dst + i), product(lo, hi, mask, loadu(src + i))));
    i += 16;
  }
  detail::mul_acc_scalar(table, src + i, dst + i, len - i);
}

void mul_assign_ssse3(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m128i lo = load_nibble_table(table.lo);
  const __m128i hi = load_nibble_table(table.hi);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    storeu(dst + i, product(lo, hi, mask, loadu(src + i)));
    storeu(dst + i + 16, product(lo, hi, mask, loadu(src + i + 16)));
  }
  if (i + 16 <= len) {
    storeu(dst + i, product(lo, hi, mask, loadu(src + i)));
    i += 16;
  }
  detail::mul_assign_scalar(table, src + i, dst + i, len - i);
}

void dot_ssse3(const MulTable* tables, std::size_t k, std::size_t p, const byte_t* const* src,
               byte_t* const* dst, std::size_t len, bool accumulate) {
  if (p == 0 || len == 0 || k == 0) {
    detail::dot_scalar(tables, k, p, src, dst, len, accumulate);
    return;
  }
  // Strip-outer / group-inner: each 16-byte strip of every source is loaded
  // (and nibble-split) once per group of up to 4 output rows, with the
  // accumulators pinned in registers — the fused one-pass encode.
  constexpr std::size_t kGroup = 4;
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t pos = 0;
  for (; pos + 16 <= len; pos += 16) {
    for (std::size_t g = 0; g < p; g += kGroup) {
      const std::size_t gn = std::min(kGroup, p - g);
      __m128i acc[kGroup];
      for (std::size_t j = 0; j < gn; ++j)
        acc[j] = accumulate ? loadu(dst[g + j] + pos) : _mm_setzero_si128();
      for (std::size_t c = 0; c < k; ++c) {
        const __m128i v = loadu(src[c] + pos);
        const __m128i l = _mm_and_si128(v, mask);
        const __m128i h = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
        for (std::size_t j = 0; j < gn; ++j) {
          const MulTable& t = tables[(g + j) * k + c];
          const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(load_nibble_table(t.lo), l),
                                             _mm_shuffle_epi8(load_nibble_table(t.hi), h));
          acc[j] = _mm_xor_si128(acc[j], prod);
        }
      }
      for (std::size_t j = 0; j < gn; ++j) storeu(dst[g + j] + pos, acc[j]);
    }
  }
  const std::size_t tail = len - pos;
  if (tail == 0) return;
  for (std::size_t r = 0; r < p; ++r) {
    (accumulate ? detail::mul_acc_scalar
                : detail::mul_assign_scalar)(tables[r * k], src[0] + pos, dst[r] + pos, tail);
    for (std::size_t c = 1; c < k; ++c)
      detail::mul_acc_scalar(tables[r * k + c], src[c] + pos, dst[r] + pos, tail);
  }
}

}  // namespace

namespace detail {
const Kernels* ssse3_kernel_table() {
  static const Kernels k{Backend::kSsse3, &mul_acc_ssse3, &mul_assign_ssse3, &dot_ssse3};
  return &k;
}
}  // namespace detail

}  // namespace mlec::ec

#else  // non-x86 build (or -mssse3 missing): backend unavailable

namespace mlec::ec::detail {
const Kernels* ssse3_kernel_table() { return nullptr; }
}  // namespace mlec::ec::detail

#endif
