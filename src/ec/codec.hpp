// Fused encode/reconstruct entry points over a precompiled coefficient plan.
//
// An EncodePlan captures a rows x cols GF(256) coefficient matrix as
// split-nibble MulTables; encode() then computes every output row in one
// fused pass over the sources via the dispatched backend kernels
// (kernels.hpp). RS encoding uses the p x k parity rows as the plan; RS
// reconstruction uses rows of the inverted generator submatrix — both are
// the same dot-product shape, so one code path serves both.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ec/kernels.hpp"

namespace mlec::ec {

class EncodePlan {
 public:
  EncodePlan() = default;

  /// Compile a row-major rows x cols coefficient matrix (over the 0x11d
  /// field, same as gf::mul) into nibble tables.
  EncodePlan(std::size_t rows, std::size_t cols, std::span<const byte_t> coefficients);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  byte_t coefficient(std::size_t r, std::size_t c) const { return coeffs_[r * cols_ + c]; }
  const MulTable* tables() const { return tables_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<byte_t> coeffs_;
  std::vector<MulTable> tables_;
};

/// dst[r][i] = XOR_c plan(r,c) * src[c][i] (accumulate=true XORs into dst
/// instead of overwriting). src.size() == plan.cols(), dst.size() ==
/// plan.rows(), all buffers the same length.
void encode(const EncodePlan& plan, std::span<const std::span<const byte_t>> src,
            std::span<const std::span<byte_t>> dst, bool accumulate = false);

/// Raw-pointer variant for callers that already hold shard pointer arrays;
/// all cols source and rows destination buffers are `len` bytes.
void encode(const EncodePlan& plan, const byte_t* const* src, byte_t* const* dst, std::size_t len,
            bool accumulate = false);

/// GF(256) product over the 0x11d polynomial by shift/reduce. Table-free so
/// plan compilation needs no link against the gf log/exp tables; agreement
/// with gf::mul is asserted by tests. Plan-build cost only — never on the
/// data path.
byte_t mul_slow(byte_t a, byte_t b);

/// Split-nibble tables for constant `c`; same contents as
/// gf::make_mul_table(c).
MulTable make_mul_table(byte_t c);

}  // namespace mlec::ec
