// Dispatched GF(256) bulk kernels — the arithmetic inner loops of the EC
// data plane.
//
// All kernels share the ISA-L split-nibble formulation: a product c*v is
// table.lo[v & 0x0f] ^ table.hi[v >> 4], which vectorizes as two PSHUFB /
// VPSHUFB shuffles over the 16-entry `gf::MulTable` halves. The scalar
// backend runs the same tables through ordinary loads, so every backend is
// byte-identical by construction and the scalar build doubles as the test
// oracle.
//
// Buffers may be arbitrarily aligned and arbitrarily sized: the vector
// kernels use unaligned loads/stores for full strips and fall back to the
// scalar loop for the sub-strip tail.
#pragma once

#include <cstddef>

#include "ec/backend.hpp"
#include "gf/gf256.hpp"

namespace mlec::ec {

using gf::byte_t;
using gf::MulTable;

/// One backend's kernel set. Function pointers are selected once per call
/// site via kernels(); all implementations are pure functions of their
/// arguments and safe to call concurrently.
struct Kernels {
  Backend backend;

  /// dst[i] ^= table.c * src[i] for i in [0, len).
  void (*mul_acc)(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len);

  /// dst[i] = table.c * src[i] for i in [0, len).
  void (*mul_assign)(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len);

  /// Fused multi-source × multi-dest dot product over a p x k coefficient
  /// table array (row-major): for every output row r,
  ///   dst[r][i] (=|^=) XOR_c tables[r*k + c] * src[c][i]
  /// with `accumulate` selecting ^= (true) or = (false). One pass over the
  /// source data: each strip of every source is loaded once and applied to
  /// all output rows while hot, instead of k*p separate buffer passes.
  void (*dot)(const MulTable* tables, std::size_t k, std::size_t p, const byte_t* const* src,
              byte_t* const* dst, std::size_t len, bool accumulate);
};

/// Kernel set of the active backend (see backend.hpp for selection rules).
const Kernels& kernels();

/// Kernel set of a specific backend; requires backend_supported(backend).
const Kernels& kernels_for(Backend backend);

}  // namespace mlec::ec
