// AVX2 kernels: VPSHUFB over 32-byte strips, the 16-entry nibble tables
// broadcast to both 128-bit lanes. Compiled with -mavx2 on x86 (see
// src/ec/CMakeLists.txt); elsewhere this TU degrades to a "not built" stub.
#include "ec/kernels_detail.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace mlec::ec {
namespace {

/// Nibble table broadcast into both lanes so VPSHUFB's per-lane lookup sees
/// the same 16 entries everywhere.
inline __m256i load_nibble_table(const std::array<byte_t, 16>& t) {
  return _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(t.data())));
}

inline __m256i loadu(const byte_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void storeu(byte_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

inline __m256i product(__m256i lo, __m256i hi, __m256i mask, __m256i v) {
  const __m256i l = _mm256_and_si256(v, mask);
  const __m256i h = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo, l), _mm256_shuffle_epi8(hi, h));
}

void mul_acc_avx2(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m256i lo = load_nibble_table(table.lo);
  const __m256i hi = load_nibble_table(table.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m256i p0 = product(lo, hi, mask, loadu(src + i));
    const __m256i p1 = product(lo, hi, mask, loadu(src + i + 32));
    storeu(dst + i, _mm256_xor_si256(loadu(dst + i), p0));
    storeu(dst + i + 32, _mm256_xor_si256(loadu(dst + i + 32), p1));
  }
  if (i + 32 <= len) {
    storeu(dst + i, _mm256_xor_si256(loadu(dst + i), product(lo, hi, mask, loadu(src + i))));
    i += 32;
  }
  detail::mul_acc_scalar(table, src + i, dst + i, len - i);
}

void mul_assign_avx2(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m256i lo = load_nibble_table(table.lo);
  const __m256i hi = load_nibble_table(table.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    storeu(dst + i, product(lo, hi, mask, loadu(src + i)));
    storeu(dst + i + 32, product(lo, hi, mask, loadu(src + i + 32)));
  }
  if (i + 32 <= len) {
    storeu(dst + i, product(lo, hi, mask, loadu(src + i)));
    i += 32;
  }
  detail::mul_assign_scalar(table, src + i, dst + i, len - i);
}

void dot_avx2(const MulTable* tables, std::size_t k, std::size_t p, const byte_t* const* src,
              byte_t* const* dst, std::size_t len, bool accumulate) {
  if (p == 0 || len == 0 || k == 0) {
    detail::dot_scalar(tables, k, p, src, dst, len, accumulate);
    return;
  }
  // Strip-outer / group-inner one-pass encode (see the SSSE3 twin for the
  // rationale); 32-byte strips, accumulators for up to 4 output rows live in
  // ymm registers.
  constexpr std::size_t kGroup = 4;
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t pos = 0;
  for (; pos + 32 <= len; pos += 32) {
    for (std::size_t g = 0; g < p; g += kGroup) {
      const std::size_t gn = std::min(kGroup, p - g);
      __m256i acc[kGroup];
      for (std::size_t j = 0; j < gn; ++j)
        acc[j] = accumulate ? loadu(dst[g + j] + pos) : _mm256_setzero_si256();
      for (std::size_t c = 0; c < k; ++c) {
        const __m256i v = loadu(src[c] + pos);
        const __m256i l = _mm256_and_si256(v, mask);
        const __m256i h = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
        for (std::size_t j = 0; j < gn; ++j) {
          const MulTable& t = tables[(g + j) * k + c];
          const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(load_nibble_table(t.lo), l),
                                                _mm256_shuffle_epi8(load_nibble_table(t.hi), h));
          acc[j] = _mm256_xor_si256(acc[j], prod);
        }
      }
      for (std::size_t j = 0; j < gn; ++j) storeu(dst[g + j] + pos, acc[j]);
    }
  }
  const std::size_t tail = len - pos;
  if (tail == 0) return;
  for (std::size_t r = 0; r < p; ++r) {
    (accumulate ? detail::mul_acc_scalar
                : detail::mul_assign_scalar)(tables[r * k], src[0] + pos, dst[r] + pos, tail);
    for (std::size_t c = 1; c < k; ++c)
      detail::mul_acc_scalar(tables[r * k + c], src[c] + pos, dst[r] + pos, tail);
  }
}

}  // namespace

namespace detail {
const Kernels* avx2_kernel_table() {
  static const Kernels k{Backend::kAvx2, &mul_acc_avx2, &mul_assign_avx2, &dot_avx2};
  return &k;
}
}  // namespace detail

}  // namespace mlec::ec

#else  // non-x86 build (or -mavx2 missing): backend unavailable

namespace mlec::ec::detail {
const Kernels* avx2_kernel_table() { return nullptr; }
}  // namespace mlec::ec::detail

#endif
