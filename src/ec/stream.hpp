// Parallel streaming codec: chunk large shard buffers into slices and
// encode/decode the slices across a util::ThreadPool.
//
// GF(256) coding is positionwise, so byte range [a, b) of every output row
// depends only on byte range [a, b) of every input — slices are
// embarrassingly parallel and the result is bit-identical to the serial
// fused pass. StopToken cancellation follows the pool's cooperative policy:
// remaining slices are skipped and the caller is told the outputs are
// partial.
//
// NUMA policy: on multi-socket hosts, scattering slices dynamically across
// workers lands every call on a different memory-controller mix. When
// StreamOptions::numa_aware is on (default) and the host has more than one
// NUMA node, each call instead hands every worker ONE contiguous,
// page-aligned byte range, with the same slice -> worker mapping every
// call. Buffers whose pages were first-touched under that mapping (any
// prior encode/decode_parallel call over the same buffers, or
// first_touch_parallel below) keep each worker on its node-local pages
// instead of serializing on one controller. Single-node hosts keep the
// finer slices-per-worker interleave for load balancing.
#pragma once

#include <cstddef>
#include <span>

#include "ec/codec.hpp"
#include "ec/decode.hpp"
#include "util/stop_token.hpp"

namespace mlec {
class ThreadPool;
}  // namespace mlec

namespace mlec::ec {

struct StreamOptions {
  /// Smallest per-task slice; keeps task dispatch amortized when the vector
  /// kernels chew a slice in microseconds.
  std::size_t min_slice_bytes = 64 * 1024;
  /// Slices per worker to smooth uneven scheduling (static chunking
  /// otherwise leaves the pool tail-bound). Ignored under NUMA
  /// partitioning, which pins one contiguous range per worker.
  std::size_t slices_per_worker = 4;
  /// Use the contiguous first-touch-stable partitioning when the host has
  /// more than one NUMA node (see file comment). Off: always interleave.
  bool numa_aware = true;
};

/// NUMA nodes the host exposes (/sys/devices/system/node); 1 when the
/// topology is unreadable or the platform has no NUMA. Cached after the
/// first call.
std::size_t numa_node_count();

/// Fault every page of `buffer` from the worker that the NUMA-aware
/// partitioning will later hand that range to, so first-touch allocation
/// places pages on the node that will stream them. No-op memory writes
/// (pages are zero-filled on first touch anyway); call right after
/// allocating large shard buffers.
void first_touch_parallel(std::span<byte_t> buffer, ThreadPool& pool,
                          const StreamOptions& options = {});

/// Parallel fused encode: dst[r] = XOR_c plan(r,c) * src[c], sliced across
/// `pool`. Falls back to the serial path when one slice covers the buffer.
/// Returns true when every slice ran; false when `stop` truncated the batch
/// (destination contents are then partial garbage — re-run or discard).
bool encode_parallel(const EncodePlan& plan, std::span<const std::span<const byte_t>> src,
                     std::span<const std::span<byte_t>> dst, ThreadPool& pool,
                     StopToken stop = {}, const StreamOptions& options = {});

/// Parallel fused decode mirroring encode_parallel: rebuild the plan's
/// erased shards in place over all width() buffers, sliced across `pool`.
/// Both plan stages (lost data from survivors, lost parity from data) run
/// inside each slice, so the result is bit-identical to serial
/// ec::decode(). Returns false when `stop` truncated the batch (rebuilt
/// shards then hold partial garbage — re-run or discard).
bool decode_parallel(const DecodePlan& plan, std::span<const std::span<byte_t>> shards,
                     ThreadPool& pool, StopToken stop = {}, const StreamOptions& options = {});

}  // namespace mlec::ec
