// Parallel streaming codec: chunk large shard buffers into slices and
// encode the slices across a util::ThreadPool.
//
// GF(256) encoding is positionwise, so byte range [a, b) of every output
// row depends only on byte range [a, b) of every source — slices are
// embarrassingly parallel and the result is bit-identical to the serial
// fused encode. StopToken cancellation follows the pool's cooperative
// policy: remaining slices are skipped and the caller is told the outputs
// are partial.
#pragma once

#include <cstddef>
#include <span>

#include "ec/codec.hpp"
#include "util/stop_token.hpp"

namespace mlec {
class ThreadPool;
}  // namespace mlec

namespace mlec::ec {

struct StreamOptions {
  /// Smallest per-task slice; keeps task dispatch amortized when the vector
  /// kernels chew a slice in microseconds.
  std::size_t min_slice_bytes = 64 * 1024;
  /// Slices per worker to smooth uneven scheduling (static chunking
  /// otherwise leaves the pool tail-bound).
  std::size_t slices_per_worker = 4;
};

/// Parallel fused encode: dst[r] = XOR_c plan(r,c) * src[c], sliced across
/// `pool`. Falls back to the serial path when one slice covers the buffer.
/// Returns true when every slice ran; false when `stop` truncated the batch
/// (destination contents are then partial garbage — re-run or discard).
bool encode_parallel(const EncodePlan& plan, std::span<const std::span<const byte_t>> src,
                     std::span<const std::span<byte_t>> dst, ThreadPool& pool,
                     StopToken stop = {}, const StreamOptions& options = {});

}  // namespace mlec::ec
