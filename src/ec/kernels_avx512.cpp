// AVX-512BW kernels: VPSHUFB over 64-byte strips, the 16-entry nibble
// tables broadcast to all four 128-bit lanes, with VPTERNLOGD fusing the
// lo^hi^acc triple XOR into one op. Compiled with -mavx512f -mavx512bw on
// x86 (see src/ec/CMakeLists.txt); elsewhere this TU degrades to a "not
// built" stub.
#include "ec/kernels_detail.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <algorithm>

namespace mlec::ec {
namespace {

/// Nibble table broadcast into all four lanes so VPSHUFB's per-lane lookup
/// sees the same 16 entries everywhere.
inline __m512i load_nibble_table(const std::array<byte_t, 16>& t) {
  return _mm512_broadcast_i32x4(_mm_loadu_si128(reinterpret_cast<const __m128i*>(t.data())));
}

inline __m512i loadu(const byte_t* p) { return _mm512_loadu_si512(p); }

inline void storeu(byte_t* p, __m512i v) { _mm512_storeu_si512(p, v); }

inline __m512i product(__m512i lo, __m512i hi, __m512i mask, __m512i v) {
  const __m512i l = _mm512_and_si512(v, mask);
  const __m512i h = _mm512_and_si512(_mm512_srli_epi16(v, 4), mask);
  return _mm512_xor_si512(_mm512_shuffle_epi8(lo, l), _mm512_shuffle_epi8(hi, h));
}

/// acc ^ shuffle(lo) ^ shuffle(hi) in one VPTERNLOGD (imm 0x96 = a^b^c).
inline __m512i product_acc(__m512i lo, __m512i hi, __m512i mask, __m512i v, __m512i acc) {
  const __m512i l = _mm512_and_si512(v, mask);
  const __m512i h = _mm512_and_si512(_mm512_srli_epi16(v, 4), mask);
  return _mm512_ternarylogic_epi32(acc, _mm512_shuffle_epi8(lo, l),
                                   _mm512_shuffle_epi8(hi, h), 0x96);
}

void mul_acc_avx512(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m512i lo = load_nibble_table(table.lo);
  const __m512i hi = load_nibble_table(table.hi);
  const __m512i mask = _mm512_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 128 <= len; i += 128) {
    storeu(dst + i, product_acc(lo, hi, mask, loadu(src + i), loadu(dst + i)));
    storeu(dst + i + 64, product_acc(lo, hi, mask, loadu(src + i + 64), loadu(dst + i + 64)));
  }
  if (i + 64 <= len) {
    storeu(dst + i, product_acc(lo, hi, mask, loadu(src + i), loadu(dst + i)));
    i += 64;
  }
  detail::mul_acc_scalar(table, src + i, dst + i, len - i);
}

void mul_assign_avx512(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m512i lo = load_nibble_table(table.lo);
  const __m512i hi = load_nibble_table(table.hi);
  const __m512i mask = _mm512_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 128 <= len; i += 128) {
    storeu(dst + i, product(lo, hi, mask, loadu(src + i)));
    storeu(dst + i + 64, product(lo, hi, mask, loadu(src + i + 64)));
  }
  if (i + 64 <= len) {
    storeu(dst + i, product(lo, hi, mask, loadu(src + i)));
    i += 64;
  }
  detail::mul_assign_scalar(table, src + i, dst + i, len - i);
}

void dot_avx512(const MulTable* tables, std::size_t k, std::size_t p, const byte_t* const* src,
                byte_t* const* dst, std::size_t len, bool accumulate) {
  if (p == 0 || len == 0 || k == 0) {
    detail::dot_scalar(tables, k, p, src, dst, len, accumulate);
    return;
  }
  // Strip-outer / group-inner one-pass encode (see the SSSE3 twin for the
  // rationale); 64-byte strips, accumulators for up to 4 output rows live in
  // zmm registers.
  constexpr std::size_t kGroup = 4;
  const __m512i mask = _mm512_set1_epi8(0x0f);
  std::size_t pos = 0;
  for (; pos + 64 <= len; pos += 64) {
    for (std::size_t g = 0; g < p; g += kGroup) {
      const std::size_t gn = std::min(kGroup, p - g);
      __m512i acc[kGroup];
      for (std::size_t j = 0; j < gn; ++j)
        acc[j] = accumulate ? loadu(dst[g + j] + pos) : _mm512_setzero_si512();
      for (std::size_t c = 0; c < k; ++c) {
        const __m512i v = loadu(src[c] + pos);
        const __m512i l = _mm512_and_si512(v, mask);
        const __m512i h = _mm512_and_si512(_mm512_srli_epi16(v, 4), mask);
        for (std::size_t j = 0; j < gn; ++j) {
          const MulTable& t = tables[(g + j) * k + c];
          acc[j] = _mm512_ternarylogic_epi32(
              acc[j], _mm512_shuffle_epi8(load_nibble_table(t.lo), l),
              _mm512_shuffle_epi8(load_nibble_table(t.hi), h), 0x96);
        }
      }
      for (std::size_t j = 0; j < gn; ++j) storeu(dst[g + j] + pos, acc[j]);
    }
  }
  const std::size_t tail = len - pos;
  if (tail == 0) return;
  for (std::size_t r = 0; r < p; ++r) {
    (accumulate ? detail::mul_acc_scalar
                : detail::mul_assign_scalar)(tables[r * k], src[0] + pos, dst[r] + pos, tail);
    for (std::size_t c = 1; c < k; ++c)
      detail::mul_acc_scalar(tables[r * k + c], src[c] + pos, dst[r] + pos, tail);
  }
}

}  // namespace

namespace detail {
const Kernels* avx512_kernel_table() {
  static const Kernels k{Backend::kAvx512, &mul_acc_avx512, &mul_assign_avx512, &dot_avx512};
  return &k;
}
}  // namespace detail

}  // namespace mlec::ec

#else  // non-x86 build (or -mavx512bw missing): backend unavailable

namespace mlec::ec::detail {
const Kernels* avx512_kernel_table() { return nullptr; }
}  // namespace mlec::ec::detail

#endif
