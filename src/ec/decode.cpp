#include "ec/decode.hpp"

#include <array>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace mlec::ec {

namespace {

/// Plan-build field arithmetic: a lazily built full 256x256 product table
/// over mul_slow (64 KB, once per process) so Gauss-Jordan elimination is
/// lookup-speed without linking the gf log/exp tables.
const std::array<std::array<byte_t, 256>, 256>& mul_table() {
  static const auto table = [] {
    auto t = std::make_unique<std::array<std::array<byte_t, 256>, 256>>();
    for (unsigned a = 0; a < 256; ++a)
      for (unsigned b = 0; b < 256; ++b)
        (*t)[a][b] = mul_slow(static_cast<byte_t>(a), static_cast<byte_t>(b));
    return t;
  }();
  return *table;
}

inline byte_t fmul(byte_t a, byte_t b) { return mul_table()[a][b]; }

byte_t finv(byte_t a) {
  MLEC_ASSERT(a != 0, "zero has no inverse");
  const auto& row = mul_table()[a];
  for (unsigned b = 1; b < 256; ++b)
    if (row[b] == 1) return static_cast<byte_t>(b);
  MLEC_ASSERT(false, "GF(256) element without inverse");
  return 0;
}

/// Invert a k x k row-major matrix in place via Gauss-Jordan; the caller
/// guarantees the rows are linearly independent (greedy selection), so a
/// missing pivot is an internal error.
std::vector<byte_t> invert(std::vector<byte_t> m, std::size_t k) {
  std::vector<byte_t> inv(k * k, 0);
  for (std::size_t i = 0; i < k; ++i) inv[i * k + i] = 1;
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    while (pivot < k && m[pivot * k + col] == 0) ++pivot;
    MLEC_ASSERT(pivot < k, "chosen survivor rows must be invertible");
    if (pivot != col) {
      for (std::size_t j = 0; j < k; ++j) {
        std::swap(m[pivot * k + j], m[col * k + j]);
        std::swap(inv[pivot * k + j], inv[col * k + j]);
      }
    }
    const byte_t scale = finv(m[col * k + col]);
    for (std::size_t j = 0; j < k; ++j) {
      m[col * k + j] = fmul(scale, m[col * k + j]);
      inv[col * k + j] = fmul(scale, inv[col * k + j]);
    }
    for (std::size_t row = 0; row < k; ++row) {
      if (row == col) continue;
      const byte_t factor = m[row * k + col];
      if (factor == 0) continue;
      for (std::size_t j = 0; j < k; ++j) {
        m[row * k + j] = static_cast<byte_t>(m[row * k + j] ^ fmul(factor, m[col * k + j]));
        inv[row * k + j] =
            static_cast<byte_t>(inv[row * k + j] ^ fmul(factor, inv[col * k + j]));
      }
    }
  }
  return inv;
}

}  // namespace

DecodePlan::DecodePlan(std::size_t n, std::size_t k, std::span<const byte_t> generator,
                       std::span<const std::size_t> erased)
    : n_(n), k_(k) {
  MLEC_REQUIRE(k >= 1, "a code needs at least one data symbol");
  MLEC_REQUIRE(n >= k, "generator needs at least the k data rows");
  MLEC_REQUIRE(generator.size() == n * k, "generator matrix size mismatch");
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      MLEC_REQUIRE(generator[r * k + c] == (r == c ? 1 : 0),
                   "DecodePlan requires a systematic generator (identity data rows)");

  std::vector<bool> is_lost(n, false);
  for (std::size_t idx : erased) {
    MLEC_REQUIRE(idx < n, "erased index out of range");
    MLEC_REQUIRE(!is_lost[idx], "duplicate erased index");
    is_lost[idx] = true;
    (idx < k ? lost_data_ : lost_parity_).push_back(idx);
  }
  if (erased.empty()) return;

  // Greedily keep survivor rows (stripe order) that grow the GF(256) rank.
  // Intact data rows are identity rows and always kept first, so for MDS
  // codes this degenerates to "the first k survivors"; for LRC it walks
  // past locally dependent parity rows.
  std::vector<std::vector<byte_t>> reduced;  // kept rows, leading 1 at pivot
  std::vector<std::size_t> pivots;
  survivors_.reserve(k);
  for (std::size_t row = 0; row < n && survivors_.size() < k; ++row) {
    if (is_lost[row]) continue;
    std::vector<byte_t> v(generator.begin() + static_cast<std::ptrdiff_t>(row * k),
                          generator.begin() + static_cast<std::ptrdiff_t>((row + 1) * k));
    for (std::size_t r = 0; r < reduced.size(); ++r) {
      const byte_t factor = v[pivots[r]];
      if (factor == 0) continue;
      for (std::size_t c = 0; c < k; ++c)
        v[c] = static_cast<byte_t>(v[c] ^ fmul(factor, reduced[r][c]));
    }
    std::size_t pivot = k;
    for (std::size_t c = 0; c < k; ++c)
      if (v[c] != 0) {
        pivot = c;
        break;
      }
    if (pivot == k) continue;  // dependent on the rows already kept
    const byte_t scale = finv(v[pivot]);
    for (std::size_t c = 0; c < k; ++c) v[c] = fmul(scale, v[c]);
    survivors_.push_back(row);
    reduced.push_back(std::move(v));
    pivots.push_back(pivot);
  }
  if (survivors_.size() < k) {
    viable_ = false;
    return;
  }

  if (!lost_data_.empty()) {
    std::vector<byte_t> sub(k * k);
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t c = 0; c < k; ++c) sub[r * k + c] = generator[survivors_[r] * k + c];
    const std::vector<byte_t> inv = invert(std::move(sub), k);
    // Lost data symbol d = sum_r inv[d][r] * shard[survivors[r]].
    std::vector<byte_t> coeffs(lost_data_.size() * k);
    for (std::size_t r = 0; r < lost_data_.size(); ++r)
      for (std::size_t c = 0; c < k; ++c) coeffs[r * k + c] = inv[lost_data_[r] * k + c];
    data_plan_ = EncodePlan(lost_data_.size(), k, coeffs);
  }

  if (!lost_parity_.empty()) {
    // Lost parity row p re-encodes from the (then complete) data rows.
    std::vector<byte_t> coeffs(lost_parity_.size() * k);
    for (std::size_t r = 0; r < lost_parity_.size(); ++r)
      for (std::size_t c = 0; c < k; ++c) coeffs[r * k + c] = generator[lost_parity_[r] * k + c];
    parity_plan_ = EncodePlan(lost_parity_.size(), k, coeffs);
  }
}

void decode(const DecodePlan& plan, byte_t* const* shards, std::size_t len) {
  MLEC_REQUIRE(plan.viable(), "erasure pattern is not decodable with this plan");
  if (len == 0) return;
  const std::size_t k = plan.data_symbols();
  if (!plan.lost_data().empty()) {
    std::vector<const byte_t*> src(k);
    for (std::size_t c = 0; c < k; ++c) src[c] = shards[plan.survivors()[c]];
    std::vector<byte_t*> dst(plan.lost_data().size());
    for (std::size_t r = 0; r < dst.size(); ++r) dst[r] = shards[plan.lost_data()[r]];
    encode(plan.data_plan(), src.data(), dst.data(), len);
  }
  if (!plan.lost_parity().empty()) {
    std::vector<const byte_t*> src(k);
    for (std::size_t c = 0; c < k; ++c) src[c] = shards[c];
    std::vector<byte_t*> dst(plan.lost_parity().size());
    for (std::size_t r = 0; r < dst.size(); ++r) dst[r] = shards[plan.lost_parity()[r]];
    encode(plan.parity_plan(), src.data(), dst.data(), len);
  }
}

void decode(const DecodePlan& plan, std::span<const std::span<byte_t>> shards) {
  MLEC_REQUIRE(shards.size() == plan.width(), "expected width() shard buffers");
  if (plan.width() == 0) return;
  const std::size_t len = shards[0].size();
  std::vector<byte_t*> ptrs(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    MLEC_REQUIRE(shards[i].size() == len, "shard size mismatch");
    ptrs[i] = shards[i].data();
  }
  decode(plan, ptrs.data(), len);
}

}  // namespace mlec::ec
