// Fused decode plans: the erasure-pattern-specific half of the EC data
// plane.
//
// A DecodePlan is built once per (code, erasure pattern): it selects k
// linearly independent survivor rows of a systematic n x k generator (in
// stripe order, so intact data rows pass through untouched), inverts that
// submatrix over GF(2^8), and compiles two fused EncodePlans — lost data
// symbols from the k survivors, then lost parity rows from the complete
// data — so decode() is nothing but dispatched multi-source x multi-dest
// dot products (kernels.hpp), with zero matrix arithmetic on the data path.
// Codes cache plans per erasure pattern (see gf::RsCode / the LRC code
// model), turning repeated repairs of the same pattern into pure kernel
// time.
//
// Like the rest of src/ec, this layer is link-independent of the gf
// log/exp tables: inversion runs over mul_slow-derived tables at plan-build
// time only.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ec/codec.hpp"

namespace mlec::ec {

class DecodePlan {
 public:
  DecodePlan() = default;

  /// Compile a plan for `erased` positions of a systematic code described
  /// by its n x k generator over the data symbols (row-major; rows 0..k-1
  /// must be the identity — both RS and LRC generators here are
  /// systematic). `erased` holds distinct positions < n, any order.
  ///
  /// When the survivor rows do not span the k data symbols (possible for
  /// non-MDS codes such as LRC), the plan is built but not viable(); decode
  /// with it is rejected.
  DecodePlan(std::size_t n, std::size_t k, std::span<const byte_t> generator,
             std::span<const std::size_t> erased);

  /// Survivor rows span the data symbols, so decode() can run.
  bool viable() const { return viable_; }

  std::size_t width() const { return n_; }         ///< n: total shard rows
  std::size_t data_symbols() const { return k_; }  ///< k: data shard rows

  /// The k survivor positions stage 1 reads (stripe order).
  const std::vector<std::size_t>& survivors() const { return survivors_; }
  /// Erased data positions (< k), rebuilt by stage 1.
  const std::vector<std::size_t>& lost_data() const { return lost_data_; }
  /// Erased parity positions (>= k), re-encoded by stage 2.
  const std::vector<std::size_t>& lost_parity() const { return lost_parity_; }

  /// Stage-1 plan: lost_data().size() x k inverted-submatrix rows applied
  /// to the survivors.
  const EncodePlan& data_plan() const { return data_plan_; }
  /// Stage-2 plan: lost_parity().size() x k generator rows applied to the
  /// data shards.
  const EncodePlan& parity_plan() const { return parity_plan_; }

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  bool viable_ = true;
  std::vector<std::size_t> survivors_;
  std::vector<std::size_t> lost_data_;
  std::vector<std::size_t> lost_parity_;
  EncodePlan data_plan_;
  EncodePlan parity_plan_;
};

/// Rebuild the erased shards in place: `shards` holds all width() buffer
/// pointers of length `len`; entries at erased positions are outputs,
/// all surviving entries must contain valid data. Two fused passes over
/// the dispatched kernels. Requires plan.viable().
void decode(const DecodePlan& plan, byte_t* const* shards, std::size_t len);

/// Span-of-spans convenience overload; all width() shards the same length.
void decode(const DecodePlan& plan, std::span<const std::span<byte_t>> shards);

}  // namespace mlec::ec
