// GFNI kernels: GF(2^8) multiply-by-constant as one GF2P8AFFINEQB per
// 64-byte strip, with no split-nibble tables at all.
//
// Multiplication by a constant c in GF(2^8) is linear over GF(2), so it is
// an 8x8 bit-matrix M_c; GF2P8AFFINEQB applies that matrix to every byte of
// a zmm register in a single instruction. The matrices are precomputed for
// all 256 constants over this library's 0x11d polynomial (GF2P8MULB itself
// is hardwired to the AES polynomial 0x11b and is NOT usable here). The
// kernel ABI hands us split-nibble MulTables; c is recovered as
// table.lo[1] == c*1 and the matrix looked up from the 256-entry table.
//
// Compiled with -mgfni -mavx512f -mavx512bw -mavx512vl on x86 (see
// src/ec/CMakeLists.txt); elsewhere this TU degrades to a "not built" stub.
#include "ec/kernels_detail.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GFNI__) && defined(__AVX512F__) && \
    defined(__AVX512BW__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mlec::ec {
namespace {

/// 8x8 bit-matrix of y = c*x over 0x11d in GF2P8AFFINEQB's layout: result
/// bit i is parity(matrix.byte[7-i] & x), so byte 7-i holds the row that
/// selects which source bits XOR into output bit i. Column j of the map is
/// c * x^j (c doubled j times through the field polynomial).
constexpr std::uint64_t affine_matrix_of(unsigned c) {
  unsigned col[8] = {};
  unsigned v = c;
  for (int j = 0; j < 8; ++j) {
    col[j] = v;
    v <<= 1;
    if (v & 0x100) v ^= 0x11d;
  }
  std::uint64_t m = 0;
  for (int i = 0; i < 8; ++i) {
    std::uint64_t row = 0;
    for (int j = 0; j < 8; ++j) row |= ((col[j] >> i) & 1U) << j;
    m |= row << (8 * (7 - i));
  }
  return m;
}

struct AffineTable {
  std::uint64_t m[256];
};

constexpr AffineTable build_affine_table() {
  AffineTable t{};
  for (unsigned c = 0; c < 256; ++c) t.m[c] = affine_matrix_of(c);
  return t;
}

constexpr AffineTable kAffine = build_affine_table();

/// Recover the constant from a split-nibble table: lo[1] == c*1.
inline std::uint64_t matrix_for(const MulTable& table) { return kAffine.m[table.lo[1]]; }

inline __m512i loadu(const byte_t* p) { return _mm512_loadu_si512(p); }

inline void storeu(byte_t* p, __m512i v) { _mm512_storeu_si512(p, v); }

void mul_acc_gfni(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m512i m = _mm512_set1_epi64(static_cast<long long>(matrix_for(table)));
  std::size_t i = 0;
  for (; i + 128 <= len; i += 128) {
    storeu(dst + i, _mm512_xor_si512(loadu(dst + i),
                                     _mm512_gf2p8affine_epi64_epi8(loadu(src + i), m, 0)));
    storeu(dst + i + 64,
           _mm512_xor_si512(loadu(dst + i + 64),
                            _mm512_gf2p8affine_epi64_epi8(loadu(src + i + 64), m, 0)));
  }
  if (i + 64 <= len) {
    storeu(dst + i, _mm512_xor_si512(loadu(dst + i),
                                     _mm512_gf2p8affine_epi64_epi8(loadu(src + i), m, 0)));
    i += 64;
  }
  detail::mul_acc_scalar(table, src + i, dst + i, len - i);
}

void mul_assign_gfni(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const __m512i m = _mm512_set1_epi64(static_cast<long long>(matrix_for(table)));
  std::size_t i = 0;
  for (; i + 128 <= len; i += 128) {
    storeu(dst + i, _mm512_gf2p8affine_epi64_epi8(loadu(src + i), m, 0));
    storeu(dst + i + 64, _mm512_gf2p8affine_epi64_epi8(loadu(src + i + 64), m, 0));
  }
  if (i + 64 <= len) {
    storeu(dst + i, _mm512_gf2p8affine_epi64_epi8(loadu(src + i), m, 0));
    i += 64;
  }
  detail::mul_assign_scalar(table, src + i, dst + i, len - i);
}

void dot_gfni(const MulTable* tables, std::size_t k, std::size_t p, const byte_t* const* src,
              byte_t* const* dst, std::size_t len, bool accumulate) {
  if (p == 0 || len == 0 || k == 0) {
    detail::dot_scalar(tables, k, p, src, dst, len, accumulate);
    return;
  }
  // Flatten the coefficient matrices once so the strip loop broadcasts them
  // straight from one contiguous cache-resident array.
  std::vector<std::uint64_t> mats(p * k);
  for (std::size_t i = 0; i < p * k; ++i) mats[i] = matrix_for(tables[i]);

  // Strip-outer / group-inner one-pass encode (see the SSSE3 twin for the
  // rationale); 64-byte strips, one GF2P8AFFINEQB + XOR per source x output
  // row, accumulators for up to 4 output rows live in zmm registers.
  constexpr std::size_t kGroup = 4;
  std::size_t pos = 0;
  for (; pos + 64 <= len; pos += 64) {
    for (std::size_t g = 0; g < p; g += kGroup) {
      const std::size_t gn = std::min(kGroup, p - g);
      __m512i acc[kGroup];
      for (std::size_t j = 0; j < gn; ++j)
        acc[j] = accumulate ? loadu(dst[g + j] + pos) : _mm512_setzero_si512();
      for (std::size_t c = 0; c < k; ++c) {
        const __m512i v = loadu(src[c] + pos);
        for (std::size_t j = 0; j < gn; ++j) {
          const __m512i m =
              _mm512_set1_epi64(static_cast<long long>(mats[(g + j) * k + c]));
          acc[j] = _mm512_xor_si512(acc[j], _mm512_gf2p8affine_epi64_epi8(v, m, 0));
        }
      }
      for (std::size_t j = 0; j < gn; ++j) storeu(dst[g + j] + pos, acc[j]);
    }
  }
  const std::size_t tail = len - pos;
  if (tail == 0) return;
  for (std::size_t r = 0; r < p; ++r) {
    (accumulate ? detail::mul_acc_scalar
                : detail::mul_assign_scalar)(tables[r * k], src[0] + pos, dst[r] + pos, tail);
    for (std::size_t c = 1; c < k; ++c)
      detail::mul_acc_scalar(tables[r * k + c], src[c] + pos, dst[r] + pos, tail);
  }
}

}  // namespace

namespace detail {
const Kernels* gfni_kernel_table() {
  static const Kernels k{Backend::kGfni, &mul_acc_gfni, &mul_assign_gfni, &dot_gfni};
  return &k;
}
}  // namespace detail

}  // namespace mlec::ec

#else  // non-x86 build (or GFNI/AVX-512 flags missing): backend unavailable

namespace mlec::ec::detail {
const Kernels* gfni_kernel_table() { return nullptr; }
}  // namespace mlec::ec::detail

#endif
