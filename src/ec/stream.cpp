#include "ec/stream.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mlec::ec {

bool encode_parallel(const EncodePlan& plan, std::span<const std::span<const byte_t>> src,
                     std::span<const std::span<byte_t>> dst, ThreadPool& pool, StopToken stop,
                     const StreamOptions& options) {
  MLEC_REQUIRE(src.size() == plan.cols(), "expected cols() source shards");
  MLEC_REQUIRE(dst.size() == plan.rows(), "expected rows() destination shards");
  MLEC_REQUIRE(options.min_slice_bytes >= 1, "slices need at least one byte");
  if (stop.stop_requested()) return false;
  if (plan.rows() == 0) return true;
  const std::size_t len = src.empty() ? (dst.empty() ? 0 : dst[0].size()) : src[0].size();
  for (const auto& s : src) MLEC_REQUIRE(s.size() == len, "source shard size mismatch");
  for (const auto& d : dst) MLEC_REQUIRE(d.size() == len, "destination shard size mismatch");

  const std::size_t target_slices = std::max<std::size_t>(1, pool.size() * options.slices_per_worker);
  std::size_t slice_len = std::max(options.min_slice_bytes, (len + target_slices - 1) / target_slices);
  // Keep full slices vector-strip aligned so only the final slice has a
  // sub-strip tail.
  slice_len = (slice_len + 63) / 64 * 64;
  const std::size_t slices = len == 0 ? 0 : (len + slice_len - 1) / slice_len;

  std::vector<const byte_t*> s(src.size());
  for (std::size_t c = 0; c < src.size(); ++c) s[c] = src[c].data();
  std::vector<byte_t*> d(dst.size());
  for (std::size_t r = 0; r < dst.size(); ++r) d[r] = dst[r].data();

  if (slices <= 1) {
    encode(plan, s.data(), d.data(), len);
    return !stop.stop_requested();
  }

  pool.parallel_for(
      0, slices,
      [&](std::size_t i) {
        const std::size_t off = i * slice_len;
        const std::size_t n = std::min(slice_len, len - off);
        std::vector<const byte_t*> so(s.size());
        for (std::size_t c = 0; c < s.size(); ++c) so[c] = s[c] + off;
        std::vector<byte_t*> dn(d.size());
        for (std::size_t r = 0; r < d.size(); ++r) dn[r] = d[r] + off;
        encode(plan, so.data(), dn.data(), n);
      },
      stop);
  return !stop.stop_requested();
}

}  // namespace mlec::ec
