#include "ec/stream.hpp"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mlec::ec {

namespace {

/// How one parallel call carves a buffer: fixed-length slices, dispatched
/// either interleaved (parallel_for, one task per slice) or contiguous
/// (parallel_chunks, one page-aligned range of slices per worker — the
/// first-touch-stable NUMA partitioning; see stream.hpp).
struct Slicing {
  std::size_t slice_len = 0;
  std::size_t slices = 0;
  bool contiguous = false;
};

Slicing plan_slices(std::size_t len, ThreadPool& pool, const StreamOptions& options) {
  Slicing s;
  s.contiguous = options.numa_aware && numa_node_count() > 1 && pool.size() > 1;
  const std::size_t target_slices = std::max<std::size_t>(
      1, pool.size() * (s.contiguous ? 1 : options.slices_per_worker));
  std::size_t slice_len =
      std::max(options.min_slice_bytes, (len + target_slices - 1) / target_slices);
  // Keep full slices vector-strip aligned so only the final slice has a
  // sub-strip tail; under contiguous partitioning align to pages so worker
  // ranges never share a first-touched page.
  const std::size_t align = s.contiguous ? 4096 : 64;
  slice_len = (slice_len + align - 1) / align * align;
  s.slice_len = slice_len;
  s.slices = len == 0 ? 0 : (len + slice_len - 1) / slice_len;
  return s;
}

/// Run fn(offset, n) for every slice under the slicing's dispatch shape.
void run_slices(ThreadPool& pool, const Slicing& s, std::size_t len, StopToken stop,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  if (s.contiguous) {
    pool.parallel_chunks(
        0, s.slices, pool.size(),
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi && !stop.stop_requested(); ++i) {
            const std::size_t off = i * s.slice_len;
            fn(off, std::min(s.slice_len, len - off));
          }
        },
        stop);
    return;
  }
  pool.parallel_for(
      0, s.slices,
      [&](std::size_t i) {
        const std::size_t off = i * s.slice_len;
        fn(off, std::min(s.slice_len, len - off));
      },
      stop);
}

}  // namespace

std::size_t numa_node_count() {
  static const std::size_t count = [] {
    std::size_t nodes = 0;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator("/sys/devices/system/node", ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 4 && name.compare(0, 4, "node") == 0 &&
          name.find_first_not_of("0123456789", 4) == std::string::npos)
        ++nodes;
    }
    return std::max<std::size_t>(1, nodes);
  }();
  return count;
}

void first_touch_parallel(std::span<byte_t> buffer, ThreadPool& pool,
                          const StreamOptions& options) {
  if (buffer.empty()) return;
  const Slicing s = plan_slices(buffer.size(), pool, options);
  run_slices(pool, s, buffer.size(), {}, [&](std::size_t off, std::size_t n) {
    volatile byte_t* p = buffer.data() + off;
    for (std::size_t i = 0; i < n; i += 4096) p[i] = p[i];
    p[n - 1] = p[n - 1];
  });
}

bool encode_parallel(const EncodePlan& plan, std::span<const std::span<const byte_t>> src,
                     std::span<const std::span<byte_t>> dst, ThreadPool& pool, StopToken stop,
                     const StreamOptions& options) {
  MLEC_REQUIRE(src.size() == plan.cols(), "expected cols() source shards");
  MLEC_REQUIRE(dst.size() == plan.rows(), "expected rows() destination shards");
  MLEC_REQUIRE(options.min_slice_bytes >= 1, "slices need at least one byte");
  if (stop.stop_requested()) return false;
  if (plan.rows() == 0) return true;
  const std::size_t len = src.empty() ? (dst.empty() ? 0 : dst[0].size()) : src[0].size();
  for (const auto& s : src) MLEC_REQUIRE(s.size() == len, "source shard size mismatch");
  for (const auto& d : dst) MLEC_REQUIRE(d.size() == len, "destination shard size mismatch");

  const Slicing slicing = plan_slices(len, pool, options);

  std::vector<const byte_t*> s(src.size());
  for (std::size_t c = 0; c < src.size(); ++c) s[c] = src[c].data();
  std::vector<byte_t*> d(dst.size());
  for (std::size_t r = 0; r < dst.size(); ++r) d[r] = dst[r].data();

  if (slicing.slices <= 1) {
    encode(plan, s.data(), d.data(), len);
    return !stop.stop_requested();
  }

  run_slices(pool, slicing, len, stop, [&](std::size_t off, std::size_t n) {
    std::vector<const byte_t*> so(s.size());
    for (std::size_t c = 0; c < s.size(); ++c) so[c] = s[c] + off;
    std::vector<byte_t*> dn(d.size());
    for (std::size_t r = 0; r < d.size(); ++r) dn[r] = d[r] + off;
    encode(plan, so.data(), dn.data(), n);
  });
  return !stop.stop_requested();
}

bool decode_parallel(const DecodePlan& plan, std::span<const std::span<byte_t>> shards,
                     ThreadPool& pool, StopToken stop, const StreamOptions& options) {
  MLEC_REQUIRE(plan.viable(), "erasure pattern is not decodable with this plan");
  MLEC_REQUIRE(shards.size() == plan.width(), "expected width() shard buffers");
  MLEC_REQUIRE(options.min_slice_bytes >= 1, "slices need at least one byte");
  if (stop.stop_requested()) return false;
  if (plan.lost_data().empty() && plan.lost_parity().empty()) return true;
  const std::size_t len = shards.empty() ? 0 : shards[0].size();
  for (const auto& s : shards) MLEC_REQUIRE(s.size() == len, "shard size mismatch");

  const Slicing slicing = plan_slices(len, pool, options);

  std::vector<byte_t*> ptrs(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) ptrs[i] = shards[i].data();

  if (slicing.slices <= 1) {
    decode(plan, ptrs.data(), len);
    return !stop.stop_requested();
  }

  // Both plan stages run inside one slice task: stage 2 (lost parity) reads
  // only data-shard bytes of the same positions stage 1 just rebuilt, so
  // the slice is self-contained and the result bit-identical to serial.
  run_slices(pool, slicing, len, stop, [&](std::size_t off, std::size_t n) {
    std::vector<byte_t*> po(ptrs.size());
    for (std::size_t i = 0; i < ptrs.size(); ++i) po[i] = ptrs[i] + off;
    decode(plan, po.data(), n);
  });
  return !stop.stop_requested();
}

}  // namespace mlec::ec
