#include "ec/codec.hpp"

#include "util/error.hpp"

namespace mlec::ec {

byte_t mul_slow(byte_t a, byte_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
  }
  return static_cast<byte_t>(acc);
}

MulTable make_mul_table(byte_t c) {
  MulTable table{};
  for (unsigned n = 0; n < 16; ++n) {
    table.lo[n] = mul_slow(c, static_cast<byte_t>(n));
    table.hi[n] = mul_slow(c, static_cast<byte_t>(n << 4));
  }
  return table;
}

EncodePlan::EncodePlan(std::size_t rows, std::size_t cols,
                       std::span<const byte_t> coefficients)
    : rows_(rows), cols_(cols), coeffs_(coefficients.begin(), coefficients.end()) {
  MLEC_REQUIRE(coefficients.size() == rows * cols, "coefficient matrix size mismatch");
  tables_.reserve(rows * cols);
  for (const byte_t c : coeffs_) tables_.push_back(make_mul_table(c));
}

void encode(const EncodePlan& plan, const byte_t* const* src, byte_t* const* dst, std::size_t len,
            bool accumulate) {
  if (plan.rows() == 0 || len == 0) return;
  kernels().dot(plan.tables(), plan.cols(), plan.rows(), src, dst, len, accumulate);
}

void encode(const EncodePlan& plan, std::span<const std::span<const byte_t>> src,
            std::span<const std::span<byte_t>> dst, bool accumulate) {
  MLEC_REQUIRE(src.size() == plan.cols(), "expected cols() source shards");
  MLEC_REQUIRE(dst.size() == plan.rows(), "expected rows() destination shards");
  if (plan.rows() == 0) return;
  const std::size_t len = src.empty() ? (dst.empty() ? 0 : dst[0].size()) : src[0].size();
  std::vector<const byte_t*> s(src.size());
  for (std::size_t c = 0; c < src.size(); ++c) {
    MLEC_REQUIRE(src[c].size() == len, "source shard size mismatch");
    s[c] = src[c].data();
  }
  std::vector<byte_t*> d(dst.size());
  for (std::size_t r = 0; r < dst.size(); ++r) {
    MLEC_REQUIRE(dst[r].size() == len, "destination shard size mismatch");
    d[r] = dst[r].data();
  }
  encode(plan, s.data(), d.data(), len, accumulate);
}

}  // namespace mlec::ec
