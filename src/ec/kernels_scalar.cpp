// Portable scalar kernels: the reference implementation every vector
// backend must match byte-for-byte, and the fallback on non-x86 builds.
#include <algorithm>
#include <cstring>

#include "ec/kernels_detail.hpp"

namespace mlec::ec {

namespace detail {

void mul_acc_scalar(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const byte_t* __restrict s = src;
  byte_t* __restrict d = dst;
  for (std::size_t i = 0; i < len; ++i) {
    const byte_t v = s[i];
    d[i] ^= table.lo[v & 0x0f] ^ table.hi[v >> 4];
  }
}

void mul_assign_scalar(const MulTable& table, const byte_t* src, byte_t* dst, std::size_t len) {
  const byte_t* __restrict s = src;
  byte_t* __restrict d = dst;
  for (std::size_t i = 0; i < len; ++i) {
    const byte_t v = s[i];
    d[i] = table.lo[v & 0x0f] ^ table.hi[v >> 4];
  }
}

void dot_scalar(const MulTable* tables, std::size_t k, std::size_t p, const byte_t* const* src,
                byte_t* const* dst, std::size_t len, bool accumulate) {
  if (p == 0 || len == 0) return;
  if (k == 0) {
    if (!accumulate)
      for (std::size_t r = 0; r < p; ++r) std::memset(dst[r], 0, len);
    return;
  }
  // Block so each source block stays cache-hot while it feeds all p output
  // rows; source-major order gives the one-pass-over-the-data shape.
  constexpr std::size_t kBlock = 32 * 1024;
  for (std::size_t pos = 0; pos < len; pos += kBlock) {
    const std::size_t n = std::min(kBlock, len - pos);
    for (std::size_t r = 0; r < p; ++r)
      (accumulate ? mul_acc_scalar : mul_assign_scalar)(tables[r * k], src[0] + pos, dst[r] + pos,
                                                        n);
    for (std::size_t c = 1; c < k; ++c)
      for (std::size_t r = 0; r < p; ++r)
        mul_acc_scalar(tables[r * k + c], src[c] + pos, dst[r] + pos, n);
  }
}

const Kernels* scalar_kernel_table() {
  static const Kernels k{Backend::kScalar, &mul_acc_scalar, &mul_assign_scalar, &dot_scalar};
  return &k;
}

}  // namespace detail

}  // namespace mlec::ec
