// Concurrency stress tests for the campaign runner's cancellation path.
//
// These tests exist to give ThreadSanitizer real interleavings to chew on:
// a multi-worker pool (explicit — CI runners and laptops may report one
// core), many small shards committing frequently, and StopSource firing at
// staggered points including mid-flight, pre-start, and post-completion.
// The assertions are deliberately about *consistency under cancellation*:
// whatever the interleaving, the merged accumulator, the per-shard
// outcomes, and the report's units_done must agree exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "runtime/campaign.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"

namespace mlec {
namespace {

// Each unit bumps a counter and folds a draw into a scalar so the merged
// accumulator has content whose totals must match the report exactly.
CampaignRunner::WorkerFactory counting_factory() {
  return [](std::uint32_t, Rng& rng) {
    return [&rng](CampaignAccumulator& acc) {
      acc.counter("units") += 1;
      acc.scalar("sum") += rng.uniform();
    };
  };
}

void expect_consistent(const CampaignAccumulator& merged, const CampaignReport& report) {
  std::uint64_t shard_total = 0;
  for (const auto& s : report.shards) {
    EXPECT_LE(s.done, s.assigned) << "shard " << s.shard;
    EXPECT_FALSE(s.quarantined) << "shard " << s.shard << ": " << s.error;
    EXPECT_EQ(s.attempts, 1u) << "shard " << s.shard;
    shard_total += s.done;
  }
  EXPECT_EQ(report.units_done, shard_total);
  EXPECT_EQ(merged.counter("units"), report.units_done);
  EXPECT_LE(report.units_done, report.units_requested);
  // Every early exit must be flagged; a full run must not be.
  EXPECT_TRUE(report.complete() || report.truncated);
  if (report.complete()) EXPECT_FALSE(report.truncated);
}

TEST(CampaignStress, CancellationRacesShardCompletion) {
  // Sweep the cancellation point from "immediately" to "probably after the
  // campaign finished" so successive iterations hit different phases of the
  // shard loop. Two cancellers fire concurrently to also exercise idempotent
  // request_stop() on a shared StopState.
  constexpr int kIterations = 24;
  for (int iter = 0; iter < kIterations; ++iter) {
    ThreadPool pool(4);
    StopSource source;

    CampaignConfig cfg;
    cfg.total_units = 2048;
    cfg.seed = 0x5eedu + static_cast<std::uint64_t>(iter);
    cfg.shards = 8;
    cfg.checkpoint_every = 16;  // frequent commits = frequent lock traffic
    cfg.stop = source.token();

    CampaignRunner runner(cfg, counting_factory());

    std::atomic<bool> go{false};
    const auto delay = std::chrono::microseconds(iter * 150);
    auto cancel = [&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::this_thread::sleep_for(delay);
      source.request_stop();
    };
    std::thread canceller_a(cancel);
    std::thread canceller_b(cancel);

    go.store(true, std::memory_order_release);
    auto [merged, report] = runner.run(&pool);
    canceller_a.join();
    canceller_b.join();

    SCOPED_TRACE("iteration " + std::to_string(iter));
    expect_consistent(merged, report);
    EXPECT_FALSE(report.converged);
    EXPECT_EQ(report.shards.size(), 8u);
  }
}

TEST(CampaignStress, PreFiredStopYieldsEmptyTruncatedReport) {
  ThreadPool pool(4);
  StopSource source;
  source.request_stop();

  CampaignConfig cfg;
  cfg.total_units = 1024;
  cfg.seed = 7;
  cfg.shards = 8;
  cfg.checkpoint_every = 16;
  cfg.stop = source.token();

  CampaignRunner runner(cfg, counting_factory());
  auto [merged, report] = runner.run(&pool);

  expect_consistent(merged, report);
  EXPECT_EQ(report.units_done, 0u);
  EXPECT_TRUE(report.truncated);
}

TEST(CampaignStress, StopAfterRunIsHarmlessAndRerunnable) {
  // A token that fires only after run() returned must leave a complete,
  // untruncated report, and the source must be reusable for a second
  // campaign that then observes the stop from the start.
  ThreadPool pool(4);
  StopSource source;

  CampaignConfig cfg;
  cfg.total_units = 512;
  cfg.seed = 11;
  cfg.shards = 4;
  cfg.checkpoint_every = 32;
  cfg.stop = source.token();

  {
    CampaignRunner runner(cfg, counting_factory());
    auto [merged, report] = runner.run(&pool);
    expect_consistent(merged, report);
    EXPECT_TRUE(report.complete());
  }

  source.request_stop();
  CampaignRunner again(cfg, counting_factory());
  auto [merged, report] = again.run(&pool);
  expect_consistent(merged, report);
  EXPECT_EQ(report.units_done, 0u);
  EXPECT_TRUE(report.truncated);
}

TEST(CampaignStress, FaultingShardBackoffDoesNotBlockPeerCommits) {
  // One shard throws on its first two attempts with a non-trivial backoff;
  // the other shards must keep committing at full speed, which they can only
  // do if the retry sleep happens outside the campaign mutex. The wall-clock
  // bound is generous (sleeps total ~30ms; serialized commits behind a held
  // lock would add that to every peer's critical path under TSan's ~10x
  // slowdown, but the real assertion is the TSan/consistency one).
  ThreadPool pool(4);

  CampaignConfig cfg;
  cfg.total_units = 1024;
  cfg.seed = 13;
  cfg.shards = 8;
  cfg.checkpoint_every = 16;
  cfg.max_attempts = 3;
  cfg.retry_backoff_ms = 10.0;

  std::atomic<int> faults{2};
  auto factory = [&faults](std::uint32_t shard, Rng& rng) -> CampaignRunner::UnitRunner {
    return [&faults, shard, &rng](CampaignAccumulator& acc) {
      if (shard == 3 && acc.counter("units") == 5 &&
          faults.fetch_sub(1, std::memory_order_relaxed) > 0)
        throw std::runtime_error("injected shard fault");
      acc.counter("units") += 1;
      acc.scalar("sum") += rng.uniform();
    };
  };

  CampaignRunner runner(cfg, factory);
  auto [merged, report] = runner.run(&pool);

  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.quarantined(), 0u);
  EXPECT_EQ(merged.counter("units"), report.units_done);
  EXPECT_EQ(report.shards[3].attempts, 3u);
  EXPECT_EQ(report.shards[3].error, "injected shard fault");
}

}  // namespace
}  // namespace mlec
