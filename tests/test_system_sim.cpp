#include "sim/system_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/markov.hpp"
#include "util/units.hpp"

namespace mlec {
namespace {

SystemSimConfig toy_config() {
  SystemSimConfig cfg;
  cfg.dc.racks = 6;
  cfg.dc.enclosures_per_rack = 2;
  cfg.dc.disks_per_enclosure = 6;
  cfg.dc.disk_capacity_tb = 2.0;
  cfg.code = {{2, 1}, {2, 1}};
  cfg.scheme = MlecScheme::kCC;
  cfg.stripes_per_network_pool = 4;
  return cfg;
}

TEST(SystemSim, NoFailuresNoLoss) {
  auto cfg = toy_config();
  cfg.failures.afr = 1e-9;
  const auto result = simulate_system(cfg, 20, 1);
  EXPECT_EQ(result.data_loss_missions, 0u);
  EXPECT_EQ(result.pdl(), 0.0);
}

TEST(SystemSim, ExtremeAfrAlwaysLoses) {
  auto cfg = toy_config();
  cfg.failures.afr = 0.999;  // ~everything dies many times over a year
  cfg.dc.disk_capacity_tb = 2000.0;  // repairs far too slow to help
  const auto result = simulate_system(cfg, 20, 2);
  EXPECT_EQ(result.data_loss_missions, 20u);
  EXPECT_DOUBLE_EQ(result.pdl(), 1.0);
  EXPECT_GT(result.loss_time_hours.count(), 0u);
}

TEST(SystemSim, PdlIncreasesWithAfr) {
  auto cfg = toy_config();
  cfg.failures.afr = 0.3;
  const auto lo = simulate_system(cfg, 300, 3);
  cfg.failures.afr = 0.9;
  const auto hi = simulate_system(cfg, 300, 3);
  EXPECT_GE(hi.pdl(), lo.pdl());
  EXPECT_GT(hi.catastrophic_pool_events, 0u);
}

TEST(SystemSim, BetterRepairMethodsDoNotHurt) {
  auto cfg = toy_config();
  cfg.failures.afr = 0.8;
  cfg.method = RepairMethod::kRepairAll;
  const auto rall = simulate_system(cfg, 400, 4);
  cfg.method = RepairMethod::kRepairMinimum;
  const auto rmin = simulate_system(cfg, 400, 4);
  // R_MIN's catastrophic repair exposure is shorter, so its PDL should not
  // exceed R_ALL's beyond Monte Carlo noise (~3 sigma of a 400-trial binomial).
  const double sigma = std::sqrt(rall.pdl() * (1 - rall.pdl()) / 400.0);
  EXPECT_LE(rmin.pdl(), rall.pdl() + 3 * sigma + 0.01);
}

TEST(SystemSim, CatastrophicRepairHoursOrdered) {
  const auto cfg = toy_config();
  const double rall = cfg.catastrophic_repair_hours(RepairMethod::kRepairAll);
  const double rfco = cfg.catastrophic_repair_hours(RepairMethod::kRepairFailedOnly);
  const double rmin = cfg.catastrophic_repair_hours(RepairMethod::kRepairMinimum);
  EXPECT_GE(rall, rfco);
  EXPECT_GE(rfco, rmin);
  EXPECT_GT(rmin, cfg.detection_hours);
}

TEST(SystemSim, MatchesMarkovForRepairAll) {
  // Single network pool of 3 one-stripe pools: the two-level Markov model
  // applies almost exactly. Use a hot AFR so both converge.
  SystemSimConfig cfg;
  cfg.dc.racks = 3;
  cfg.dc.enclosures_per_rack = 1;
  cfg.dc.disks_per_enclosure = 3;
  cfg.dc.disk_capacity_tb = 50.0;  // slow repairs so losses are observable
  cfg.code = {{2, 1}, {2, 1}};  // one network pool over the 3 racks
  cfg.scheme = MlecScheme::kCC;
  cfg.stripes_per_network_pool = 2;
  cfg.failures.afr = 0.9;
  cfg.method = RepairMethod::kRepairAll;

  const auto sim = simulate_system(cfg, 3000, 7);

  MlecMarkovParams params;
  params.kn = 2;
  params.pn = 1;
  params.kl = 2;
  params.pl = 1;
  params.local_pool_disks = 3;
  params.disk_fail_rate = cfg.failures.afr / units::kHoursPerYear;
  params.disk_repair_rate = 1.0 / cfg.single_disk_repair_hours();
  params.pool_repair_rate = 1.0 / cfg.catastrophic_repair_hours(RepairMethod::kRepairAll);
  params.network_pools = 1;
  const auto markov = mlec_markov_mttdl(params);
  const double markov_pdl = pdl_over_mission(markov.system_mttdl_hours, cfg.mission_hours);

  // Order-of-magnitude agreement: the models differ in repair-time
  // distribution and the sim's exact stripe accounting.
  EXPECT_GT(sim.pdl(), markov_pdl / 6.0);
  EXPECT_LT(sim.pdl(), std::min(1.0, markov_pdl * 6.0));
}

}  // namespace
}  // namespace mlec
