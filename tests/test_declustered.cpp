#include "placement/declustered.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mlec {
namespace {

const std::array<DeclusterStrategy, 3> kStrategies = {DeclusterStrategy::kRoundRobin,
                                                      DeclusterStrategy::kPseudorandom,
                                                      DeclusterStrategy::kLowOverlap};

class LayoutStrategies : public ::testing::TestWithParam<DeclusterStrategy> {};

TEST_P(LayoutStrategies, StripesUseDistinctDisksInRange) {
  const auto layout = make_declustered_layout(24, 6, 100, GetParam());
  ASSERT_EQ(layout.stripes.size(), 100u);
  for (const auto& stripe : layout.stripes) {
    ASSERT_EQ(stripe.size(), 6u);
    const std::set<std::uint32_t> uniq(stripe.begin(), stripe.end());
    EXPECT_EQ(uniq.size(), 6u);
    for (auto d : stripe) EXPECT_LT(d, 24u);
  }
}

TEST_P(LayoutStrategies, CapacityStaysRoughlyBalanced) {
  const auto layout = make_declustered_layout(20, 5, 400, GetParam());
  const auto q = analyze_layout(layout);
  // 400 stripes * 5 chunks over 20 disks = 100 per disk on average.
  EXPECT_NEAR(q.mean_stripes_per_disk, 100.0, 1e-9);
  EXPECT_LT(q.max_stripes_per_disk, 140.0);
}

TEST_P(LayoutStrategies, FullWidthStripeDegeneratesToClustered) {
  // width == pool: every stripe spans every disk, fan-out n-1, overlap = S.
  const auto layout = make_declustered_layout(6, 6, 10, GetParam());
  const auto q = analyze_layout(layout);
  EXPECT_DOUBLE_EQ(q.mean_rebuild_fanout, 5.0);
  EXPECT_EQ(q.max_pair_overlap, 10u);
}

INSTANTIATE_TEST_SUITE_P(All, LayoutStrategies, ::testing::ValuesIn(kStrategies));

TEST(DeclusteredLayout, WideEnoughPoolsReachFullFanout) {
  // Plenty of pseudorandom stripes: every survivor participates in every
  // rebuild (the paper's "all the surviving disks participate").
  const auto layout =
      make_declustered_layout(24, 6, 600, DeclusterStrategy::kPseudorandom, 3);
  const auto q = analyze_layout(layout);
  EXPECT_DOUBLE_EQ(q.min_rebuild_fanout, 23.0);
}

TEST(DeclusteredLayout, LowOverlapBeatsRandomOnOverlap) {
  // With few stripes the greedy layout should achieve single overlap while
  // random placement collides.
  const auto greedy = make_declustered_layout(30, 5, 30, DeclusterStrategy::kLowOverlap, 5);
  const auto random = make_declustered_layout(30, 5, 30, DeclusterStrategy::kPseudorandom, 5);
  const auto qg = analyze_layout(greedy);
  const auto qr = analyze_layout(random);
  EXPECT_LE(qg.max_pair_overlap, qr.max_pair_overlap);
  EXPECT_LE(qg.max_pair_overlap, 2u);
}

TEST(DeclusteredLayout, RebuildBandwidthMatchesTable2Ideal) {
  // A balanced 120-disk (17+3) layout should approach the paper's 264 MB/s
  // declustered rebuild rate ((n-1) * 40 / (k+1)).
  const auto layout =
      make_declustered_layout(120, 20, 4000, DeclusterStrategy::kPseudorandom, 9);
  const double mbps = layout_rebuild_mbps(layout, 17, 40.0);
  const double ideal = 119.0 * 40.0 / 18.0;  // 264.4
  EXPECT_GT(mbps, 0.75 * ideal);
  EXPECT_LE(mbps, ideal * 1.001);
}

TEST(DeclusteredLayout, ClusteredPoolIsWriteBound) {
  // width == pool keeps every read on the k survivors: the rate collapses
  // toward the clustered regime.
  const auto clustered = make_declustered_layout(20, 20, 200, DeclusterStrategy::kRoundRobin);
  const auto declustered =
      make_declustered_layout(120, 20, 1200, DeclusterStrategy::kPseudorandom, 2);
  EXPECT_LT(layout_rebuild_mbps(clustered, 17, 40.0),
            layout_rebuild_mbps(declustered, 17, 40.0));
}

TEST(DeclusteredLayout, InvalidArgumentsRejected) {
  EXPECT_THROW(make_declustered_layout(4, 5, 1, DeclusterStrategy::kPseudorandom),
               PreconditionError);
  EXPECT_THROW(make_declustered_layout(4, 2, 0, DeclusterStrategy::kPseudorandom),
               PreconditionError);
  const auto layout = make_declustered_layout(6, 3, 5, DeclusterStrategy::kPseudorandom);
  EXPECT_THROW(layout_rebuild_mbps(layout, 3, 40.0), PreconditionError);  // k == width
  EXPECT_THROW(layout_rebuild_mbps(layout, 2, -1.0), PreconditionError);
}

}  // namespace
}  // namespace mlec
