#include "topology/topology.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

TEST(DataCenterConfig, PaperDefaults) {
  const auto dc = DataCenterConfig::paper_default();
  EXPECT_EQ(dc.racks, 60u);
  EXPECT_EQ(dc.total_disks(), 57600u);
  EXPECT_EQ(dc.disks_per_rack(), 960u);
  EXPECT_EQ(dc.total_enclosures(), 480u);
  EXPECT_DOUBLE_EQ(dc.total_capacity_tb(), 57600.0 * 20.0);
  // 20 TB / 128 KB chunks.
  EXPECT_DOUBLE_EQ(dc.chunks_per_disk(), 20e12 / 128e3);
}

TEST(DataCenterConfig, ValidationCatchesZeroes) {
  DataCenterConfig dc;
  dc.racks = 0;
  EXPECT_THROW(dc.validate(), PreconditionError);
  dc = {};
  dc.disk_capacity_tb = 0;
  EXPECT_THROW(dc.validate(), PreconditionError);
}

TEST(Topology, AddressRoundTrip) {
  const Topology topo(DataCenterConfig::paper_default());
  for (RackId rack : {0u, 7u, 59u}) {
    for (std::size_t enc : {0u, 3u, 7u}) {
      for (std::size_t pos : {0u, 42u, 119u}) {
        const DiskId disk = topo.disk_at(rack, enc, pos);
        EXPECT_EQ(topo.rack_of(disk), rack);
        EXPECT_EQ(topo.enclosure_position(topo.enclosure_of(disk)), enc);
        EXPECT_EQ(topo.disk_position(disk), pos);
        EXPECT_EQ(topo.rack_of_enclosure(topo.enclosure_of(disk)), rack);
      }
    }
  }
}

TEST(Topology, EnclosureNumbering) {
  const Topology topo(DataCenterConfig::paper_default());
  EXPECT_EQ(topo.enclosure_at(0, 0), 0u);
  EXPECT_EQ(topo.enclosure_at(1, 0), 8u);
  EXPECT_EQ(topo.enclosure_at(59, 7), 479u);
}

TEST(Topology, DescribeIsHumanReadable) {
  const Topology topo(DataCenterConfig::paper_default());
  EXPECT_EQ(topo.describe(0), "R1E1D1");
  EXPECT_EQ(topo.describe(topo.disk_at(2, 1, 5)), "R3E2D6");
}

TEST(Topology, OutOfRangeRejected) {
  const Topology topo(DataCenterConfig::paper_default());
  EXPECT_THROW(topo.disk_at(60, 0, 0), PreconditionError);
  EXPECT_THROW(topo.disk_at(0, 8, 0), PreconditionError);
  EXPECT_THROW(topo.disk_at(0, 0, 120), PreconditionError);
  EXPECT_THROW(topo.describe(57600), PreconditionError);
}

}  // namespace
}  // namespace mlec
