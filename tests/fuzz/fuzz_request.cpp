// mlecd request-line fuzz target.
//
// Contract under test: one framed request line — whatever its bytes — is
// either parsed or answered with an error; it must never crash the daemon,
// over-allocate past the parser limits, or escape as anything but
// json::Error. A value that does parse must dump back to a single
// newline-free line that reparses (the framing invariant), and the typed
// field accessors the dispatch path uses (`op`, seed strings, the Estimate
// mapping) must diagnose wrong kinds instead of defaulting or crashing.
#include <cstdint>
#include <string>

#include "server/json.hpp"
#include "server/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  mlec::json::ParseLimits limits;
  limits.max_bytes = mlec::server::kMaxRequestBytes;

  mlec::json::Value value;
  try {
    value = mlec::json::parse(line, limits);
  } catch (const mlec::json::Error&) {
    return 0;  // diagnosed malformed input: the accepted outcome
  }

  // Framing invariant: dump() of anything parse() accepted is one line
  // that round-trips. A violation here would let a response frame split.
  const std::string wire = mlec::json::dump(value);
  if (wire.find('\n') != std::string::npos) __builtin_trap();
  (void)mlec::json::parse(wire, limits);

  if (value.is_object()) {
    try {
      (void)value.str_or("op", "");
    } catch (const mlec::json::Error&) {
    }
    if (const mlec::json::Value* seed = value.get("seed")) {
      if (seed->is_string()) {
        try {
          (void)mlec::json::u64_from_string(seed->as_string());
        } catch (const mlec::json::Error&) {
        }
      }
    }
    try {
      (void)mlec::server::estimate_from_json(value);
    } catch (const mlec::json::Error&) {
    }
    try {
      (void)mlec::server::parse_priority(value.str_or("priority", "normal"));
    } catch (const mlec::json::Error&) {
    }
  }
  return 0;
}
