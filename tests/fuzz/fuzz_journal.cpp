// Campaign-journal fuzz target.
//
// Contract under test (the resume path runs on whatever bytes a crash left
// behind, so this surface is adversarial by construction):
//   * CampaignJournal::recover never throws on arbitrary bytes — it returns
//     a typed JournalLoadResult, and any usable() result contains only
//     fully CRC-verified records with in-range, duplicate-free shard ids.
//   * CampaignJournal::load (the strict path) either parses or raises
//     mlec::PreconditionError. Crashes, sanitizer reports, bad_alloc from
//     attacker-controlled lengths, or any other exception escaping is a bug.
//   * Round-trip stability: a recovered journal must re-serialize to bytes
//     that recover as fully intact (kOk) with the same record set.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/journal.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  std::istringstream strict_in(bytes);
  try {
    (void)mlec::CampaignJournal::load(strict_in);
  } catch (const mlec::PreconditionError&) {
    // diagnosed malformed input: the accepted strict-path outcome
  }

  std::istringstream in(bytes);
  const mlec::JournalLoadResult result = mlec::CampaignJournal::recover(in);
  if (!result.usable()) return 0;

  // Every surviving record must respect the header's shard universe, and
  // shard ids must be unique (the campaign indexes its state by shard).
  std::vector<bool> seen(result.shards, false);
  for (const auto& rec : result.records) {
    if (rec.shard >= result.shards || seen[rec.shard]) __builtin_trap();
    seen[rec.shard] = true;
  }

  // Round-trip: rebuild a journal from the recovered state; it must
  // serialize to bytes that recover cleanly with nothing dropped.
  mlec::CampaignJournal journal;
  journal.seed = result.seed;
  journal.total_units = result.total_units;
  journal.shards = result.shards;
  journal.fingerprint = result.fingerprint;
  journal.records = result.records;
  std::ostringstream out;
  journal.save(out);
  std::istringstream again(out.str());
  const mlec::JournalLoadResult reread = mlec::CampaignJournal::recover(again);
  if (reread.status != mlec::JournalLoadResult::Status::kOk ||
      reread.records.size() != result.records.size())
    __builtin_trap();
  return 0;
}
