// INI / spec_io parser fuzz target.
//
// Contract under test: any byte sequence either parses or raises
// mlec::PreconditionError carrying a line-numbered diagnostic. Crashes,
// sanitizer reports, InternalError, or any other exception type escaping is
// a bug. When a scenario does load, its serialized form must load again
// (format/parse round-trip stability), since the journal fingerprint and
// the --strict CLI both depend on it.
#include <cstdint>
#include <string>
#include <vector>

#include "core/spec_io.hpp"
#include "util/error.hpp"
#include "util/ini.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  mlec::IniFile ini;
  try {
    ini = mlec::IniFile::parse_string(text);
  } catch (const mlec::PreconditionError&) {
    return 0;  // diagnosed malformed input: the accepted outcome
  }

  std::vector<std::string> unknown;
  mlec::SpecParsePolicy policy;
  policy.unknown_keys = &unknown;  // silence stderr, keep the diagnosis path hot
  try {
    const mlec::Scenario scenario = mlec::load_scenario(ini, policy);
    // Round-trip: a loadable scenario must serialize to loadable text.
    const std::string formatted = mlec::format_scenario(scenario);
    const mlec::IniFile reparsed = mlec::IniFile::parse_string(formatted);
    (void)mlec::load_scenario(reparsed, policy);
  } catch (const mlec::PreconditionError&) {
  }
  try {
    (void)mlec::load_spec(ini, policy);
  } catch (const mlec::PreconditionError&) {
  }
  return 0;
}
