// Standalone entry point for the fuzz harnesses when libFuzzer is not
// available (GCC builds, the ctest smoke run). Feeds every regular file
// named on the command line — directories are walked in sorted order so a
// corpus run is deterministic — through LLVMFuzzerTestOneInput exactly once.
// With Clang and -DMLEC_FUZZ_LIBFUZZER=ON this file is not compiled;
// libFuzzer supplies main() and drives coverage-guided mutation instead.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(arg))
        if (entry.is_regular_file()) inputs.push_back(entry.path());
    } else {
      inputs.push_back(arg);
    }
  }
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    const auto bytes = read_file(path);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("fuzz standalone: %zu input(s) processed, no crashes\n", inputs.size());
  return 0;
}
