// GF-kernel differential fuzz target: scalar reference vs SIMD backends.
//
// The EC data plane promises every backend is byte-identical to the scalar
// split-nibble reference for arbitrary (unaligned, odd-length) buffers.
// This target decodes a kernel shape from the fuzz input — k sources, p
// outputs, length, coefficients, an accumulate flag, and a deliberate
// misalignment offset — runs mul_acc / mul_assign / dot on the scalar
// backend and on every backend the host CPU supports, and traps on the
// first differing byte. Finds tail-handling and alignment bugs that the
// fixed-size parity tests miss.
//
// A second stage reinterprets the same coefficients as the parity rows of
// a systematic (k+p, k) generator, picks a fuzz-chosen erasure pattern,
// compiles an ec::DecodePlan (exercising survivor selection and GF(256)
// inversion against arbitrary — possibly singular — parity rows), and when
// the plan is viable checks that decode under every supported backend
// rebuilds the exact bytes a naive gf::mul re-encode predicts.
#include <cstdint>
#include <cstring>
#include <vector>

#include "ec/backend.hpp"
#include "ec/decode.hpp"
#include "ec/kernels.hpp"
#include "gf/gf256.hpp"

namespace {

using mlec::gf::byte_t;

constexpr std::size_t kMaxK = 8;
constexpr std::size_t kMaxP = 4;
constexpr std::size_t kMaxLen = 1024;

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  std::uint8_t next() { return pos < size ? data[pos++] : 0x5a; }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  Reader in{data, size};
  const std::size_t k = 1 + in.next() % kMaxK;
  const std::size_t p = 1 + in.next() % kMaxP;
  std::size_t len = 1 + ((static_cast<std::size_t>(in.next()) << 8 | in.next()) % kMaxLen);
  const bool accumulate = (in.next() & 1) != 0;
  const std::size_t misalign = in.next() % 8;

  std::vector<mlec::gf::MulTable> tables(k * p);
  for (auto& t : tables) t = mlec::gf::make_mul_table(in.next());

  // Source/destination pools carry a misalignment offset so the vector
  // kernels' unaligned-load paths and scalar tails are both exercised.
  std::vector<std::vector<byte_t>> src_store(k);
  std::vector<const byte_t*> src(k);
  for (std::size_t c = 0; c < k; ++c) {
    src_store[c].resize(len + misalign);
    for (std::size_t i = 0; i < len; ++i) src_store[c][misalign + i] = in.next();
    src[c] = src_store[c].data() + misalign;
  }
  std::vector<byte_t> seed(len);
  for (auto& b : seed) b = in.next();

  const auto& scalar = mlec::ec::kernels_for(mlec::ec::Backend::kScalar);

  // Reference outputs once per kernel, then every supported backend must
  // reproduce them exactly.
  std::vector<std::vector<byte_t>> ref_dot(p, seed);
  {
    std::vector<byte_t*> dst(p);
    for (std::size_t r = 0; r < p; ++r) dst[r] = ref_dot[r].data();
    scalar.dot(tables.data(), k, p, src.data(), dst.data(), len, accumulate);
  }
  std::vector<byte_t> ref_acc(seed);
  scalar.mul_acc(tables[0], src[0], ref_acc.data(), len);
  std::vector<byte_t> ref_assign(seed);
  scalar.mul_assign(tables[0], src[0], ref_assign.data(), len);

  for (int b = 0; b < mlec::ec::kBackendCount; ++b) {
    const auto backend = static_cast<mlec::ec::Backend>(b);
    if (backend == mlec::ec::Backend::kScalar || !mlec::ec::backend_supported(backend))
      continue;
    const auto& kernels = mlec::ec::kernels_for(backend);

    std::vector<std::vector<byte_t>> out(p);
    std::vector<byte_t*> dst(p);
    for (std::size_t r = 0; r < p; ++r) {
      out[r].assign(seed.begin() + 0, seed.end());
      dst[r] = out[r].data();
    }
    kernels.dot(tables.data(), k, p, src.data(), dst.data(), len, accumulate);
    for (std::size_t r = 0; r < p; ++r)
      if (std::memcmp(out[r].data(), ref_dot[r].data(), len) != 0) __builtin_trap();

    std::vector<byte_t> acc(seed);
    kernels.mul_acc(tables[0], src[0], acc.data(), len);
    if (std::memcmp(acc.data(), ref_acc.data(), len) != 0) __builtin_trap();

    std::vector<byte_t> assign(seed);
    kernels.mul_assign(tables[0], src[0], assign.data(), len);
    if (std::memcmp(assign.data(), ref_assign.data(), len) != 0) __builtin_trap();
  }

  // --- decode differential over the same shape ---------------------------
  // Systematic generator [I; P] with fuzz-chosen parity rows (recovered
  // from the tables: c = lo[1]); arbitrary rows mean the survivor submatrix
  // is often singular, which must surface as !viable(), never a crash.
  const std::size_t n = k + p;
  std::vector<byte_t> gen(n * k, 0);
  for (std::size_t i = 0; i < k; ++i) gen[i * k + i] = 1;
  for (std::size_t r = 0; r < p; ++r)
    for (std::size_t c = 0; c < k; ++c) gen[(k + r) * k + c] = tables[r * k + c].lo[1];

  std::vector<std::size_t> lost;
  const std::size_t losses = 1 + in.next() % p;
  for (std::size_t i = 0; i < n && lost.size() < losses; ++i)
    if (in.next() & 1) lost.push_back(i);
  if (lost.empty()) lost.push_back(in.next() % n);

  const mlec::ec::DecodePlan plan(n, k, gen, lost);
  if (!plan.viable()) return 0;

  // Truth stripe via naive gf::mul re-encode of the fuzz data.
  std::vector<std::vector<byte_t>> truth(n, std::vector<byte_t>(len, 0));
  for (std::size_t c = 0; c < k; ++c) std::memcpy(truth[c].data(), src[c], len);
  for (std::size_t r = 0; r < p; ++r)
    for (std::size_t c = 0; c < k; ++c)
      for (std::size_t i = 0; i < len; ++i)
        truth[k + r][i] = static_cast<byte_t>(
            truth[k + r][i] ^ mlec::gf::mul(gen[(k + r) * k + c], truth[c][i]));

  for (int b = 0; b < mlec::ec::kBackendCount; ++b) {
    const auto backend = static_cast<mlec::ec::Backend>(b);
    if (!mlec::ec::backend_supported(backend)) continue;
    mlec::ec::ScopedBackend scope(backend);
    std::vector<std::vector<byte_t>> shards = truth;
    std::vector<byte_t*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = shards[i].data();
    for (auto idx : lost) std::memset(shards[idx].data(), 0xA5, len);
    mlec::ec::decode(plan, ptrs.data(), len);
    for (std::size_t i = 0; i < n; ++i)
      if (std::memcmp(shards[i].data(), truth[i].data(), len) != 0) __builtin_trap();
  }
  return 0;
}
