// Failure-trace parser fuzz target.
//
// Contract under test: parse_trace over arbitrary bytes either returns a
// time-sorted trace of in-range disk ids or raises mlec::PreconditionError
// with the offending line number — NaN/negative times, out-of-range ids,
// non-monotonic stamps, and trailing garbage are all diagnosed, never
// crashes. A successful parse must survive a format_trace round-trip.
#include <cstdint>
#include <sstream>
#include <string>

#include "sim/failure_gen.hpp"
#include "topology/topology.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  // Small fixed topology: 2x2x4 = 16 disks keeps the id-range check easy for
  // the mutator to straddle.
  static const mlec::Topology topo([] {
    mlec::DataCenterConfig dc;
    dc.racks = 2;
    dc.enclosures_per_rack = 2;
    dc.disks_per_enclosure = 4;
    return dc;
  }());

  const std::string text(reinterpret_cast<const char*>(data), size);
  for (const bool require_monotonic : {false, true}) {
    std::istringstream in(text);
    try {
      const mlec::FailureTrace trace = mlec::parse_trace(in, topo, require_monotonic);
      // Round-trip: a parsed trace reformats to a parseable, equal trace.
      std::istringstream again(mlec::format_trace(trace));
      const mlec::FailureTrace reparsed = mlec::parse_trace(again, topo, require_monotonic);
      if (reparsed.size() != trace.size()) __builtin_trap();
    } catch (const mlec::PreconditionError&) {
    }
  }
  return 0;
}
