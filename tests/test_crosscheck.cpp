#include "analysis/crosscheck.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace mlec {
namespace {

/// SLEC-as-MLEC: a trivial (1+0) network code over clustered (3+1) pools,
/// 32 disks at 50% AFR — hot enough that a few hundred simulated missions
/// observe real losses, so all four methods produce non-vacuous estimates.
Scenario slec_scenario() {
  Scenario sc;
  sc.name = "crosscheck-slec";
  sc.system.dc.racks = 4;
  sc.system.dc.enclosures_per_rack = 1;
  sc.system.dc.disks_per_enclosure = 8;
  sc.system.dc.disk_capacity_tb = 20.0;
  sc.system.code = {{1, 0}, {3, 1}};
  sc.system.scheme = MlecScheme::kCC;
  sc.system.repair = RepairMethod::kRepairAll;
  sc.system.afr = 0.5;
  sc.missions = 600;
  sc.split_missions = 6000;
  sc.seed = 42;
  return sc;
}

/// A true two-level code: (2+1) network over clustered (3+1) pools, 96
/// disks at 50% AFR.
Scenario mlec_scenario() {
  Scenario sc;
  sc.name = "crosscheck-mlec";
  sc.system.dc.racks = 6;
  sc.system.dc.enclosures_per_rack = 2;
  sc.system.dc.disks_per_enclosure = 8;
  sc.system.dc.disk_capacity_tb = 20.0;
  sc.system.code = {{2, 1}, {3, 1}};
  sc.system.scheme = MlecScheme::kCC;
  sc.system.repair = RepairMethod::kRepairAll;
  sc.system.afr = 0.5;
  sc.missions = 1500;
  sc.split_missions = 6000;
  sc.seed = 42;
  return sc;
}

TEST(Crosscheck, AllFourMethodsAgreeOnTheSlecScenario) {
  const CrosscheckReport report = run_crosscheck(slec_scenario());
  EXPECT_EQ(report.methods_run(), 4u);
  for (const auto& row : report.rows) {
    EXPECT_TRUE(row.ran()) << row.method << ": " << row.skip_reason << row.error;
  }
  EXPECT_TRUE(report.agreed()) << report.table();
}

TEST(Crosscheck, AllFourMethodsAgreeOnTheMlecScenario) {
  const CrosscheckReport report = run_crosscheck(mlec_scenario());
  EXPECT_EQ(report.methods_run(), 4u);
  EXPECT_TRUE(report.agreed()) << report.table();
  // The hot scenario is lossy enough that sim's estimate is non-vacuous.
  for (const auto& row : report.rows)
    if (row.method == "sim") EXPECT_GT(row.estimate.pdl, 0.0);
}

TEST(Crosscheck, MethodSubsetRunsOnlyThoseMethods) {
  CrosscheckOptions options;
  options.methods = {"dp", "markov"};
  const CrosscheckReport report = run_crosscheck(Scenario::paper_default(), options);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].method, "dp");
  EXPECT_EQ(report.rows[1].method, "markov");
  EXPECT_TRUE(report.agreed()) << report.table();
}

TEST(Crosscheck, UnknownMethodNameThrows) {
  CrosscheckOptions options;
  options.methods = {"ouija"};
  EXPECT_THROW(run_crosscheck(Scenario::paper_default(), options), PreconditionError);
}

TEST(Crosscheck, InapplicableMethodsAreReportedNotCompared) {
  Scenario sc = Scenario::paper_default();
  sc.bursts.bursts_per_year = 0.5;  // only dp handles burst climates
  sc.burst_trials = 200;
  const CrosscheckReport report = run_crosscheck(sc);
  EXPECT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.methods_run(), 1u);
  for (const auto& row : report.rows) {
    if (row.method == "dp") {
      EXPECT_TRUE(row.ran());
    } else {
      EXPECT_FALSE(row.applicable);
      EXPECT_FALSE(row.skip_reason.empty());
    }
  }
  EXPECT_TRUE(report.agreed());  // one method trivially agrees with itself
}

TEST(Crosscheck, ZeroToleranceFlagsTheAnalyticGap) {
  // dp and markov land ~0.3 nines apart on the paper default; with zero
  // tolerance that distance must surface as a divergence, not be absorbed.
  CrosscheckOptions options;
  options.methods = {"dp", "markov"};
  options.nines_tolerance = 0.0;
  const CrosscheckReport report = run_crosscheck(Scenario::paper_default(), options);
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_EQ(report.divergences[0].method_a, "dp");
  EXPECT_EQ(report.divergences[0].method_b, "markov");
  EXPECT_GT(report.divergences[0].gap_nines, 0.0);
  EXPECT_NE(report.table().find("DIVERGENCE"), std::string::npos);
}

TEST(Crosscheck, JsonCarriesTheComparison) {
  CrosscheckOptions options;
  options.methods = {"dp", "markov"};
  const CrosscheckReport report = run_crosscheck(mlec_scenario(), options);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"agreed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"crosscheck-mlec\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"dp\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"markov\""), std::string::npos);
  EXPECT_NE(json.find("\"divergences\": []"), std::string::npos);
}

TEST(Crosscheck, TableNamesEveryMethod) {
  const std::string table = run_crosscheck(slec_scenario()).table();
  for (const char* method : {"sim", "split", "dp", "markov"})
    EXPECT_NE(table.find(method), std::string::npos) << method;
  EXPECT_NE(table.find("agreement"), std::string::npos);
}

}  // namespace
}  // namespace mlec
