#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "util/error.hpp"

namespace mlec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// 6 racks x 2 enclosures x 8 disks of (2+1)/(3+1) at 50% AFR: hot enough
/// that tens of missions observe catastrophes and losses.
Scenario hot_scenario() {
  Scenario sc;
  sc.system.dc.racks = 6;
  sc.system.dc.enclosures_per_rack = 2;
  sc.system.dc.disks_per_enclosure = 8;
  sc.system.dc.disk_capacity_tb = 20.0;
  sc.system.code = {{2, 1}, {3, 1}};
  sc.system.scheme = MlecScheme::kCC;
  sc.system.repair = RepairMethod::kRepairAll;
  sc.system.afr = 0.5;
  sc.missions = 64;
  sc.split_missions = 2000;
  sc.seed = 2023;
  return sc;
}

TEST(EstimatorRegistry, FourMethodsInPaperOrder) {
  const auto& registry = estimator_registry();
  ASSERT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry[0]->name(), "sim");
  EXPECT_EQ(registry[1]->name(), "split");
  EXPECT_EQ(registry[2]->name(), "dp");
  EXPECT_EQ(registry[3]->name(), "markov");
  for (const Estimator* e : registry) {
    EXPECT_EQ(find_estimator(e->name()), e);
    EXPECT_FALSE(e->describe().empty());
  }
  EXPECT_EQ(find_estimator("montecarlo"), nullptr);
}

TEST(EstimatorApplicability, WeibullNarrowsToNothing) {
  Scenario sc = Scenario::paper_default();
  sc.failure_kind = FailureDistribution::Kind::kWeibull;
  for (const Estimator* e : estimator_registry())
    EXPECT_FALSE(e->applicability(sc).empty()) << e->name();
}

TEST(EstimatorApplicability, BurstsAreDpOnly) {
  Scenario sc = Scenario::paper_default();
  sc.bursts.bursts_per_year = 1.0;
  EXPECT_FALSE(find_estimator("sim")->applicability(sc).empty());
  EXPECT_FALSE(find_estimator("split")->applicability(sc).empty());
  EXPECT_FALSE(find_estimator("markov")->applicability(sc).empty());
  EXPECT_TRUE(find_estimator("dp")->applicability(sc).empty());
}

TEST(EstimatorApplicability, UreIsDpOnly) {
  Scenario sc = Scenario::paper_default();
  sc.ure_per_bit = 1e-16;
  EXPECT_FALSE(find_estimator("sim")->applicability(sc).empty());
  EXPECT_FALSE(find_estimator("split")->applicability(sc).empty());
  EXPECT_FALSE(find_estimator("markov")->applicability(sc).empty());
  EXPECT_TRUE(find_estimator("dp")->applicability(sc).empty());
}

TEST(EstimatorApplicability, DeclusteredLocalSplitsDpAndMarkov) {
  Scenario sc = Scenario::paper_default();
  sc.system.scheme = MlecScheme::kCD;
  sc.priority_repair = true;
  EXPECT_TRUE(find_estimator("dp")->applicability(sc).empty());
  EXPECT_FALSE(find_estimator("markov")->applicability(sc).empty());
  sc.priority_repair = false;
  EXPECT_FALSE(find_estimator("dp")->applicability(sc).empty());
  EXPECT_TRUE(find_estimator("markov")->applicability(sc).empty());
}

TEST(EstimatorApplicability, DeclusteredNetworkExcludesMarkov) {
  Scenario sc = Scenario::paper_default();
  sc.system.scheme = MlecScheme::kDC;
  sc.priority_repair = false;
  EXPECT_FALSE(find_estimator("markov")->applicability(sc).empty());
}

TEST(Estimators, EstimateThrowsOutsideTheDomain) {
  Scenario sc = Scenario::paper_default();
  sc.failure_kind = FailureDistribution::Kind::kWeibull;
  EXPECT_THROW(find_estimator("sim")->estimate(sc), PreconditionError);
  EXPECT_THROW(find_estimator("dp")->estimate(sc), PreconditionError);
}

TEST(Estimators, AnalyticPairAgreesOnThePaperDefault) {
  const Scenario sc = Scenario::paper_default();
  const Estimate dp = find_estimator("dp")->estimate(sc);
  const Estimate markov = find_estimator("markov")->estimate(sc);
  EXPECT_FALSE(dp.stochastic);
  EXPECT_FALSE(markov.stochastic);
  EXPECT_DOUBLE_EQ(dp.pdl_lo, dp.pdl);
  EXPECT_DOUBLE_EQ(dp.pdl_hi, dp.pdl);
  EXPECT_GT(dp.nines, 20.0);
  // The two share the stage-2 closed forms; the chains differ only in the
  // repair-time distribution assumption.
  EXPECT_NEAR(dp.nines, markov.nines, 1.0);
  EXPECT_GT(dp.exposure_hours, 0.0);
  EXPECT_GT(markov.cat_rate_per_year, 0.0);
}

TEST(Estimators, SimProducesACoherentStochasticEstimate) {
  const Scenario sc = hot_scenario();
  const Estimate e = find_estimator("sim")->estimate(sc);
  EXPECT_EQ(e.method, "sim");
  EXPECT_TRUE(e.stochastic);
  EXPECT_EQ(e.samples, sc.missions);
  EXPECT_GT(e.cat_rate_per_year, 0.0);
  EXPECT_LE(e.pdl_lo, e.pdl);
  EXPECT_LE(e.pdl, e.pdl_hi);
  EXPECT_FALSE(e.truncated);
  EXPECT_FALSE(e.resumed);
}

TEST(Estimators, SplitFallsBackToClosedFormWhenStageOneSeesNothing) {
  Scenario sc = Scenario::paper_default();  // 1% AFR: no catastrophes in 500
  sc.split_missions = 500;
  const Estimate e = find_estimator("split")->estimate(sc);
  EXPECT_FALSE(e.stochastic);
  EXPECT_NE(e.provenance.find("closed-form stage 1"), std::string::npos);
  EXPECT_GT(e.nines, 10.0);
}

TEST(Estimators, SplitReportsStageOneStatisticsWhenHot) {
  const Scenario sc = hot_scenario();
  const Estimate e = find_estimator("split")->estimate(sc);
  EXPECT_TRUE(e.stochastic);
  EXPECT_GT(e.samples, 0u);
  EXPECT_GT(e.cat_rate_per_year, 0.0);
  EXPECT_LE(e.pdl_lo, e.pdl);
  EXPECT_LE(e.pdl, e.pdl_hi);
}

TEST(Estimators, SimKillAndResumeIsBitIdentical) {
  const std::string base = temp_path("estimate_resume");
  std::remove((base + ".sim").c_str());
  const Scenario sc = hot_scenario();

  EstimateOptions uninterrupted;
  uninterrupted.shards = 4;
  const Estimate full = find_estimator("sim")->estimate(sc, uninterrupted);

  EstimateOptions first_half = uninterrupted;
  first_half.checkpoint_path = base;  // journal lands at base + ".sim"
  first_half.unit_budget = sc.missions / 2;
  const Estimate partial = find_estimator("sim")->estimate(sc, first_half);
  EXPECT_TRUE(partial.truncated);
  EXPECT_LT(partial.samples, sc.missions);

  EstimateOptions second_half = uninterrupted;
  second_half.checkpoint_path = base;
  second_half.resume = true;
  const Estimate resumed = find_estimator("sim")->estimate(sc, second_half);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.truncated);

  EXPECT_EQ(resumed.samples, full.samples);
  EXPECT_EQ(resumed.pdl, full.pdl);  // bit-exact, not approximate
  EXPECT_EQ(resumed.cat_rate_per_year, full.cat_rate_per_year);
  EXPECT_EQ(resumed.cross_rack_tb, full.cross_rack_tb);
  std::remove((base + ".sim").c_str());
}

TEST(Estimators, SplitKillAndResumeIsBitIdentical) {
  const std::string base = temp_path("estimate_resume_split");
  std::remove((base + ".split").c_str());
  const Scenario sc = hot_scenario();

  const Estimate full = find_estimator("split")->estimate(sc);

  EstimateOptions first_half;
  first_half.checkpoint_path = base;
  first_half.unit_budget = sc.split_missions / 2;
  const Estimate partial = find_estimator("split")->estimate(sc, first_half);
  EXPECT_TRUE(partial.truncated);

  EstimateOptions second_half;
  second_half.checkpoint_path = base;
  second_half.resume = true;
  const Estimate resumed = find_estimator("split")->estimate(sc, second_half);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.samples, full.samples);
  EXPECT_EQ(resumed.pdl, full.pdl);
  EXPECT_EQ(resumed.cat_rate_per_year, full.cat_rate_per_year);
  std::remove((base + ".split").c_str());
}

TEST(Estimators, NinesMatchesPdl) {
  const Estimate e = find_estimator("dp")->estimate(Scenario::paper_default());
  EXPECT_NEAR(e.nines, -std::log10(e.pdl), 1e-9);
}

}  // namespace
}  // namespace mlec
