#include "gf/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlec::gf {
namespace {

TEST(Matrix, IdentityMultiplication) {
  const auto id = Matrix::identity(5);
  Matrix m(5, 5);
  Rng rng(1);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) m.at(r, c) = static_cast<byte_t>(rng.uniform_below(256));
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(Matrix, InvertRoundTrip) {
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    Matrix m(6, 6);
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 6; ++c) m.at(r, c) = static_cast<byte_t>(rng.uniform_below(256));
    Matrix inv;
    if (!m.invert(inv)) continue;  // singular random matrix: skip
    EXPECT_EQ(m.multiply(inv), Matrix::identity(6));
    EXPECT_EQ(inv.multiply(m), Matrix::identity(6));
  }
}

TEST(Matrix, SingularDetected) {
  Matrix m(3, 3);  // all zeros
  Matrix inv;
  EXPECT_FALSE(m.invert(inv));

  // Duplicate rows.
  Matrix d(2, 2);
  d.at(0, 0) = 3;
  d.at(0, 1) = 7;
  d.at(1, 0) = 3;
  d.at(1, 1) = 7;
  EXPECT_FALSE(d.invert(inv));
}

TEST(Matrix, CauchySquareSubmatricesInvertible) {
  // The MDS property hinges on this: any square submatrix of the Cauchy
  // parity rows must be invertible.
  const auto cauchy = Matrix::cauchy(4, 10);
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = 1 + rng.uniform_below(4);
    auto rows = rng.sample_without_replacement(4, size);
    auto cols = rng.sample_without_replacement(10, size);
    Matrix sub(size, size);
    for (std::size_t r = 0; r < size; ++r)
      for (std::size_t c = 0; c < size; ++c) sub.at(r, c) = cauchy.at(rows[r], cols[c]);
    Matrix inv;
    EXPECT_TRUE(sub.invert(inv)) << "round " << round;
  }
}

TEST(Matrix, CauchyRejectsOversize) {
  EXPECT_THROW(Matrix::cauchy(200, 100), PreconditionError);
}

TEST(Matrix, VandermondeFirstRowsAreOnesAndIndices) {
  const auto v = Matrix::vandermonde(3, 5);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(v.at(0, c), 1);
    EXPECT_EQ(v.at(1, c), static_cast<byte_t>(c));
  }
}

TEST(Matrix, MultiplyDimensionMismatch) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), PreconditionError);
}

TEST(Matrix, InvertRequiresSquare) {
  Matrix a(2, 3), out;
  EXPECT_THROW(a.invert(out), PreconditionError);
}

}  // namespace
}  // namespace mlec::gf
