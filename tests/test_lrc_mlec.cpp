// LRC as the network level of an MLEC stack, end to end: the byte-exact
// repair executor, the chunk-level planner, the count-level fleet
// simulator, and the estimator registry all consuming the same CodeModel.
// The headline property throughout: lrc(4,2,1) in place of rs(4+3) trades
// tolerance (min 2 vs 3) for locality (single-failure repairs read the
// local group, not k_n locals), and every layer must price and execute
// that trade consistently.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/crosscheck.hpp"
#include "analysis/fleet_sim.hpp"
#include "core/estimator.hpp"
#include "core/scenario.hpp"
#include "gf/code_model.hpp"
#include "sim/repair_executor.hpp"
#include "sim/repair_planner.hpp"
#include "util/error.hpp"

namespace mlec {
namespace {

// Width-7 network level: positions 0-3 data locals (groups {0,1} and
// {2,3}), 4-5 the groups' XOR parities, 6 the Cauchy global.
const LrcCode kNetLrc{4, 2, 1};
const MlecCode kCode{{4, 3}, {2, 1}};

DataCenterConfig toy_dc() {
  DataCenterConfig dc;
  dc.racks = 7;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;
  return dc;
}

/// Fail `extra + 1` disks (> p_l) of network position `i`'s local stripe in
/// the map's first network stripe, making that local lost.
void lose_local(const StripeMap& map, MaterializedSystem& system, std::size_t i) {
  const auto& local = map.stripes().front().locals.at(i);
  system.fail_disks({local.disks[0], local.disks[1]});
}

// ---------------------------------------------------------------------------
// Repair executor: LRC network decodes are byte-exact.

class LrcExecutorMethods : public ::testing::TestWithParam<RepairMethod> {};

TEST_P(LrcExecutorMethods, LostLocalRepairsByteExact) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kCode, MlecScheme::kCC, 4, /*seed=*/31);
  MaterializedSystem system(map, 48, /*seed=*/5, LevelCode::make_lrc(kNetLrc));
  // One lost local (network position 0, group 0): the network-level decode
  // is an LRC local-group repair — group survivors {1, 4} suffice.
  lose_local(map, system, 0);
  const auto exec = system.execute(GetParam());
  EXPECT_TRUE(exec.verified) << to_string(GetParam());
  EXPECT_GT(exec.chunks_rebuilt, 0u);
  EXPECT_EQ(exec.unrecoverable_network_stripes, 0u);
}

TEST_P(LrcExecutorMethods, GlobalDecodePatternsRepairByteExact) {
  // Two lost locals in ONE group (positions 0 and 1): locality is gone and
  // the rebuild must route through the global parity. Still decodable
  // (2 <= min tolerance), still byte-exact.
  const Topology topo(toy_dc());
  const StripeMap map(topo, kCode, MlecScheme::kCC, 4, /*seed=*/33);
  MaterializedSystem system(map, 48, /*seed=*/6, LevelCode::make_lrc(kNetLrc));
  lose_local(map, system, 0);
  lose_local(map, system, 1);
  const auto exec = system.execute(GetParam());
  EXPECT_TRUE(exec.verified) << to_string(GetParam());
  EXPECT_EQ(exec.unrecoverable_network_stripes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, LrcExecutorMethods,
                         ::testing::ValuesIn(kAllRepairMethods));

TEST(LrcExecutor, FatalPatternIsCountedWhereRsWouldRecover) {
  // Wipe group 0 entirely: data locals 0, 1 and their XOR parity (network
  // position 4). Only 3 lost locals — an MDS (4+3) network level rebuilds
  // them; the LRC one cannot (the global covers a single extra erasure per
  // group at most) and must count the stripe unrecoverable, not crash.
  const Topology topo(toy_dc());
  const StripeMap map(topo, kCode, MlecScheme::kCC, 1, /*seed=*/13);
  {
    MaterializedSystem rs(map, 32, /*seed=*/3);
    for (std::size_t i : {0u, 1u, 4u}) lose_local(map, rs, i);
    const auto exec = rs.execute(RepairMethod::kRepairFailedOnly);
    EXPECT_TRUE(exec.verified);
    EXPECT_EQ(exec.unrecoverable_network_stripes, 0u);
  }
  {
    MaterializedSystem lrc(map, 32, /*seed=*/3, LevelCode::make_lrc(kNetLrc));
    for (std::size_t i : {0u, 1u, 4u}) lose_local(map, lrc, i);
    const auto exec = lrc.execute(RepairMethod::kRepairFailedOnly);
    EXPECT_GE(exec.unrecoverable_network_stripes, 1u);
  }
}

TEST(LrcExecutor, MismatchedNetworkLevelRejected) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kCode, MlecScheme::kCC, 1, 13);
  EXPECT_THROW(MaterializedSystem(map, 32, 3, LevelCode::make_lrc({4, 1, 1})),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Repair planner: the model prices LRC locality into network reads.

TEST(LrcPlanner, SingleLostLocalReadsTheGroupNotKn) {
  const Topology topo(toy_dc());
  // One stripe per network pool so the failed pool appears in exactly one
  // stripe, at data position 0 (C/C rotates the pool onto parity positions
  // in later stripes, which would blur the fan-in ratio below).
  const StripeMap map(topo, kCode, MlecScheme::kCC, 1, /*seed=*/21);
  // Lose one local stripe (2 failed disks in the first stripe's position 0).
  const auto& local = map.stripes().front().locals.front();
  const std::vector<DiskId> failed{local.disks[0], local.disks[1]};

  const auto local_model = make_code_model(LevelCode::make_rs(kCode.local));
  const auto rs_net = make_code_model(LevelCode::make_rs(kCode.network));
  const auto lrc_net = make_code_model(LevelCode::make_lrc(kNetLrc));
  for (const auto method : kAllRepairMethods) {
    const RepairPlan rs =
        plan_repair(map, failed, method, *rs_net, *local_model);
    const RepairPlan lrc =
        plan_repair(map, failed, method, *lrc_net, *local_model);
    // Identical structure (same catastrophe classification, same chunk
    // counts) — only the read fan-in per network-rebuilt chunk changes:
    // 2 group survivors instead of k_n = 4.
    EXPECT_EQ(rs.catastrophic_pools, lrc.catastrophic_pools);
    EXPECT_EQ(rs.network_write_chunks, lrc.network_write_chunks);
    EXPECT_EQ(rs.local_chunks(), lrc.local_chunks());
    EXPECT_GT(rs.network_read_chunks, 0.0) << to_string(method);
    EXPECT_DOUBLE_EQ(lrc.network_read_chunks, rs.network_read_chunks / 2.0)
        << to_string(method);
    // The legacy 3-arg overload is the RS model path, bit-for-bit.
    const RepairPlan legacy = plan_repair(map, failed, method);
    EXPECT_DOUBLE_EQ(legacy.network_read_chunks, rs.network_read_chunks);
    EXPECT_DOUBLE_EQ(legacy.local_read_chunks, rs.local_read_chunks);
    EXPECT_EQ(legacy.unrecoverable_network_stripes, rs.unrecoverable_network_stripes);
  }
}

TEST(LrcPlanner, FatalPatternUnrecoverableOnlyUnderLrc) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kCode, MlecScheme::kCC, 1, /*seed=*/13);
  std::vector<DiskId> failed;
  for (std::size_t i : {0u, 1u, 4u}) {
    const auto& local = map.stripes().front().locals.at(i);
    failed.push_back(local.disks[0]);
    failed.push_back(local.disks[1]);
  }
  const auto local_model = make_code_model(LevelCode::make_rs(kCode.local));
  const RepairPlan rs = plan_repair(map, failed, RepairMethod::kRepairMinimum,
                                    *make_code_model(LevelCode::make_rs(kCode.network)),
                                    *local_model);
  const RepairPlan lrc = plan_repair(map, failed, RepairMethod::kRepairMinimum,
                                     *make_code_model(LevelCode::make_lrc(kNetLrc)),
                                     *local_model);
  EXPECT_EQ(rs.unrecoverable_network_stripes, 0u);
  EXPECT_EQ(lrc.unrecoverable_network_stripes, 1u);
}

// ---------------------------------------------------------------------------
// Fleet simulator: the acceptance inequality — same fleet, same seed, LRC
// cross-rack repair traffic strictly below the RS equivalent.

TEST(LrcFleetSim, CrossRackTrafficBeatsRsAtTheSameSeed) {
  FleetSimConfig cfg;
  cfg.dc.racks = 7;
  cfg.dc.enclosures_per_rack = 2;
  cfg.dc.disks_per_enclosure = 18;  // 6 clustered (2+1) pools per enclosure
  cfg.dc.disk_capacity_tb = 20.0;
  cfg.code = kCode;
  cfg.scheme = MlecScheme::kCC;
  cfg.method = RepairMethod::kRepairFailedOnly;
  cfg.failures.afr = 0.4;
  cfg.stop_on_loss = false;  // identical event streams for both families

  const auto rs = simulate_fleet(cfg, 150, /*seed=*/42);
  cfg.network_level = LevelCode::make_lrc(kNetLrc);
  const auto lrc = simulate_fleet(cfg, 150, /*seed=*/42);

  // Same failure process, same catastrophes; only the repair fan-in and the
  // loss accounting differ.
  ASSERT_EQ(rs.disk_failures, lrc.disk_failures);
  ASSERT_EQ(rs.catastrophic_pool_events, lrc.catastrophic_pool_events);
  ASSERT_GT(rs.catastrophic_pool_events, 0u);
  // Per rebuilt chunk: rs reads k_n = 4 and writes 1; lrc reads the mean
  // single-failure fan-in 16/7 and writes 1. Exactly (16/7+1)/5 of the
  // RS bill.
  EXPECT_GT(lrc.cross_rack_tb, 0.0);
  EXPECT_LT(lrc.cross_rack_tb, rs.cross_rack_tb);
  EXPECT_NEAR(lrc.cross_rack_tb / rs.cross_rack_tb, (16.0 / 7.0 + 1.0) / 5.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Scenario plumbing and the estimator registry.

Scenario lrc_scenario() {
  Scenario sc;
  sc.name = "lrc-in-mlec";
  sc.system.dc.racks = 7;
  sc.system.dc.enclosures_per_rack = 2;
  sc.system.dc.disks_per_enclosure = 8;
  sc.system.dc.disk_capacity_tb = 20.0;
  sc.system.code = kCode;
  sc.system.code.local = {3, 1};
  sc.system.network_family = CodeFamily::kLrc;
  sc.system.network_lrc = kNetLrc;
  sc.system.scheme = MlecScheme::kCC;
  sc.system.repair = RepairMethod::kRepairAll;
  sc.system.afr = 0.5;
  sc.missions = 800;
  sc.split_missions = 4000;
  sc.seed = 42;
  return sc;
}

TEST(LrcScenario, MismatchedShapeRejectedMarkovSkipsLrcDpRuns) {
  Scenario sc = lrc_scenario();
  EXPECT_NO_THROW(sc.validate());
  // The mlec network part must carry the LRC arithmetic: k_n = k, p_n = l+r.
  Scenario bad = sc;
  bad.system.network_lrc = {4, 1, 1};  // width 6 != network width 7
  EXPECT_THROW(bad.validate(), PreconditionError);

  EXPECT_FALSE(find_estimator("markov")->applicability(sc).empty());
  EXPECT_TRUE(find_estimator("dp")->applicability(sc).empty());
  EXPECT_TRUE(find_estimator("sim")->applicability(sc).empty());
  // The burst engine's loss cells assume MDS counting.
  Scenario bursty = sc;
  bursty.bursts.bursts_per_year = 0.5;
  EXPECT_FALSE(find_estimator("dp")->applicability(bursty).empty());
}

TEST(LrcScenario, SimAndClosedFormsAgreeOnTheCrosscheckScenario) {
  // The bundled crosscheck_lrc.ini scenario, inline: sim, split, and dp all
  // consume the model's (min tolerance, loss fraction) pair, so their
  // estimates must land within the default nines tolerance.
  CrosscheckOptions options;
  options.methods = {"sim", "split", "dp"};
  const CrosscheckReport report = run_crosscheck(lrc_scenario(), options);
  EXPECT_EQ(report.methods_run(), 3u);
  EXPECT_TRUE(report.agreed()) << report.table();
}

TEST(LrcScenario, LrcToleranceCostsNinesVersusRsAtEqualOverhead) {
  // Same width, same overhead, same fleet: the LRC network level loses
  // data at 3-pool overlaps that rs(4+3) survives, so its closed-form PDL
  // must be at least the RS one. (What LRC buys back is the repair traffic
  // — the fleet-sim inequality above.)
  Scenario lrc = lrc_scenario();
  Scenario rs = lrc_scenario();
  rs.system.network_family = CodeFamily::kRs;
  const Estimate e_lrc = find_estimator("dp")->estimate(lrc, {});
  const Estimate e_rs = find_estimator("dp")->estimate(rs, {});
  EXPECT_GE(e_lrc.pdl, e_rs.pdl);
}

}  // namespace
}  // namespace mlec
